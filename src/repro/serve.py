"""Live telemetry for a long-running streaming monitor.

The paper argues for *continuous* measurement; this module is the
operational half of that argument — a dependency-free HTTP server
(stdlib :class:`~http.server.ThreadingHTTPServer`) an operator can point
Prometheus at while a :class:`~repro.core.streaming.StreamingMonitor`
ingests blocks:

``/metrics``
    Prometheus text exposition rendered from the process-wide
    :class:`~repro.obs.metrics.MetricsRegistry`.
``/healthz``
    Always 200 while the process serves — a liveness probe.
``/readyz``
    200 only once the monitor has completed its first window, and 503
    again whenever the ingest loop is degraded (crashed and not yet
    proven recovered) — a readiness probe.
``/status``
    JSON snapshot of the monitor: current window, latest metric values,
    blocks ingested, lag, plus supervision/fault/data-quality state
    under ``resilience`` and ``quality``, worker-pool state under
    ``workers``, build identity under ``build``, per-histogram latency
    summaries (count/mean/p50/p99) under ``timings``, and — when the
    monitor runs with history enabled — alert-engine state under
    ``alerting``, burn-rate objective state under ``slo``, store
    footprint under ``timeseries`` and recent metric values under
    ``sparklines`` — the sections the ``repro top`` dashboard renders.
``/api/v1/series`` and ``/api/v1/series/<name>?start=&end=&step=``
    The time-series store: the bare path lists series names, a named
    path returns raw points or downsampled rollup buckets depending on
    ``step`` (see :meth:`~repro.obs.timeseries.TimeSeriesStore.query`).
``/api/v1/alerts``
    The stateful alert engine: active instances plus recent lifecycle
    events (:meth:`~repro.obs.alerts.AlertManager.summary`).

:func:`run_monitor` drives a monitor over a block feed while serving
scrapes concurrently; the CLI's ``repro monitor --serve PORT`` wires it
to a simulated 2019 chain and shuts it down cleanly on SIGINT/SIGTERM.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Iterable, Sequence
from urllib.parse import parse_qs, urlparse

from repro import obs
from repro.core.streaming import StreamingMonitor, ThresholdRule
from repro.errors import ResilienceError
from repro.obs.alerts import (
    AlertManager,
    AlertSink,
    LogSink,
    anomaly_rule,
    format_alert_event,
    rules_from_thresholds,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import build_info, render_prometheus
from repro.obs.slo import SLO, SLOEngine
from repro.obs.timeseries import TimeSeriesStore
from repro.parallel import pool_status
from repro.resilience.faults import FaultInjector
from repro.resilience.supervisor import MonitorSupervisor

logger = logging.getLogger(__name__)

#: Content type mandated by the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MonitorState:
    """Thread-safe status snapshot shared by ingest loop and HTTP handlers."""

    def __init__(
        self,
        chain: str,
        window_size: int,
        stride: int,
        total_blocks: int | None = None,
    ) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self.chain = chain
        self.window_size = window_size
        self.stride = stride
        self.total_blocks = total_blocks
        self.blocks_ingested = 0
        self.evaluations = 0
        self.alerts = 0
        self.latest: dict[str, float] = {}
        self.ready = False
        self.finished = False
        self.degraded = False
        self.restarts = 0
        self.crashes = 0
        self.max_restarts: int | None = None
        self.last_error: str | None = None
        self.quality: dict | None = None
        self.faults_fn: Callable[[], dict] | None = None
        #: Optional section providers (wired by :func:`run_monitor` when
        #: history/alerting are enabled); each feeds one ``/status`` key.
        self.alerts_fn: Callable[[], dict] | None = None
        self.slo_fn: Callable[[], dict] | None = None
        self.timeseries_fn: Callable[[], dict] | None = None
        self.sparklines_fn: Callable[[], dict] | None = None

    def record_push(self, blocks_ingested: int) -> None:
        """Note one ingested block."""
        with self._lock:
            self.blocks_ingested = blocks_ingested

    def record_evaluation(self, latest: dict[str, float], n_alerts: int) -> None:
        """Note one completed window evaluation; flips readiness.

        A completed evaluation after a crash also proves the restarted
        ingest loop is healthy again, so degradation clears here.
        """
        with self._lock:
            self.evaluations += 1
            self.alerts += n_alerts
            self.latest = dict(latest)
            self.ready = True
            self.degraded = False

    def record_crash(self, error: BaseException) -> None:
        """The ingest loop died; readiness drops until it proves recovery."""
        with self._lock:
            self.crashes += 1
            self.degraded = True
            self.last_error = repr(error)

    def record_restart(self) -> None:
        """The supervisor brought the ingest loop back up."""
        with self._lock:
            self.restarts += 1

    def set_quality(self, quality: dict | None) -> None:
        """Attach an ingest data-quality report for ``/status``."""
        with self._lock:
            self.quality = dict(quality) if quality is not None else None

    def mark_finished(self) -> None:
        """The feed is exhausted (the server may linger for scrapes)."""
        with self._lock:
            self.finished = True

    def is_ready(self) -> bool:
        """Readiness: a full window evaluated, and not currently degraded."""
        with self._lock:
            return self.ready and not self.degraded

    def snapshot(self) -> dict:
        """A JSON-ready view for the ``/status`` endpoint."""
        with self._lock:
            lag = (
                self.total_blocks - self.blocks_ingested
                if self.total_blocks is not None
                else None
            )
            return {
                "chain": self.chain,
                "window": {
                    "size": self.window_size,
                    "stride": self.stride,
                    "start_block": max(self.blocks_ingested - self.window_size, 0),
                    "end_block": self.blocks_ingested,
                },
                "blocks_ingested": self.blocks_ingested,
                "total_blocks": self.total_blocks,
                "lag_blocks": lag,
                "evaluations": self.evaluations,
                "alerts": self.alerts,
                "latest": dict(self.latest),
                "ready": self.ready and not self.degraded,
                "finished": self.finished,
                "uptime_seconds": round(time.monotonic() - self._started, 3),
                "resilience": {
                    "degraded": self.degraded,
                    "crashes": self.crashes,
                    "restarts": self.restarts,
                    "max_restarts": self.max_restarts,
                    "last_error": self.last_error,
                    "faults": self.faults_fn() if self.faults_fn else None,
                },
                "quality": self.quality,
                "workers": pool_status(),
                "build": build_info(),
                "timings": _timing_summaries(obs.get_tracer().metrics),
                "alerting": self.alerts_fn() if self.alerts_fn else None,
                "slo": self.slo_fn() if self.slo_fn else None,
                "timeseries": self.timeseries_fn() if self.timeseries_fn else None,
                "sparklines": self.sparklines_fn() if self.sparklines_fn else None,
            }


def _timing_summaries(registry: MetricsRegistry) -> dict:
    """Per-histogram latency summaries for ``/status`` (count/mean/p50/p99)."""
    _, _, timings = registry.instruments()
    return {
        t.name: {
            "count": t.count,
            "mean": round(t.mean, 9),
            "p50": round(t.percentile(50), 9),
            "p99": round(t.percentile(99), 9),
        }
        for t in timings
    }


class _TelemetryHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the telemetry callbacks for handlers."""

    daemon_threads = True

    registry: MetricsRegistry
    status_fn: Callable[[], dict]
    ready_fn: Callable[[], bool]
    store: TimeSeriesStore | None
    alert_manager: AlertManager | None


class _TelemetryHandler(BaseHTTPRequestHandler):
    """Routes the telemetry endpoints; logs through ``repro.serve``.

    Every request bumps ``serve.http_requests_total`` and times itself
    into ``serve.scrape_seconds``; 5xx responses additionally bump
    ``serve.http_errors_total`` — the pair of counters the availability
    SLO divides.
    """

    server: _TelemetryHTTPServer
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        registry = self.server.registry
        start = time.perf_counter()
        registry.counter(
            "serve.http_requests_total",
            help="Telemetry HTTP requests served (any status).",
        ).inc()
        try:
            self._route()
        finally:
            registry.timing(
                "serve.scrape_seconds",
                help="Telemetry HTTP request handling latency.",
            ).observe(time.perf_counter() - start)

    def _route(self) -> None:
        parsed = urlparse(self.path)
        path = parsed.path
        if path == "/metrics":
            self._reply(200, render_prometheus(self.server.registry),
                        PROMETHEUS_CONTENT_TYPE)
        elif path == "/healthz":
            self._reply(200, "ok\n", "text/plain; charset=utf-8")
        elif path == "/readyz":
            if self.server.ready_fn():
                self._reply(200, "ready\n", "text/plain; charset=utf-8")
            else:
                self._reply(503, "not ready\n", "text/plain; charset=utf-8")
        elif path == "/status":
            body = json.dumps(self.server.status_fn(), indent=2) + "\n"
            self._reply(200, body, "application/json; charset=utf-8")
        elif path == "/api/v1/alerts":
            self._reply_alerts()
        elif path == "/api/v1/series" or path.startswith("/api/v1/series/"):
            self._reply_series(path, parse_qs(parsed.query))
        else:
            self._reply(404, f"unknown path {path}\n", "text/plain; charset=utf-8")

    def _reply_alerts(self) -> None:
        manager = self.server.alert_manager
        if manager is None:
            self._reply(404, "alerting not enabled\n", "text/plain; charset=utf-8")
            return
        payload = manager.summary()
        payload["history"] = manager.history()
        self._reply_json(payload)

    def _reply_series(self, path: str, query: dict) -> None:
        store = self.server.store
        if store is None:
            self._reply(404, "timeseries not enabled\n", "text/plain; charset=utf-8")
            return
        name = path[len("/api/v1/series/"):] if path != "/api/v1/series" else ""
        if not name:
            self._reply_json({"series": store.series_names()})
            return
        params = {}
        for key in ("start", "end", "step"):
            raw = query.get(key, [None])[0]
            if raw is None:
                continue
            try:
                params[key] = float(raw)
            except ValueError:
                self._reply(400, f"bad {key}={raw!r}: not a number\n",
                            "text/plain; charset=utf-8")
                return
        try:
            result = store.query(name, **params)
        except KeyError:
            self._reply(404, f"unknown series {name!r}\n",
                        "text/plain; charset=utf-8")
            return
        self._reply_json(result)

    def _reply_json(self, payload: dict) -> None:
        self._reply(200, json.dumps(payload, indent=2) + "\n",
                    "application/json; charset=utf-8")

    def _reply(self, code: int, body: str, content_type: str) -> None:
        if code >= 500:
            self.server.registry.counter(
                "serve.http_errors_total",
                help="Telemetry HTTP responses with a 5xx status.",
            ).inc()
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, fmt: str, *args: object) -> None:
        logger.debug("%s %s", self.address_string(), fmt % args)


class TelemetryServer:
    """The scrape server, running on a daemon thread between start/stop.

    >>> registry = MetricsRegistry()
    >>> registry.counter("demo.hits").inc(3)
    >>> server = TelemetryServer(registry, status_fn=dict, ready_fn=lambda: True)
    >>> port = server.start()                                # doctest: +SKIP
    >>> urlopen(f"http://127.0.0.1:{port}/metrics").read()   # doctest: +SKIP
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        status_fn: Callable[[], dict] | None = None,
        ready_fn: Callable[[], bool] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        store: TimeSeriesStore | None = None,
        alert_manager: AlertManager | None = None,
    ) -> None:
        self._server = _TelemetryHTTPServer((host, port), _TelemetryHandler)
        self._server.registry = (
            registry if registry is not None else obs.get_tracer().metrics
        )
        self._server.status_fn = status_fn or dict
        self._server.ready_fn = ready_fn or (lambda: True)
        self._server.store = store
        self._server.alert_manager = alert_manager
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return self._server.server_address[1]

    def start(self) -> int:
        """Begin serving on a daemon thread; returns the bound port."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-telemetry",
            daemon=True,
        )
        self._thread.start()
        logger.info("serving telemetry on port %d", self.port)
        return self.port

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "TelemetryServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@dataclass(frozen=True)
class MonitorRun:
    """What :func:`run_monitor` did, for the CLI summary."""

    blocks: int
    evaluations: int
    alerts: int
    latest: dict[str, float] = field(default_factory=dict)
    port: int | None = None
    restarts: int = 0
    alerts_fired: int = 0
    alerts_resolved: int = 0


def run_monitor(
    feed: Iterable[Sequence[str]],
    window_size: int,
    stride: int | None = None,
    *,
    chain: str = "unknown",
    rules: Sequence[ThresholdRule] = (),
    metrics: Sequence[str] = ("gini", "entropy", "nakamoto"),
    total_blocks: int | None = None,
    serve_port: int | None = None,
    throttle: float = 0.0,
    linger: float = 0.0,
    port_file: str | None = None,
    stop_event: threading.Event | None = None,
    print_fn: Callable[[str], None] = print,
    max_restarts: int | None = None,
    restart_backoff: float = 0.05,
    injector: FaultInjector | None = None,
    quality: dict | None = None,
    history: bool = True,
    slos: Sequence[SLO] = (),
    alert_sinks: Sequence[AlertSink] = (),
    anomaly_metrics: Sequence[str] = (),
    extra_alert_rules: Sequence = (),
    alert_for: float = 0.0,
    alert_keep_for: float = 0.0,
) -> MonitorRun:
    """Replay ``feed`` through a streaming monitor, optionally serving scrapes.

    ``feed`` yields one block's producer names at a time.  With
    ``serve_port`` (0 = ephemeral) a :class:`TelemetryServer` answers
    ``/metrics``, ``/healthz``, ``/readyz`` and ``/status`` concurrently;
    ``port_file`` gets the bound port written to it for scripted scrapers.
    ``throttle`` sleeps that many seconds between blocks, ``linger`` keeps
    the server up that long after the feed ends (interrupted by
    ``stop_event``), and ``stop_event`` aborts ingestion between blocks —
    the CLI sets it from SIGINT/SIGTERM.

    With ``max_restarts`` the ingest loop runs under a
    :class:`~repro.resilience.supervisor.MonitorSupervisor`: a crash
    (e.g. a malformed block with no producers) flips ``/readyz`` to 503,
    the loop restarts after ``restart_backoff`` seconds on the *shared*
    feed iterator (the poison block is not replayed), and the next
    completed evaluation flips readiness back to 200.  Exhausting the
    restart budget raises :class:`~repro.errors.ResilienceError` after
    the server is torn down.  ``injector`` mangles the feed
    (:meth:`~repro.resilience.faults.FaultInjector.mangle_feed`) and
    surfaces its fired-fault counts in ``/status``; ``quality`` attaches
    an upstream ingest data-quality report there too.

    With ``history`` (the default) a :class:`~repro.obs.timeseries.TimeSeriesStore`
    is attached to the registry for the duration of the run — every
    instrument plus each streaming metric (as
    ``monitor.metric.<chain>.<name>``) records history — and a stateful
    :class:`~repro.obs.alerts.AlertManager` runs alongside the legacy
    stateless rules: the same ``rules`` compile into lifecycle rules,
    ``slos`` add burn-rate rules (:meth:`~repro.obs.slo.SLOEngine.rules`),
    ``anomaly_metrics`` add EWMA z-score rules, ``extra_alert_rules``
    attach pre-built :class:`~repro.obs.alerts.AlertRule` objects (the
    CLI uses this for progress specs like ``lag_blocks``), and
    ``alert_sinks`` receive every pending/firing/resolved transition (a
    structured-log sink is always present).  ``alert_for``/``alert_keep_for`` set the
    compiled threshold rules' fire/resolve dwell times.  The manager
    evaluates once per window evaluation (plus once at feed end, with
    lag settled) over the latest metric values extended with
    ``lag_blocks`` and ``blocks_ingested``.
    """
    monitor = StreamingMonitor(window_size, stride, metrics=metrics)
    for rule in rules:
        monitor.add_rule(rule)
    state = MonitorState(chain, monitor.window_size, monitor.stride, total_blocks)
    state.max_restarts = max_restarts
    if quality is not None:
        state.set_quality(quality)
    if injector is not None:
        feed = injector.mangle_feed(feed)
        state.faults_fn = lambda: dict(injector.fired)
    feed_iter = iter(feed)
    stop_event = stop_event or threading.Event()
    registry = obs.get_tracer().metrics
    alerts_total = 0
    supervisor: MonitorSupervisor | None = None
    server: TelemetryServer | None = None
    store: TimeSeriesStore | None = None
    manager: AlertManager | None = None
    engine: SLOEngine | None = None
    previous_history = registry.history
    if history:
        store = TimeSeriesStore()
        registry.set_history(store)
        manager = AlertManager(sinks=[LogSink(), *alert_sinks], registry=registry)
        for alert_rule in rules_from_thresholds(
            below=[(r.metric, r.below) for r in rules if r.below is not None],
            above=[(r.metric, r.above) for r in rules if r.above is not None],
            for_duration=alert_for,
            keep_for=alert_keep_for,
        ):
            manager.add_rule(alert_rule)
        for metric in anomaly_metrics:
            manager.add_rule(anomaly_rule(f"anomaly:{metric}", metric))
        for alert_rule in extra_alert_rules:
            manager.add_rule(alert_rule)
        if slos:
            engine = SLOEngine(slos, store)
            for alert_rule in engine.rules():
                manager.add_rule(alert_rule)
        state.alerts_fn = manager.summary
        state.timeseries_fn = store.stats
        state.sparklines_fn = lambda: {
            name: store.tail_values(f"monitor.latest.{name}", 40)
            for name in metrics
        }
        if engine is not None:
            state.slo_fn = engine.summary
    elif slos:
        raise ResilienceError("SLO evaluation requires history=True")

    def manager_values() -> dict[str, float]:
        """Latest metrics extended with ingest progress, for alert rules."""
        values = dict(monitor.latest())
        values["blocks_ingested"] = float(monitor.blocks_seen)
        if total_blocks is not None:
            values["lag_blocks"] = float(total_blocks - monitor.blocks_seen)
        return values

    def run_alert_engine() -> None:
        if manager is None:
            return
        for event in manager.evaluate(manager_values()):
            print_fn(format_alert_event(event.as_dict()))

    if serve_port is not None:
        server = TelemetryServer(
            registry, status_fn=state.snapshot, ready_fn=state.is_ready,
            port=serve_port, store=store, alert_manager=manager,
        )
        port = server.start()
        print_fn(f"serving telemetry on http://127.0.0.1:{port}")
        if port_file:
            with open(port_file, "w", encoding="utf-8") as fh:
                fh.write(f"{port}\n")
    blocks_gauge = registry.gauge("monitor.blocks_ingested")
    lag_gauge = registry.gauge("monitor.lag_blocks")
    push_timing = registry.timing("monitor.push_seconds")

    def ingest() -> None:
        """One incarnation of the ingest loop over the shared iterator."""
        nonlocal alerts_total
        for producers in feed_iter:
            if stop_event.is_set():
                logger.info("monitor stopping early at block %d", monitor.blocks_seen)
                return
            start = time.perf_counter()
            alerts = monitor.push(producers)
            push_timing.observe(time.perf_counter() - start)
            blocks_gauge.set(monitor.blocks_seen)
            state.record_push(monitor.blocks_seen)
            if total_blocks is not None:
                lag_gauge.set(total_blocks - monitor.blocks_seen)
            if monitor.evaluations > state.evaluations:
                latest = monitor.latest()
                for name, value in latest.items():
                    registry.gauge(f"monitor.latest.{name}").set(value)
                    if store is not None:
                        store.record(
                            f"monitor.metric.{chain}.{name}", value, kind="metric"
                        )
                state.record_evaluation(latest, len(alerts))
                run_alert_engine()
            if alerts:
                alerts_total += len(alerts)
                registry.counter("monitor.alerts_total").inc(len(alerts))
                for alert in alerts:
                    print_fn(f"ALERT {alert}")
            if throttle > 0.0:
                stop_event.wait(throttle)

    try:
        if max_restarts is None:
            ingest()
        else:
            supervisor = MonitorSupervisor(
                ingest,
                max_restarts=max_restarts,
                restart_backoff=restart_backoff,
                on_crash=state.record_crash,
                on_recover=state.record_restart,
                name=f"monitor:{chain}",
            )
            supervisor.run()
        state.mark_finished()
        # One settled pass so progress-based rules (e.g. lag_blocks) can
        # resolve before the server lingers for its final scrapes.
        run_alert_engine()
        if server is not None and linger != 0.0 and not stop_event.is_set():
            stop_event.wait(None if linger < 0 else linger)
    finally:
        if server is not None:
            server.stop()
        registry.set_history(previous_history)
    if supervisor is not None and supervisor.exhausted:
        raise ResilienceError(
            f"monitor ingest crashed {supervisor.crashes} time(s); "
            f"restart budget ({supervisor.max_restarts}) exhausted"
        ) from supervisor.last_error
    return MonitorRun(
        blocks=monitor.blocks_seen,
        evaluations=monitor.evaluations,
        alerts=alerts_total,
        latest=monitor.latest(),
        port=server.port if server is not None else None,
        restarts=supervisor.restarts if supervisor is not None else 0,
        alerts_fired=manager.fired_total if manager is not None else 0,
        alerts_resolved=manager.resolved_total if manager is not None else 0,
    )
