"""Tests for the Gini coefficient (paper Eq. 1)."""

import numpy as np
import pytest

from repro.errors import MetricError
from repro.metrics.gini import gini_coefficient, gini_pairwise, lorenz_curve


class TestGiniValues:
    def test_perfect_equality_is_zero(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_single_entity_is_zero(self):
        assert gini_coefficient([42.0]) == 0.0

    def test_two_entity_known_value(self):
        # For (1, 3): sum|xi-xj| = 2*2 = 4; 2*n*sum = 2*2*4 = 16 -> 0.25.
        assert gini_coefficient([1, 3]) == pytest.approx(0.25)

    def test_extreme_concentration_approaches_one(self):
        values = [1] * 99 + [1_000_000]
        assert gini_coefficient(values) > 0.95

    def test_matches_pairwise_reference(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            values = rng.integers(1, 100, size=rng.integers(2, 40))
            fast = gini_coefficient(values)
            slow = gini_pairwise(values)
            assert fast == pytest.approx(slow, abs=1e-12)

    def test_scale_invariance(self):
        values = [3.0, 9.0, 1.0, 7.0]
        assert gini_coefficient(values) == pytest.approx(
            gini_coefficient([v * 1000 for v in values])
        )

    def test_order_invariance(self):
        assert gini_coefficient([1, 2, 3]) == pytest.approx(gini_coefficient([3, 1, 2]))

    def test_zeros_are_dropped(self):
        assert gini_coefficient([0, 0, 5, 5]) == pytest.approx(0.0)

    def test_paper_day14_shape(self):
        """Many one-credit entities + a few pools -> *low* Gini (§II-C1d)."""
        pools = [20, 18, 15, 12, 10, 8, 7, 6, 5, 4, 3, 3, 2, 2, 1, 1]
        anomaly_day = pools + [1] * 170
        normal_day = pools + [1] * 6
        assert gini_coefficient(anomaly_day) < gini_coefficient(normal_day)


class TestGiniValidation:
    def test_empty_rejected(self):
        with pytest.raises(MetricError):
            gini_coefficient([])

    def test_negative_rejected(self):
        with pytest.raises(MetricError):
            gini_coefficient([1, -1])

    def test_all_zero_rejected(self):
        with pytest.raises(MetricError):
            gini_coefficient([0.0, 0.0])

    def test_nan_rejected(self):
        with pytest.raises(MetricError):
            gini_coefficient([1.0, float("nan")])

    def test_2d_rejected(self):
        with pytest.raises(MetricError):
            gini_coefficient(np.ones((2, 2)))


class TestLorenzCurve:
    def test_endpoints(self):
        population, cumulative = lorenz_curve([1, 2, 3])
        assert population[0] == 0.0 and cumulative[0] == 0.0
        assert population[-1] == 1.0 and cumulative[-1] == pytest.approx(1.0)

    def test_curve_below_diagonal(self):
        population, cumulative = lorenz_curve([1, 10, 100])
        assert np.all(cumulative <= population + 1e-12)

    def test_equality_curve_is_diagonal(self):
        population, cumulative = lorenz_curve([4, 4, 4, 4])
        assert cumulative == pytest.approx(population)

    def test_area_matches_gini(self):
        values = [1, 5, 2, 9, 3]
        population, cumulative = lorenz_curve(values)
        # Trapezoidal area between diagonal and curve, times 2, equals Gini.
        area = np.trapezoid(population - cumulative, population)
        assert 2 * area == pytest.approx(gini_coefficient(values), abs=1e-9)
