"""Fig. 13 — Nakamoto coefficient measured in Bitcoin using sliding windows.

Paper claims: most values between 4 and 5; extreme fixed-window values
appear doubled in the one-day sliding series; at N ≈ 120 (day ~60) an
abnormal change is clearly visible in the sliding series but *not* in the
fixed-window series.
"""

from _bench_util import report_series
from repro.analysis.figures import figure_13


def test_fig13_btc_nakamoto_sliding(benchmark, btc):
    figure = benchmark(figure_13, btc)
    report_series(figure.title, figure.series)

    daily = figure.series["N=144"]
    assert daily.fraction_in_range(4, 5) > 0.8

    # Sliding reveals at least as many extreme windows as fixed days.
    fixed_daily = btc.measure_calendar("nakamoto", "day")
    assert daily.count_extremes(high=20) >= fixed_daily.count_extremes(high=20)

    # The day-60 cross-interval consolidation: sliding dips below 4 around
    # window index ~120, the fixed daily series stays at 4+.
    print("  sliding values around index 120:",
          daily.values[115:130].tolist())
    print("  fixed daily values around day 60:",
          fixed_daily.values[55:65].tolist())
    assert daily.slice(115, 130).min() <= 3
    assert fixed_daily.slice(55, 65).min() >= 4
