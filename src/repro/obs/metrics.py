"""Metric instruments: counters, gauges and timing histograms.

Instruments are created lazily through a :class:`MetricsRegistry` (the
process-wide one lives on the tracer; see :mod:`repro.obs.tracer`) and
aggregate in memory until exported.  A counter accumulates increments, a
gauge keeps the last value, and a timing histogram records observations in
seconds with exact count/total/min/max plus percentile estimates from a
bounded sample.
"""

from __future__ import annotations

import numpy as np

#: Timing histograms keep at most this many raw observations for
#: percentile estimates; count/total/min/max stay exact past the cap.
_HISTOGRAM_SAMPLE_CAP = 4096


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (default 1) to the counter."""
        self.value += n


class Gauge:
    """A point-in-time value; each ``set`` overwrites the last."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class TimingHistogram:
    """Distribution of durations (seconds).

    >>> h = TimingHistogram("build")
    >>> for t in (0.1, 0.2, 0.3):
    ...     h.observe(t)
    >>> h.count, round(h.total, 3), round(h.mean, 3)
    (3, 0.6, 0.2)
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum", "_samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._samples: list[float] = []

    def observe(self, seconds: float) -> None:
        """Record one duration."""
        seconds = float(seconds)
        self.count += 1
        self.total += seconds
        if seconds < self.minimum:
            self.minimum = seconds
        if seconds > self.maximum:
            self.maximum = seconds
        if len(self._samples) < _HISTOGRAM_SAMPLE_CAP:
            self._samples.append(seconds)

    @property
    def mean(self) -> float:
        """Average observed duration (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the retained sample."""
        if not self._samples:
            return 0.0
        return float(np.percentile(np.asarray(self._samples), q))

    def as_dict(self) -> dict:
        """Exportable summary of this histogram."""
        if not self.count:
            return {"count": 0, "total": 0.0, "mean": 0.0,
                    "min": 0.0, "max": 0.0, "p50": 0.0, "p95": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


class MetricsRegistry:
    """Lazily-created named instruments, one namespace per kind."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.timings: dict[str, TimingHistogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def timing(self, name: str) -> TimingHistogram:
        """Get or create the timing histogram ``name``."""
        instrument = self.timings.get(name)
        if instrument is None:
            instrument = self.timings[name] = TimingHistogram(name)
        return instrument

    def reset(self) -> None:
        """Drop every instrument."""
        self.counters.clear()
        self.gauges.clear()
        self.timings.clear()

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument, sorted by name."""
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value for name, g in sorted(self.gauges.items())},
            "timings": {name: t.as_dict() for name, t in sorted(self.timings.items())},
        }
