"""Performance — the measurement pipeline and its substrates.

Times the hot paths a user of the library actually hits: a full fixed
daily measurement over each chain, the full sliding family, a BigQuery-
style SQL aggregation over the Bitcoin credit table, and the table
engine's group-by on the same data.  The headline benchmarks also run
once under tracing (outside the timed rounds) so ``make bench-perf``
lands per-stage span totals in ``BENCH_pipeline.json``.
"""

import pytest

from _bench_util import record_stage_timings
from repro.sql import QueryEngine


def test_perf_btc_daily_gini(benchmark, btc):
    series = benchmark(btc.measure_calendar, "gini", "day")
    assert len(series) == 365
    record_stage_timings(benchmark, lambda: btc.measure_calendar("gini", "day"))


def test_perf_eth_daily_gini(benchmark, eth):
    series = benchmark.pedantic(
        eth.measure_calendar, args=("gini", "day"), rounds=2, iterations=1
    )
    assert len(series) == 365


def test_perf_btc_sliding_family(benchmark, btc):
    def full_family():
        return [btc.measure_sliding("entropy", n) for n in (144, 1_008, 4_320)]

    series = benchmark(full_family)
    assert sum(len(s) for s in series) > 800


def test_perf_btc_sliding_family_measure_many(benchmark, btc):
    """Whole figure-suite sweep: three metrics across the three window
    sizes in one batched call per size, sharing one sort per window."""
    metrics = ("gini", "entropy", "nakamoto")

    def full_sweep():
        return [btc.measure_sliding_many(metrics, n) for n in (144, 1_008, 4_320)]

    sweeps = benchmark(full_sweep)
    assert all(set(sweep) == set(metrics) for sweep in sweeps)
    assert sum(len(sweep["gini"]) for sweep in sweeps) > 800
    record_stage_timings(benchmark, full_sweep)


def test_perf_eth_sliding_family_measure_many(benchmark, eth):
    metrics = ("gini", "entropy", "nakamoto")

    def full_sweep():
        return [
            eth.measure_sliding_many(metrics, n) for n in (6_000, 42_000, 180_000)
        ]

    sweeps = benchmark.pedantic(full_sweep, rounds=3, iterations=1, warmup_rounds=1)
    assert sum(len(sweep["entropy"]) for sweep in sweeps) > 500


def test_perf_sql_groupby_over_credits(benchmark, study):
    table = study.chain("btc").to_table()
    engine = QueryEngine({"credits": table})

    def run_query():
        return engine.execute(
            "SELECT producer, COUNT(*) AS n FROM credits "
            "GROUP BY producer ORDER BY n DESC LIMIT 20"
        )

    result = benchmark(run_query)
    assert result.num_rows == 20


def test_perf_table_groupby_over_credits(benchmark, study):
    table = study.chain("btc").to_table()

    def run_groupby():
        return table.group_by("producer").aggregate(n=("height", "count"))

    result = benchmark(run_groupby)
    assert result.num_rows > 1_000  # ~1.1k distinct producers in BTC 2019


def test_perf_eth_attribution(benchmark, study):
    from repro.chain.attribution import attribute

    chain = study.chain("eth")
    # 2 cold rounds showed ~44% stddev (0.278s vs 0.532s) and tripped the
    # bench-diff gate spuriously; a warmup round plus 5 measured rounds
    # keeps the median inside the gate's tolerance (bench-diff also flags
    # any benchmark below 5 rounds as UNDER-SAMPLED).
    credits = benchmark.pedantic(
        attribute, args=(chain,), rounds=5, iterations=1, warmup_rounds=1
    )
    assert credits.n_credits == 2_204_650
