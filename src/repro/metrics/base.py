"""Metric protocol, validation, registry and batch evaluation.

A *metric* is anything with a ``name`` and a ``compute(values) -> float``
where ``values`` is a 1-D array of positive per-entity credit totals.  The
registry lets the measurement engine and the CLI look metrics up by name;
:func:`register_metric` accepts user-defined metrics (see
``examples/custom_metric.py``).

For window sweeps there is a batched layer: a :class:`DistributionBatch`
stacks many window distributions into one dense matrix and caches the
per-row sorted view, totals and non-zero counts, so that several metrics
evaluated over the same sweep share a single sort per window.
:func:`compute_batch` dispatches to a vectorized kernel when one is
registered for the metric (see :mod:`repro.metrics.batch`) and falls back
to a per-row loop over ``metric.compute`` otherwise, so user-defined
metrics keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Protocol, runtime_checkable

import numpy as np

from repro.errors import MetricError


@runtime_checkable
class Metric(Protocol):
    """The interface the measurement engine expects."""

    name: str

    def compute(self, values: np.ndarray) -> float:
        """Reduce a per-entity credit distribution to a scalar."""
        ...  # pragma: no cover - protocol definition


@dataclass(frozen=True)
class FunctionMetric:
    """Adapts a plain function to the :class:`Metric` protocol."""

    name: str
    fn: Callable[[np.ndarray], float]

    def compute(self, values: np.ndarray) -> float:
        """Apply the wrapped function to the distribution."""
        return self.fn(values)


def validate_distribution(values: np.ndarray | list[float]) -> np.ndarray:
    """Validate and canonicalize a credit distribution.

    Requires a non-empty 1-D array of finite, non-negative values with a
    positive sum; zero entries are dropped (an entity with zero credits in
    the window is simply absent from it).
    """
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise MetricError(f"distribution must be 1-D, got shape {array.shape}")
    if array.size == 0:
        raise MetricError("distribution must not be empty")
    if not np.all(np.isfinite(array)):
        raise MetricError("distribution contains non-finite values")
    if np.any(array < 0):
        raise MetricError("distribution contains negative values")
    array = array[array > 0]
    if array.size == 0:
        raise MetricError("distribution sums to zero")
    return array


_REGISTRY: dict[str, Metric] = {}


def register_metric(metric: Metric, overwrite: bool = False) -> None:
    """Add ``metric`` to the global registry under ``metric.name``."""
    if not metric.name:
        raise MetricError("metric name must be non-empty")
    if metric.name in _REGISTRY and not overwrite:
        raise MetricError(f"metric {metric.name!r} is already registered")
    _REGISTRY[metric.name] = metric


def get_metric(name: str) -> Metric:
    """Look a metric up by name; raise :class:`MetricError` if unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise MetricError(f"unknown metric {name!r}; available: {known}") from None


def available_metrics() -> tuple[str, ...]:
    """Sorted names of all registered metrics."""
    return tuple(sorted(_REGISTRY))


# -- batch evaluation ------------------------------------------------------------


class DistributionBatch:
    """Many window distributions as one dense matrix with shared state.

    Row ``i`` is window ``i``'s per-entity credit totals; zero entries mean
    the entity is absent from that window (metrics ignore them, mirroring
    :func:`validate_distribution` dropping zeros).  The ascending sort, the
    row totals and the non-zero counts are computed once and cached, so
    every metric evaluated over the batch shares one sort per window.
    """

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise MetricError(f"batch matrix must be 2-D, got shape {matrix.shape}")
        if matrix.size and not np.all(np.isfinite(matrix)):
            raise MetricError("batch contains non-finite values")
        if matrix.size and np.any(matrix < 0):
            raise MetricError("batch contains negative values")
        self.matrix = matrix
        self._sorted: np.ndarray | None = None
        self._totals: np.ndarray | None = None
        self._counts: np.ndarray | None = None

    @classmethod
    def from_distributions(
        cls, distributions: Iterable[np.ndarray | list[float]]
    ) -> "DistributionBatch":
        """Stack ragged 1-D distributions into a zero-padded batch."""
        rows = [np.asarray(d, dtype=np.float64).ravel() for d in distributions]
        width = max((r.shape[0] for r in rows), default=0)
        matrix = np.zeros((len(rows), width), dtype=np.float64)
        for i, row in enumerate(rows):
            matrix[i, : row.shape[0]] = row
        return cls(matrix)

    @classmethod
    def from_dense(cls, matrix: np.ndarray) -> "DistributionBatch":
        """Build a batch from dense per-entity rows, compacting the zeros.

        Sliding-window histograms are dense over the whole entity space but
        each window touches only a fraction of it; packing the non-zero
        values left (preserving their entity order) shrinks every kernel's
        working set by the sparsity factor.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise MetricError(f"batch matrix must be 2-D, got shape {matrix.shape}")
        if matrix.size and np.any(matrix < 0):
            raise MetricError("batch contains negative values")
        mask = matrix > 0
        counts = mask.sum(axis=1)
        width = int(counts.max()) if counts.size else 0
        if width * 2 >= matrix.shape[1]:
            return cls(matrix)
        row_index, _ = np.nonzero(mask)
        values = matrix[mask]
        starts = np.concatenate(([0], np.cumsum(counts[:-1])))
        position = np.arange(values.size) - np.repeat(starts, counts)
        packed = np.zeros((matrix.shape[0], width), dtype=np.float64)
        packed[row_index, position] = values
        return cls(packed)

    @property
    def n_windows(self) -> int:
        """Number of rows (windows) in the batch."""
        return int(self.matrix.shape[0])

    def __len__(self) -> int:
        return self.n_windows

    @property
    def sorted_ascending(self) -> np.ndarray:
        """Rows sorted ascending (zeros first); computed once, then cached."""
        if self._sorted is None:
            self._sorted = np.sort(self.matrix, axis=1)
        return self._sorted

    @property
    def totals(self) -> np.ndarray:
        """Per-row sums."""
        if self._totals is None:
            self._totals = self.matrix.sum(axis=1)
        return self._totals

    @property
    def counts(self) -> np.ndarray:
        """Per-row count of non-zero (present) entities."""
        if self._counts is None:
            self._counts = np.count_nonzero(self.matrix, axis=1)
        return self._counts

    def row_values(self, i: int) -> np.ndarray:
        """Row ``i``'s non-zero values (a plain 1-D distribution)."""
        row = self.matrix[i]
        return row[row > 0]

    def validate(self) -> None:
        """Raise :class:`MetricError` if any row is an empty distribution."""
        if self.n_windows and not np.all(self.totals > 0):
            empty = int(np.flatnonzero(~(self.totals > 0))[0])
            raise MetricError(f"batch row {empty} sums to zero")


#: Vectorized kernels keyed by metric name.
_BATCH_KERNELS: dict[str, Callable[[DistributionBatch], np.ndarray]] = {}


def register_batch_kernel(
    name: str,
    kernel: Callable[[DistributionBatch], np.ndarray],
    overwrite: bool = False,
) -> None:
    """Register a vectorized ``kernel`` for the metric called ``name``.

    A kernel maps a :class:`DistributionBatch` to one value per row and
    must agree with the scalar metric's ``compute`` on every row.
    """
    if not name:
        raise MetricError("batch kernel name must be non-empty")
    if name in _BATCH_KERNELS and not overwrite:
        raise MetricError(f"batch kernel {name!r} is already registered")
    _BATCH_KERNELS[name] = kernel


def has_batch_kernel(name: str) -> bool:
    """True if a vectorized kernel is registered for ``name``."""
    return name in _BATCH_KERNELS


def compute_batch(
    metric: str | Metric,
    distributions: DistributionBatch | np.ndarray | Iterable[np.ndarray],
) -> np.ndarray:
    """Evaluate ``metric`` over many distributions at once.

    ``distributions`` may be a :class:`DistributionBatch`, a dense 2-D
    matrix (zeros = absent entities), or an iterable of ragged 1-D
    distributions.  Uses the metric's vectorized kernel when registered;
    otherwise falls back to looping ``metric.compute`` over the rows.
    Every row must be a valid (non-empty) distribution.
    """
    resolved = get_metric(metric) if isinstance(metric, str) else metric
    if isinstance(distributions, DistributionBatch):
        batch = distributions
    elif isinstance(distributions, np.ndarray) and distributions.ndim == 2:
        batch = DistributionBatch(distributions)
    else:
        batch = DistributionBatch.from_distributions(distributions)
    if batch.n_windows == 0:
        return np.zeros(0, dtype=np.float64)
    batch.validate()
    kernel = _BATCH_KERNELS.get(resolved.name)
    if kernel is not None:
        return np.asarray(kernel(batch), dtype=np.float64)
    return np.asarray(
        [float(resolved.compute(batch.row_values(i))) for i in range(batch.n_windows)],
        dtype=np.float64,
    )
