"""Degraded-mode behaviour under concurrent load (satellite d).

The acceptance test: parallel requests fired across a monitor
crash -> restart window must each resolve to one of the allowed
outcomes — 200 fresh, 200 stale-marked, 429 rate-limited, or 503 with
``Retry-After`` — never a connection reset or an unhandled 5xx.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.serve import OverloadConfig, run_monitor


@pytest.fixture(autouse=True)
def clean_global_registry():
    """run_monitor writes to the process-wide registry; keep tests isolated."""
    obs.get_tracer().metrics.reset()
    yield
    obs.get_tracer().metrics.reset()


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def http_probe(port: int, path: str, client_id: str):
    """GET -> (status, headers) or ('error', reason) — never raises."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        headers={"X-Client-Id": client_id},
    )
    try:
        with urllib.request.urlopen(request, timeout=5.0) as response:
            response.read()
            return response.status, response.headers
    except urllib.error.HTTPError as err:
        err.read()
        return err.code, err.headers
    except (urllib.error.URLError, OSError, TimeoutError) as exc:
        return "error", repr(exc)


class TestDegradedConcurrentResponses:
    def test_every_response_is_an_allowed_outcome_across_crash_restart(
        self, tmp_path
    ):
        """Fire parallel /status requests while the monitor crashes on a
        poison block and restarts; classify every single response."""
        gate = threading.Event()
        stop = threading.Event()
        port_file = tmp_path / "port"
        results = []

        def poisoned_feed():
            for i in range(30):
                yield [f"pool-{i % 3}"]
            yield []  # poison: push() raises, the supervisor restarts
            assert gate.wait(timeout=30.0)
            for i in range(40):
                yield [f"pool-{i % 3}"]

        def run():
            results.append(
                run_monitor(
                    poisoned_feed(),
                    window_size=10,
                    stride=5,
                    chain="degraded",
                    serve_port=0,
                    linger=-1.0,
                    port_file=str(port_file),
                    stop_event=stop,
                    max_restarts=2,
                    restart_backoff=0.05,
                    overload=OverloadConfig(
                        max_inflight=2,
                        max_queue=1,
                        queue_timeout=0.05,
                        rate_limit=200.0,
                        burst=50,
                        cache_ttl=0.05,
                    ),
                    print_fn=lambda _line: None,
                )
            )

        monitor_thread = threading.Thread(target=run)
        monitor_thread.start()
        outcomes: list[str] = []
        bad: list[str] = []
        lock = threading.Lock()
        hammer_stop = threading.Event()

        def classify(status, headers) -> str:
            if status == 200:
                if headers.get("X-Repro-Degraded") == "stale":
                    return "200-stale"
                return "200-fresh"
            if status == 429:
                if headers.get("RateLimit-Limit") is None:
                    return f"429 without RateLimit headers"
                return "429"
            if status == 503:
                if headers.get("Retry-After") is None:
                    return "503 without Retry-After"
                return "503"
            return f"unexpected {status}: {headers}"

        def hammer(index: int) -> None:
            while not hammer_stop.is_set():
                status, headers = http_probe(port, "/status", f"client-{index}")
                verdict = (
                    f"connection error: {headers}"
                    if status == "error"
                    else classify(status, headers)
                )
                with lock:
                    if verdict in ("200-fresh", "200-stale", "429", "503"):
                        outcomes.append(verdict)
                    else:
                        bad.append(verdict)

        hammers = []
        try:
            assert wait_until(port_file.exists), "port file never appeared"
            port = int(port_file.read_text().strip())
            # Start hammering before the crash is visible, ride through it.
            for i in range(6):
                t = threading.Thread(target=hammer, args=(i,), daemon=True)
                t.start()
                hammers.append(t)
            assert wait_until(
                lambda: http_probe(port, "/readyz", "probe")[0] == 503
            ), "the poison block never degraded readiness"
            # Keep hammering through the degraded window...
            time.sleep(0.3)
            gate.set()  # ...and across the restart back to healthy.
            assert wait_until(
                lambda: http_probe(port, "/readyz", "probe")[0] == 200
            ), "the restarted monitor never recovered"
            time.sleep(0.2)
        finally:
            hammer_stop.set()
            for t in hammers:
                t.join(timeout=10.0)
            gate.set()
            stop.set()
            monitor_thread.join(timeout=30.0)
        assert not monitor_thread.is_alive()
        assert bad == [], f"disallowed responses: {bad[:10]}"
        assert outcomes, "the hammer never completed a request"
        # The crash window must actually have produced degraded service:
        # at least one stale-marked answer proves shedding engaged.
        counts = {kind: outcomes.count(kind) for kind in set(outcomes)}
        assert counts.get("200-stale", 0) >= 1, counts
        (result,) = results
        assert result.restarts == 1
        assert result.blocks == 70

    def test_degraded_status_serves_stale_snapshot_bytes(self, tmp_path):
        """While the monitor is degraded, /status answers with the last
        fresh snapshot byte-identical, marked X-Repro-Degraded."""
        pre_gate = threading.Event()  # holds the feed healthy pre-crash
        gate = threading.Event()
        stop = threading.Event()
        port_file = tmp_path / "port"

        def poisoned_feed():
            for i in range(20):
                yield [f"pool-{i % 3}"]
            assert pre_gate.wait(timeout=30.0)
            yield []  # poison
            assert gate.wait(timeout=30.0)

        def run():
            run_monitor(
                poisoned_feed(),
                window_size=10,
                stride=5,
                chain="stale-bytes",
                serve_port=0,
                linger=-1.0,
                port_file=str(port_file),
                stop_event=stop,
                max_restarts=2,
                restart_backoff=5.0,  # stay visibly degraded
                overload=OverloadConfig(cache_ttl=3600.0),
                print_fn=lambda _line: None,
            )

        thread = threading.Thread(target=run)
        thread.start()
        try:
            assert wait_until(port_file.exists), "port file never appeared"
            port = int(port_file.read_text().strip())
            assert wait_until(
                lambda: json.loads(
                    urllib.request.urlopen(
                        f"http://127.0.0.1:{port}/status", timeout=5.0
                    ).read()
                )["blocks_ingested"] == 20
            )
            # Cache the healthy snapshot, then crash the ingest loop.
            status, headers = http_probe(port, "/status", "reader")
            assert status == 200 and headers.get("X-Repro-Degraded") is None
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/status", timeout=5.0
            ) as response:
                fresh_body = response.read()
            pre_gate.set()  # release the poison block: the loop crashes
            assert wait_until(
                lambda: http_probe(port, "/readyz", "probe")[0] == 503
            )
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/status",
                headers={"X-Client-Id": "reader"},
            )
            with urllib.request.urlopen(request, timeout=5.0) as response:
                stale_headers = response.headers
                stale_body = response.read()
            assert stale_headers.get("X-Repro-Degraded") == "stale"
            assert stale_body == fresh_body  # byte-identical snapshot
        finally:
            pre_gate.set()
            gate.set()
            stop.set()
            thread.join(timeout=30.0)
        assert not thread.is_alive()
