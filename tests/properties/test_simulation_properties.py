"""Property-based tests for simulator invariants (small chains)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.pools import PoolInfo, PoolRegistry
from repro.chain.specs import ChainSpec
from repro.simulation.miners import TailConfig
from repro.simulation.params import SimulationParams
from repro.simulation.powsim import ChainSimulator
from repro.util.timeutils import YEAR_2019_END, YEAR_2019_START


def make_chain(seed: int, block_count: int, singleton_rate: float):
    spec = ChainSpec(
        name="propchain",
        start_height=1,
        block_count=block_count,
        target_interval=86_400.0 * 365 / block_count,
        blocks_per_day=max(block_count // 365, 1),
        window_day=10,
        window_week=70,
        window_month=300,
    )
    registry = PoolRegistry(
        [
            PoolInfo("A", "a", 0.5, 0.4),
            PoolInfo("B", "b", 0.3, 0.4),
        ]
    )
    params = SimulationParams(
        spec=spec,
        registry=registry,
        tail=TailConfig(1, 0.02, singleton_rate, singleton_rate, early_period_end=0),
        seed=seed,
    )
    return ChainSimulator(params).run()


@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=365, max_value=4_000),
    st.floats(min_value=0.0, max_value=2.0),
)
@settings(max_examples=15, deadline=None)
def test_simulator_invariants(seed, block_count, singleton_rate):
    chain = make_chain(seed, block_count, singleton_rate)
    # Exact size, consecutive heights.
    assert chain.n_blocks == block_count
    assert np.all(np.diff(chain.heights) == 1)
    # Timestamps sorted and inside 2019.
    assert np.all(np.diff(chain.timestamps) >= 0)
    assert chain.timestamps[0] >= YEAR_2019_START
    assert chain.timestamps[-1] < YEAR_2019_END
    # CSR structure consistent.
    assert chain.offsets[0] == 0
    assert chain.offsets[-1] == chain.n_credits
    assert np.all(np.diff(chain.offsets) >= 1)
    # All producer references valid.
    assert chain.producer_ids.min() >= 0
    assert chain.producer_ids.max() < chain.n_producers


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_same_seed_reproduces_exactly(seed):
    a = make_chain(seed, 730, 0.5)
    b = make_chain(seed, 730, 0.5)
    assert np.array_equal(a.producer_ids, b.producer_ids)
    assert np.array_equal(a.timestamps, b.timestamps)
    assert a.producer_names == b.producer_names


@given(st.integers(min_value=0, max_value=1_000))
@settings(max_examples=10, deadline=None)
def test_singletons_appear_exactly_once(seed):
    chain = make_chain(seed, 1_460, 1.5)
    counts = np.bincount(chain.producer_ids, minlength=chain.n_producers)
    for pid, name in enumerate(chain.producer_names):
        if "1time" in name:
            assert counts[pid] == 1
