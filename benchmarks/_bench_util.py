"""Reporting helpers shared by the figure benchmarks."""

from __future__ import annotations

from repro.core.series import MeasurementSeries
from repro.core.summary import summarize


def report_series(title: str, series_map: dict[str, MeasurementSeries]) -> None:
    """Print the per-series rows the paper quotes for a figure."""
    print(f"\n=== {title} ===")
    for label, series in series_map.items():
        summary = summarize(series)
        print(
            f"  {label:<10s} n={summary.n_windows:<5d} mean={summary.mean:8.4f} "
            f"std={summary.std:7.4f} min={summary.minimum:8.4f} "
            f"max={summary.maximum:8.4f}"
        )


def report_notes(notes: dict[str, float]) -> None:
    """Print a figure's named scalar statistics."""
    for key, value in sorted(notes.items()):
        print(f"  note {key} = {value:.4f}")
