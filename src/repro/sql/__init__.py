"""A mini SQL engine over :mod:`repro.table` tables.

This is the in-repo stand-in for Google BigQuery, which the paper used to
collect block data.  It executes a useful subset of SQL — ``SELECT`` with
expressions, ``WHERE``, ``JOIN ... ON``, ``GROUP BY``/``HAVING``,
``ORDER BY``, ``LIMIT``/``OFFSET``, ``DISTINCT`` and the standard
aggregates — against an in-memory catalog of tables.

Example
-------
>>> from repro.sql import query
>>> from repro.table import Table
>>> blocks = Table({"miner": ["a", "b", "a"], "height": [1, 2, 3]})
>>> query(
...     "SELECT miner, COUNT(*) AS n FROM blocks GROUP BY miner ORDER BY n DESC",
...     blocks=blocks,
... ).to_rows()
[{'miner': 'a', 'n': 2}, {'miner': 'b', 'n': 1}]
"""

from repro.sql.analyze import ExecutionTrace, PlanNode, format_plan
from repro.sql.cost import PlannerOptions
from repro.sql.executor import QueryEngine, query
from repro.sql.lexer import tokenize
from repro.sql.parser import parse
from repro.sql.planner import PhysicalPlan, optimize

__all__ = [
    "ExecutionTrace",
    "PhysicalPlan",
    "PlanNode",
    "PlannerOptions",
    "QueryEngine",
    "format_plan",
    "optimize",
    "parse",
    "query",
    "tokenize",
]
