"""Tests for array and grouped aggregates."""

import numpy as np
import pytest

from repro.errors import TableError
from repro.table.aggregates import aggregate_array, grouped_aggregate


class TestAggregateArray:
    def test_count(self):
        assert aggregate_array(np.asarray([1, 2, 3]), "count") == 3

    def test_count_empty(self):
        assert aggregate_array(np.asarray([]), "count") == 0

    def test_count_distinct_numeric(self):
        assert aggregate_array(np.asarray([1, 1, 2]), "count_distinct") == 2

    def test_count_distinct_strings(self):
        values = np.asarray(["a", "a", "b"], dtype=object)
        assert aggregate_array(values, "count_distinct") == 2

    def test_sum_returns_python_scalar(self):
        out = aggregate_array(np.asarray([1, 2]), "sum")
        assert out == 3
        assert not isinstance(out, np.generic)

    def test_mean_avg_alias(self):
        values = np.asarray([1.0, 3.0])
        assert aggregate_array(values, "mean") == 2.0
        assert aggregate_array(values, "avg") == 2.0

    def test_min_max(self):
        values = np.asarray([5, 1, 9])
        assert aggregate_array(values, "min") == 1
        assert aggregate_array(values, "max") == 9

    def test_std_var(self):
        values = np.asarray([1.0, 3.0])
        assert aggregate_array(values, "var") == pytest.approx(1.0)
        assert aggregate_array(values, "std") == pytest.approx(1.0)

    def test_median(self):
        assert aggregate_array(np.asarray([1, 2, 100]), "median") == 2.0

    def test_first_last(self):
        values = np.asarray([7, 8, 9])
        assert aggregate_array(values, "first") == 7
        assert aggregate_array(values, "last") == 9

    def test_empty_non_count_is_none(self):
        assert aggregate_array(np.asarray([]), "sum") is None

    def test_string_min(self):
        values = np.asarray(["b", "a"], dtype=object)
        assert aggregate_array(values, "min") == "a"

    def test_string_sum_raises(self):
        with pytest.raises(TableError):
            aggregate_array(np.asarray(["a"], dtype=object), "sum")

    def test_unknown_function_raises(self):
        with pytest.raises(TableError):
            aggregate_array(np.asarray([1]), "mode")


class TestGroupedAggregate:
    @pytest.fixture
    def data(self):
        values = np.asarray([1.0, 2.0, 3.0, 4.0, 5.0])
        ids = np.asarray([0, 0, 1, 1, 1])
        return values, ids

    def test_count(self, data):
        values, ids = data
        assert grouped_aggregate(values, ids, 2, "count").tolist() == [2, 3]

    def test_sum(self, data):
        values, ids = data
        assert grouped_aggregate(values, ids, 2, "sum").tolist() == [3.0, 12.0]

    def test_int_sum_stays_int(self):
        values = np.asarray([1, 2, 3])
        ids = np.asarray([0, 0, 1])
        out = grouped_aggregate(values, ids, 2, "sum")
        assert out.dtype == np.int64

    def test_mean(self, data):
        values, ids = data
        assert grouped_aggregate(values, ids, 2, "mean").tolist() == [1.5, 4.0]

    def test_std_matches_numpy(self, data):
        values, ids = data
        out = grouped_aggregate(values, ids, 2, "std")
        assert out[1] == pytest.approx(np.std([3.0, 4.0, 5.0]))

    def test_min_max_first_last(self, data):
        values, ids = data
        assert grouped_aggregate(values, ids, 2, "min").tolist() == [1.0, 3.0]
        assert grouped_aggregate(values, ids, 2, "max").tolist() == [2.0, 5.0]
        assert grouped_aggregate(values, ids, 2, "first").tolist() == [1.0, 3.0]
        assert grouped_aggregate(values, ids, 2, "last").tolist() == [2.0, 5.0]

    def test_median(self, data):
        values, ids = data
        assert grouped_aggregate(values, ids, 2, "median").tolist() == [1.5, 4.0]

    def test_count_distinct(self):
        values = np.asarray([1, 1, 2, 2, 2])
        ids = np.asarray([0, 0, 0, 1, 1])
        assert grouped_aggregate(values, ids, 2, "count_distinct").tolist() == [2, 1]

    def test_count_distinct_strings(self):
        values = np.asarray(["x", "y", "y"], dtype=object)
        ids = np.asarray([0, 0, 1])
        assert grouped_aggregate(values, ids, 2, "count_distinct").tolist() == [2, 1]

    def test_empty_group_mean_is_nan(self):
        values = np.asarray([1.0])
        ids = np.asarray([1])  # group 0 never appears
        out = grouped_aggregate(values, ids, 2, "mean")
        assert np.isnan(out[0])
        assert out[1] == 1.0

    def test_empty_group_min_is_nan(self):
        values = np.asarray([5])
        ids = np.asarray([1])
        out = grouped_aggregate(values, ids, 2, "min")
        assert np.isnan(out[0])
        assert out[1] == 5

    def test_length_mismatch_raises(self):
        with pytest.raises(TableError):
            grouped_aggregate(np.asarray([1.0]), np.asarray([0, 0]), 1, "sum")

    def test_string_first(self):
        values = np.asarray(["a", "b", "c"], dtype=object)
        ids = np.asarray([0, 1, 1])
        assert grouped_aggregate(values, ids, 2, "first").tolist() == ["a", "b"]

    def test_string_median_raises(self):
        values = np.asarray(["a"], dtype=object)
        with pytest.raises(TableError):
            grouped_aggregate(values, np.asarray([0]), 1, "median")
