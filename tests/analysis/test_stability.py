"""Tests for the stability report."""

import pytest

from repro.analysis.stability import stability_report


@pytest.fixture(scope="module")
def report(btc_engine, eth_engine):
    return stability_report(btc_engine, eth_engine)


class TestStabilityReport:
    def test_three_metrics(self, report):
        assert len(report.comparisons) == 3
        assert [c.metric_name for c in report.comparisons] == [
            "gini",
            "entropy",
            "nakamoto",
        ]

    def test_ethereum_wins_overall(self, report):
        assert report.overall_winner == "ethereum"

    def test_winner_for_metric(self, report):
        assert report.winner_for("gini") == "ethereum"
        with pytest.raises(KeyError):
            report.winner_for("hhi")

    def test_custom_metric_set(self, btc_engine, eth_engine):
        report = stability_report(btc_engine, eth_engine, metrics=("hhi",))
        assert len(report.comparisons) == 1
        assert report.comparisons[0].metric_name == "hhi"
