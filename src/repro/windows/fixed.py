"""Fixed (non-overlapping) window generators.

:class:`FixedCalendarWindows` produces the paper's §II windows — calendar
days (365), weeks (52, the last covering 8 days) and months (12) of 2019.
:class:`FixedBlockWindows` produces non-overlapping count windows, the
``M = N`` degenerate case of sliding windows, used by the ablation benches.
"""

from __future__ import annotations

from repro.errors import WindowError
from repro.util.timeutils import (
    DAYS_IN_2019,
    SECONDS_PER_DAY,
    YEAR_2019_END,
    day_start,
    iso_date,
    month_bounds,
)
from repro.windows.base import BlockWindow, TimeWindow

GRANULARITIES = ("day", "week", "month")


class FixedCalendarWindows:
    """Calendar windows over 2019 at ``day``, ``week`` or ``month`` granularity."""

    def __init__(self, granularity: str) -> None:
        if granularity not in GRANULARITIES:
            raise WindowError(
                f"granularity must be one of {GRANULARITIES}, got {granularity!r}"
            )
        self.granularity = granularity

    def generate(self) -> list[TimeWindow]:
        """All windows of the year, in chronological order."""
        if self.granularity == "day":
            return [
                TimeWindow(
                    index=day,
                    label=iso_date(day),
                    start_ts=day_start(day),
                    end_ts=day_start(day) + SECONDS_PER_DAY,
                )
                for day in range(DAYS_IN_2019)
            ]
        if self.granularity == "week":
            windows = []
            for week in range(52):
                first_day = week * 7
                # The final week absorbs the year's 365th day (paper-style
                # 7-day blocks leave a single trailing day).
                last_day_exclusive = first_day + 7 if week < 51 else DAYS_IN_2019
                windows.append(
                    TimeWindow(
                        index=week,
                        label=f"2019-W{week + 1:02d}",
                        start_ts=day_start(first_day),
                        end_ts=(
                            day_start(last_day_exclusive)
                            if last_day_exclusive < DAYS_IN_2019
                            else YEAR_2019_END
                        ),
                    )
                )
            return windows
        windows = []
        for month in range(12):
            start_ts, end_ts = month_bounds(month)
            windows.append(
                TimeWindow(
                    index=month,
                    label=f"2019-{month + 1:02d}",
                    start_ts=start_ts,
                    end_ts=end_ts,
                )
            )
        return windows

    def __repr__(self) -> str:
        return f"FixedCalendarWindows({self.granularity!r})"


class FixedBlockWindows:
    """Non-overlapping count windows of ``size`` blocks.

    The trailing partial window (fewer than ``size`` blocks) is dropped,
    mirroring the sliding-window generator.
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise WindowError(f"window size must be positive, got {size}")
        self.size = size

    def generate(self, n_blocks: int) -> list[BlockWindow]:
        """Windows over a chain of ``n_blocks`` blocks."""
        if n_blocks < 0:
            raise WindowError(f"n_blocks must be >= 0, got {n_blocks}")
        count = n_blocks // self.size
        return [
            BlockWindow(
                index=i,
                label=f"blocks[{i * self.size}:{(i + 1) * self.size}]",
                start_block=i * self.size,
                stop_block=(i + 1) * self.size,
            )
            for i in range(count)
        ]

    def __repr__(self) -> str:
        return f"FixedBlockWindows(size={self.size})"
