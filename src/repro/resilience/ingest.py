"""Paged chain fetching with retries, fault injection and repair.

:func:`fetch_chain` models the paper's BigQuery extract as it really
happens in production: the year's blocks arrive page by page over an
unreliable transport.  Each page read goes through
:func:`~repro.resilience.retry.retry_call` (transient errors and
timeouts are retried with backoff), transport mangling is applied by the
optional :class:`~repro.resilience.faults.FaultInjector`, and the
assembled rows are passed through
:func:`~repro.resilience.integrity.repair_blocks` before the chain is
rebuilt.

The acceptance invariant of the whole resilience layer lives here: with
retries enabled and the ``refetch`` repair policy, a faulted fetch
returns a chain *array-identical* to the clean fetch, so every metric
series computed from it is byte-identical (asserted by ``repro chaos``
and ``tests/properties/test_fault_tolerance.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro import obs
from repro.chain.chain import Chain
from repro.resilience.faults import FaultInjector
from repro.resilience.integrity import (
    DataQualityReport,
    RawBlock,
    chain_from_raw_blocks,
    raw_blocks,
    repair_blocks,
)
from repro.resilience.retry import CircuitBreaker, Clock, RetryPolicy, retry_call

#: Page size mirroring a BigQuery result page, small enough that a small
#: simulated extract still spans many pages.
DEFAULT_PAGE_SIZE = 512


@dataclass(frozen=True)
class FetchResult:
    """A fetched (possibly repaired) chain plus its data-quality report."""

    chain: Chain
    report: DataQualityReport
    pages: int

    @property
    def clean(self) -> bool:
        """True when the transport delivered every page intact."""
        return self.report.clean


def iter_pages(
    chain: Chain, page_size: int = DEFAULT_PAGE_SIZE
) -> Iterator[list[RawBlock]]:
    """The source of truth as a paged read: raw rows, ``page_size`` at a time."""
    for start in range(0, chain.n_blocks, page_size):
        yield raw_blocks(chain, start, start + page_size)


def fetch_chain(
    source: Chain,
    *,
    page_size: int = DEFAULT_PAGE_SIZE,
    injector: FaultInjector | None = None,
    retry_policy: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
    clock: Clock | None = None,
    repair_policy: str = "refetch",
    seed: int = 0,
) -> FetchResult:
    """Fetch ``source`` page by page, surviving injected transport faults.

    Without an injector this is the clean ingest (still exercising the
    same page/assembly path, so clean and faulted runs are comparable).
    ``seed`` feeds the retry layer's jitter stream only; the injector
    carries its own seed.
    """
    expected = range(
        int(source.heights[0]), int(source.heights[-1]) + 1
    ) if source.n_blocks else range(0)

    def read_page(start: int) -> list[RawBlock]:
        if injector is not None:
            injector.on_read(f"page[{start}:{start + page_size}]")
        return raw_blocks(source, start, start + page_size)

    def refetch(height: int) -> RawBlock:
        position = int(height - expected.start)

        def read_one() -> RawBlock:
            if injector is not None:
                injector.on_read(f"block[{height}]")
            return raw_blocks(source, position, position + 1)[0]

        return retry_call(
            read_one,
            policy=retry_policy,
            breaker=breaker,
            clock=clock,
            seed=seed,
            name=f"refetch:{height}",
        )

    rows: list[RawBlock] = []
    n_pages = 0
    with obs.span(
        "resilience.fetch_chain",
        chain=source.spec.name,
        n_blocks=source.n_blocks,
        faulted=injector is not None,
    ):
        for page_index, start in enumerate(range(0, source.n_blocks, page_size)):
            page = retry_call(
                lambda start=start: read_page(start),
                policy=retry_policy,
                breaker=breaker,
                clock=clock,
                seed=seed,
                name=f"page:{start}",
            )
            if injector is not None:
                page = injector.mangle_page(page, page_index=page_index)
            rows.extend(page)
            n_pages += 1

        repaired, report = repair_blocks(
            rows,
            expected,
            policy=repair_policy,
            refetch=refetch if repair_policy == "refetch" else None,
        )
        chain = chain_from_raw_blocks(
            source.spec, repaired, validate=repair_policy != "drop"
        )
    return FetchResult(chain=chain, report=report, pages=n_pages)


def chains_equal(a: Chain, b: Chain) -> bool:
    """Array-level equality of two chains (the chaos invariant)."""
    return (
        a.n_blocks == b.n_blocks
        and np.array_equal(a.heights, b.heights)
        and np.array_equal(a.timestamps, b.timestamps)
        and np.array_equal(a.offsets, b.offsets)
        and np.array_equal(a.producer_ids, b.producer_ids)
        and list(a.producer_names) == list(b.producer_names)
    )
