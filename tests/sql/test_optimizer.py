"""Tests for the cost-based optimizer: planner decisions and edge cases."""

import numpy as np
import pytest

from repro.errors import SqlPlanError
from repro.sql import PlannerOptions, QueryEngine, format_plan
from repro.sql.cost import (
    choose_join_strategy,
    cost_hash_join,
    cost_index_join,
    cost_sort_merge_join,
)
from repro.sql.parser import parse
from repro.sql.planner import plan
from repro.table import Table


def blocks_table(n: int = 100) -> Table:
    return Table(
        {
            "height": list(range(n)),
            "producer": [f"p{i % 7}" for i in range(n)],
            "reward": [float(i % 13) for i in range(n)],
        }
    )


@pytest.fixture
def engine() -> QueryEngine:
    eng = QueryEngine({"blocks": blocks_table(), "pools": Table(
        {"producer": [f"p{i}" for i in range(7)], "region": ["r"] * 7}
    )})
    return eng


def physical_for(eng: QueryEngine, sql: str):
    physical = eng._optimize(plan(parse(sql)))
    assert physical is not None
    return physical


class TestAnalyzeStatement:
    def test_analyze_collects_and_reports(self, engine):
        summary = engine.execute("ANALYZE blocks")
        assert engine.stats_state("blocks") == "fresh"
        assert engine.stats_state("pools") == "absent"
        rows = summary.to_rows()
        assert {r["column"] for r in rows} == {"height", "producer", "reward"}
        height = next(r for r in rows if r["column"] == "height")
        assert height["rows"] == 100
        assert height["distinct"] == 100

    def test_analyze_all(self, engine):
        summary = engine.execute("ANALYZE")
        assert {r["table"] for r in summary.to_rows()} == {"blocks", "pools"}
        assert engine.stats_state("pools") == "fresh"

    def test_analyze_unknown_table(self, engine):
        with pytest.raises(SqlPlanError, match="unknown table"):
            engine.execute("ANALYZE nope")

    def test_stale_after_register(self, engine):
        engine.execute("ANALYZE blocks")
        engine.register("blocks", blocks_table(200))
        assert engine.stats_state("blocks") == "stale"
        # Stale statistics still plan (ratios against the new row count).
        physical = physical_for(engine, "SELECT * FROM blocks WHERE height < 10")
        assert physical.scans["blocks"].stats_state == "stale"
        assert physical.scans["blocks"].base_rows == 200


class TestScanPlanning:
    def test_absent_stats_use_heuristics(self, engine):
        physical = physical_for(
            engine, "SELECT producer FROM blocks WHERE producer = 'p1'"
        )
        scan = physical.scans["blocks"]
        assert scan.stats_state == "absent"
        # Default equality selectivity is 0.1.
        assert scan.est_rows == 10

    def test_fresh_stats_improve_estimate(self, engine):
        engine.execute("ANALYZE blocks")
        physical = physical_for(
            engine, "SELECT producer FROM blocks WHERE producer = 'p1'"
        )
        # p1 appears in ceil(100/7) rows; the MCV estimate is exact.
        assert physical.scans["blocks"].est_rows == 15

    def test_selective_equality_uses_index(self, engine):
        engine.execute("ANALYZE blocks")
        engine.create_index("blocks", "height", "sorted")
        physical = physical_for(engine, "SELECT * FROM blocks WHERE height = 42")
        scan = physical.scans["blocks"]
        assert scan.access == "index-eq"
        assert scan.index_column == "height"
        assert scan.pushed == ()

    def test_unselective_predicate_keeps_full_scan(self, engine):
        engine.execute("ANALYZE blocks")
        engine.create_index("blocks", "height", "sorted")
        physical = physical_for(engine, "SELECT * FROM blocks WHERE height >= 1")
        assert physical.scans["blocks"].access == "seq"

    def test_range_needs_sorted_index(self, engine):
        engine.execute("ANALYZE blocks")
        engine.create_index("blocks", "height", "hash")
        physical = physical_for(engine, "SELECT * FROM blocks WHERE height < 3")
        assert physical.scans["blocks"].access == "seq"
        physical = physical_for(engine, "SELECT * FROM blocks WHERE height = 3")
        assert physical.scans["blocks"].access == "index-eq"

    def test_index_scan_toggle(self, engine):
        eng = QueryEngine(
            {"blocks": blocks_table()},
            options=PlannerOptions.with_disabled(["index-scan"]),
        )
        eng.execute("ANALYZE blocks")
        eng.create_index("blocks", "height", "sorted")
        physical = physical_for(eng, "SELECT * FROM blocks WHERE height = 42")
        assert physical.scans["blocks"].access == "seq"

    def test_all_duplicate_index_column_not_selective(self, engine):
        table = Table({"x": [7] * 100, "y": list(range(100))})
        eng = QueryEngine({"t": table})
        eng.execute("ANALYZE t")
        eng.create_index("t", "x", "sorted")
        # x = 7 matches everything; the index cannot beat a full scan.
        physical = physical_for(eng, "SELECT y FROM t WHERE x = 7")
        assert physical.scans["t"].access == "seq"
        # ... but a miss value is perfectly selective.
        physical = physical_for(eng, "SELECT y FROM t WHERE x = 8")
        assert physical.scans["t"].access == "index-eq"
        assert eng.execute("SELECT y FROM t WHERE x = 8").num_rows == 0

    def test_empty_table(self, engine):
        eng = QueryEngine({"empty": Table({"x": [], "name": []})})
        eng.execute("ANALYZE empty")
        physical = physical_for(eng, "SELECT * FROM empty WHERE x = 1")
        assert physical.scans["empty"].base_rows == 0
        assert physical.estimates["final"] == 0
        assert eng.execute("SELECT * FROM empty WHERE x = 1").num_rows == 0

    def test_projection_pushdown_prunes_columns(self, engine):
        physical = physical_for(engine, "SELECT height FROM blocks WHERE height > 1000")
        assert physical.scans["blocks"].columns == ("height",)

    def test_projection_pushdown_disabled_for_star(self, engine):
        physical = physical_for(engine, "SELECT * FROM blocks WHERE height > 1000")
        assert physical.scans["blocks"].columns is None

    def test_no_pushdown_into_left_join_right_side(self, engine):
        physical = physical_for(
            engine,
            "SELECT b.height FROM blocks b LEFT JOIN pools p "
            "ON b.producer = p.producer WHERE p.region = 'r'",
        )
        assert physical.scans["p"].pushed == ()
        assert physical.residual_where is not None


class TestJoinStrategies:
    def test_forcing_each_strategy(self, engine):
        sql = (
            "SELECT b.height FROM blocks b JOIN pools p ON b.producer = p.producer"
        )
        engine.create_index("pools", "producer", "hash")
        for disabled, expected in [
            (["sort-merge-join", "index-join"], "hash"),
            (["hash-join", "index-join"], "sort_merge"),
            (["hash-join", "sort-merge-join"], "index"),
        ]:
            eng = QueryEngine(
                {"blocks": blocks_table(), "pools": Table(
                    {"producer": [f"p{i}" for i in range(7)], "region": ["r"] * 7}
                )},
                options=PlannerOptions.with_disabled(disabled),
            )
            eng.create_index("pools", "producer", "hash")
            physical = physical_for(eng, sql)
            (join_plan,) = physical.joins.values()
            assert join_plan.strategy == expected, disabled
            # Results are identical no matter the strategy.
            assert (
                eng.execute(sql).to_rows()
                == engine.execute(sql).to_rows()
            )

    def test_all_strategies_disabled_falls_back_to_hash(self):
        options = PlannerOptions.with_disabled(
            ["hash-join", "sort-merge-join", "index-join"]
        )
        strategy, _ = choose_join_strategy(options, 100, 100, "hash")
        assert strategy == "hash"

    def test_index_join_requires_clean_right_scan(self, engine):
        engine.create_index("pools", "producer", "hash")
        engine.execute("ANALYZE")
        # A pushed filter on the right side invalidates index row positions.
        physical = physical_for(
            engine,
            "SELECT b.height FROM blocks b JOIN pools p "
            "ON b.producer = p.producer WHERE p.region = 'nope'",
        )
        (join_plan,) = physical.joins.values()
        assert join_plan.strategy != "index"

    def test_cost_model_orderings(self):
        # Small probe side vs huge indexed side: index nested-loop wins.
        assert cost_index_join(10, 1_000_000, "hash") < cost_hash_join(10, 1_000_000)
        # Similar sides: hash beats sort-merge.
        assert cost_hash_join(1000, 1000) < cost_sort_merge_join(1000, 1000)

    def test_unknown_toggle_rejected(self):
        with pytest.raises(ValueError, match="unknown planner toggle"):
            PlannerOptions.with_disabled(["warp-drive"])


class TestExplainEstimates:
    def test_explain_shows_estimates_per_node(self, engine):
        engine.execute("ANALYZE")
        text = engine.explain(
            "SELECT producer, COUNT(*) AS n FROM blocks "
            "WHERE height < 50 GROUP BY producer ORDER BY n DESC LIMIT 3"
        )
        assert "-- physical plan (estimated rows) --" in text
        for op in ("Scan", "Filter", "Aggregate", "Sort", "Limit"):
            line = next(l for l in text.splitlines() if op in l)
            assert "est=" in line, line
        # Legacy summary is still present.
        for fragment in ("FROM", "WHERE", "AGGREGATE", "ORDER BY", "LIMIT"):
            assert fragment in text

    def test_explain_analyze_estimated_vs_actual(self, engine):
        engine.execute("ANALYZE")
        _, root = engine.explain_analyze(
            "SELECT producer FROM blocks WHERE height < 50"
        )
        text = format_plan(root)
        filter_line = next(l for l in text.splitlines() if "Filter" in l)
        assert "est=" in filter_line
        assert "out=50" in filter_line

    def test_join_strategy_in_plan(self, engine):
        text = engine.explain(
            "SELECT b.height FROM blocks b JOIN pools p ON b.producer = p.producer"
        )
        assert "strategy=" in text
        assert "cost=" in text

    def test_optimizer_disabled_engine(self):
        eng = QueryEngine({"blocks": blocks_table()}, optimizer=False)
        text = eng.explain("SELECT * FROM blocks WHERE height = 1")
        assert "physical plan" not in text
        assert eng.execute("SELECT * FROM blocks WHERE height = 1").num_rows == 1

    def test_explain_analyze_statement(self, engine):
        text = engine.explain("ANALYZE blocks")
        assert text.startswith("ANALYZE blocks")


class TestIndexMaintenance:
    def test_register_rebuilds_indexes(self, engine):
        engine.create_index("blocks", "height", "sorted")
        engine.register("blocks", blocks_table(10))
        physical = physical_for(engine, "SELECT * FROM blocks WHERE height = 3")
        assert physical.scans["blocks"].access == "index-eq"
        assert engine.execute("SELECT * FROM blocks WHERE height = 3").num_rows == 1

    def test_register_drops_vanished_column_spec(self, engine, caplog):
        engine.create_index("blocks", "reward", "sorted")
        with caplog.at_level("WARNING"):
            engine.register("blocks", Table({"height": [1], "producer": ["a"]}))
        assert engine.index_specs("blocks") == {}
        assert engine.execute("SELECT * FROM blocks").num_rows == 1

    def test_unknown_index_column(self, engine):
        with pytest.raises(Exception):
            engine.create_index("blocks", "nope")

    def test_unknown_index_table(self, engine):
        with pytest.raises(SqlPlanError, match="unknown table"):
            engine.create_index("nope", "x")
