"""Blockchain data model: blocks, chains, producer attribution, pool registry.

This package holds the substrate the measurements run on: a compact columnar
:class:`Chain` (heights, timestamps and per-block producer lists in CSR
layout), the attribution policies that turn blocks into per-entity block
credits (the paper credits every coinbase output address with the block),
and a registry of the 2019 mining pools for both chains.
"""

from repro.chain.attribution import (
    ATTRIBUTION_POLICIES,
    Credits,
    attribute,
)
from repro.chain.block import Block
from repro.chain.chain import Chain
from repro.chain.pools import PoolRegistry, bitcoin_pools_2019, ethereum_pools_2019
from repro.chain.specs import BITCOIN, ETHEREUM, ChainSpec
from repro.chain.tags import extract_pool_tag

__all__ = [
    "ATTRIBUTION_POLICIES",
    "BITCOIN",
    "Block",
    "Chain",
    "ChainSpec",
    "Credits",
    "ETHEREUM",
    "PoolRegistry",
    "attribute",
    "bitcoin_pools_2019",
    "ethereum_pools_2019",
    "extract_pool_tag",
]
