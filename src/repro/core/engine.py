"""The measurement engine.

Binds a chain's credits to metrics and window families:

>>> from repro.core import MeasurementEngine
>>> from repro.simulation import simulate_bitcoin_2019
>>> engine = MeasurementEngine.from_chain(simulate_bitcoin_2019())  # doctest: +SKIP
>>> daily_gini = engine.measure_calendar("gini", "day")             # doctest: +SKIP
>>> weekly_sliding = engine.measure_sliding("entropy", size=1008)   # doctest: +SKIP
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.chain.attribution import Credits, attribute
from repro.chain.chain import Chain
from repro.chain.pools import PoolRegistry
from repro.core.series import MeasurementSeries
from repro.errors import MeasurementError
from repro.metrics.base import Metric, get_metric
from repro.windows.base import BlockWindow, TimeWindow, Window
from repro.windows.fixed import FixedCalendarWindows
from repro.windows.sliding import SlidingBlockWindows
from repro.windows.timesliding import SlidingTimeWindows


class MeasurementEngine:
    """Computes decentralization series over one chain's credits."""

    def __init__(self, credits: Credits) -> None:
        self.credits = credits

    @classmethod
    def from_chain(
        cls,
        chain: Chain,
        policy: str = "per-address",
        registry: PoolRegistry | None = None,
    ) -> "MeasurementEngine":
        """Attribute ``chain`` under ``policy`` and wrap the credits."""
        return cls(attribute(chain, policy=policy, registry=registry))

    # -- generic measurement -----------------------------------------------------

    def measure(
        self,
        metric: str | Metric,
        windows: Sequence[Window],
        window_desc: str | None = None,
    ) -> MeasurementSeries:
        """Compute ``metric`` over each window; empty windows are skipped."""
        resolved = get_metric(metric) if isinstance(metric, str) else metric
        indices: list[int] = []
        labels: list[str] = []
        values: list[float] = []
        skipped = 0
        for window in windows:
            lo, hi = self._credit_range(window)
            if hi <= lo:
                skipped += 1
                continue
            distribution = self.credits.distribution(lo, hi)
            indices.append(window.index)
            labels.append(window.label)
            values.append(float(resolved.compute(distribution)))
        return MeasurementSeries(
            chain_name=self.credits.chain_name,
            metric_name=resolved.name,
            window_desc=window_desc or _describe(windows),
            indices=np.asarray(indices, dtype=np.int64),
            labels=tuple(labels),
            values=np.asarray(values, dtype=np.float64),
            skipped=skipped,
        )

    def distribution_for(self, window: Window) -> np.ndarray:
        """The per-entity credit distribution inside ``window``."""
        lo, hi = self._credit_range(window)
        return self.credits.distribution(lo, hi)

    def top_entities_for(self, window: Window, k: int = 10) -> list[tuple[str, float]]:
        """The ``k`` heaviest producers inside ``window``."""
        lo, hi = self._credit_range(window)
        return self.credits.top_entities(lo, hi, k)

    # -- the paper's two window families ---------------------------------------------

    def measure_calendar(self, metric: str | Metric, granularity: str) -> MeasurementSeries:
        """Fixed calendar windows (paper §II): ``day``, ``week`` or ``month``."""
        windows = FixedCalendarWindows(granularity).generate()
        return self.measure(metric, windows, window_desc=f"fixed-{granularity}")

    def measure_sliding(
        self,
        metric: str | Metric,
        size: int,
        step: int | None = None,
    ) -> MeasurementSeries:
        """Count-based sliding windows (paper §III); ``step`` defaults to N/2."""
        generator = SlidingBlockWindows(size, step)
        windows = generator.generate(self.credits.n_blocks)
        return self.measure(
            metric, windows, window_desc=f"sliding-{generator.size}/{generator.step}"
        )

    def measure_time_sliding(
        self,
        metric: str | Metric,
        duration: int,
        step: int | None = None,
    ) -> MeasurementSeries:
        """Wall-clock sliding windows (extension; see
        :class:`~repro.windows.timesliding.SlidingTimeWindows`)."""
        generator = SlidingTimeWindows(duration, step)
        windows = generator.generate()
        return self.measure(
            metric,
            windows,
            window_desc=f"time-sliding-{generator.duration}/{generator.step}",
        )

    # -- internals -------------------------------------------------------------------

    def _credit_range(self, window: Window) -> tuple[int, int]:
        if isinstance(window, TimeWindow):
            return self.credits.credit_range_for_time(window.start_ts, window.end_ts)
        if isinstance(window, BlockWindow):
            stop = min(window.stop_block, self.credits.n_blocks)
            start = min(window.start_block, stop)
            return self.credits.credit_range_for_blocks(start, stop)
        raise MeasurementError(f"unsupported window type: {type(window).__name__}")


def _describe(windows: Sequence[Window]) -> str:
    if not windows:
        return "empty"
    first = windows[0]
    if isinstance(first, TimeWindow):
        return f"time-windows[{len(windows)}]"
    return f"block-windows[{len(windows)}]"
