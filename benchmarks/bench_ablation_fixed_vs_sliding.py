"""Ablation — information gain of sliding over fixed windows.

Quantifies the paper's core methodological claim across all three metrics:
with M = N/2, sliding windows produce ~2x the measurement points and at
least as many detector-flagged anomaly windows as the fixed series.
"""

from repro.core.anomaly import iqr_anomalies
from repro.core.comparison import fixed_vs_sliding_gain


def compute_gains(btc):
    gains = {}
    for metric in ("gini", "entropy", "nakamoto"):
        fixed = btc.measure_calendar(metric, "day")
        sliding = btc.measure_sliding(metric, 144)
        gains[metric] = fixed_vs_sliding_gain(fixed, sliding, iqr_anomalies)
    return gains


def test_ablation_fixed_vs_sliding_gain(benchmark, btc):
    gains = benchmark.pedantic(compute_gains, args=(btc,), rounds=1, iterations=1)
    print("\n=== fixed vs sliding information gain (BTC, daily) ===")
    for metric, gain in gains.items():
        print(
            f"  {metric:<10s} points {gain.n_fixed} -> {gain.n_sliding} "
            f"(x{gain.point_ratio:.2f}); anomalies {gain.anomalies_fixed} -> "
            f"{gain.anomalies_sliding}"
        )
    for metric, gain in gains.items():
        assert 1.9 < gain.point_ratio < 2.2, metric
        assert gain.anomalies_sliding >= gain.anomalies_fixed, metric
    # At least one metric must show strictly more anomaly windows.
    assert any(
        gain.anomalies_sliding > gain.anomalies_fixed for gain in gains.values()
    )
