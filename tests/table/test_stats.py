"""Tests for ANALYZE-style table statistics collection."""

import numpy as np
import pytest

from repro.table import Table, collect_statistics
from repro.table.stats import (
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    ColumnStatistics,
    TableStatistics,
)


@pytest.fixture
def stats() -> TableStatistics:
    table = Table(
        {
            "height": [1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
            "producer": ["a", "a", "a", "b", "b", "c", "d", "e", "f", "g"],
            "reward": [1.0, 2.0, np.nan, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0],
        }
    )
    return collect_statistics(table)


class TestCollection:
    def test_row_count(self, stats):
        assert stats.row_count == 10

    def test_int_column(self, stats):
        column = stats.column("height")
        assert column.kind == "int"
        assert column.n_distinct == 10
        assert column.n_null == 0
        assert column.min_value == 1
        assert column.max_value == 10

    def test_str_column_mcv_ranked_by_count(self, stats):
        column = stats.column("producer")
        assert column.n_distinct == 7
        assert column.most_common[0] == ("a", 3)
        assert column.most_common[1] == ("b", 2)

    def test_float_column_counts_nan_as_null(self, stats):
        column = stats.column("reward")
        assert column.n_null == 1
        assert column.n_distinct == 9
        assert column.min_value == 1.0
        assert column.max_value == 10.0

    def test_unknown_column_is_none(self, stats):
        assert stats.column("nope") is None

    def test_most_common_cap(self):
        table = Table({"x": list(range(50))})
        column = collect_statistics(table, most_common=5).column("x")
        assert len(column.most_common) == 5

    def test_empty_table(self):
        stats = collect_statistics(Table({"x": []}))
        assert stats.row_count == 0
        column = stats.column("x")
        assert column.n_distinct == 0
        assert column.most_common == ()

    def test_null_str_values(self):
        table = Table({"name": ["x", None, "x", None, None]})
        column = collect_statistics(table).column("name")
        assert column.n_null == 3
        assert column.n_distinct == 1
        assert column.most_common[0] == ("x", 2)

    def test_table_statistics_cache(self):
        table = Table({"x": [1, 2, 3]})
        first = table.statistics()
        assert table.statistics() is first
        assert table.statistics(refresh=True) is not first


class TestEqSelectivity:
    def test_mcv_hit_uses_exact_count(self, stats):
        assert stats.column("producer").eq_selectivity("a") == pytest.approx(0.3)

    def test_none_is_zero(self, stats):
        assert stats.column("producer").eq_selectivity(None) == 0.0

    def test_out_of_range_numeric_is_zero(self, stats):
        assert stats.column("height").eq_selectivity(99) == 0.0

    def test_non_mcv_value_uses_remaining_mass(self):
        table = Table({"x": ["a"] * 90 + [f"v{i}" for i in range(10)]})
        column = collect_statistics(table, most_common=1).column("x")
        # 10 rows remain over 10 distinct values outside the MCV list.
        assert column.eq_selectivity("v3") == pytest.approx(0.01)

    def test_empty_column_is_zero(self):
        column = collect_statistics(Table({"x": []})).column("x")
        assert column.eq_selectivity(1) == 0.0


class TestRangeSelectivity:
    def test_interpolates_numeric(self, stats):
        # height in [1, 10]; height > 7 keeps roughly 3/9 of the span.
        estimate = stats.column("height").range_selectivity(">", 7)
        assert 0.2 <= estimate <= 0.45

    def test_unbounded_low(self, stats):
        assert stats.column("height").range_selectivity("<", 0) == 0.0

    def test_unbounded_high(self, stats):
        assert stats.column("height").range_selectivity("<=", 100) == 1.0

    def test_non_numeric_falls_back(self, stats):
        estimate = stats.column("producer").range_selectivity(">", "c")
        assert estimate == DEFAULT_RANGE_SELECTIVITY

    def test_defaults_exported(self):
        assert 0.0 < DEFAULT_EQ_SELECTIVITY < 1.0
        assert isinstance(ColumnStatistics, type)
