"""Ablation — calibration sensitivity.

The substitution argument (DESIGN.md §2) rests on the claim that the
paper's *shape* results are driven by the broad pool-share structure, not
by fine-tuned constants.  This bench perturbs the Bitcoin scenario —
different seed, stronger share jitter, heavier singleton tail — and checks
that the shape conclusions survive every variant.
"""

import numpy as np

from repro.core.engine import MeasurementEngine
from repro.simulation.miners import TailConfig
from repro.simulation.params import SimulationParams
from repro.simulation.powsim import ChainSimulator
from repro.simulation.scenarios import bitcoin_2019_params


def build_variants():
    variants = {}
    variants["baseline"] = bitcoin_2019_params(seed=2019)
    variants["other-seed"] = bitcoin_2019_params(seed=4242)
    jittery = bitcoin_2019_params(seed=2019)
    variants["2x-jitter"] = SimulationParams(
        spec=jittery.spec,
        registry=jittery.registry,
        tail=jittery.tail,
        seed=jittery.seed,
        jitter_sigma=jittery.jitter_sigma * 2,
        jitter_phi=jittery.jitter_phi,
        multi_coinbase_events=jittery.multi_coinbase_events,
        share_spikes=jittery.share_spikes,
    )
    tailed = bitcoin_2019_params(seed=2019)
    variants["heavier-tail"] = SimulationParams(
        spec=tailed.spec,
        registry=tailed.registry,
        tail=TailConfig(
            persistent_count=tailed.tail.persistent_count * 2,
            persistent_share=tailed.tail.persistent_share * 1.5,
            singleton_rate_early=tailed.tail.singleton_rate_early * 1.5,
            singleton_rate_late=tailed.tail.singleton_rate_late * 1.5,
            early_period_end=tailed.tail.early_period_end,
        ),
        seed=tailed.seed,
        jitter_sigma=tailed.jitter_sigma,
        jitter_phi=tailed.jitter_phi,
        multi_coinbase_events=tailed.multi_coinbase_events,
        share_spikes=tailed.share_spikes,
    )
    return variants


def measure_variants():
    results = {}
    for name, params in build_variants().items():
        engine = MeasurementEngine.from_chain(ChainSimulator(params).run())
        results[name] = {
            "gini_means": [
                engine.measure_calendar("gini", g).mean()
                for g in ("day", "week", "month")
            ],
            "nakamoto_mid_mode": _mode(
                engine.measure_calendar("nakamoto", "day").slice(100, 260).values
            ),
            "entropy_day14_pct": _percentile_of_day14(engine),
        }
    return results


def _mode(values):
    uniques, counts = np.unique(values, return_counts=True)
    return float(uniques[counts.argmax()])


def _percentile_of_day14(engine):
    entropy = engine.measure_calendar("entropy", "day")
    return float((entropy.values < entropy.values[13]).mean())


def test_ablation_calibration_sensitivity(benchmark):
    results = benchmark.pedantic(measure_variants, rounds=1, iterations=1)
    print("\n=== calibration sensitivity (BTC) ===")
    for name, shape in results.items():
        ginis = " ".join(f"{g:.3f}" for g in shape["gini_means"])
        print(
            f"  {name:<13s} gini(d/w/m)={ginis} "
            f"nakamoto-mode={shape['nakamoto_mid_mode']:.0f} "
            f"day14-entropy-pct={shape['entropy_day14_pct']:.3f}"
        )
    for name, shape in results.items():
        day, week, month = shape["gini_means"]
        assert day < week < month, name           # granularity ordering
        assert shape["nakamoto_mid_mode"] in (4.0, 5.0), name
        assert shape["entropy_day14_pct"] > 0.97, name  # day-14 stays extreme
