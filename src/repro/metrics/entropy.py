"""Shannon entropy (paper Eqs. 2–3).

.. math::

    p_i = \\frac{b_i}{\\sum_j b_j}, \\qquad
    E = -\\sum_i p_i \\log_2 p_i

Higher entropy means block production is spread more evenly over more
entities — the paper reads it as a higher degree of decentralization.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import validate_distribution


def shannon_entropy(values: np.ndarray | list[float]) -> float:
    """Shannon entropy of a credit distribution, in bits.

    >>> shannon_entropy([1, 1, 1, 1])
    2.0
    >>> shannon_entropy([42.0])
    0.0
    """
    array = validate_distribution(values)
    p = array / array.sum()
    # "+ 0.0" normalizes the single-entity case's -0.0 to 0.0.
    return float(-(p * np.log2(p)).sum()) + 0.0


def normalized_entropy(values: np.ndarray | list[float]) -> float:
    """Entropy divided by its maximum ``log2(n)``; in ``[0, 1]``.

    A population-size-independent variant: 1 means perfectly even
    production among the entities present, regardless of how many there
    are.  Defined as 1.0 for a single-entity distribution.
    """
    array = validate_distribution(values)
    n = array.shape[0]
    if n == 1:
        return 1.0
    return shannon_entropy(array) / float(np.log2(n))


def effective_producers_entropy(values: np.ndarray | list[float]) -> float:
    """Perplexity ``2^E``: the number of equally-sized entities with the
    same entropy.  An interpretable "effective population" size."""
    return float(2.0 ** shannon_entropy(values))
