"""Fig. 4 — Gini coefficient measured in Ethereum using fixed windows.

Paper claims: same granularity ordering as Bitcoin (month > week > day);
compared with Bitcoin the Ethereum Gini values are higher and more stable.
"""

from _bench_util import report_series
from repro.analysis.figures import figure_4


def test_fig04_eth_gini_fixed(benchmark, btc, eth):
    figure = benchmark(figure_4, eth)
    report_series(figure.title, figure.series)

    day = figure.series["day"]
    week = figure.series["week"]
    month = figure.series["month"]
    assert day.mean() < week.mean() < month.mean()

    btc_day = btc.measure_calendar("gini", "day")
    assert day.mean() > btc_day.mean()  # higher than Bitcoin
    assert day.std() < btc_day.std()    # more stable than Bitcoin
