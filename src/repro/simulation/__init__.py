"""PoW mining simulator — the stand-in for the paper's BigQuery chain data.

The simulator generates a full year (2019) of blocks for a configured
chain: per-day block counts from a difficulty-adjusted production-rate
model, timestamps within each day, and per-block producers drawn from a
population of mining pools (with drifting, jittered hashrate shares), a
set of persistent small miners and a stream of one-off singleton miners.
Anomaly injectors reproduce the events the paper documents, such as the
day-14 Bitcoin blocks carrying 80–90 coinbase addresses.

The calibrated entry points are in :mod:`repro.simulation.scenarios`:

>>> from repro.simulation import simulate_bitcoin_2019
>>> chain = simulate_bitcoin_2019(seed=7)   # doctest: +SKIP
"""

from repro.simulation.anomalies import MultiCoinbaseEvent, ShareSpike
from repro.simulation.arrivals import allocate_daily_counts, draw_timestamps_for_day
from repro.simulation.difficulty import (
    bitcoin_daily_rates,
    ethereum_daily_rates,
    piecewise_curve,
)
from repro.simulation.dpos import DPOS_2019, DposParams, DposSimulator, simulate_dpos_2019
from repro.simulation.hashrate import HashrateSchedule
from repro.simulation.miners import MinerPopulation, TailConfig
from repro.simulation.params import SimulationParams
from repro.simulation.powsim import ChainSimulator
from repro.simulation.scenarios import (
    bitcoin_2019_params,
    ethereum_2019_params,
    simulate_bitcoin_2019,
    simulate_ethereum_2019,
)

__all__ = [
    "ChainSimulator",
    "DPOS_2019",
    "DposParams",
    "DposSimulator",
    "HashrateSchedule",
    "MinerPopulation",
    "MultiCoinbaseEvent",
    "ShareSpike",
    "SimulationParams",
    "TailConfig",
    "allocate_daily_counts",
    "bitcoin_2019_params",
    "bitcoin_daily_rates",
    "draw_timestamps_for_day",
    "ethereum_2019_params",
    "ethereum_daily_rates",
    "piecewise_curve",
    "simulate_bitcoin_2019",
    "simulate_dpos_2019",
    "simulate_ethereum_2019",
]
