"""Property-based tests: the chain store round-trips arbitrary chains."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.store import ChainStore
from repro.util.timeutils import YEAR_2019_END, YEAR_2019_START
from tests.conftest import make_tiny_chain


@st.composite
def chains(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    producers = []
    for _ in range(n):
        k = draw(st.integers(min_value=1, max_value=4))
        producers.append(
            [draw(st.sampled_from(["a", "b", "c", "d", "e", "f"])) for _ in range(k)]
        )
    # Spread blocks across the year (possibly spanning many months).
    start_day = draw(st.integers(min_value=0, max_value=300))
    spacing = draw(st.integers(min_value=60, max_value=86_400))
    start_ts = YEAR_2019_START + start_day * 86_400
    if start_ts + spacing * n >= YEAR_2019_END:
        spacing = max((YEAR_2019_END - 1 - start_ts) // max(n, 1), 1)
    return make_tiny_chain(producers, start_ts=start_ts, spacing=spacing)


@given(chains())
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_store_roundtrip(tmp_path_factory, chain):
    store = ChainStore(tmp_path_factory.mktemp("store"))
    store.save("x", chain)
    loaded = store.load("x")
    assert np.array_equal(loaded.heights, chain.heights)
    assert np.array_equal(loaded.timestamps, chain.timestamps)
    assert np.array_equal(loaded.offsets, chain.offsets)
    assert np.array_equal(loaded.producer_ids, chain.producer_ids)
    assert loaded.producer_names == chain.producer_names


@given(chains())
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_partition_pruning_partitions_union_to_whole(tmp_path_factory, chain):
    from repro.util.timeutils import month_index

    store = ChainStore(tmp_path_factory.mktemp("store"))
    store.save("x", chain)
    months = sorted(set(np.asarray(month_index(chain.timestamps)).tolist()))
    total = 0
    for month in months:
        part = store.load_months("x", [int(month)])
        total += part.n_blocks
    assert total == chain.n_blocks
