"""Fig. 14 — Nakamoto coefficient measured in Ethereum using sliding windows.

Paper claims: the majority of values lie between 2 and 3 — most of
Ethereum's mining power is controlled by a few entities — and Ethereum is
less decentralized than Bitcoin under this metric too.
"""

import numpy as np

from _bench_util import report_series
from repro.analysis.figures import figure_14


def test_fig14_eth_nakamoto_sliding(benchmark, btc, eth):
    figure = benchmark.pedantic(figure_14, args=(eth,), rounds=1, iterations=1)
    report_series(figure.title, figure.series)

    daily = figure.series["N=6000"]
    assert set(np.unique(daily.values)) <= {2.0, 3.0}
    assert daily.fraction_in_range(2, 3) == 1.0

    btc_daily = btc.measure_sliding("nakamoto", 144)
    assert daily.mean() < btc_daily.mean()
