"""Tests for the streaming monitor."""

import numpy as np
import pytest

from repro.core.streaming import Alert, StreamingMonitor, ThresholdRule
from repro.errors import MeasurementError


def feed(monitor, producers_sequence):
    alerts = []
    for producers in producers_sequence:
        alerts.extend(monitor.push(producers))
    return alerts


class TestWindowMaintenance:
    def test_eviction_keeps_exactly_window_size(self):
        monitor = StreamingMonitor(window_size=4, stride=1, metrics=("gini",))
        feed(monitor, [["a"], ["b"], ["a"], ["c"], ["d"], ["d"]])
        # Window holds the last 4 blocks: a, c, d, d.
        assert monitor.producers_in_window() == 3
        assert monitor.current("nakamoto") == 2  # d=2 of 4 -> need d+1 more

    def test_counts_match_reference_implementation(self):
        rng = np.random.default_rng(0)
        names = ["p0", "p1", "p2", "p3", "p4"]
        blocks = [[names[rng.integers(0, 5)]] for _ in range(200)]
        monitor = StreamingMonitor(window_size=32, stride=1, metrics=("entropy",))
        feed(monitor, blocks)
        # Reference: recompute from the raw last 32 blocks.
        from collections import Counter

        reference = Counter(p for block in blocks[-32:] for p in block)
        assert monitor.producers_in_window() == len(reference)
        from repro.metrics import shannon_entropy

        expected = shannon_entropy(np.asarray(list(reference.values()), dtype=float))
        assert monitor.current("entropy") == pytest.approx(expected)

    def test_multi_producer_block_counts_each(self):
        monitor = StreamingMonitor(window_size=4, stride=1, metrics=("gini",))
        monitor.push(["a", "x", "y"])
        assert monitor.producers_in_window() == 3

    def test_fractional_weights(self):
        monitor = StreamingMonitor(window_size=4, stride=1, metrics=("gini",))
        monitor.push(["a", "x"], fractional=True)
        monitor.push(["a"])
        assert monitor.current("nakamoto") == 1  # a holds 1.5 of 2.0

    def test_empty_block_rejected(self):
        monitor = StreamingMonitor(window_size=4)
        with pytest.raises(MeasurementError):
            monitor.push([])


class TestEvaluationSchedule:
    def test_no_evaluation_before_window_full(self):
        monitor = StreamingMonitor(window_size=10, stride=2, metrics=("gini",))
        feed(monitor, [["a"]] * 9)
        assert monitor.history("gini") == []

    def test_evaluates_at_window_then_every_stride(self):
        monitor = StreamingMonitor(window_size=10, stride=3, metrics=("gini",))
        feed(monitor, [["a"], ["b"]] * 10)  # 20 blocks
        counts = [n for n, _ in monitor.history("gini")]
        assert counts == [10, 13, 16, 19]

    def test_default_stride_is_half_window(self):
        monitor = StreamingMonitor(window_size=100)
        assert monitor.stride == 50

    def test_history_per_metric(self):
        monitor = StreamingMonitor(window_size=4, stride=2)
        feed(monitor, [["a"], ["b"]] * 4)
        for metric in ("gini", "entropy", "nakamoto"):
            assert len(monitor.history(metric)) == 3

    def test_unknown_history_metric_rejected(self):
        with pytest.raises(MeasurementError):
            StreamingMonitor(window_size=4).history("hhi")


class TestAlerts:
    def test_threshold_below_fires(self):
        monitor = StreamingMonitor(window_size=4, stride=1, metrics=("nakamoto",))
        monitor.add_rule(ThresholdRule("nakamoto", below=2))
        # One producer dominates the window -> nakamoto = 1 < 2.
        alerts = feed(monitor, [["a"]] * 4)
        assert alerts
        assert all(isinstance(a, Alert) and a.metric == "nakamoto" for a in alerts)

    def test_threshold_above_fires(self):
        monitor = StreamingMonitor(window_size=4, stride=1, metrics=("entropy",))
        monitor.add_rule(ThresholdRule("entropy", above=1.9))
        alerts = feed(monitor, [["a"], ["b"], ["c"], ["d"]])  # entropy = 2.0
        assert len(alerts) == 1
        assert alerts[0].value == pytest.approx(2.0)

    def test_quiet_stream_no_alerts(self):
        monitor = StreamingMonitor(window_size=6, stride=2, metrics=("nakamoto",))
        monitor.add_rule(ThresholdRule("nakamoto", below=2))
        alerts = feed(monitor, [["a"], ["b"], ["c"]] * 6)
        assert alerts == []

    def test_rule_for_unmonitored_metric_rejected(self):
        monitor = StreamingMonitor(window_size=4, metrics=("gini",))
        with pytest.raises(MeasurementError):
            monitor.add_rule(ThresholdRule("nakamoto", below=3))

    def test_rule_without_bounds_rejected(self):
        with pytest.raises(MeasurementError):
            ThresholdRule("gini")

    def test_alert_str(self):
        alert = Alert("gini", 0.9, 100, ThresholdRule("gini", above=0.8))
        assert "gini=0.9" in str(alert)


class TestOnSimulatedChain:
    def test_day14_triggers_streaming_alerts(self, btc_chain):
        """Streaming through January catches the day-14 anomaly."""
        monitor = StreamingMonitor(window_size=144, stride=72, metrics=("entropy",))
        monitor.add_rule(ThresholdRule("entropy", above=5.0))
        january = btc_chain.slice_by_time(
            int(btc_chain.timestamps[0]), int(btc_chain.timestamps[0]) + 31 * 86_400
        )
        alerts = []
        for i in range(january.n_blocks):
            start, stop = january.offsets[i], january.offsets[i + 1]
            producers = [
                january.producer_names[pid]
                for pid in january.producer_ids[start:stop]
            ]
            alerts.extend(monitor.push(producers))
        assert alerts, "the day-14 multi-coinbase blocks must trip the rule"
        # Alerts cluster around day 14: blocks ~13*150 to ~15*150.
        assert any(1_700 <= a.block_count <= 2_400 for a in alerts)

    def test_current_matches_engine_distribution(self, btc_chain):
        from repro.chain.attribution import attribute
        from repro.metrics import gini_coefficient

        monitor = StreamingMonitor(window_size=144, stride=72, metrics=("gini",))
        sub = btc_chain.slice_blocks(0, 200)
        for i in range(sub.n_blocks):
            start, stop = sub.offsets[i], sub.offsets[i + 1]
            monitor.push([sub.producer_names[p] for p in sub.producer_ids[start:stop]])
        credits = attribute(btc_chain, "per-address")
        lo, hi = credits.credit_range_for_blocks(200 - 144, 200)
        expected = gini_coefficient(credits.distribution(lo, hi))
        assert monitor.current("gini") == pytest.approx(expected)
