"""Fig. 8 — Sliding-window mechanics (Eq. 5).

Verifies ``L = (S - N) / M + 1`` and the ``N - M`` overlap for all six
(chain, window-size) families the paper uses, with M = N/2.
"""

from _bench_util import report_notes
from repro.analysis.figures import figure_8


def test_fig08_sliding_mechanics(benchmark, btc, eth):
    figure = benchmark(figure_8, btc, eth)
    print(f"\n=== {figure.title} ===")
    report_notes(figure.notes)

    s_btc = btc.credits.n_blocks
    s_eth = eth.credits.n_blocks
    for size in (144, 1008, 4320):
        assert figure.notes[f"btc_L_N={size}"] == (s_btc - size) // (size // 2) + 1
        assert figure.notes[f"btc_overlap_N={size}"] == size / 2
    for size in (6000, 42000, 180000):
        assert figure.notes[f"eth_L_N={size}"] == (s_eth - size) // (size // 2) + 1
        assert figure.notes[f"eth_overlap_N={size}"] == size / 2
    # The paper's §III-B count: ~700 one-day windows vs 365 fixed days.
    assert 700 <= figure.notes["btc_L_N=144"] <= 760
