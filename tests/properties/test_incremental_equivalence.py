"""Equivalence: incremental/batched measurement paths vs the naive loop.

The fast paths — segment-derived sliding histograms
(:meth:`Credits.sliding_histograms`), the batched metric kernels
(:func:`compute_batch`) and :meth:`MeasurementEngine.measure_many` — must
reproduce the per-window reference loop (:meth:`MeasurementEngine.measure`)
for every registered metric and every attribution policy, including which
windows get skipped as empty.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.attribution import attribute
from repro.chain.pools import PoolInfo, PoolRegistry
from repro.core.engine import MeasurementEngine
from repro.metrics.base import available_metrics
from repro.windows.base import TimeWindow
from repro.windows.sliding import SlidingBlockWindows
from tests.conftest import make_tiny_chain

REGISTRY = PoolRegistry(
    [PoolInfo("PoolA", "a", 0.5, 0.5), PoolInfo("PoolB", "b", 0.3, 0.3)]
)

POLICIES = (
    ("per-address", None),
    ("first-address", None),
    ("fractional", None),
    ("pool", REGISTRY),
)

#: Metrics whose values are (small) integers and must match bit-for-bit.
INTEGER_METRICS = {"nakamoto", "nakamoto-33"}


def random_producers(rng: np.random.Generator, n_blocks: int) -> list[list[str]]:
    names = [f"addr{i}" for i in "abcdefghjk"] + ["a", "b"]
    producers = []
    for _ in range(n_blocks):
        k = int(rng.integers(1, 4))
        producers.append(list(rng.choice(names, size=k, replace=False)))
    return producers


def assert_series_equal(fast, naive, metric):
    __tracebackhide__ = True
    assert fast.metric_name == naive.metric_name
    assert fast.labels == naive.labels
    assert np.array_equal(fast.indices, naive.indices)
    assert fast.skipped == naive.skipped, f"{metric}: skip counts diverge"
    if metric in INTEGER_METRICS:
        assert np.array_equal(fast.values, naive.values), metric
    else:
        np.testing.assert_allclose(
            fast.values, naive.values, rtol=1e-9, atol=1e-12, err_msg=metric
        )


class TestSlidingFastPathEquivalence:
    @pytest.mark.parametrize("policy,registry", POLICIES)
    @pytest.mark.parametrize(
        "size,step",
        [
            (8, 4),  # aligned: the paper's M = N/2, fast path applies
            (6, 2),  # aligned: three segments per window
            (5, 5),  # aligned: fixed partition
            (7, 3),  # unaligned: must fall back, still equal
        ],
    )
    def test_all_metrics_all_policies(self, policy, registry, size, step):
        rng = np.random.default_rng(size * 100 + step)
        chain = make_tiny_chain(random_producers(rng, 60))
        engine = MeasurementEngine(attribute(chain, policy, registry=registry))
        windows = SlidingBlockWindows(size, step).generate(chain.n_blocks)
        for metric in available_metrics():
            naive = engine.measure(metric, windows, window_desc="ref")
            fast = engine.measure_sliding(metric, size, step)
            assert_series_equal(fast, naive, metric)

    @pytest.mark.parametrize("policy,registry", POLICIES)
    def test_measure_sliding_many_matches_loop(self, policy, registry):
        rng = np.random.default_rng(7)
        chain = make_tiny_chain(random_producers(rng, 48))
        engine = MeasurementEngine(attribute(chain, policy, registry=registry))
        metrics = available_metrics()
        sweep = engine.measure_sliding_many(metrics, 8, 4)
        windows = SlidingBlockWindows(8, 4).generate(chain.n_blocks)
        for metric in metrics:
            assert_series_equal(sweep[metric], engine.measure(metric, windows), metric)

    @given(st.integers(min_value=1, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_randomized_chains_match(self, seed):
        rng = np.random.default_rng(seed)
        n_blocks = int(rng.integers(10, 80))
        chain = make_tiny_chain(random_producers(rng, n_blocks))
        engine = MeasurementEngine(attribute(chain, "per-address"))
        size = int(rng.integers(2, max(n_blocks // 2, 3)))
        size -= size % 2  # keep M = N/2 aligned
        size = max(size, 2)
        step = size // 2
        windows = SlidingBlockWindows(size, step).generate(chain.n_blocks)
        for metric in ("gini", "entropy", "nakamoto", "theil", "top4-share"):
            naive = engine.measure(metric, windows, window_desc="ref")
            fast = engine.measure_sliding(metric, size, step)
            assert_series_equal(fast, naive, metric)

    def test_fast_path_actually_engaged(self):
        """Guard against silently falling back to the naive loop."""
        rng = np.random.default_rng(3)
        chain = make_tiny_chain(random_producers(rng, 40))
        engine = MeasurementEngine(attribute(chain, "per-address"))
        assert engine.credits.sliding_histograms(8, 4) is not None
        engine.measure_sliding("gini", 8, 4)
        assert (8, 4) in engine._sliding_cache


class TestTimeSlidingEquivalence:
    @pytest.mark.parametrize("policy,registry", POLICIES)
    def test_batched_matches_per_window_loop(self, policy, registry):
        rng = np.random.default_rng(23)
        chain = make_tiny_chain(random_producers(rng, 64), spacing=6 * 3600)
        engine = MeasurementEngine(attribute(chain, policy, registry=registry))
        duration, step = 3 * 86_400, 86_400
        metrics = available_metrics()
        sweep = engine.measure_time_sliding_many(metrics, duration, step)
        for metric in metrics:
            naive = engine.measure_time_sliding(metric, duration, step)
            assert_series_equal(sweep[metric], naive, metric)

    def test_default_step_and_descriptor(self):
        rng = np.random.default_rng(29)
        chain = make_tiny_chain(random_producers(rng, 50), spacing=4 * 3600)
        engine = MeasurementEngine(attribute(chain, "per-address"))
        sweep = engine.measure_time_sliding_many(["gini"], 2 * 86_400)
        naive = engine.measure_time_sliding("gini", 2 * 86_400)
        assert sweep["gini"].window_desc == naive.window_desc
        assert_series_equal(sweep["gini"], naive, "gini")


class TestMeasureManyEquivalence:
    def test_time_windows_with_empty_windows_skip_counts(self):
        rng = np.random.default_rng(11)
        chain = make_tiny_chain(random_producers(rng, 30), start_ts=10_000, spacing=600)
        engine = MeasurementEngine(attribute(chain, "per-address"))
        # Two windows before the chain, several inside, one after the end.
        windows = [
            TimeWindow(i, f"t{i}", 1_000 + 3_000 * i, 1_000 + 3_000 * (i + 1))
            for i in range(12)
        ]
        metrics = ("gini", "entropy", "nakamoto", "hhi")
        sweep = engine.measure_many(metrics, windows)
        for metric in metrics:
            naive = engine.measure(metric, windows)
            assert naive.skipped > 0, "test needs at least one empty window"
            assert_series_equal(sweep[metric], naive, metric)

    def test_custom_metric_without_kernel_falls_back(self):
        from repro.metrics.base import FunctionMetric, has_batch_kernel

        top_share = FunctionMetric(
            "test-top-share", lambda v: float(v.max() / v.sum())
        )
        assert not has_batch_kernel(top_share.name)
        rng = np.random.default_rng(5)
        chain = make_tiny_chain(random_producers(rng, 40))
        engine = MeasurementEngine(attribute(chain, "per-address"))
        naive = engine.measure(
            top_share, SlidingBlockWindows(8, 4).generate(chain.n_blocks)
        )
        fast = engine.measure_sliding(top_share, 8, 4)
        assert_series_equal(fast, naive, top_share.name)

    def test_sparse_and_dense_distribution_paths_agree(self, monkeypatch):
        """The np.unique path must equal dense bincount bit-for-bit.

        Tiny test chains sit far below ``_SPARSE_MIN_ENTITIES``, so the
        sparse branch is forced by dropping the gate to zero.
        """
        from repro.chain import attribution

        rng = np.random.default_rng(17)
        chain = make_tiny_chain(random_producers(rng, 64))
        default_gate = attribution._SPARSE_MIN_ENTITIES
        for policy, registry in POLICIES:
            credits = attribute(chain, policy, registry=registry)
            for min_entities in (0, default_gate):
                monkeypatch.setattr(attribution, "_SPARSE_MIN_ENTITIES", min_entities)
                for lo, hi in [(0, 2), (3, 5), (0, credits.n_credits), (10, 11), (4, 4)]:
                    hi = min(hi, credits.n_credits)
                    dense = np.bincount(
                        credits.entity_ids[lo:hi],
                        weights=credits.weights[lo:hi],
                        minlength=credits.n_entities,
                    )
                    expected = dense[dense > 0]
                    assert np.array_equal(credits.distribution(lo, hi), expected)
