"""Tests for columnar chain storage."""

import numpy as np
import pytest

from repro.chain.block import Block
from repro.chain.chain import Chain
from repro.errors import ChainError
from repro.util.timeutils import YEAR_2019_START
from tests.conftest import TINY_SPEC, make_tiny_chain


class TestConstruction:
    def test_from_blocks_roundtrip(self):
        blocks = [
            Block(height=1_000, timestamp=YEAR_2019_START, producers=("a",)),
            Block(height=1_001, timestamp=YEAR_2019_START + 600, producers=("b", "c")),
            Block(height=1_002, timestamp=YEAR_2019_START + 1200, producers=("a",)),
        ]
        chain = Chain.from_blocks(TINY_SPEC, blocks)
        assert chain.n_blocks == 3
        assert chain.n_credits == 4
        assert [chain.block(i) for i in range(3)] == blocks

    def test_from_blocks_preserves_tags(self):
        blocks = [
            Block(height=1_000, timestamp=YEAR_2019_START, producers=("a",), tag="F2Pool"),
            Block(height=1_001, timestamp=YEAR_2019_START + 600, producers=("b",)),
        ]
        chain = Chain.from_blocks(TINY_SPEC, blocks)
        assert chain.block(0).tag == "F2Pool"
        assert chain.block(1).tag is None

    def test_single_producer_fast_path(self):
        chain = Chain.single_producer(
            TINY_SPEC,
            heights=1_000 + np.arange(4),
            timestamps=YEAR_2019_START + 60 * np.arange(4),
            producer_ids=np.asarray([0, 1, 0, 1]),
            producer_names=["a", "b"],
        )
        assert chain.producer_counts().tolist() == [1, 1, 1, 1]

    def test_non_consecutive_heights_rejected(self):
        with pytest.raises(ChainError, match="consecutive"):
            Chain.single_producer(
                TINY_SPEC,
                heights=np.asarray([1, 3]),
                timestamps=np.asarray([0, 1]),
                producer_ids=np.asarray([0, 0]),
                producer_names=["a"],
            )

    def test_decreasing_timestamps_rejected(self):
        with pytest.raises(ChainError, match="non-decreasing"):
            Chain.single_producer(
                TINY_SPEC,
                heights=np.asarray([1, 2]),
                timestamps=np.asarray([10, 5]),
                producer_ids=np.asarray([0, 0]),
                producer_names=["a"],
            )

    def test_bad_producer_reference_rejected(self):
        with pytest.raises(ChainError, match="unknown producer"):
            Chain.single_producer(
                TINY_SPEC,
                heights=np.asarray([1]),
                timestamps=np.asarray([0]),
                producer_ids=np.asarray([5]),
                producer_names=["a"],
            )

    def test_offsets_must_cover_all_credits(self):
        with pytest.raises(ChainError):
            Chain(
                TINY_SPEC,
                heights=np.asarray([1]),
                timestamps=np.asarray([0]),
                offsets=np.asarray([0, 1]),
                producer_ids=np.asarray([0, 0]),  # one extra credit
                producer_names=["a"],
            )

    def test_block_without_producer_rejected(self):
        with pytest.raises(ChainError, match="at least one producer"):
            Chain(
                TINY_SPEC,
                heights=np.asarray([1, 2]),
                timestamps=np.asarray([0, 1]),
                offsets=np.asarray([0, 0, 1]),
                producer_ids=np.asarray([0]),
                producer_names=["a"],
            )


class TestAccessors:
    def test_shape_properties(self, tiny_chain):
        assert tiny_chain.n_blocks == 9
        assert tiny_chain.n_credits == 11
        assert tiny_chain.n_producers == 5
        assert len(tiny_chain) == 9

    def test_height_range(self, tiny_chain):
        assert tiny_chain.start_height == 1_000
        assert tiny_chain.end_height == 1_008

    def test_block_materialization(self, tiny_chain):
        block = tiny_chain.block(5)
        assert block.producers == ("a", "x", "y")

    def test_block_negative_index(self, tiny_chain):
        assert tiny_chain.block(-1).height == 1_008

    def test_block_out_of_range(self, tiny_chain):
        with pytest.raises(ChainError):
            tiny_chain.block(9)

    def test_blocks_iterates_all(self, tiny_chain):
        assert sum(1 for _ in tiny_chain.blocks()) == 9

    def test_producer_counts(self, tiny_chain):
        assert tiny_chain.producer_counts().tolist() == [1, 1, 1, 1, 1, 3, 1, 1, 1]

    def test_anomalous_blocks(self, tiny_chain):
        found = tiny_chain.anomalous_blocks(threshold=3)
        assert [b.height for b in found] == [1_005]

    def test_empty_chain_repr_and_errors(self):
        chain = make_tiny_chain([])
        assert "empty" in repr(chain)
        with pytest.raises(ChainError):
            chain.start_height


class TestSlicing:
    def test_slice_blocks(self, tiny_chain):
        sub = tiny_chain.slice_blocks(2, 6)
        assert sub.n_blocks == 4
        assert sub.block(0).producers == ("b",)
        assert sub.block(3).producers == ("a", "x", "y")

    def test_slice_clamps(self, tiny_chain):
        assert tiny_chain.slice_blocks(-5, 99).n_blocks == 9

    def test_slice_by_height(self, tiny_chain):
        sub = tiny_chain.slice_by_height(1_002, 1_004)
        assert sub.heights.tolist() == [1_002, 1_003, 1_004]

    def test_slice_by_time(self, tiny_chain):
        start = int(tiny_chain.timestamps[3])
        end = int(tiny_chain.timestamps[6])
        sub = tiny_chain.slice_by_time(start, end)
        assert sub.n_blocks == 3

    def test_invalid_slice_raises(self, tiny_chain):
        with pytest.raises(ChainError):
            tiny_chain.slice_blocks(5, 2)


class TestExport:
    def test_to_table_one_row_per_credit(self, tiny_chain):
        table = tiny_chain.to_table()
        assert table.num_rows == 11
        multi = table.filter(table["height"] == 1_005)
        assert multi["producer"].tolist() == ["a", "x", "y"]
        assert multi["n_producers"].tolist() == [3, 3, 3]

    def test_block_table_one_row_per_block(self, tiny_chain):
        table = tiny_chain.block_table()
        assert table.num_rows == 9
        assert table["primary_producer"].tolist()[5] == "a"
