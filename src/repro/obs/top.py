"""``repro top``: a live terminal dashboard over the telemetry endpoints.

Polls a running telemetry server's ``/status`` endpoint (the JSON twin of
``/metrics`` — see :mod:`repro.serve`) and redraws a compact dashboard:
ingest progress and per-stage throughput (blocks/s), worker-pool
utilization, p50/p99 span latencies from the timing histograms, and the
latest decentralization metric values.  Dependency-free — plain
``urllib`` and ANSI clear codes, matching the stdlib-only server it
watches.

The rendering is a pure function of two status snapshots
(:func:`render_dashboard`), so tests drive it with dicts; only
:func:`run_top` does I/O.  Throughput is the block-count delta between
polls over the poll interval; the first frame falls back to the lifetime
average (blocks over uptime).

Usage::

    repro monitor --chain btc --serve 9641 &
    repro top --port 9641            # or --url http://host:9641
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Callable

from repro.errors import ObservabilityError

#: ANSI: clear screen + home — how the dashboard redraws in place.
_CLEAR = "\x1b[2J\x1b[H"


def fetch_status(url: str, timeout: float = 2.0) -> dict:
    """GET and decode a ``/status`` JSON document.

    Raises :class:`~repro.errors.ObservabilityError` on connection
    failures or a non-JSON body, so the CLI can map both onto exit 1.
    """
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            body = response.read().decode("utf-8")
    except (urllib.error.URLError, OSError, TimeoutError) as exc:
        raise ObservabilityError(f"cannot reach {url}: {exc}") from exc
    try:
        status = json.loads(body)
    except json.JSONDecodeError as exc:
        raise ObservabilityError(f"{url} did not return JSON: {exc}") from exc
    if not isinstance(status, dict):
        raise ObservabilityError(f"{url} returned {type(status).__name__}, not an object")
    return status


#: Eight-level block ramp for terminal sparklines.
_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: list, width: int = 40) -> str:
    """Render recent values as a block-character sparkline (pure).

    >>> sparkline([0.0, 0.5, 1.0])
    '▁▄█'
    """
    tail = [float(v) for v in values[-width:]]
    if not tail:
        return ""
    low, high = min(tail), max(tail)
    if high - low < 1e-12:
        return _SPARK_CHARS[0] * len(tail)
    scale = (len(_SPARK_CHARS) - 1) / (high - low)
    return "".join(_SPARK_CHARS[int((v - low) * scale)] for v in tail)


def _fmt_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def _throughput(status: dict, previous: dict | None, interval: float) -> float | None:
    """Blocks/s between two polls; lifetime average on the first frame."""
    blocks = status.get("blocks_ingested")
    if blocks is None:
        return None
    if previous is not None and interval > 0:
        prev_blocks = previous.get("blocks_ingested", 0)
        return max(blocks - prev_blocks, 0) / interval
    uptime = status.get("uptime_seconds") or 0.0
    return blocks / uptime if uptime > 0 else None


def render_dashboard(
    status: dict, previous: dict | None = None, interval: float = 2.0
) -> str:
    """One dashboard frame from a ``/status`` snapshot (pure, testable).

    ``previous`` is the prior poll's snapshot, used for the blocks/s
    delta; pass ``None`` on the first frame.
    """
    build = status.get("build") or {}
    lines: list[str] = []
    state = (
        "DEGRADED" if (status.get("resilience") or {}).get("degraded")
        else "finished" if status.get("finished")
        else "ready" if status.get("ready")
        else "warming up"
    )
    lines.append(
        f"repro top — chain={status.get('chain', '?')} "
        f"version={build.get('version', '?')} "
        f"uptime={status.get('uptime_seconds', 0.0):.0f}s [{state}]"
    )
    lines.append("")

    blocks = status.get("blocks_ingested", 0)
    total = status.get("total_blocks")
    lag = status.get("lag_blocks")
    rate = _throughput(status, previous, interval)
    ingest = f"ingest    blocks={blocks}"
    if total is not None:
        ingest += f"/{total}"
    if lag is not None:
        ingest += f" lag={lag}"
    ingest += f" evaluations={status.get('evaluations', 0)}"
    ingest += f" alerts={status.get('alerts', 0)}"
    if rate is not None:
        ingest += f" throughput={rate:.1f} blocks/s"
    lines.append(ingest)

    workers = status.get("workers") or {}
    last_pool = workers.get("last_pool") or {}
    lifetime = workers.get("lifetime") or {}
    submitted = lifetime.get("tasks_submitted", 0)
    completed = lifetime.get("tasks_completed", 0)
    utilization = (
        f"{100.0 * completed / submitted:.0f}%" if submitted else "n/a"
    )
    lines.append(
        f"pool      cpus={workers.get('cpu_count', '?')}"
        f" active={workers.get('active_pools', 0)}"
        f" last={last_pool.get('workers', 0)}w"
        f" tasks={completed}/{submitted} ({utilization} done)"
    )
    lines.append("")

    timings = status.get("timings") or {}
    if timings:
        lines.append(f"{'latency':<36s} {'count':>8s} {'p50':>10s} {'p99':>10s}")
        for name in sorted(timings):
            stats = timings[name]
            lines.append(
                f"{name:<36s} {stats.get('count', 0):>8d} "
                f"{_fmt_seconds(stats.get('p50', 0.0)):>10s} "
                f"{_fmt_seconds(stats.get('p99', 0.0)):>10s}"
            )
        lines.append("")

    latest = status.get("latest") or {}
    if latest:
        lines.append(
            "metrics   "
            + "  ".join(f"{name}={value:.4f}" for name, value in sorted(latest.items()))
        )

    sparklines = status.get("sparklines") or {}
    drawn = [
        (name, sparkline(values))
        for name, values in sorted(sparklines.items())
        if values
    ]
    if drawn:
        lines.append("")
        for name, art in drawn:
            lines.append(f"history   {name:<10s} {art}")

    alerting = status.get("alerting") or {}
    if alerting.get("rules"):
        lines.append("")
        lines.append(
            f"alerts    rules={alerting.get('rules', 0)}"
            f" firing={alerting.get('firing', 0)}"
            f" fired={alerting.get('fired_total', 0)}"
            f" resolved={alerting.get('resolved_total', 0)}"
        )
        for instance in alerting.get("active") or []:
            lines.append(
                f"  {instance.get('state', '?').upper():<8s}"
                f" {instance.get('rule', '?')}"
                f" [{instance.get('severity', '?')}]"
                f" value={instance.get('value', 0.0):.4g}"
            )

    slo = status.get("slo") or {}
    breached = slo.get("breached")
    if slo.get("objectives"):
        lines.append(
            f"slo       objectives={slo.get('objectives', 0)}"
            f" breached={','.join(breached) if breached else 'none'}"
        )

    overload = status.get("overload") or {}
    if overload:
        shedder = overload.get("shedder") or {}
        cache = overload.get("cache") or {}
        line = (
            f"overload  shed={shedder.get('state', '?')}"
            f" shed_total={shedder.get('shed_total', 0)}"
            f" cache_hits={cache.get('hits', 0)}"
            f"+{cache.get('stale_hits', 0)} stale"
        )
        admission = overload.get("admission")
        if admission:
            line += (
                f" inflight={admission.get('inflight', 0)}"
                f"/{admission.get('max_inflight', '?')}"
                f" rejected={admission.get('rejected_total', 0)}"
            )
        ratelimit = overload.get("ratelimit")
        if ratelimit:
            line += (
                f" throttled={ratelimit.get('throttled_total', 0)}"
                f" ({ratelimit.get('clients', 0)} clients)"
            )
        lines.append(line)

    ingest_queue = status.get("ingest") or {}
    if ingest_queue:
        lines.append(
            f"queue     policy={ingest_queue.get('policy', '?')}"
            f" depth={ingest_queue.get('depth', 0)}"
            f"/{ingest_queue.get('maxsize', '?')}"
            f" peak={ingest_queue.get('peak_depth', 0)}"
            f" dropped={ingest_queue.get('dropped_total', 0)}"
        )
    return "\n".join(lines)


def run_top(
    url: str,
    interval: float = 2.0,
    iterations: int | None = None,
    print_fn: Callable[[str], None] = print,
    clear: bool = True,
    sleep_fn: Callable[[float], None] = time.sleep,
) -> int:
    """Poll ``url`` and redraw the dashboard until interrupted.

    ``iterations`` bounds the number of frames (``None`` = until
    Ctrl-C/KeyboardInterrupt, which exits 0 — an interactive quit is not
    an error).  With ``iterations`` set (scripted/CI usage) *any* failed
    poll prints the target URL and exits 1 — a bounded run must not
    silently swallow a dead server.  Interactively (``iterations=None``)
    only the first poll is fatal; once a frame has rendered, transient
    fetch errors print a note and keep polling (the monitor may be
    restarting).
    """
    previous: dict | None = None
    frames = 0
    while iterations is None or frames < iterations:
        try:
            status = fetch_status(url)
        except ObservabilityError as exc:
            if previous is None or iterations is not None:
                print_fn(f"error: polling {url} failed: {exc}")
                return 1
            print_fn(f"(poll failed, retrying: {exc})")
            try:
                sleep_fn(interval)
            except KeyboardInterrupt:
                return 0
            continue
        frame = render_dashboard(status, previous, interval)
        print_fn((_CLEAR + frame) if clear else frame)
        previous = status
        frames += 1
        if iterations is not None and frames >= iterations:
            break
        try:
            sleep_fn(interval)
        except KeyboardInterrupt:
            return 0
    return 0
