"""Token definitions for the SQL lexer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Final

#: Token categories produced by the lexer.
KEYWORD: Final = "KEYWORD"
IDENT: Final = "IDENT"
NUMBER: Final = "NUMBER"
STRING: Final = "STRING"
OPERATOR: Final = "OPERATOR"
PUNCT: Final = "PUNCT"
EOF: Final = "EOF"

#: Reserved words, uppercased.  Identifiers matching these become KEYWORD
#: tokens; everything else is an IDENT.
KEYWORDS: Final[frozenset[str]] = frozenset(
    {
        "ANALYZE",
        "SELECT",
        "DISTINCT",
        "AS",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "ORDER",
        "ASC",
        "DESC",
        "LIMIT",
        "OFFSET",
        "AND",
        "OR",
        "NOT",
        "IN",
        "BETWEEN",
        "IS",
        "NULL",
        "TRUE",
        "FALSE",
        "JOIN",
        "INNER",
        "LEFT",
        "ON",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
        "LIKE",
        "UNION",
        "ALL",
    }
)

#: Multi-character operators, longest first so the lexer is greedy.
OPERATORS: Final[tuple[str, ...]] = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%")

PUNCTUATION: Final[tuple[str, ...]] = ("(", ")", ",", ".")


@dataclass(frozen=True)
class Token:
    """A single lexed token with its source offset (for error messages)."""

    type: str
    value: Any
    position: int

    def matches(self, type_: str, value: Any = None) -> bool:
        """True if this token has the given type (and value, if provided)."""
        if self.type != type_:
            return False
        return value is None or self.value == value

    def __repr__(self) -> str:
        return f"Token({self.type}, {self.value!r}@{self.position})"
