"""Tests for comparative analyses."""

import pytest

from repro.core.anomaly import zscore_anomalies
from repro.core.comparison import (
    compare_level,
    compare_stability,
    fixed_vs_sliding_gain,
    granularity_ordering,
)
from repro.errors import MeasurementError
from tests.core.test_series import make_series


def series_for(chain, values, metric="gini"):
    return make_series(values, chain_name=chain, metric_name=metric)


class TestCompareLevel:
    def test_lower_wins_for_gini(self):
        btc = series_for("bitcoin", [0.5, 0.55])
        eth = series_for("ethereum", [0.85, 0.86])
        result = compare_level(btc, eth, higher_is_more_decentralized=False)
        assert result.winner == "bitcoin"
        assert result.mean_a == pytest.approx(0.525)

    def test_higher_wins_for_entropy(self):
        btc = series_for("bitcoin", [3.9], metric="entropy")
        eth = series_for("ethereum", [3.4], metric="entropy")
        result = compare_level(btc, eth, higher_is_more_decentralized=True)
        assert result.winner == "bitcoin"

    def test_direction_flips_winner(self):
        a = series_for("x", [1.0])
        b = series_for("y", [2.0])
        assert compare_level(a, b, True).winner == "y"
        assert compare_level(a, b, False).winner == "x"

    def test_metric_mismatch_rejected(self):
        a = series_for("x", [1.0], metric="gini")
        b = series_for("y", [2.0], metric="entropy")
        with pytest.raises(MeasurementError):
            compare_level(a, b, True)


class TestCompareStability:
    def test_lower_cv_wins(self):
        volatile = series_for("bitcoin", [1.0, 5.0, 1.0, 5.0])
        stable = series_for("ethereum", [3.0, 3.1, 2.9, 3.0])
        result = compare_stability(volatile, stable)
        assert result.winner == "ethereum"
        assert result.cv_b < result.cv_a


class TestGranularityOrdering:
    def test_ordered_means(self):
        day = series_for("btc", [0.5, 0.5])
        week = series_for("btc", [0.65, 0.7])
        month = series_for("btc", [0.8])
        assert granularity_ordering([day, week, month])

    def test_unordered_detected(self):
        day = series_for("btc", [0.9])
        week = series_for("btc", [0.6])
        assert not granularity_ordering([day, week])

    def test_needs_two_series(self):
        with pytest.raises(MeasurementError):
            granularity_ordering([series_for("btc", [0.5])])


class TestSlidingGain:
    def test_point_ratio(self):
        fixed = series_for("btc", [1.0] * 52)
        sliding = series_for("btc", [1.0] * 105)
        gain = fixed_vs_sliding_gain(fixed, sliding, zscore_anomalies)
        assert gain.point_ratio == pytest.approx(105 / 52)

    def test_anomaly_counts(self):
        fixed = series_for("btc", [1.0] * 30)
        sliding = series_for("btc", [1.0] * 59 + [9.0])
        gain = fixed_vs_sliding_gain(fixed, sliding, zscore_anomalies)
        assert gain.anomalies_fixed == 0
        assert gain.anomalies_sliding == 1

    def test_empty_fixed_rejected(self):
        gain = fixed_vs_sliding_gain(
            series_for("btc", []), series_for("btc", [1.0]), zscore_anomalies
        )
        with pytest.raises(MeasurementError):
            gain.point_ratio
