"""Tests for the study orchestration and headline findings."""

import pytest

from repro.analysis.study import DecentralizationStudy
from repro.errors import MeasurementError


@pytest.fixture(scope="module")
def study(btc_chain, eth_chain):
    return DecentralizationStudy(bitcoin=btc_chain, ethereum=eth_chain)


class TestDataAccess:
    def test_chain_lookup(self, study, btc_chain, eth_chain):
        assert study.chain("btc") is btc_chain
        assert study.chain("eth") is eth_chain

    def test_unknown_chain_rejected(self, study):
        with pytest.raises(MeasurementError):
            study.chain("dogecoin")

    def test_engine_cached(self, study):
        assert study.engine("btc") is study.engine("btc")


class TestFindings:
    def test_bitcoin_more_decentralized_every_metric(self, study):
        """The paper's §II-C3 headline, per metric."""
        findings = study.findings()
        for comparison in findings.level:
            assert comparison.winner == "bitcoin", comparison.metric_name

    def test_ethereum_more_stable_every_metric(self, study):
        findings = study.findings()
        for comparison in findings.stability.comparisons:
            assert comparison.winner == "ethereum", comparison.metric_name

    def test_overall_verdicts(self, study):
        findings = study.findings()
        assert findings.more_decentralized == "bitcoin"
        assert findings.more_stable == "ethereum"

    def test_findings_at_week_granularity_agree(self, study):
        findings = study.findings(granularity="week")
        assert findings.more_decentralized == "bitcoin"
        assert findings.more_stable == "ethereum"


class TestSummaryTable:
    def test_shape(self, study):
        table = study.summary_table()
        # 2 chains x 3 metrics x (3 calendar + 3 sliding) = 36 rows.
        assert table.num_rows == 36
        assert "mean" in table.column_names

    def test_contains_both_chains(self, study):
        table = study.summary_table()
        chains = set(table["chain_name"].tolist())
        assert chains == {"bitcoin", "ethereum"}


class TestLazySimulation:
    def test_lazily_simulates_missing_chain(self):
        study = DecentralizationStudy(seed=5)
        chain = study.chain("btc")
        assert chain.n_blocks == 54_231
