"""Property-based tests: streaming results equal batch recomputation."""

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.streaming import StreamingMonitor
from repro.metrics import gini_coefficient, nakamoto_coefficient, shannon_entropy

block_feeds = st.lists(
    st.lists(
        st.sampled_from(["a", "b", "c", "d", "e", "f", "g"]),
        min_size=1,
        max_size=3,
        unique=True,
    ),
    min_size=1,
    max_size=120,
)


def batch_distribution(blocks, window_size):
    counts = Counter(p for block in blocks[-window_size:] for p in block)
    return np.asarray(list(counts.values()), dtype=np.float64)


class TestStreamingEqualsBatch:
    @given(block_feeds, st.integers(min_value=1, max_value=40))
    @settings(max_examples=60, deadline=None)
    def test_current_gini_matches_batch(self, blocks, window_size):
        monitor = StreamingMonitor(window_size=window_size, stride=1, metrics=("gini",))
        for block in blocks:
            monitor.push(block)
        expected = gini_coefficient(batch_distribution(blocks, window_size))
        assert monitor.current("gini") == np.float64(expected) or abs(
            monitor.current("gini") - expected
        ) < 1e-9

    @given(block_feeds, st.integers(min_value=1, max_value=40))
    @settings(max_examples=60, deadline=None)
    def test_current_entropy_and_nakamoto_match_batch(self, blocks, window_size):
        monitor = StreamingMonitor(window_size=window_size, stride=1)
        for block in blocks:
            monitor.push(block)
        distribution = batch_distribution(blocks, window_size)
        assert abs(monitor.current("entropy") - shannon_entropy(distribution)) < 1e-9
        assert monitor.current("nakamoto") == nakamoto_coefficient(distribution)

    @given(block_feeds, st.integers(min_value=1, max_value=40))
    @settings(max_examples=40, deadline=None)
    def test_producer_count_matches_batch(self, blocks, window_size):
        monitor = StreamingMonitor(window_size=window_size, stride=1, metrics=("gini",))
        for block in blocks:
            monitor.push(block)
        expected = len({p for block in blocks[-window_size:] for p in block})
        assert monitor.producers_in_window() == expected

    @given(block_feeds)
    @settings(max_examples=40, deadline=None)
    def test_history_lengths_follow_schedule(self, blocks):
        window, stride = 8, 3
        monitor = StreamingMonitor(window_size=window, stride=stride, metrics=("gini",))
        for block in blocks:
            monitor.push(block)
        n = len(blocks)
        expected = 0 if n < window else (n - window) // stride + 1
        assert len(monitor.history("gini")) == expected
