"""Quickstart: simulate Bitcoin 2019 and measure its decentralization.

Run with::

    python examples/quickstart.py
"""

from repro import MeasurementEngine, simulate_bitcoin_2019, summarize
from repro.metrics import gini_coefficient, nakamoto_coefficient, shannon_entropy


def main() -> None:
    # 1. The dataset: the paper's 54,231 Bitcoin blocks of 2019, simulated.
    chain = simulate_bitcoin_2019(seed=2019)
    print(f"dataset: {chain}")
    print(f"anomalous multi-coinbase blocks: "
          f"{[(b.height, b.producer_count) for b in chain.anomalous_blocks(50)]}")

    # 2. Metrics on a single distribution: the whole year at once.
    engine = MeasurementEngine.from_chain(chain)  # per-address attribution
    lo, hi = 0, engine.credits.n_credits
    year = engine.credits.distribution(lo, hi)
    print(f"\nwhole-2019 distribution over {year.shape[0]} producers:")
    print(f"  gini      = {gini_coefficient(year):.4f}")
    print(f"  entropy   = {shannon_entropy(year):.4f} bits")
    print(f"  nakamoto  = {nakamoto_coefficient(year)} entities to reach 51%")
    print(f"  nakamoto  = {nakamoto_coefficient(year, threshold=0.33)} "
          f"entities to reach 33% (selfish mining)")

    # 3. The paper's measurements: per-granularity series.
    for granularity in ("day", "week", "month"):
        series = engine.measure_calendar("gini", granularity)
        print(f"\nfixed {granularity:5s}: {summarize(series)}")

    # 4. Sliding windows (N = one day of blocks, M = N/2).
    sliding = engine.measure_sliding("gini", size=144)
    print(f"\nsliding 144/72: {summarize(sliding)}")
    print(f"points vs fixed daily: {len(sliding)} vs 365 (~2x, paper Eq. 5)")


if __name__ == "__main__":
    main()
