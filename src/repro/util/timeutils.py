"""Calendar helpers for the measurement year (2019).

The paper measures the calendar year 2019 with three granularities: days,
weeks and months.  All chain timestamps in this library are Unix epoch
seconds (UTC).  The helpers below convert timestamps into day / week / month
indices within 2019 and back, entirely with integer arithmetic so they can be
applied to numpy arrays as well as to scalars.

Week convention: the paper splits the year into consecutive 7-day blocks
starting at Jan 1st (so week 0 is Jan 1–7), giving 52 full weeks plus a
single trailing day that is folded into the last week.  This matches the
paper's "weekly" series of ~52 points.
"""

from __future__ import annotations

import datetime as _dt
from typing import Final

import numpy as np

from repro.errors import ValidationError

SECONDS_PER_DAY: Final[int] = 86_400
DAYS_IN_2019: Final[int] = 365

#: Unix timestamp of 2019-01-01T00:00:00Z.
YEAR_2019_START: Final[int] = 1_546_300_800
#: Unix timestamp of 2020-01-01T00:00:00Z (exclusive end of the year).
YEAR_2019_END: Final[int] = YEAR_2019_START + DAYS_IN_2019 * SECONDS_PER_DAY

#: Number of days in each month of 2019 (not a leap year).
MONTH_LENGTHS_2019: Final[tuple[int, ...]] = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)

#: Day index (0-based) on which each month of 2019 starts.
MONTH_STARTS_2019: Final[tuple[int, ...]] = tuple(
    int(np.cumsum((0,) + MONTH_LENGTHS_2019[:-1])[i]) for i in range(12)
)

_MONTH_START_ARRAY = np.asarray(MONTH_STARTS_2019, dtype=np.int64)


def day_index(timestamps: np.ndarray | int | float) -> np.ndarray | int:
    """Return the 0-based day-of-2019 index for Unix ``timestamps``.

    Values before 2019 map to negative indices and values after 2019 map to
    indices >= 365; callers that require in-year data should validate with
    :func:`ensure_within_2019`.
    """
    ts = np.asarray(timestamps, dtype=np.int64)
    index = (ts - YEAR_2019_START) // SECONDS_PER_DAY
    if index.ndim == 0:
        return int(index)
    return index


def week_index(timestamps: np.ndarray | int | float) -> np.ndarray | int:
    """Return the 0-based week-of-2019 index (7-day blocks from Jan 1).

    365 days are 52 full weeks plus one trailing day; that day is folded
    into the last week, so in-year indices lie in ``[0, 51]``.
    """
    days = day_index(timestamps)
    index = np.asarray(days, dtype=np.int64) // 7
    index = np.minimum(index, 51)
    if index.ndim == 0:
        return int(index)
    return index


def month_index(timestamps: np.ndarray | int | float) -> np.ndarray | int:
    """Return the 0-based month-of-2019 index for Unix ``timestamps``."""
    days = np.asarray(day_index(timestamps), dtype=np.int64)
    out_of_year = (days < 0) | (days >= DAYS_IN_2019)
    clipped = np.clip(days, 0, DAYS_IN_2019 - 1)
    index = np.searchsorted(_MONTH_START_ARRAY, clipped, side="right") - 1
    index = np.where(out_of_year, np.where(days < 0, -1, 12), index)
    if index.ndim == 0:
        return int(index)
    return index


def day_start(day: int) -> int:
    """Return the Unix timestamp at which 2019 day ``day`` (0-based) starts."""
    return YEAR_2019_START + int(day) * SECONDS_PER_DAY


def month_bounds(month: int) -> tuple[int, int]:
    """Return ``(start_ts, end_ts)`` for 2019 month ``month`` (0-based).

    ``end_ts`` is exclusive.
    """
    if not 0 <= month < 12:
        raise ValidationError(f"month index must be in [0, 12), got {month}")
    start_day = MONTH_STARTS_2019[month]
    length = MONTH_LENGTHS_2019[month]
    return day_start(start_day), day_start(start_day + length)


def iso_date(day: int) -> str:
    """Return the ISO date string (``YYYY-MM-DD``) of 2019 day ``day``."""
    if not 0 <= day < DAYS_IN_2019:
        raise ValidationError(f"day index must be in [0, 365), got {day}")
    date = _dt.date(2019, 1, 1) + _dt.timedelta(days=int(day))
    return date.isoformat()


def parse_iso_date(text: str) -> int:
    """Parse a ``YYYY-MM-DD`` string in 2019 into a 0-based day index."""
    try:
        date = _dt.date.fromisoformat(text)
    except ValueError as exc:
        raise ValidationError(f"invalid ISO date: {text!r}") from exc
    if date.year != 2019:
        raise ValidationError(f"date {text!r} is not in 2019")
    return (date - _dt.date(2019, 1, 1)).days


def ensure_within_2019(timestamps: np.ndarray) -> None:
    """Raise :class:`ValidationError` if any timestamp falls outside 2019."""
    ts = np.asarray(timestamps, dtype=np.int64)
    if ts.size == 0:
        return
    low = int(ts.min())
    high = int(ts.max())
    if low < YEAR_2019_START or high >= YEAR_2019_END:
        raise ValidationError(
            "timestamps outside 2019: "
            f"range [{low}, {high}] vs [{YEAR_2019_START}, {YEAR_2019_END})"
        )
