"""Ablation — Nakamoto threshold: 0.51 (majority) vs 0.33 (selfish mining).

The paper's introduction notes that selfish mining lowers the attack bar
to 33% of mining power.  Re-running the Nakamoto measurement with
threshold 0.33 shows both chains are markedly *less* safe than the 51%
numbers suggest: Bitcoin drops from 4-5 to 2-3 colluding entities and
Ethereum from 2-3 to 1-2.
"""

import numpy as np


def measure_thresholds(btc, eth):
    return {
        ("btc", 0.51): btc.measure_calendar("nakamoto", "day"),
        ("btc", 0.33): btc.measure_calendar("nakamoto-33", "day"),
        ("eth", 0.51): eth.measure_calendar("nakamoto", "day"),
        ("eth", 0.33): eth.measure_calendar("nakamoto-33", "day"),
    }


def test_ablation_nakamoto_threshold(benchmark, btc, eth):
    results = benchmark.pedantic(
        measure_thresholds, args=(btc, eth), rounds=1, iterations=1
    )
    print("\n=== Nakamoto threshold ablation (daily) ===")
    for (chain, threshold), series in results.items():
        print(
            f"  {chain} @{threshold:.2f}: mean={series.mean():.2f} "
            f"median={series.median():.0f} min={series.min():.0f}"
        )

    # Lowering the threshold can only lower the coefficient, pointwise.
    for chain in ("btc", "eth"):
        assert np.all(
            results[(chain, 0.33)].values <= results[(chain, 0.51)].values
        )
    # Selfish-mining view: Bitcoin needs only 2-3 colluders most days...
    assert 2.0 <= results[("btc", 0.33)].median() <= 3.0
    # ...and a single Ethereum entity is within reach of 33% some days.
    assert results[("eth", 0.33)].min() <= 2.0
