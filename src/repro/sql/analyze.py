"""EXPLAIN ANALYZE support: per-operator execution statistics.

The executor's stages (scan, join, filter, aggregate, project, distinct,
sort, limit) report into an :class:`ExecutionTrace` that builds a tree of
:class:`PlanNode` rows — wall time plus rows in/out per operator — which
:func:`format_plan` renders as the ``repro query --explain-analyze``
output::

    Query                                  time=3.96ms rows=20
    ├─ Parse                               time=0.23ms
    ├─ Plan                                time=0.02ms
    └─ Execute                             time=3.70ms rows=20
       ├─ Scan credits                     time=0.41ms rows=86305
       ├─ Aggregate keys=1 aggregates=1    time=2.22ms in=86305 out=1137
       ...

Operators additionally report the bytes of column data they scanned and
the rows that *spilled* off the columnar fast path onto per-row Python
loops (``bytes=``/``spill=`` in the rendering); while the process-wide
tracer is recording, those totals also accumulate as
``sql.op.<kind>.rows_out`` / ``.bytes_scanned`` / ``.spill_rows``
counters in the Prometheus-exported registry.

When no trace is requested the executor's stage hooks short-circuit to a
shared null operator, and when the process-wide tracer (:mod:`repro.obs`)
is enabled the same hooks emit ``sql.*`` spans instead, so ``--trace``
captures per-operator timing too.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import obs


@dataclass
class PlanNode:
    """One operator's measured execution statistics.

    ``bytes_scanned`` is the raw size of the column data an operator
    touched (scan-type operators).  ``spilled_rows`` counts rows that fell
    off the columnar fast path onto a per-row Python loop — there is no
    disk spill in this engine, so "spill" measures the analogous cliff:
    work leaving vectorized numpy kernels.
    """

    op: str
    detail: str = ""
    rows_in: int | None = None
    rows_out: int | None = None
    rows_est: int | None = None
    bytes_scanned: int | None = None
    spilled_rows: int | None = None
    seconds: float = 0.0
    children: list = field(default_factory=list)

    @property
    def label(self) -> str:
        """Operator name plus its detail, if any."""
        return f"{self.op} {self.detail}".rstrip()


class _OpHandle:
    """Context manager timing one operator inside an :class:`ExecutionTrace`."""

    __slots__ = ("_trace", "node", "_start")

    def __init__(self, trace: "ExecutionTrace", node: PlanNode) -> None:
        self._trace = trace
        self.node = node

    # Stage code sets rows through the handle so the null handle can
    # absorb the writes with plain attributes.
    @property
    def rows_in(self) -> int | None:
        return self.node.rows_in

    @rows_in.setter
    def rows_in(self, value: int) -> None:
        self.node.rows_in = value

    @property
    def rows_out(self) -> int | None:
        return self.node.rows_out

    @rows_out.setter
    def rows_out(self, value: int) -> None:
        self.node.rows_out = value

    @property
    def rows_est(self) -> int | None:
        return self.node.rows_est

    @rows_est.setter
    def rows_est(self, value: int | None) -> None:
        self.node.rows_est = value

    @property
    def bytes_scanned(self) -> int | None:
        return self.node.bytes_scanned

    @bytes_scanned.setter
    def bytes_scanned(self, value: int | None) -> None:
        self.node.bytes_scanned = value

    @property
    def spilled_rows(self) -> int | None:
        return self.node.spilled_rows

    @spilled_rows.setter
    def spilled_rows(self, value: int | None) -> None:
        self.node.spilled_rows = value

    def __enter__(self) -> "_OpHandle":
        self._trace._stack.append(self.node)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.node.seconds = time.perf_counter() - self._start
        stack = self._trace._stack
        if stack and stack[-1] is self.node:
            stack.pop()
        _feed_registry(
            self.node.op, self.node.rows_out, self.node.bytes_scanned,
            self.node.spilled_rows,
        )
        return False


class _NullOp:
    """Absorbs the stage hooks when neither analyze nor tracing is on."""

    __slots__ = ("rows_in", "rows_out", "rows_est", "bytes_scanned", "spilled_rows")

    def __enter__(self) -> "_NullOp":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_OP = _NullOp()


def _feed_registry(
    op: str,
    rows_out: int | None,
    bytes_scanned: int | None,
    spilled_rows: int | None,
) -> None:
    """Accumulate per-operator totals into the process-wide registry.

    One counter family per operator kind (``sql.op.scan.rows_out``,
    ``...bytes_scanned``, ``...spill_rows``) — the operator vocabulary is
    small and fixed, so cardinality stays bounded.  No-op while the
    tracer is disabled.
    """
    if not obs.tracing_enabled():
        return
    key = op.lower()
    if rows_out:
        obs.counter(f"sql.op.{key}.rows_out", rows_out)
    if bytes_scanned:
        obs.counter(f"sql.op.{key}.bytes_scanned", bytes_scanned)
    if spilled_rows:
        obs.counter(f"sql.op.{key}.spill_rows", spilled_rows)


class _ObsOp:
    """Adapts a stage hook onto a span of the process-wide tracer."""

    __slots__ = ("_span", "_op", "rows_in", "rows_out", "rows_est",
                 "bytes_scanned", "spilled_rows")

    def __init__(self, op: str, detail: str) -> None:
        self._span = obs.span(f"sql.{op}", detail=detail) if detail else obs.span(f"sql.{op}")
        self._op = op
        self.rows_in: int | None = None
        self.rows_out: int | None = None
        self.rows_est: int | None = None
        self.bytes_scanned: int | None = None
        self.spilled_rows: int | None = None

    def __enter__(self) -> "_ObsOp":
        self._span.__enter__()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        if self.rows_in is not None:
            self._span.set(rows_in=self.rows_in)
        if self.rows_out is not None:
            self._span.set(rows_out=self.rows_out)
        if self.rows_est is not None:
            self._span.set(rows_est=self.rows_est)
        if self.bytes_scanned is not None:
            self._span.set(bytes_scanned=self.bytes_scanned)
        if self.spilled_rows is not None:
            self._span.set(spilled_rows=self.spilled_rows)
        _feed_registry(self._op, self.rows_out, self.bytes_scanned, self.spilled_rows)
        return self._span.__exit__(*exc_info)


class ExecutionTrace:
    """Collects a :class:`PlanNode` tree while a query executes."""

    def __init__(self) -> None:
        self.root = PlanNode("Query")
        self._stack: list[PlanNode] = [self.root]

    def op(self, op: str, detail: str = "") -> _OpHandle:
        """Open a child operator under the currently executing one."""
        node = PlanNode(op, detail)
        self._stack[-1].children.append(node)
        return _OpHandle(self, node)


def stage_op(trace: ExecutionTrace | None, op: str, detail: str = ""):
    """The stage hook the executor calls around each operator.

    Routes to the analyze collector when one is active, to the process-wide
    tracer when tracing is enabled, and to a shared no-op otherwise.
    """
    if trace is not None:
        return trace.op(op, detail)
    if obs.tracing_enabled():
        return _ObsOp(op, detail)
    return _NULL_OP


def _format_bytes(n: int) -> str:
    """Human byte size with one-letter unit (``4.2MB``, ``978B``)."""
    size = float(n)
    for unit in ("B", "kB", "MB", "GB"):
        if size < 1024.0 or unit == "GB":
            return f"{size:.1f}{unit}" if unit != "B" else f"{int(size)}B"
        size /= 1024.0
    return f"{int(size)}B"  # pragma: no cover - unreachable


def format_plan(node: PlanNode, include_time: bool = True) -> str:
    """Render a plan tree with per-operator wall time and row counts.

    Estimated rows (``est=``, from the cost-based planner) print after the
    actual counts so estimated-vs-actual can be read off each line.  Pure
    ``EXPLAIN`` (no execution) renders with ``include_time=False``, showing
    estimates only.
    """
    lines: list[str] = []

    def visit(node: PlanNode, prefix: str, connector: str, child_prefix: str) -> None:
        stats = [f"time={node.seconds * 1e3:.2f}ms"] if include_time else []
        if node.rows_in is not None and node.rows_in != node.rows_out:
            stats.append(f"in={node.rows_in}")
            if node.rows_out is not None:
                stats.append(f"out={node.rows_out}")
        elif node.rows_out is not None:
            stats.append(f"rows={node.rows_out}")
        if node.rows_est is not None:
            stats.append(f"est={node.rows_est}")
        if node.bytes_scanned is not None:
            stats.append(f"bytes={_format_bytes(node.bytes_scanned)}")
        if node.spilled_rows:
            stats.append(f"spill={node.spilled_rows}")
        label = f"{prefix}{connector}{node.label}"
        lines.append(f"{label:<45s} {' '.join(stats)}".rstrip())
        for i, child in enumerate(node.children):
            last = i == len(node.children) - 1
            visit(
                child,
                child_prefix,
                "└─ " if last else "├─ ",
                child_prefix + ("   " if last else "│  "),
            )

    visit(node, "", "", "")
    return "\n".join(lines)
