"""In-process time-series storage with retention and downsampling rollups.

The serving layer (PR 3/7) exposed *instantaneous* gauges; the paper's
argument is that decentralization must be watched **over time** — the
Jan-14-2019 anomaly is only visible against thirteen days of history.
This module is the retention substrate: a dependency-free
:class:`TimeSeriesStore` that keeps, per series,

* a **raw ring buffer** of the most recent ``(timestamp, value)`` points
  (bounded, O(1) append), and
* **downsampling rollups** — by default 1-minute and 10-minute buckets,
  each holding exact ``count``/``sum``/``min``/``max`` plus a bounded
  :class:`QuantileSketch` — so history survives long after the raw ring
  has wrapped, at a resolution that degrades gracefully with age.

Every existing counter/gauge/timing gets history for free through the
registry hook: :meth:`~repro.obs.metrics.MetricsRegistry.set_history`
wires each instrument's updates into a store.  With no store attached the
per-update cost is a single ``is None`` check — the disabled path is
budgeted (<2% of the BTC sliding sweep) in
``benchmarks/bench_perf_timeseries.py``, same contract as the tracer and
profiler.

The store is clock-injectable (pass a callable or a
:class:`~repro.resilience.retry.Clock`), so the SLO engine's burn-rate
windows (:mod:`repro.obs.slo`) evaluate on a
:class:`~repro.resilience.retry.ManualClock` in tests.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Iterable

from repro.errors import ValidationError

#: Raw points kept per series before the ring wraps.
DEFAULT_RAW_CAPACITY = 4096

#: Default rollup levels as ``(resolution_seconds, retention_seconds)``:
#: 1-minute buckets for 6 hours, 10-minute buckets for 3 days — the spans
#: the slow burn-rate windows in :mod:`repro.obs.slo` need.
DEFAULT_LEVELS: tuple[tuple[float, float], ...] = (
    (60.0, 6 * 3600.0),
    (600.0, 3 * 86400.0),
)

#: Values kept per rollup bucket for quantile estimates.
_SKETCH_CAP = 64


def _resolve_clock(clock) -> Callable[[], float]:
    """Accept a plain callable, a Clock-like object, or None (wall time)."""
    if clock is None:
        return time.time
    monotonic = getattr(clock, "monotonic", None)
    if monotonic is not None:
        return monotonic
    if callable(clock):
        return clock
    raise ValidationError(f"clock must be callable or have .monotonic, got {clock!r}")


class QuantileSketch:
    """A bounded value sample for quantile estimates inside one bucket.

    Uses deterministic reservoir sampling (a small LCG seeded from the
    stream length) so repeated runs over the same data give identical
    quantiles — the same reproducibility contract as the rest of the
    pipeline.

    >>> sketch = QuantileSketch()
    >>> for v in range(100):
    ...     sketch.add(float(v))
    >>> 40.0 <= sketch.quantile(0.5) <= 60.0
    True
    """

    __slots__ = ("_values", "_seen", "_state", "capacity")

    def __init__(self, capacity: int = _SKETCH_CAP) -> None:
        if capacity < 1:
            raise ValidationError(f"sketch capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._values: list[float] = []
        self._seen = 0
        self._state = 0x9E3779B9

    def add(self, value: float) -> None:
        """Fold one value into the sketch."""
        self._seen += 1
        if len(self._values) < self.capacity:
            self._values.append(value)
            return
        # Deterministic LCG draw in [0, seen): classic reservoir rule.
        self._state = (self._state * 1103515245 + 12345) & 0x7FFFFFFF
        slot = self._state % self._seen
        if slot < self.capacity:
            self._values[slot] = value

    @property
    def seen(self) -> int:
        """Total values ever added (may exceed the retained sample)."""
        return self._seen

    def quantile(self, q: float) -> float:
        """The ``q``-th quantile (0..1) of the retained sample (0.0 if empty)."""
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        if len(ordered) == 1:
            return ordered[0]
        position = min(max(q, 0.0), 1.0) * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class Bucket:
    """One rollup bucket: exact aggregates plus a quantile sketch."""

    __slots__ = ("start", "count", "total", "minimum", "maximum", "sketch")

    def __init__(self, start: float) -> None:
        self.start = start
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.sketch = QuantileSketch()

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.sketch.add(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """JSON-ready view served by ``/api/v1/series``."""
        return {
            "ts": self.start,
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "p50": self.sketch.quantile(0.50),
            "p95": self.sketch.quantile(0.95),
        }


class RollupLevel:
    """A bounded sequence of fixed-resolution buckets for one series."""

    __slots__ = ("resolution", "retention", "_buckets")

    def __init__(self, resolution: float, retention: float) -> None:
        if resolution <= 0:
            raise ValidationError(f"resolution must be positive, got {resolution}")
        if retention < resolution:
            raise ValidationError(
                f"retention {retention} is shorter than one {resolution}s bucket"
            )
        self.resolution = resolution
        self.retention = retention
        max_buckets = max(int(retention // resolution), 1)
        self._buckets: deque[Bucket] = deque(maxlen=max_buckets)

    def record(self, ts: float, value: float) -> None:
        """Fold one point into its bucket (out-of-order folds backwards)."""
        start = ts - (ts % self.resolution)
        if self._buckets and self._buckets[-1].start == start:
            self._buckets[-1].add(value)
            return
        if self._buckets and start < self._buckets[-1].start:
            # Late arrival: fold into the matching older bucket if it is
            # still retained; points older than the window are dropped.
            for bucket in reversed(self._buckets):
                if bucket.start == start:
                    bucket.add(value)
                    return
                if bucket.start < start:
                    break
            return
        bucket = Bucket(start)
        bucket.add(value)
        self._buckets.append(bucket)

    def buckets(self, start: float | None = None, end: float | None = None) -> list[Bucket]:
        """Retained buckets overlapping ``[start, end]``, oldest first."""
        out = []
        for bucket in self._buckets:
            if start is not None and bucket.start + self.resolution <= start:
                continue
            if end is not None and bucket.start > end:
                continue
            out.append(bucket)
        return out

    def __len__(self) -> int:
        return len(self._buckets)


class Series:
    """One named series: a raw ring plus its rollup levels."""

    __slots__ = ("name", "kind", "_ts", "_values", "_capacity", "_next", "_count",
                 "levels")

    def __init__(
        self,
        name: str,
        capacity: int = DEFAULT_RAW_CAPACITY,
        levels: Iterable[tuple[float, float]] = DEFAULT_LEVELS,
        kind: str = "value",
    ) -> None:
        if capacity < 1:
            raise ValidationError(f"raw capacity must be >= 1, got {capacity}")
        self.name = name
        self.kind = kind
        self._capacity = capacity
        self._ts: list[float] = []
        self._values: list[float] = []
        self._next = 0
        self._count = 0
        self.levels = [RollupLevel(res, ret) for res, ret in levels]

    def record(self, ts: float, value: float) -> None:
        if len(self._ts) < self._capacity:
            self._ts.append(ts)
            self._values.append(value)
        else:
            self._ts[self._next] = ts
            self._values[self._next] = value
        self._next = (self._next + 1) % self._capacity
        self._count += 1
        for level in self.levels:
            level.record(ts, value)

    @property
    def total_points(self) -> int:
        """Points ever recorded (the ring retains at most ``capacity``)."""
        return self._count

    def raw_points(
        self, start: float | None = None, end: float | None = None
    ) -> list[tuple[float, float]]:
        """Retained raw ``(ts, value)`` points in arrival order."""
        n = len(self._ts)
        if n < self._capacity:
            order = range(n)
        else:
            order = [(self._next + i) % self._capacity for i in range(n)]
        out = []
        for i in order:
            ts = self._ts[i]
            if start is not None and ts < start:
                continue
            if end is not None and ts > end:
                continue
            out.append((ts, self._values[i]))
        return out

    def latest(self) -> tuple[float, float] | None:
        """The most recent ``(ts, value)``, or None when empty."""
        if not self._ts:
            return None
        index = (self._next - 1) % self._capacity if self._ts else 0
        if len(self._ts) < self._capacity:
            index = len(self._ts) - 1
        return (self._ts[index], self._values[index])


class TimeSeriesStore:
    """Thread-safe, bounded, in-process metric history.

    >>> store = TimeSeriesStore(clock=lambda: 0.0)
    >>> store.record("demo", 1.0, ts=0.0)
    >>> store.record("demo", 3.0, ts=1.0)
    >>> [p["value"] for p in store.query("demo")["points"]]
    [1.0, 3.0]

    A serving thread (``/api/v1/series``) reads while the ingest thread
    records; both take the store lock, and every query returns fresh
    lists, never internal state.
    """

    def __init__(
        self,
        raw_capacity: int = DEFAULT_RAW_CAPACITY,
        levels: Iterable[tuple[float, float]] = DEFAULT_LEVELS,
        clock=None,
    ) -> None:
        self._lock = threading.RLock()
        self._series: dict[str, Series] = {}
        self._raw_capacity = raw_capacity
        self._levels = tuple(levels)
        self._now = _resolve_clock(clock)

    def now(self) -> float:
        """The store's current clock reading."""
        return self._now()

    # -- recording ------------------------------------------------------------

    def series(self, name: str, kind: str = "value") -> Series:
        """Get or create the series ``name``."""
        existing = self._series.get(name)
        if existing is not None:
            return existing
        with self._lock:
            return self._series.setdefault(
                name, Series(name, self._raw_capacity, self._levels, kind=kind)
            )

    def record(self, name: str, value: float, ts: float | None = None,
               kind: str = "value") -> None:
        """Append one point to ``name`` (now-stamped unless ``ts`` given)."""
        series = self.series(name, kind=kind)
        with self._lock:
            series.record(self._now() if ts is None else float(ts), float(value))

    def recorder(self, name: str, kind: str = "value") -> Callable[[float], None]:
        """A single-argument callback recording into ``name``.

        This is what :meth:`~repro.obs.metrics.MetricsRegistry.set_history`
        installs on each instrument — one bound callable per instrument,
        so the hot path does no dict lookups.
        """
        series = self.series(name, kind=kind)
        lock = self._lock
        now = self._now

        def record(value: float) -> None:
            with lock:
                series.record(now(), float(value))

        return record

    # -- querying -------------------------------------------------------------

    def series_names(self) -> list[str]:
        """Sorted names of every series with at least one point."""
        with self._lock:
            return sorted(
                name for name, s in self._series.items() if s.total_points
            )

    def latest(self, name: str) -> tuple[float, float] | None:
        """Most recent ``(ts, value)`` of ``name``, or None."""
        with self._lock:
            series = self._series.get(name)
            return series.latest() if series is not None else None

    def raw_points(
        self, name: str, start: float | None = None, end: float | None = None
    ) -> list[tuple[float, float]]:
        """Raw retained points of ``name`` in ``[start, end]``."""
        with self._lock:
            series = self._series.get(name)
            return series.raw_points(start, end) if series is not None else []

    def tail_values(self, name: str, n: int) -> list[float]:
        """The last ``n`` raw values of ``name`` (for sparklines)."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                return []
            points = series.raw_points()
        return [value for _, value in points[-n:]]

    def query(
        self,
        name: str,
        start: float | None = None,
        end: float | None = None,
        step: float | None = None,
    ) -> dict:
        """A JSON-ready slice of ``name`` at the resolution fitting ``step``.

        ``step`` picks the level: ``None``/small steps read the raw ring
        (``{"ts", "value"}`` points), larger steps read the coarsest
        rollup whose resolution still fits (``{"ts", "count", "mean",
        "min", "max", "p50", "p95"}`` buckets).  Raises :class:`KeyError`
        for an unknown series — the HTTP layer maps that onto 404.
        """
        with self._lock:
            series = self._series.get(name)
            if series is None or not series.total_points:
                raise KeyError(name)
            level = None
            if step is not None:
                for candidate in series.levels:
                    if candidate.resolution <= step:
                        level = candidate
            if level is None:
                points = [
                    {"ts": ts, "value": value}
                    for ts, value in series.raw_points(start, end)
                ]
                resolution = 0.0
            else:
                points = [b.as_dict() for b in level.buckets(start, end)]
                resolution = level.resolution
        return {
            "name": name,
            "kind": series.kind,
            "start": start,
            "end": end,
            "step": resolution,
            "points": points,
        }

    def stats(self) -> dict:
        """Store-wide footprint summary for ``/status``."""
        with self._lock:
            names = [s for s in self._series.values() if s.total_points]
            return {
                "series": len(names),
                "points_recorded": sum(s.total_points for s in names),
                "raw_capacity": self._raw_capacity,
                "levels": [
                    {"resolution": res, "retention": ret}
                    for res, ret in self._levels
                ],
            }


def attach_history(registry, store: TimeSeriesStore | None = None,
                   clock=None) -> TimeSeriesStore:
    """Wire ``registry``'s instruments into a store (creating one if needed).

    Convenience wrapper over
    :meth:`~repro.obs.metrics.MetricsRegistry.set_history`; returns the
    attached store.  Detach with ``registry.set_history(None)``.
    """
    if store is None:
        store = TimeSeriesStore(clock=clock)
    registry.set_history(store)
    return store
