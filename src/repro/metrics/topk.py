"""Top-k share (extension metric).

The combined share of the ``k`` largest producers — a direct, intuitive
concentration readout (e.g. "the top 4 pools mine 55% of blocks").
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError
from repro.metrics.base import validate_distribution


def top_k_share(values: np.ndarray | list[float], k: int = 4) -> float:
    """Combined share of the ``k`` heaviest entities, in ``(0, 1]``.

    If fewer than ``k`` entities exist the share is 1.0.

    >>> top_k_share([50, 30, 10, 10], k=2)
    0.8
    >>> top_k_share([1.0], k=4)
    1.0
    """
    if k <= 0:
        raise MetricError(f"k must be positive, got {k}")
    array = validate_distribution(values)
    top = np.sort(array)[::-1][:k]
    # Summation order differs between `top` and `array`, so the ratio can
    # exceed 1.0 by a rounding epsilon; clamp it.
    return min(float(top.sum() / array.sum()), 1.0)
