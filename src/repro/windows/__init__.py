"""Measurement windows: calendar fixed windows and block-count sliding windows.

The paper measures with two window families:

* **Fixed windows** (§II-C): calendar days, weeks and months of 2019 — no
  overlap between consecutive windows.
* **Sliding windows** (§III): count-based windows of N blocks advanced by a
  step of M blocks (M = N/2 in the paper), giving
  ``L = (S - N) / M + 1`` windows over ``S`` blocks, with ``N - M``
  overlapping blocks between consecutive windows.
"""

from repro.windows.base import BlockWindow, TimeWindow, Window
from repro.windows.fixed import FixedBlockWindows, FixedCalendarWindows
from repro.windows.sliding import SlidingBlockWindows, sliding_window_count
from repro.windows.timesliding import SlidingTimeWindows

__all__ = [
    "BlockWindow",
    "FixedBlockWindows",
    "FixedCalendarWindows",
    "SlidingBlockWindows",
    "SlidingTimeWindows",
    "TimeWindow",
    "Window",
    "sliding_window_count",
]
