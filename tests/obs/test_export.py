"""Tests for trace exporters, loaders and schema validation."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.export import (
    TRACE_FORMAT_VERSION,
    load_trace_file,
    load_trace_file_lenient,
    to_chrome_trace,
    to_jsonl_records,
    validate_trace_file,
    write_trace,
)
from repro.obs.tracer import Tracer


@pytest.fixture
def traced():
    """A tracer with a small nested trace plus metrics recorded."""
    tracer = Tracer().enable()
    with tracer.span("sweep", chain="btc"):
        with tracer.span("window"):
            pass
        with tracer.span("window"):
            pass
    tracer.counter("cache.hit", 3)
    tracer.gauge("depth", 2.0)
    tracer.timing("build", 0.125)
    tracer.disable()
    return tracer


@pytest.fixture
def multiprocess_traced():
    """A coordinator trace with spans adopted from two 'worker' tracers.

    Built the way the pool builds it — child tracers record under the
    propagated trace id, export their state, and the coordinator adopts
    each envelope under a shard span — but synchronously, so the test
    controls the worker 'pids'.
    """
    coordinator = Tracer().enable()
    with coordinator.span("sweep") as sweep:
        for fake_pid in (11_111, 22_222):
            with coordinator.span("shard") as shard:
                worker = Tracer()
                worker.enable()
                worker.pid = fake_pid
                worker.trace_id = coordinator.trace_id
                with worker.span("worker.shard"):
                    with worker.span("worker.inner"):
                        pass
                envelope = worker.export_state()
            coordinator.adopt(envelope, parent_span=shard.span_id)
        assert sweep is not None
    coordinator.disable()
    return coordinator


class TestJsonl:
    def test_meta_record_first(self, traced):
        records = to_jsonl_records(traced)
        assert records[0]["type"] == "meta"
        assert records[0]["version"] == TRACE_FORMAT_VERSION
        assert records[0]["n_spans"] == 3

    def test_round_trip(self, traced, tmp_path):
        path = write_trace(traced, tmp_path / "t.jsonl")
        spans, metrics = load_trace_file(path)
        assert [s.name for s in spans] == [s.name for s in traced.spans]
        assert [s.parent_id for s in spans] == [s.parent_id for s in traced.spans]
        assert metrics["counters"] == {"cache.hit": 3.0}
        assert metrics["gauges"] == {"depth": 2.0}
        assert metrics["timings"]["build"]["count"] == 1

    def test_attrs_survive(self, traced, tmp_path):
        path = write_trace(traced, tmp_path / "t.jsonl")
        spans, _ = load_trace_file(path)
        sweep = next(s for s in spans if s.name == "sweep")
        assert sweep.attrs == {"chain": "btc"}


class TestChrome:
    def test_events_are_complete_events_in_microseconds(self, traced):
        document = to_chrome_trace(traced)
        xs = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 3
        for event, span in zip(xs, traced.spans):
            assert event["ts"] == pytest.approx(span.start * 1e6)
            assert event["dur"] == pytest.approx(span.duration * 1e6)
            assert event["args"]["span_id"] == span.span_id

    def test_counters_ride_as_c_events(self, traced):
        document = to_chrome_trace(traced)
        cs = [e for e in document["traceEvents"] if e["ph"] == "C"]
        assert cs and cs[0]["args"] == {"cache.hit": 3.0}

    def test_round_trip(self, traced, tmp_path):
        path = write_trace(traced, tmp_path / "t.json")
        spans, metrics = load_trace_file(path)
        by_id = {s.span_id: s for s in spans}
        windows = [s for s in spans if s.name == "window"]
        assert len(windows) == 2
        assert all(by_id[w.parent_id].name == "sweep" for w in windows)
        assert metrics["counters"] == {"cache.hit": 3.0}
        assert metrics["timings"]["build"]["count"] == 1

    def test_loadable_as_plain_json(self, traced, tmp_path):
        path = write_trace(traced, tmp_path / "t.json")
        document = json.loads(path.read_text())
        assert isinstance(document["traceEvents"], list)
        assert document["otherData"]["format"] == "repro-trace"


class TestValidation:
    def test_valid_files_summarize(self, traced, tmp_path):
        for name, fmt in (("t.jsonl", "jsonl"), ("t.json", "chrome")):
            path = write_trace(traced, tmp_path / name)
            summary = validate_trace_file(path)
            assert summary["format"] == fmt
            assert summary["n_spans"] == 3
            assert summary["n_counters"] == 1
            assert summary["n_gauges"] == 1
            assert summary["n_timings"] == 1

    def test_missing_file(self, tmp_path):
        with pytest.raises(ObservabilityError, match="no trace file"):
            load_trace_file(tmp_path / "absent.json")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        with pytest.raises(ObservabilityError, match="empty"):
            load_trace_file(path)

    def test_bad_jsonl_line_reports_lineno(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type": "meta"}\nnot json\n')
        with pytest.raises(ObservabilityError, match=":2"):
            load_trace_file(path)

    def test_jsonl_span_missing_keys(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type": "span", "id": 1, "name": "x"}\n')
        with pytest.raises(ObservabilityError, match="missing keys"):
            load_trace_file(path)

    def test_jsonl_unknown_record_type(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(ObservabilityError, match="unknown record type"):
            load_trace_file(path)

    def test_chrome_without_trace_events(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text('{"traceEvents": 5}')
        with pytest.raises(ObservabilityError, match="traceEvents"):
            validate_trace_file(path)

    def test_chrome_event_missing_keys(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"traceEvents": [{"name": "x", "ph": "X"}]}))
        with pytest.raises(ObservabilityError, match="missing keys"):
            validate_trace_file(path)

    def test_negative_duration_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record = {
            "type": "span", "id": 1, "parent": None,
            "name": "x", "start": 0.0, "dur": -1.0,
        }
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ObservabilityError, match="negative duration"):
            validate_trace_file(path)

    def test_dangling_parent_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record = {
            "type": "span", "id": 1, "parent": 99,
            "name": "x", "start": 0.0, "dur": 1.0,
        }
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ObservabilityError, match="unknown parent"):
            validate_trace_file(path)


class TestMultiProcessChrome:
    """Chrome export/load round-trips of a multi-process (adopted) trace."""

    def test_process_name_lanes_per_worker(self, multiprocess_traced):
        document = to_chrome_trace(multiprocess_traced)
        names = {
            e["pid"]: e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names[multiprocess_traced.pid] == "repro coordinator"
        assert names[11_111] == "repro worker 11111"
        assert names[22_222] == "repro worker 22222"

    def test_events_carry_real_pids(self, multiprocess_traced):
        document = to_chrome_trace(multiprocess_traced)
        xs = [e for e in document["traceEvents"] if e["ph"] == "X"]
        by_name: dict[str, set[int]] = {}
        for event in xs:
            by_name.setdefault(event["name"], set()).add(event["pid"])
        assert by_name["sweep"] == {multiprocess_traced.pid}
        assert by_name["worker.shard"] == {11_111, 22_222}
        assert by_name["worker.inner"] == {11_111, 22_222}

    def test_round_trip_preserves_pids_and_linkage(
        self, multiprocess_traced, tmp_path
    ):
        path = write_trace(multiprocess_traced, tmp_path / "multi.json")
        validate_trace_file(path)
        spans, _ = load_trace_file(path)
        by_id = {s.span_id: s for s in spans}
        workers = [s for s in spans if s.name == "worker.shard"]
        inners = [s for s in spans if s.name == "worker.inner"]
        assert {s.pid for s in workers} == {11_111, 22_222}
        # Worker-internal linkage survived: inner -> worker.shard, and
        # each worker.shard parents under its adopting shard span.
        for inner in inners:
            assert by_id[inner.parent_id].name == "worker.shard"
            assert inner.pid == by_id[inner.parent_id].pid
        for worker in workers:
            assert by_id[worker.parent_id].name == "shard"

    def test_jsonl_round_trip_preserves_pids(self, multiprocess_traced, tmp_path):
        path = write_trace(multiprocess_traced, tmp_path / "multi.jsonl")
        validate_trace_file(path)
        spans, _ = load_trace_file(path)
        pids = {s.name: s.pid for s in spans}
        # Coordinator spans carry the writing process's pid explicitly.
        assert pids["sweep"] == multiprocess_traced.pid
        assert pids["worker.shard"] in (11_111, 22_222)


class TestLenientLoading:
    def _write_good_and_bad(self, tmp_path):
        path = tmp_path / "t.jsonl"
        good_span = {
            "type": "span", "id": 1, "parent": None,
            "name": "ok", "start": 0.0, "dur": 0.5,
        }
        lines = [
            json.dumps({"type": "meta", "format": "repro-trace", "version": 1}),
            json.dumps(good_span),
            '{"type": "span", "id": 2, "nam',  # truncated mid-write
            json.dumps({"type": "span", "id": 3, "name": "partial"}),  # keys missing
            json.dumps({"type": "counter", "name": "hits"}),  # value missing
            json.dumps({"type": "mystery"}),
            json.dumps({"type": "counter", "name": "good", "value": 2.0}),
        ]
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_skips_and_counts_corrupt_records(self, tmp_path):
        path = self._write_good_and_bad(tmp_path)
        spans, metrics, skipped = load_trace_file_lenient(path)
        assert [s.name for s in spans] == ["ok"]
        assert metrics["counters"] == {"good": 2.0}
        assert skipped == 4

    def test_strict_loader_still_raises_on_same_file(self, tmp_path):
        path = self._write_good_and_bad(tmp_path)
        with pytest.raises(ObservabilityError):
            load_trace_file(path)

    def test_clean_file_loads_with_zero_skips(self, traced, tmp_path):
        path = write_trace(traced, tmp_path / "t.jsonl")
        spans, metrics, skipped = load_trace_file_lenient(path)
        assert skipped == 0
        assert len(spans) == 3
        assert metrics["counters"] == {"cache.hit": 3.0}

    def test_corrupt_chrome_document_counts_one_skip(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text('{"traceEvents": [{"name": "x"')  # truncated JSON
        spans, metrics, skipped = load_trace_file_lenient(path)
        assert spans == []
        assert skipped == 1
        assert metrics == {"counters": {}, "gauges": {}, "timings": {}}

    def test_intact_chrome_document_loads(self, traced, tmp_path):
        path = write_trace(traced, tmp_path / "t.json")
        spans, _, skipped = load_trace_file_lenient(path)
        assert skipped == 0
        assert len(spans) == 3

    def test_missing_file_still_raises(self, tmp_path):
        with pytest.raises(ObservabilityError, match="no trace file"):
            load_trace_file_lenient(tmp_path / "absent.jsonl")
