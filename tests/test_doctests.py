"""Run the library's doctests (API examples in docstrings must stay true)."""

import doctest

import pytest

import repro.chain.tags
import repro.metrics.entropy
import repro.obs.alerts
import repro.obs.metrics
import repro.obs.prometheus
import repro.obs.slo
import repro.obs.timeseries
import repro.obs.top
import repro.metrics.gini
import repro.metrics.hhi
import repro.metrics.nakamoto
import repro.metrics.theil
import repro.metrics.topk
import repro.serve.http
import repro.serve.loadgen
import repro.serve.overload
import repro.sql.executor
import repro.viz.tables
import repro.windows.sliding

MODULES = [
    repro.chain.tags,
    repro.metrics.entropy,
    repro.obs.alerts,
    repro.obs.metrics,
    repro.obs.prometheus,
    repro.obs.slo,
    repro.obs.timeseries,
    repro.obs.top,
    repro.metrics.gini,
    repro.metrics.hhi,
    repro.metrics.nakamoto,
    repro.metrics.theil,
    repro.metrics.topk,
    repro.serve.http,
    repro.serve.loadgen,
    repro.serve.overload,
    repro.sql.executor,
    repro.viz.tables,
    repro.windows.sliding,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
