"""Markdown study reports.

:func:`generate_report` renders the whole study — dataset shapes, every
figure's summary statistics with a sparkline, the headline findings and
the anomaly scan — into one markdown document, the artifact a measurement
study ships alongside its figures.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.figures import FigureResult
from repro.analysis.study import DecentralizationStudy
from repro.core.anomaly import iqr_anomalies
from repro.core.summary import summarize
from repro.viz.tables import sparkline


def generate_report(study: DecentralizationStudy, path: str | Path | None = None) -> str:
    """Render the study as markdown; optionally write it to ``path``."""
    sections = [
        _header(),
        _dataset_section(study),
        _findings_section(study),
        _figures_section(study),
        _anomaly_section(study),
        _events_section(study),
    ]
    text = "\n\n".join(sections) + "\n"
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def _header() -> str:
    return (
        "# Decentralization study report\n\n"
        "Measuring decentralization in Bitcoin and Ethereum with multiple "
        "metrics (Gini, Shannon entropy, Nakamoto coefficient) and "
        "granularities (day/week/month; fixed and sliding windows), over "
        "the simulated 2019 datasets."
    )


def _dataset_section(study: DecentralizationStudy) -> str:
    lines = ["## Datasets", "", "| chain | blocks | heights | producers |", "|---|---|---|---|"]
    for which in ("btc", "eth"):
        chain = study.chain(which)
        lines.append(
            f"| {chain.spec.name} | {chain.n_blocks:,} | "
            f"{chain.start_height:,}..{chain.end_height:,} | "
            f"{chain.n_producers:,} |"
        )
    return "\n".join(lines)


def _findings_section(study: DecentralizationStudy) -> str:
    findings = study.findings()
    lines = [
        "## Headline findings",
        "",
        f"* **More decentralized:** {findings.more_decentralized}",
        f"* **More stable:** {findings.more_stable}",
        "",
        "| metric | btc mean | eth mean | more decentralized | btc CV | eth CV | more stable |",
        "|---|---|---|---|---|---|---|",
    ]
    stability = {c.metric_name: c for c in findings.stability.comparisons}
    for level in findings.level:
        stab = stability[level.metric_name]
        lines.append(
            f"| {level.metric_name} | {level.mean_a:.4f} | {level.mean_b:.4f} "
            f"| {level.winner} | {stab.cv_a:.4f} | {stab.cv_b:.4f} "
            f"| {stab.winner} |"
        )
    return "\n".join(lines)


def _figures_section(study: DecentralizationStudy) -> str:
    lines = ["## Figures"]
    for figure in study.all_figures():
        lines.append("")
        lines.append(f"### {figure.figure_id}: {figure.title}")
        lines.extend(_figure_body(figure))
    return "\n".join(lines)


def _figure_body(figure: FigureResult) -> list[str]:
    lines: list[str] = []
    if figure.series:
        lines.append("")
        lines.append("| series | n | mean | std | min | max | trend |")
        lines.append("|---|---|---|---|---|---|---|")
        for label in sorted(figure.series):
            series = figure.series[label]
            summary = summarize(series)
            lines.append(
                f"| {label} | {summary.n_windows} | {summary.mean:.4f} "
                f"| {summary.std:.4f} | {summary.minimum:.4f} "
                f"| {summary.maximum:.4f} | `{sparkline(series, width=30)}` |"
            )
    for distribution in figure.distributions:
        lines.append("")
        lines.append(
            f"Window **{distribution.window_label}** — "
            f"{distribution.n_producers} producers; top shares:"
        )
        for name, share in distribution.top:
            lines.append(f"* {name}: {share:.2%}")
        lines.append(f"* (other): {distribution.other_share:.2%}")
    if figure.notes and not figure.series:
        lines.append("")
        for key, value in sorted(figure.notes.items()):
            lines.append(f"* `{key}` = {value:g}")
    return lines


def _events_section(study: DecentralizationStudy) -> str:
    from repro.analysis.events import coincident_events, event_timeline

    lines = [
        "## Multi-metric events",
        "",
        "Dates flagged by at least two metrics simultaneously (outlier or "
        "trend shift):",
        "",
    ]
    found_any = False
    for which in ("btc", "eth"):
        events = event_timeline(study.engine(which))
        for group in coincident_events(events, min_metrics=2):
            found_any = True
            metrics = ", ".join(
                f"{event.metric} ({event.kind})" for event in group
            )
            lines.append(f"* **{group[0].label}** ({group[0].chain}): {metrics}")
    if not found_any:
        lines.append("* none detected")
    return "\n".join(lines)


def _anomaly_section(study: DecentralizationStudy) -> str:
    lines = [
        "## Anomaly scan (IQR rule, daily series)",
        "",
        "| chain | metric | anomalous windows | examples |",
        "|---|---|---|---|",
    ]
    for which in ("btc", "eth"):
        engine = study.engine(which)
        # One daily sweep serves all three metrics.
        daily = engine.measure_calendar_many(("gini", "entropy", "nakamoto"), "day")
        for metric in ("gini", "entropy", "nakamoto"):
            report = iqr_anomalies(daily[metric])
            examples = ", ".join(report.labels[:3]) if report else "—"
            lines.append(
                f"| {study.chain(which).spec.name} | {metric} "
                f"| {report.count} | {examples} |"
            )
    return "\n".join(lines)
