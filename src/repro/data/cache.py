"""Simulate-once chain caching on top of :class:`ChainStore`."""

from __future__ import annotations

from typing import Callable

from repro.chain.chain import Chain
from repro.data.store import ChainStore


def cached_chain(
    store: ChainStore,
    name: str,
    build: Callable[[], Chain],
    refresh: bool = False,
) -> Chain:
    """Return the stored chain ``name``, building and storing it if absent.

    ``build`` is only invoked on a cache miss (or when ``refresh`` is
    true), so expensive simulations — Ethereum's 2.2M blocks take several
    seconds — run once per store.

    >>> store = ChainStore(tmpdir)                              # doctest: +SKIP
    >>> eth = cached_chain(store, "eth-2019", simulate_ethereum_2019)  # doctest: +SKIP
    """
    if refresh or not store.exists(name):
        chain = build()
        store.save(name, chain, overwrite=True)
        return chain
    return store.load(name)
