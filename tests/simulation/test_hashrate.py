"""Tests for the hashrate schedule."""

import numpy as np
import pytest

from repro.chain.pools import PoolInfo, PoolRegistry
from repro.errors import SimulationError
from repro.simulation.hashrate import HashrateSchedule


@pytest.fixture
def registry() -> PoolRegistry:
    return PoolRegistry(
        [
            PoolInfo("A", "a", 0.30, 0.10),
            PoolInfo("B", "b", 0.20, 0.40),
        ]
    )


class TestHashrateSchedule:
    def test_shape(self, registry):
        schedule = HashrateSchedule(registry, seed=1)
        assert schedule.n_pools == 2
        assert schedule.all_shares().shape == (365, 2)

    def test_jitter_zero_matches_interpolation(self, registry):
        schedule = HashrateSchedule(registry, seed=1, jitter_sigma=0.0)
        shares = schedule.pool_shares(0)
        assert shares[0] == pytest.approx(0.30)
        assert shares[1] == pytest.approx(0.20)
        end = schedule.pool_shares(364)
        assert end[0] == pytest.approx(0.10)
        assert end[1] == pytest.approx(0.40)

    def test_jitter_stays_near_base(self, registry):
        schedule = HashrateSchedule(registry, seed=1, jitter_sigma=0.05)
        shares = schedule.all_shares()
        base0 = np.asarray([0.30 + (0.10 - 0.30) * d / 364 for d in range(365)])
        ratio = shares[:, 0] / base0
        assert 0.7 < ratio.min() and ratio.max() < 1.4

    def test_jitter_is_persistent_not_white(self, registry):
        """AR(1) noise: adjacent days must be highly correlated."""
        schedule = HashrateSchedule(registry, seed=3, jitter_sigma=0.2, jitter_phi=0.95)
        log_shares = np.log(schedule.all_shares()[:, 0])
        deltas = np.diff(log_shares)
        assert np.abs(deltas).mean() < 0.1  # smooth day-to-day

    def test_deterministic_per_seed(self, registry):
        a = HashrateSchedule(registry, seed=9).all_shares()
        b = HashrateSchedule(registry, seed=9).all_shares()
        assert np.array_equal(a, b)

    def test_day_out_of_range_rejected(self, registry):
        schedule = HashrateSchedule(registry, seed=1)
        with pytest.raises(SimulationError):
            schedule.pool_shares(365)

    def test_empty_registry_rejected(self):
        with pytest.raises(SimulationError):
            HashrateSchedule(PoolRegistry(), seed=1)

    def test_invalid_phi_rejected(self, registry):
        with pytest.raises(SimulationError):
            HashrateSchedule(registry, seed=1, jitter_phi=1.0)


class TestScalePool:
    def test_scales_only_selected_days(self, registry):
        schedule = HashrateSchedule(registry, seed=1, jitter_sigma=0.0)
        schedule.scale_pool(0, start_day=10, n_days=5, factor=2.0)
        base = PoolInfo("A", "a", 0.30, 0.10)
        assert schedule.pool_shares(10)[0] == pytest.approx(2 * base.share_on_day(10))
        assert schedule.pool_shares(15)[0] == pytest.approx(base.share_on_day(15))
        assert schedule.pool_shares(9)[0] == pytest.approx(base.share_on_day(9))

    def test_other_pools_untouched(self, registry):
        schedule = HashrateSchedule(registry, seed=1, jitter_sigma=0.0)
        before = schedule.pool_shares(12)[1]
        schedule.scale_pool(0, 10, 5, 3.0)
        assert schedule.pool_shares(12)[1] == pytest.approx(before)

    def test_invalid_factor_rejected(self, registry):
        schedule = HashrateSchedule(registry, seed=1)
        with pytest.raises(SimulationError):
            schedule.scale_pool(0, 0, 1, 0.0)

    def test_out_of_year_spike_rejected(self, registry):
        schedule = HashrateSchedule(registry, seed=1)
        with pytest.raises(SimulationError):
            schedule.scale_pool(0, 400, 5, 2.0)
