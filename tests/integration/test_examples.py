"""Smoke tests: every example script must run cleanly end to end.

Examples are the repository's public face; a broken one is a broken
deliverable.  Each is executed in-process via runpy with stdout captured.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100, f"{script} produced almost no output"


def test_all_examples_discovered():
    assert len(EXAMPLES) >= 7
    assert "quickstart.py" in EXAMPLES
