"""Shared utilities: time handling for 2019, validation helpers, seeded RNG."""

from repro.util.rng import derive_rng, spawn_rngs
from repro.util.timeutils import (
    DAYS_IN_2019,
    SECONDS_PER_DAY,
    YEAR_2019_END,
    YEAR_2019_START,
    day_index,
    day_start,
    iso_date,
    month_bounds,
    month_index,
    parse_iso_date,
    week_index,
)
from repro.util.validation import (
    ensure_in_range,
    ensure_nonnegative_array,
    ensure_positive,
    ensure_positive_int,
    ensure_probability,
)

__all__ = [
    "DAYS_IN_2019",
    "SECONDS_PER_DAY",
    "YEAR_2019_END",
    "YEAR_2019_START",
    "day_index",
    "day_start",
    "derive_rng",
    "ensure_in_range",
    "ensure_nonnegative_array",
    "ensure_positive",
    "ensure_positive_int",
    "ensure_probability",
    "iso_date",
    "month_bounds",
    "month_index",
    "parse_iso_date",
    "spawn_rngs",
    "week_index",
]
