"""Connectivity advantage: how network position skews effective mining power.

When two blocks race, the better-connected miner's block reaches the rest
of the mining power first and tends to win.  A pool's *effective* share is
therefore its hashrate share inflated (or deflated) by its propagation
advantage.  Following the standard race model, a pool whose mean latency
to the other pools is :math:`t_i` wins races against the average
:math:`\\bar t` in proportion to the stale window it imposes vs suffers:

.. math::

    s_i^{eff} \\propto s_i \\cdot
        \\frac{1 - r(t_i)}{1 - r(\\bar t)}, \\qquad
    r(t) = 1 - e^{-t / \\lambda}

with :math:`\\lambda` the block interval.  The effect is tiny for Bitcoin
(600 s intervals) and material for fast chains — the network-layer tax on
decentralization.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import SimulationError
from repro.network.topology import P2PNetwork


@dataclass(frozen=True)
class AdvantageReport:
    """Per-pool effective-share adjustment."""

    block_interval: float
    #: pool -> mean latency (ms) to the other pool gateways.
    latency_ms: dict[str, float]
    #: pool -> multiplicative share adjustment (1.0 = neutral).
    adjustment: dict[str, float]

    def effective_shares(self, shares: dict[str, float]) -> dict[str, float]:
        """Apply the adjustments to nominal ``shares`` and renormalize."""
        adjusted = {
            pool: share * self.adjustment.get(pool, 1.0)
            for pool, share in shares.items()
        }
        total = sum(adjusted.values())
        if total <= 0:
            raise SimulationError("effective shares sum to zero")
        return {pool: share / total for pool, share in adjusted.items()}


def connectivity_advantage(
    network: P2PNetwork, block_interval_seconds: float
) -> AdvantageReport:
    """Compute each pool gateway's propagation-race adjustment."""
    if block_interval_seconds <= 0:
        raise SimulationError("block_interval_seconds must be positive")
    gateways = network.pool_gateways
    if len(gateways) < 2:
        raise SimulationError("need at least two pool gateways")
    latency: dict[str, float] = {}
    for pool, node in gateways.items():
        lengths = nx.single_source_dijkstra_path_length(
            network.graph, node, weight="latency"
        )
        others = [
            lengths[other]
            for other_pool, other in gateways.items()
            if other_pool != pool and other in lengths
        ]
        if not others:
            raise SimulationError(f"pool {pool!r} cannot reach any other gateway")
        latency[pool] = float(np.mean(others))
    mean_latency = float(np.mean(list(latency.values())))
    interval_ms = block_interval_seconds * 1_000.0
    baseline_win = float(np.exp(-mean_latency / interval_ms))
    adjustment = {
        pool: float(np.exp(-latency[pool] / interval_ms)) / baseline_win
        for pool in gateways
    }
    return AdvantageReport(
        block_interval=block_interval_seconds,
        latency_ms=latency,
        adjustment=adjustment,
    )
