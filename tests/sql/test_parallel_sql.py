"""Parallel group-by operators: identical results, visible plan nodes.

The parallel aggregation path (partitioned scan + partial/final
aggregate) must return exactly what the serial path returns — group
numbering included, since un-ORDERed group-by output order is part of
the engine's observable behavior.  The row threshold is monkeypatched
down so the small fixture tables exercise the sharded path.
"""

import numpy as np
import pytest

from repro.sql import QueryEngine, format_plan
from repro.sql import executor as executor_module
from repro.table import Table


@pytest.fixture(autouse=True)
def low_row_threshold(monkeypatch):
    monkeypatch.setattr(executor_module, "_PARALLEL_MIN_ROWS", 100)


@pytest.fixture(scope="module")
def credits_table() -> Table:
    rng = np.random.default_rng(7)
    n = 5_000
    producers = np.asarray([f"pool-{i:02d}" for i in range(23)], dtype=object)
    return Table(
        {
            "height": np.arange(n, dtype=np.int64),
            "producer": producers[rng.integers(0, len(producers), n)],
            "weight": rng.random(n),
            "day": (np.arange(n, dtype=np.int64) // 144),
        }
    )


def make_engines(table: Table) -> tuple[QueryEngine, QueryEngine]:
    return (
        QueryEngine({"credits": table}, workers=1),
        QueryEngine({"credits": table}, workers=3),
    )


QUERIES = [
    "SELECT producer, COUNT(*) AS n FROM credits GROUP BY producer",
    "SELECT producer, COUNT(*) AS n FROM credits "
    "GROUP BY producer ORDER BY n DESC, producer LIMIT 10",
    "SELECT day, MIN(weight) AS lo, MAX(weight) AS hi FROM credits GROUP BY day",
    "SELECT producer, MIN(height) AS first_seen FROM credits GROUP BY producer",
    "SELECT day, COUNT(weight) AS n FROM credits GROUP BY day",
    "SELECT producer, day, COUNT(*) AS n FROM credits GROUP BY producer, day",
    "SELECT producer, COUNT(*) AS n FROM credits "
    "GROUP BY producer HAVING COUNT(*) > 200",
]


class TestParallelResultsIdentical:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_exact_queries(self, credits_table, sql):
        serial, parallel = make_engines(credits_table)
        assert parallel.execute(sql).to_rows() == serial.execute(sql).to_rows()

    def test_sum_avg_close(self, credits_table):
        # SUM/AVG partials merge float partial sums, so the guarantee is
        # last-ulp closeness rather than bitwise equality.
        sql = (
            "SELECT producer, SUM(weight) AS total, AVG(weight) AS mean "
            "FROM credits GROUP BY producer ORDER BY producer"
        )
        serial, parallel = make_engines(credits_table)
        a, b = serial.execute(sql), parallel.execute(sql)
        assert b["producer"].tolist() == a["producer"].tolist()
        np.testing.assert_allclose(b["total"], a["total"], rtol=1e-12)
        np.testing.assert_allclose(b["mean"], a["mean"], rtol=1e-12)

    def test_group_order_matches_serial_first_appearance(self, credits_table):
        sql = "SELECT day, COUNT(*) AS n FROM credits GROUP BY day"
        serial, parallel = make_engines(credits_table)
        assert (
            parallel.execute(sql)["day"].tolist()
            == serial.execute(sql)["day"].tolist()
        )


class TestEligibility:
    def test_small_inputs_stay_serial(self, credits_table, monkeypatch):
        monkeypatch.setattr(executor_module, "_PARALLEL_MIN_ROWS", 1_000_000)
        _, parallel = make_engines(credits_table)
        _, root = parallel.explain_analyze(
            "SELECT producer, COUNT(*) AS n FROM credits GROUP BY producer"
        )
        assert "ParallelScan" not in format_plan(root)

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT producer, COUNT(DISTINCT day) AS d FROM credits GROUP BY producer",
            "SELECT producer, MEDIAN(weight) AS m FROM credits GROUP BY producer",
            "SELECT producer, STDDEV(weight) AS s FROM credits GROUP BY producer",
        ],
    )
    def test_non_mergeable_aggregates_fall_back(self, credits_table, sql):
        serial, parallel = make_engines(credits_table)
        _, root = parallel.explain_analyze(sql)
        assert "ParallelScan" not in format_plan(root)
        assert parallel.execute(sql).to_rows() == serial.execute(sql).to_rows()

    def test_serial_engine_never_parallelizes(self, credits_table):
        serial, _ = make_engines(credits_table)
        _, root = serial.explain_analyze(
            "SELECT producer, COUNT(*) AS n FROM credits GROUP BY producer"
        )
        assert "ParallelScan" not in format_plan(root)


class TestExplainAnalyze:
    def test_plan_shows_partitioned_operators(self, credits_table):
        _, parallel = make_engines(credits_table)
        result, root = parallel.explain_analyze(
            "SELECT producer, COUNT(*) AS n FROM credits GROUP BY producer"
        )
        text = format_plan(root)
        assert result.num_rows == 23
        assert text.count("ParallelScan") == 3
        assert text.count("PartialAggregate") == 3
        assert "FinalizeAggregate" in text
        assert "partitions=3 workers=3" in text
        # Each partition node names its row slice.
        assert "partition=0" in text and "partition=2" in text
