"""Tests for uncle income (extension)."""

import numpy as np
import pytest

from repro.core.engine import MeasurementEngine
from repro.errors import SimulationError
from repro.metrics import nakamoto_coefficient
from repro.rewards import (
    ETHEREUM_REWARDS_2019,
    UncleModel,
    income_with_uncles,
    reward_credits,
    uncle_credits,
)


@pytest.fixture(scope="module")
def eth_uncles(eth_chain):
    return uncle_credits(eth_chain, ETHEREUM_REWARDS_2019, seed=2019)


class TestUncleModel:
    def test_defaults_match_2019(self):
        model = UncleModel()
        assert model.rate == pytest.approx(0.068)
        assert model.reward_fraction == pytest.approx(7 / 8)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate": 1.0},
            {"rate": -0.1},
            {"reward_fraction": 0.0},
            {"nephew_bonus": -0.1},
        ],
    )
    def test_invalid_model_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            UncleModel(**kwargs)


class TestUncleCredits:
    def test_uncle_frequency_matches_rate(self, eth_chain, eth_uncles):
        # Two credits (uncle + nephew) per hosting block.
        hosting_blocks = eth_uncles.n_credits / 2
        assert hosting_blocks / eth_chain.n_blocks == pytest.approx(0.068, abs=0.002)

    def test_income_split_uncle_vs_nephew(self, eth_uncles):
        weights = sorted(np.unique(eth_uncles.weights).tolist())
        assert weights == [pytest.approx(2.0 / 32), pytest.approx(2.0 * 7 / 8)]

    def test_positions_sorted_and_csr_consistent(self, eth_uncles):
        assert np.all(np.diff(eth_uncles.block_positions) >= 0)
        assert eth_uncles.block_offsets[0] == 0
        assert eth_uncles.block_offsets[-1] == eth_uncles.n_credits

    def test_uncle_producers_follow_hashrate_distribution(self, eth_chain, eth_uncles):
        """The top uncle earner is also the top block producer."""
        main_counts = np.bincount(
            eth_chain.producer_ids, minlength=eth_chain.n_producers
        )
        uncle_weights = np.bincount(
            eth_uncles.entity_ids,
            weights=eth_uncles.weights,
            minlength=eth_uncles.n_entities,
        )
        assert main_counts.argmax() == uncle_weights.argmax()

    def test_deterministic(self, eth_chain):
        a = uncle_credits(eth_chain, ETHEREUM_REWARDS_2019, seed=3)
        b = uncle_credits(eth_chain, ETHEREUM_REWARDS_2019, seed=3)
        assert np.array_equal(a.weights, b.weights)


class TestIncomeWithUncles:
    def test_total_is_main_plus_uncles(self, eth_chain, eth_uncles):
        main = reward_credits(eth_chain, ETHEREUM_REWARDS_2019, seed=2019)
        combined = income_with_uncles(eth_chain, ETHEREUM_REWARDS_2019, seed=2019)
        assert combined.total_weight == pytest.approx(
            main.total_weight + eth_uncles.total_weight
        )

    def test_uncle_income_share_is_material(self, eth_chain, eth_uncles):
        combined = income_with_uncles(eth_chain, ETHEREUM_REWARDS_2019, seed=2019)
        share = eth_uncles.total_weight / combined.total_weight
        assert 0.04 < share < 0.08  # ~6% of issuance flowed through uncles

    def test_nakamoto_unchanged_by_uncles(self, eth_chain):
        """Uncles mirror the hashrate distribution, so they do not move
        the income Nakamoto coefficient."""
        main = reward_credits(eth_chain, ETHEREUM_REWARDS_2019, seed=2019)
        combined = income_with_uncles(eth_chain, ETHEREUM_REWARDS_2019, seed=2019)
        n_main = nakamoto_coefficient(main.distribution(0, main.n_credits))
        n_combined = nakamoto_coefficient(
            combined.distribution(0, combined.n_credits)
        )
        assert n_combined == n_main

    def test_measurable_by_engine(self, eth_chain):
        combined = income_with_uncles(eth_chain, ETHEREUM_REWARDS_2019, seed=2019)
        engine = MeasurementEngine(combined)
        series = engine.measure_sliding("gini", size=180_000)
        assert len(series) == 23
