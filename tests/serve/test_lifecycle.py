"""Lifecycle hardening and error-body contract for the telemetry server.

Satellites (b) and (c) of the overload issue: ``start()`` twice raises a
clear :class:`~repro.errors.ServeError`, ``stop()`` is idempotent, a
handler exception becomes a structured 500 JSON body (and bumps
``serve.http_errors_total``), and every 4xx/5xx on the API carries the
standardized ``{"error": {"code": ..., "message": ...}}`` shape.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import ServeError
from repro.obs.metrics import MetricsRegistry
from repro.serve import OverloadConfig, OverloadGuard, TelemetryServer, error_body


def http_get(port: int, path: str, headers: dict | None = None,
             timeout: float = 5.0):
    """GET localhost -> (status, headers, body_text)."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", headers=headers or {}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.headers, response.read().decode()
    except urllib.error.HTTPError as err:
        return err.code, err.headers, err.read().decode()


def error_payload(body: str) -> dict:
    """Assert the standardized error shape and return the inner object."""
    payload = json.loads(body)
    assert set(payload) == {"error"}
    assert set(payload["error"]) == {"code", "message"}
    return payload["error"]


class TestServerLifecycle:
    def test_start_twice_raises_serve_error(self):
        server = TelemetryServer(MetricsRegistry())
        try:
            server.start()
            with pytest.raises(ServeError, match="already serving"):
                server.start()
        finally:
            server.stop()

    def test_stop_is_idempotent(self):
        server = TelemetryServer(MetricsRegistry())
        server.start()
        server.stop()
        server.stop()
        server.stop()

    def test_stopped_server_cannot_restart(self):
        server = TelemetryServer(MetricsRegistry())
        server.start()
        server.stop()
        with pytest.raises(ServeError, match="cannot be restarted"):
            server.start()

    def test_stop_before_start_releases_the_socket(self):
        server = TelemetryServer(MetricsRegistry())
        server.stop()  # never started: still clean
        with pytest.raises(ServeError):
            server.start()


class TestHandlerExceptions:
    def test_crashing_status_fn_becomes_structured_500(self):
        registry = MetricsRegistry()

        def exploding_status():
            raise RuntimeError("status exploded")

        with TelemetryServer(registry, status_fn=exploding_status) as server:
            status, headers, body = http_get(server.port, "/status")
        assert status == 500
        assert headers.get("Content-Type").startswith("application/json")
        error = error_payload(body)
        assert error["code"] == "internal"
        assert "status exploded" in error["message"]
        assert registry.snapshot()["counters"]["serve.http_errors_total"] == 1

    def test_healthy_endpoints_survive_a_crashing_neighbour(self):
        def exploding_status():
            raise RuntimeError("boom")

        with TelemetryServer(
            MetricsRegistry(), status_fn=exploding_status
        ) as server:
            assert http_get(server.port, "/status")[0] == 500
            assert http_get(server.port, "/healthz")[0] == 200
            assert http_get(server.port, "/metrics")[0] == 200


class TestErrorBodyContract:
    def test_error_body_shape(self):
        assert json.loads(error_body("x", "y")) == {
            "error": {"code": "x", "message": "y"}
        }

    def test_unknown_path_404(self):
        with TelemetryServer(MetricsRegistry()) as server:
            status, headers, body = http_get(server.port, "/nope")
        assert status == 404
        assert headers.get("Content-Type").startswith("application/json")
        error = error_payload(body)
        assert error["code"] == "not_found"
        assert "/nope" in error["message"]

    def test_series_and_alerts_not_enabled_404(self):
        with TelemetryServer(MetricsRegistry()) as server:
            for path, expected in [
                ("/api/v1/series", "timeseries not enabled"),
                ("/api/v1/alerts", "alerting not enabled"),
            ]:
                status, _, body = http_get(server.port, path)
                assert status == 404
                assert error_payload(body)["message"] == expected

    def test_bad_series_param_400(self):
        from repro.obs.timeseries import TimeSeriesStore

        store = TimeSeriesStore()
        store.record("gini", 0.5)
        with TelemetryServer(MetricsRegistry(), store=store) as server:
            status, _, body = http_get(
                server.port, "/api/v1/series/gini?start=banana"
            )
        assert status == 400
        error = error_payload(body)
        assert error["code"] == "bad_request"
        assert "banana" in error["message"]

    def test_not_ready_503_is_structured(self):
        with TelemetryServer(
            MetricsRegistry(), ready_fn=lambda: False
        ) as server:
            status, headers, body = http_get(server.port, "/readyz")
        assert status == 503
        assert headers.get("Content-Type").startswith("application/json")
        assert error_payload(body)["code"] == "not_ready"


class TestOverloadIntegration:
    def _server(self, **config_kwargs):
        registry = MetricsRegistry()
        guard = OverloadGuard(OverloadConfig(**config_kwargs), registry=registry)
        server = TelemetryServer(
            registry, status_fn=lambda: {"chain": "demo"}, overload=guard
        )
        return server, guard, registry

    def test_rate_limited_client_gets_429_with_headers(self):
        server, _, registry = self._server(rate_limit=0.1, burst=2)
        with server:
            client = {"X-Client-Id": "greedy"}
            codes = [
                http_get(server.port, "/metrics", headers=client)[0]
                for _ in range(4)
            ]
            assert codes.count(200) == 2
            assert codes.count(429) == 2
            status, headers, body = http_get(
                server.port, "/metrics", headers=client
            )
            assert status == 429
            assert headers.get("RateLimit-Limit") == "0.1"
            assert headers.get("RateLimit-Remaining") == "0"
            assert headers.get("Retry-After") is not None
            assert error_payload(body)["code"] == "rate_limited"
        counters = registry.snapshot()["counters"]
        assert counters["serve.ratelimit.throttled_total"] == 3

    def test_distinct_clients_have_distinct_budgets(self):
        server, _, _ = self._server(rate_limit=0.1, burst=1)
        with server:
            assert http_get(server.port, "/metrics",
                            headers={"X-Client-Id": "a"})[0] == 200
            assert http_get(server.port, "/metrics",
                            headers={"X-Client-Id": "a"})[0] == 429
            assert http_get(server.port, "/metrics",
                            headers={"X-Client-Id": "b"})[0] == 200

    def test_healthz_is_never_rate_limited(self):
        server, _, _ = self._server(rate_limit=0.1, burst=1)
        with server:
            client = {"X-Client-Id": "probe"}
            codes = [
                http_get(server.port, "/healthz", headers=client)[0]
                for _ in range(10)
            ]
        assert codes == [200] * 10

    def test_status_carries_etag_and_304_on_revalidation(self):
        server, _, _ = self._server(cache_ttl=60.0)
        with server:
            status, headers, body = http_get(server.port, "/status")
            assert status == 200
            etag = headers.get("ETag")
            assert etag and etag.startswith('"')
            status, headers2, body2 = http_get(
                server.port, "/status", headers={"If-None-Match": etag}
            )
            assert status == 304
            assert body2 == ""
            assert headers2.get("ETag") == etag

    def test_fresh_cache_hits_are_byte_identical(self):
        server, guard, _ = self._server(cache_ttl=60.0)
        with server:
            first = http_get(server.port, "/status")[2]
            second = http_get(server.port, "/status")[2]
        assert first == second
        assert guard.cache.snapshot()["hits"] >= 1

    def test_saturated_admission_returns_503_with_retry_after(self):
        server, guard, _ = self._server(
            max_inflight=1, max_queue=0, queue_timeout=0.0
        )
        with server:
            # Hold the only slot by hand: the next arrival must be shed.
            assert guard.admission.acquire()
            try:
                status, headers, body = http_get(server.port, "/metrics")
            finally:
                guard.admission.release()
            assert status == 503
            assert headers.get("Retry-After") is not None
            assert error_payload(body)["code"] == "overloaded"

    def test_saturated_cacheable_path_serves_stale_snapshot(self):
        server, guard, _ = self._server(
            max_inflight=1, max_queue=0, queue_timeout=0.0, cache_ttl=0.0
        )
        with server:
            fresh_body = http_get(server.port, "/status")[2]  # caches it
            # The handler releases its slot just after replying; wait for
            # that before grabbing the only slot ourselves.
            deadline = time.monotonic() + 5.0
            while not guard.admission.acquire():
                assert time.monotonic() < deadline, "slot never released"
                time.sleep(0.005)
            try:
                status, headers, stale_body = http_get(server.port, "/status")
            finally:
                guard.admission.release()
            assert status == 200
            assert headers.get("X-Repro-Degraded") == "stale"
            assert stale_body == fresh_body  # byte-identical
