"""Integrity validation, quarantine + repair policies, and quality reports."""

import pytest

from repro.errors import IntegrityError, ValidationError
from repro.resilience.integrity import (
    RawBlock,
    chain_from_raw_blocks,
    raw_blocks,
    repair_blocks,
    validate_blocks,
)
from tests.conftest import TINY_SPEC, make_tiny_chain


def rows(n: int = 6, start: int = 100) -> list[RawBlock]:
    return [RawBlock(start + i, 1_000 + 600 * i, (f"p{i % 3}",)) for i in range(n)]


def kinds(issues) -> set[str]:
    return {issue.kind for issue in issues}


class TestValidateBlocks:
    def test_clean_extract_has_no_issues(self):
        assert validate_blocks(rows(), range(100, 106)) == []

    def test_detects_height_gap(self):
        blocks = rows()
        del blocks[2]
        issues = validate_blocks(blocks, range(100, 106))
        assert kinds(issues) == {"height_gap"}
        assert issues[0].height == 102

    def test_detects_duplicate_height(self):
        blocks = rows() + [rows()[3]]
        assert kinds(validate_blocks(blocks, range(100, 106))) == {"duplicate_height"}

    def test_detects_out_of_range_and_corrupt_heights(self):
        blocks = rows() + [RawBlock(-101, 999, ("p",))]
        issues = validate_blocks(blocks, range(100, 106))
        assert kinds(issues) == {"height_out_of_range", "height_gap"} - {"height_gap"}

    def test_detects_timestamp_regression(self):
        blocks = rows()
        blocks[3] = RawBlock(blocks[3].height, blocks[3].timestamp - 10_000,
                             blocks[3].producers)
        assert kinds(validate_blocks(blocks, range(100, 106))) == {
            "timestamp_regression"
        }

    def test_detects_empty_producers(self):
        blocks = rows()
        blocks[1] = RawBlock(blocks[1].height, blocks[1].timestamp, ())
        assert "empty_producers" in kinds(validate_blocks(blocks, range(100, 106)))

    def test_reordered_rows_alone_are_not_an_issue(self):
        # Order is repaired silently; content is intact.
        assert validate_blocks(list(reversed(rows())), range(100, 106)) == []


class TestRepairBlocks:
    def test_refetch_restores_the_exact_extract(self):
        pristine = {b.height: b for b in rows()}
        damaged = rows()
        del damaged[2]  # gap
        damaged.append(damaged[0])  # duplicate
        damaged[3] = RawBlock(damaged[3].height, damaged[3].timestamp, ())  # empty
        repaired, report = repair_blocks(
            damaged, range(100, 106), policy="refetch",
            refetch=lambda h: pristine[h],
        )
        assert repaired == rows()
        assert report.refetched == 2
        assert report.deduplicated == 1
        assert report.quarantined == 1
        assert not report.clean

    def test_refetch_recovers_corrupted_timestamps_via_neighbors(self):
        pristine = {b.height: b for b in rows()}
        damaged = rows()
        damaged[2] = RawBlock(damaged[2].height, damaged[2].timestamp - 50_000,
                              damaged[2].producers)
        repaired, report = repair_blocks(
            damaged, range(100, 106), policy="refetch",
            refetch=lambda h: pristine[h],
        )
        assert repaired == rows()
        # Both sides of the jump are suspects: the corrupt row and one
        # neighbour are re-read.
        assert report.refetched >= 1

    def test_interpolate_clones_the_previous_row(self):
        damaged = rows()
        del damaged[2]
        repaired, report = repair_blocks(damaged, range(100, 106), policy="interpolate")
        assert [b.height for b in repaired] == list(range(100, 106))
        clone = repaired[2]
        assert clone.timestamp == repaired[1].timestamp
        assert clone.producers == repaired[1].producers
        assert report.interpolated == 1

    def test_drop_omits_unrecoverable_rows(self):
        damaged = rows()
        del damaged[2]
        repaired, report = repair_blocks(damaged, range(100, 106), policy="drop")
        assert [b.height for b in repaired] == [100, 101, 103, 104, 105]
        assert report.dropped == 1

    def test_reordering_is_repaired_and_reported(self):
        repaired, report = repair_blocks(
            list(reversed(rows())), range(100, 106), policy="drop"
        )
        assert repaired == rows()
        assert report.reordered == 1
        assert not report.clean

    def test_clean_input_yields_clean_report(self):
        repaired, report = repair_blocks(
            rows(), range(100, 106), policy="refetch", refetch=lambda h: None
        )
        assert repaired == rows()
        assert report.clean
        assert report.as_dict()["clean"] is True

    def test_refetch_policy_requires_a_callable(self):
        with pytest.raises(ValidationError):
            repair_blocks(rows(), range(100, 106), policy="refetch")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValidationError):
            repair_blocks(rows(), range(100, 106), policy="guess")


class TestChainRoundTrip:
    def test_raw_blocks_round_trips_through_chain_from_raw_blocks(self, tiny_chain):
        blocks = raw_blocks(tiny_chain)
        rebuilt = chain_from_raw_blocks(tiny_chain.spec, blocks)
        assert (rebuilt.heights == tiny_chain.heights).all()
        assert (rebuilt.offsets == tiny_chain.offsets).all()
        assert rebuilt.producer_names == tiny_chain.producer_names

    def test_empty_producers_rejected_at_assembly(self):
        blocks = [RawBlock(TINY_SPEC.start_height, 1_000, ())]
        with pytest.raises(IntegrityError):
            chain_from_raw_blocks(TINY_SPEC, blocks)

    def test_drop_gaps_need_validate_false(self):
        chain = make_tiny_chain([["a"], ["b"], ["c"], ["d"]])
        blocks = raw_blocks(chain)
        del blocks[1]
        rebuilt = chain_from_raw_blocks(chain.spec, blocks, validate=False)
        assert rebuilt.n_blocks == 3
