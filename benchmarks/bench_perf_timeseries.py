"""Performance — metric history overhead when no store is attached.

Every counter/gauge/timing carries an optional ``history`` hook that the
:class:`~repro.obs.timeseries.TimeSeriesStore` attaches at monitor start;
the contract (same as the tracer's in ``bench_perf_obs.py``) is that with
history *detached* the hook is a single ``is None`` check whose total
cost stays under 2% of the BTC sliding-family sweep.  This file measures
both halves, plus the recording path itself, and proves the EWMA anomaly
detector flags the paper's day-14 Bitcoin regime shift with no false
positives on the preceding days.
"""

import time

import pytest

from repro import obs
from repro.obs.alerts import AnomalyDetector
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesStore, attach_history

#: Maximum tolerated detached-history cost, as a fraction of sweep time.
OVERHEAD_BUDGET = 0.02

#: Safety factor on the measured per-sweep event count.
EVENT_MARGIN = 2.0


def _detached_call_cost(calls: int = 200_000) -> float:
    """Mean seconds per counter-inc with no history store attached."""
    registry = MetricsRegistry()
    counter = registry.counter("bench.noop")
    assert counter.history is None
    start = time.perf_counter()
    for _ in range(calls):
        counter.inc()
    return (time.perf_counter() - start) / calls


def test_perf_detached_counter_per_call(benchmark):
    """Microbenchmark: one counter inc with the history hook detached."""
    registry = MetricsRegistry()
    counter = registry.counter("bench.noop")
    assert counter.history is None
    benchmark(counter.inc)


def test_perf_recording_path_per_point(benchmark):
    """Microbenchmark: one gauge set flowing raw + 1m + 10m rollups."""
    registry = MetricsRegistry()
    attach_history(registry)
    gauge = registry.gauge("bench.depth")
    assert gauge.history is not None
    benchmark(gauge.set, 0.5)


def test_detached_history_under_budget(btc):
    """Detached-history cost is <2% of the BTC sliding-family sweep.

    Counts the metric events one warmed sweep fires (spans land on the
    tracer, not the registry, so only counter bumps pay the history
    check), bounds the overhead as (per-call detached cost) x (count,
    with margin), and compares against the measured sweep time — both
    sides scale with machine speed, so the 2% claim is robust.
    """

    def full_family():
        return [btc.measure_sliding("entropy", n) for n in (144, 1_008, 4_320)]

    full_family()  # warm the sliding caches, as in the perf benchmark

    tracer = obs.enable_tracing()
    try:
        full_family()
        events = sum(tracer.metrics.snapshot()["counters"].values())
    finally:
        obs.disable_tracing()

    per_call = _detached_call_cost()
    start = time.perf_counter()
    full_family()
    sweep_seconds = time.perf_counter() - start

    overhead = per_call * events * EVENT_MARGIN
    budget = OVERHEAD_BUDGET * sweep_seconds
    assert overhead < budget, (
        f"detached history would cost {overhead * 1e6:.1f}us per sweep "
        f"({events:.0f} events x{EVENT_MARGIN} margin x {per_call * 1e9:.0f}ns), "
        f"over the 2% budget of {budget * 1e6:.1f}us "
        f"(sweep {sweep_seconds * 1e3:.1f}ms)"
    )


def test_attached_store_records_sweep_counters(btc):
    """Sanity: with a store attached, sweep counters grow history."""
    tracer = obs.enable_tracing()
    store = TimeSeriesStore()
    previous = tracer.metrics.history
    tracer.metrics.set_history(store)
    try:
        btc.measure_sliding("entropy", 2_016, 1_008)
        names = store.series_names()
        assert any(name.startswith("engine.sliding") for name in names)
        fast = store.latest("engine.sliding.fast_path")
        assert fast is not None and fast[1] >= 1.0
    finally:
        tracer.metrics.set_history(previous)
        obs.disable_tracing()


def test_day14_regime_shift_flagged_without_false_positives(btc):
    """§II-C1d: the EWMA z-score detector flags exactly day index 13.

    The replayed 2019 BTC chain's daily Gini collapses on Jan 14 (two
    blocks with 80+/90+ coinbase addresses explode the producer set); fed
    the daily series in order, the detector must fire on day 13 and stay
    quiet on every earlier day.
    """
    gini = btc.measure_calendar("gini", "day")
    detector = AnomalyDetector(alpha=0.3, threshold=4.0, warmup=5)
    flagged = [
        index for index, value in enumerate(gini.values[:14])
        if detector.is_anomaly(float(value))
    ]
    print(f"\n=== day-14 anomaly detector ===")
    print(f"  daily gini[0:14] = {[round(float(v), 3) for v in gini.values[:14]]}")
    print(f"  flagged day indices: {flagged}")
    assert flagged == [13], (
        f"expected exactly day 13 flagged, got {flagged}"
    )
