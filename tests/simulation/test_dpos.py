"""Tests for the DPoS simulator (extension)."""

import numpy as np
import pytest

from repro.chain.specs import ChainSpec
from repro.core.engine import MeasurementEngine
from repro.errors import SimulationError
from repro.simulation.dpos import DposParams, DposSimulator
from repro.util.timeutils import DAYS_IN_2019, YEAR_2019_END, YEAR_2019_START

SMALL_DPOS = ChainSpec(
    name="dpos",
    start_height=1_000,
    block_count=DAYS_IN_2019 * 96,  # 15-minute slots
    target_interval=900.0,
    blocks_per_day=96,
    window_day=96,
    window_week=672,
    window_month=2_880,
)


def make_chain(**overrides):
    params = DposParams(spec=SMALL_DPOS, seed=7, **overrides)
    return DposSimulator(params).run()


class TestStructure:
    def test_exact_block_count_and_grid(self):
        chain = make_chain()
        assert chain.n_blocks == SMALL_DPOS.block_count
        assert chain.timestamps[0] >= YEAR_2019_START
        assert chain.timestamps[-1] < YEAR_2019_END
        deltas = np.diff(chain.timestamps)
        assert deltas.min() == deltas.max() == 900  # perfect slot grid

    def test_single_producer_per_block(self):
        chain = make_chain()
        assert chain.n_credits == chain.n_blocks

    def test_deterministic(self):
        a = make_chain()
        b = make_chain()
        assert np.array_equal(a.producer_ids, b.producer_ids)


class TestCommittee:
    def test_exactly_n_active_within_one_election(self):
        chain = make_chain(miss_rate=0.0, election_interval_days=365)
        assert len(np.unique(chain.producer_ids)) == 21

    def test_round_robin_equal_shares(self):
        chain = make_chain(miss_rate=0.0, election_interval_days=365)
        counts = np.bincount(chain.producer_ids, minlength=60)
        active = counts[counts > 0]
        assert active.max() - active.min() <= len(active)

    def test_elections_create_churn(self):
        chain = make_chain(miss_rate=0.0, election_interval_days=7)
        assert len(np.unique(chain.producer_ids)) > 21

    def test_misses_stay_within_committee(self):
        closed = make_chain(miss_rate=0.3, election_interval_days=365)
        assert len(np.unique(closed.producer_ids)) == 21

    def test_custom_committee_size(self):
        chain = make_chain(n_active=5, miss_rate=0.0, election_interval_days=365)
        assert len(np.unique(chain.producer_ids)) == 5


#: Finer slots (90 s) so per-day producer counts are large enough for the
#: committee's equality to dominate sampling noise.
FINE_DPOS = ChainSpec(
    name="dpos",
    start_height=1_000,
    block_count=DAYS_IN_2019 * 960,
    target_interval=90.0,
    blocks_per_day=960,
    window_day=960,
    window_week=6_720,
    window_month=28_800,
)


class TestMetricsSignature:
    """The DPoS decentralization signature the extension bench reports."""

    @pytest.fixture(scope="class")
    def engine(self):
        params = DposParams(spec=FINE_DPOS, seed=7)
        return MeasurementEngine.from_chain(DposSimulator(params).run())

    def test_daily_gini_near_zero(self, engine):
        assert engine.measure_calendar("gini", "day").mean() < 0.05

    def test_daily_entropy_is_log2_committee(self, engine):
        series = engine.measure_calendar("entropy", "day")
        assert series.mean() == pytest.approx(np.log2(21), abs=0.05)

    def test_nakamoto_is_majority_of_committee(self, engine):
        series = engine.measure_calendar("nakamoto", "day")
        assert set(np.unique(series.values)) == {11.0}

    def test_monthly_gini_reveals_election_churn(self, engine):
        daily = engine.measure_calendar("gini", "day")
        monthly = engine.measure_calendar("gini", "month")
        assert monthly.mean() > 5 * daily.mean()


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_active": 0},
            {"n_active": 100, "candidate_count": 50},
            {"miss_rate": 1.0},
            {"election_interval_days": 0},
        ],
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            DposParams(spec=SMALL_DPOS, **kwargs)
