.PHONY: install test bench examples report lint-docs all

install:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done

report:
	python -m repro.cli report --out STUDY_REPORT.md

all: test bench examples report
