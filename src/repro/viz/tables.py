"""Plain-text rendering of tables, sparklines and series statistics."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.series import MeasurementSeries
from repro.core.summary import summarize
from repro.errors import ValidationError
from repro.table import Table

_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def render_table(
    table: Table,
    max_rows: int = 20,
    float_format: str = "{:.4f}",
) -> str:
    """Render a :class:`~repro.table.Table` as an aligned text grid.

    Truncates to ``max_rows`` rows with an ellipsis line, pads columns to
    their widest cell, and right-aligns numeric columns.

    >>> from repro.table import Table
    >>> print(render_table(Table({"m": ["a", "b"], "n": [1, 10]})))
    m | n
    --+---
    a |  1
    b | 10
    """
    if max_rows < 1:
        raise ValidationError(f"max_rows must be >= 1, got {max_rows}")
    names = list(table.column_names)
    if not names:
        return "(empty table)"
    shown = table.head(max_rows)
    kinds = {name: table.column(name).kind for name in names}
    columns: dict[str, list[str]] = {}
    for name in names:
        cells = []
        for value in shown.column(name).to_list():
            if value is None:
                cells.append("NULL")
            elif kinds[name] == "float":
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        columns[name] = cells
    widths = {
        name: max(len(name), *(len(c) for c in columns[name])) if columns[name] else len(name)
        for name in names
    }
    numeric = {name: kinds[name] in ("int", "float") for name in names}

    def fmt_cell(name: str, text: str) -> str:
        if numeric[name]:
            return text.rjust(widths[name])
        return text.ljust(widths[name])

    header = " | ".join(name.ljust(widths[name]) for name in names)
    rule = "-+-".join("-" * widths[name] for name in names)
    lines = [header, rule]
    for i in range(shown.num_rows):
        lines.append(" | ".join(fmt_cell(name, columns[name][i]) for name in names))
    if table.num_rows > max_rows:
        lines.append(f"... ({table.num_rows - max_rows} more rows)")
    return "\n".join(line.rstrip() for line in lines)


def format_series_rows(
    series_map: Mapping[str, MeasurementSeries], title: str | None = None
) -> str:
    """Aligned per-series statistic rows (the figure-report layout).

    One row per labelled series with the count/mean/std/min/max the paper
    quotes for each figure; shared by the benchmark reports and the CLI
    ``measure`` summary.
    """
    lines = [] if title is None else [f"=== {title} ==="]
    for label, series in series_map.items():
        summary = summarize(series)
        lines.append(
            f"  {label:<10s} n={summary.n_windows:<5d} mean={summary.mean:8.4f} "
            f"std={summary.std:7.4f} min={summary.minimum:8.4f} "
            f"max={summary.maximum:8.4f}"
        )
    return "\n".join(lines)


def format_notes(notes: Mapping[str, float]) -> str:
    """A figure's named scalar statistics, one aligned row each."""
    return "\n".join(
        f"  note {key} = {value:.4f}" for key, value in sorted(notes.items())
    )


def sparkline(values: MeasurementSeries | Sequence[float], width: int = 60) -> str:
    """One-line unicode sparkline of a series.

    >>> sparkline([1, 2, 3, 2, 1], width=5)
    '▁▅█▅▁'
    """
    if width < 1:
        raise ValidationError(f"width must be >= 1, got {width}")
    if isinstance(values, MeasurementSeries):
        array = values.values
    else:
        array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        raise ValidationError("values must not be empty")
    if array.size > width:
        edges = np.linspace(0, array.size, width + 1).round().astype(int)
        array = np.asarray(
            [array[edges[i] : edges[i + 1]].mean() for i in range(width) if edges[i + 1] > edges[i]]
        )
    low, high = float(array.min()), float(array.max())
    if high == low:
        return _SPARK_GLYPHS[0] * array.size
    scaled = (array - low) / (high - low) * (len(_SPARK_GLYPHS) - 1)
    return "".join(_SPARK_GLYPHS[int(round(v))] for v in scaled)
