"""P2P topology generation.

Topologies mix a scale-free core (long-lived, well-connected relay nodes
and datacenter peers) with random peering, reproducing the structure
measurement studies report: heavy-tailed degree, a small relay backbone,
and geographic latency clusters.  Pool gateways attach to the
best-connected nodes — the "mining pools sit close to the backbone"
observation of related work [5].
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.errors import SimulationError
from repro.util.rng import derive_rng

#: Inter-region one-way latencies in milliseconds (symmetric).
REGIONS = ("na", "eu", "asia")
_REGION_LATENCY = {
    ("na", "na"): 30.0,
    ("eu", "eu"): 25.0,
    ("asia", "asia"): 40.0,
    ("na", "eu"): 90.0,
    ("na", "asia"): 150.0,
    ("eu", "asia"): 170.0,
}


def region_latency(a: str, b: str) -> float:
    """Base latency between two regions, in ms."""
    if (a, b) in _REGION_LATENCY:
        return _REGION_LATENCY[(a, b)]
    return _REGION_LATENCY[(b, a)]


@dataclass
class NetworkParams:
    """Parameters of a simulated P2P network."""

    n_nodes: int = 2_000
    #: Edges each new node attaches with (Barabási–Albert parameter).
    attachment: int = 4
    #: Additional random edges per node (flattens pure preferential attachment).
    random_edges: float = 1.0
    #: Fraction of nodes per region, aligned with :data:`REGIONS`.
    region_weights: tuple[float, float, float] = (0.35, 0.35, 0.30)
    #: Pool names to place as gateways on the best-connected nodes.
    pools: tuple[str, ...] = field(default_factory=tuple)
    seed: int = 2019

    def __post_init__(self) -> None:
        if self.n_nodes < 10:
            raise SimulationError("n_nodes must be at least 10")
        if self.attachment < 1 or self.attachment >= self.n_nodes:
            raise SimulationError("attachment must be in [1, n_nodes)")
        if abs(sum(self.region_weights) - 1.0) > 1e-9:
            raise SimulationError("region_weights must sum to 1")


@dataclass
class P2PNetwork:
    """A generated network: the graph plus pool-gateway placement."""

    graph: nx.Graph
    #: pool name -> node id of its gateway.
    pool_gateways: dict[str, int]
    params: NetworkParams

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return self.graph.number_of_nodes()

    @property
    def n_edges(self) -> int:
        """Number of edges."""
        return self.graph.number_of_edges()

    def degrees(self) -> np.ndarray:
        """Node degrees as an array (node-id order)."""
        return np.asarray(
            [self.graph.degree[node] for node in sorted(self.graph.nodes)],
            dtype=np.float64,
        )

    def region_of(self, node: int) -> str:
        """Geographic region of ``node``."""
        return self.graph.nodes[node]["region"]


def generate_network(params: NetworkParams) -> P2PNetwork:
    """Generate a latency-weighted P2P topology with pool gateways."""
    rng = derive_rng(params.seed, "network/topology")
    graph = nx.barabasi_albert_graph(
        params.n_nodes, params.attachment, seed=int(rng.integers(0, 2**31))
    )
    # Extra uniform random peering.
    n_extra = int(params.random_edges * params.n_nodes)
    nodes = np.arange(params.n_nodes)
    for _ in range(n_extra):
        a, b = rng.choice(nodes, size=2, replace=False)
        graph.add_edge(int(a), int(b))
    # Regions and edge latencies.
    regions = rng.choice(REGIONS, size=params.n_nodes, p=params.region_weights)
    for node in graph.nodes:
        graph.nodes[node]["region"] = str(regions[node])
    for a, b in graph.edges:
        base = region_latency(str(regions[a]), str(regions[b]))
        jitter = float(rng.lognormal(0.0, 0.25))
        graph.edges[a, b]["latency"] = base * jitter
    # Pool gateways on the highest-degree nodes, one each.
    by_degree = sorted(graph.nodes, key=lambda n: graph.degree[n], reverse=True)
    gateways = {
        pool: int(by_degree[i]) for i, pool in enumerate(params.pools)
    }
    for pool, node in gateways.items():
        graph.nodes[node]["pool"] = pool
    return P2PNetwork(graph=graph, pool_gateways=gateways, params=params)
