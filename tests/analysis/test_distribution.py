"""Tests for producer-share distribution slices."""

import pytest

from repro.analysis.distribution import producer_shares
from repro.core.engine import MeasurementEngine
from repro.errors import MeasurementError
from repro.util.timeutils import YEAR_2019_START
from repro.windows.base import TimeWindow
from tests.conftest import make_tiny_chain


@pytest.fixture
def engine():
    chain = make_tiny_chain(
        [["a"], ["a"], ["a"], ["b"], ["b"], ["c"]],
        start_ts=YEAR_2019_START,
        spacing=600,
    )
    return MeasurementEngine.from_chain(chain)


@pytest.fixture
def window():
    return TimeWindow(
        index=0, label="w", start_ts=YEAR_2019_START, end_ts=YEAR_2019_START + 86_400
    )


class TestProducerShares:
    def test_top_shares(self, engine, window):
        result = producer_shares(engine, window, top_k=2)
        assert result.top[0] == ("a", pytest.approx(0.5))
        assert result.top[1] == ("b", pytest.approx(1 / 3))
        assert result.other_share == pytest.approx(1 / 6)
        assert result.n_producers == 3

    def test_top_k_larger_than_population(self, engine, window):
        result = producer_shares(engine, window, top_k=10)
        assert len(result.top) == 3
        assert result.other_share == pytest.approx(0.0)

    def test_share_of(self, engine, window):
        result = producer_shares(engine, window, top_k=2)
        assert result.share_of("a") == pytest.approx(0.5)
        assert result.share_of("zzz") == 0.0

    def test_labeler_maps_names(self, engine, window):
        result = producer_shares(
            engine, window, top_k=1, labeler=lambda name: name.upper()
        )
        assert result.top[0][0] == "A"

    def test_invalid_top_k(self, engine, window):
        with pytest.raises(MeasurementError):
            producer_shares(engine, window, top_k=0)

    def test_total_weight(self, engine, window):
        assert producer_shares(engine, window).total_weight == 6.0
