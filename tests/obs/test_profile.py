"""Tests for opt-in per-span resource profiling (:mod:`repro.obs.profile`).

Profiling piggybacks on the tracer's span lifecycle: while enabled every
recorded span gains ``cpu``/``rss_kb`` attributes (plus ``alloc_kb`` /
``alloc_peak_kb`` under tracemalloc sampling), and while disabled the
tracer must not call into the sampler at all.
"""

import pytest

from repro import obs
from repro.obs import profile
from repro.obs.report import format_profile_rollup, profile_rollup


@pytest.fixture
def tracer():
    obs.enable_tracing()
    try:
        yield obs.get_tracer()
    finally:
        profile.disable_profiling()
        obs.disable_tracing()
        obs.get_tracer().reset()


class TestEnableDisable:
    def test_off_by_default(self):
        assert profile.profiling_enabled() is False

    def test_enable_then_disable(self, tracer):
        profile.enable_profiling()
        assert profile.profiling_enabled() is True
        profile.disable_profiling()
        assert profile.profiling_enabled() is False

    def test_disable_clears_tracer_hooks(self, tracer):
        profile.enable_profiling()
        profile.disable_profiling()
        with obs.span("after.disable"):
            pass
        assert "cpu" not in tracer.spans[-1].attrs


class TestSampling:
    def test_spans_gain_cpu_and_rss(self, tracer):
        profile.enable_profiling()
        with obs.span("work"):
            sum(range(10_000))
        span = tracer.spans[-1]
        assert span.attrs["cpu"] >= 0.0
        assert span.attrs["rss_kb"] > 0
        assert "alloc_kb" not in span.attrs

    def test_nested_spans_each_sampled(self, tracer):
        profile.enable_profiling()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        assert all("cpu" in s.attrs for s in tracer.spans)

    def test_tracemalloc_adds_alloc_attrs(self, tracer):
        profile.enable_profiling(trace_malloc=True)
        with obs.span("alloc"):
            blob = [bytearray(64_000) for _ in range(4)]
        span = tracer.spans[-1]
        assert span.attrs["alloc_peak_kb"] >= span.attrs["alloc_kb"]
        assert span.attrs["alloc_peak_kb"] > 100.0  # ~250 KiB allocated
        del blob

    def test_disable_stops_tracemalloc_it_started(self, tracer):
        import tracemalloc

        assert not tracemalloc.is_tracing()
        profile.enable_profiling(trace_malloc=True)
        assert tracemalloc.is_tracing()
        profile.disable_profiling()
        # tracemalloc slows every allocation in the process — it must
        # not outlive the profiling run it was started for.
        assert not tracemalloc.is_tracing()

    def test_unprofiled_spans_have_no_resource_attrs(self, tracer):
        with obs.span("plain"):
            pass
        attrs = tracer.spans[-1].attrs
        assert "cpu" not in attrs and "rss_kb" not in attrs

    def test_rss_kb_reads_positive(self):
        assert profile.rss_kb() > 0


class TestProfiledDecorator:
    def test_plain_call_while_tracing_off(self):
        assert not obs.tracing_enabled()

        @profile.profiled()
        def compute(x):
            return x * 2

        assert compute(21) == 42
        assert obs.get_tracer().spans == []

    def test_records_named_span_when_tracing(self, tracer):
        @profile.profiled("stage.double")
        def compute(x):
            return x * 2

        profile.enable_profiling()
        assert compute(21) == 42
        span = tracer.spans[-1]
        assert span.name == "stage.double"
        assert "cpu" in span.attrs

    def test_default_name_from_module_and_function(self, tracer):
        @profile.profiled()
        def helper():
            return 1

        helper()
        assert tracer.spans[-1].name.endswith(".helper")


class TestRollup:
    def _trace_some_stages(self, tracer):
        profile.enable_profiling()
        for _ in range(3):
            with obs.span("stage.a"):
                sum(range(2_000))
        with obs.span("stage.b"):
            pass

    def test_rollup_groups_by_span_name(self, tracer):
        self._trace_some_stages(tracer)
        rollup = profile_rollup(tracer.spans)
        by_name = {row["name"]: row for row in rollup}
        assert by_name["stage.a"]["calls"] == 3
        assert by_name["stage.b"]["calls"] == 1
        assert by_name["stage.a"]["rss_kb"] > 0

    def test_rollup_skips_unprofiled_spans(self, tracer):
        with obs.span("unprofiled"):
            pass
        self._trace_some_stages(tracer)
        names = {row["name"] for row in profile_rollup(tracer.spans)}
        assert "unprofiled" not in names

    def test_format_renders_every_row(self, tracer):
        self._trace_some_stages(tracer)
        text = format_profile_rollup(profile_rollup(tracer.spans))
        assert "stage.a" in text and "stage.b" in text
        assert "cpu" in text.splitlines()[0]

    def test_format_empty_rollup(self):
        assert format_profile_rollup([]).startswith("(no profiled spans")
