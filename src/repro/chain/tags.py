"""Coinbase tag parsing.

Bitcoin mining pools embed an identifying tag in the coinbase input script
("/F2Pool/", "/ViaBTC/Mined by .../", "/BTC.COM/", ...).  The study's
pool-level attribution uses these tags as the ground truth for mapping
payout addresses to pools; this module extracts them.
"""

from __future__ import annotations

import re
from typing import Final

#: Known 2019 Bitcoin coinbase tag fragments → canonical pool name.
KNOWN_TAG_PATTERNS: Final[tuple[tuple[str, str], ...]] = (
    ("btc.com", "BTC.com"),
    ("f2pool", "F2Pool"),
    ("poolin", "Poolin"),
    ("antpool", "AntPool"),
    ("slush", "SlushPool"),
    ("viabtc", "ViaBTC"),
    ("btc.top", "BTC.TOP"),
    ("huobi", "Huobi.pool"),
    ("58coin", "58COIN"),
    ("bitfury", "BitFury"),
    ("bitcoin.com", "Bitcoin.com"),
    ("dpool", "DPOOL"),
    ("bytepool", "BytePool"),
    ("spiderpool", "SpiderPool"),
    ("okex", "OKExPool"),
    ("novablock", "NovaBlock"),
)

_SLASH_TAG = re.compile(r"/([^/]{2,40})/")


def extract_pool_tag(coinbase_text: str) -> str | None:
    """Extract a canonical pool name from coinbase ``coinbase_text``.

    Returns the canonical name for known pools, the raw slash-delimited tag
    for unknown-but-tagged coinbases, or ``None`` when no tag is present.

    >>> extract_pool_tag("/F2Pool/mined by user xyz")
    'F2Pool'
    >>> extract_pool_tag("/UnknownPool/")
    'UnknownPool'
    >>> extract_pool_tag("no tag here") is None
    True
    """
    lowered = coinbase_text.lower()
    for fragment, canonical in KNOWN_TAG_PATTERNS:
        if fragment in lowered:
            return canonical
    match = _SLASH_TAG.search(coinbase_text)
    if match:
        tag = match.group(1).strip()
        return tag or None
    return None


def is_known_pool_tag(tag: str) -> bool:
    """True if ``tag`` canonicalizes to a known 2019 pool."""
    lowered = tag.lower()
    return any(fragment in lowered for fragment, _ in KNOWN_TAG_PATTERNS)
