"""§II-C1d — the day-14 (Jan 14, 2019) Bitcoin anomaly.

Paper claims: two blocks (558,473 / 558,545) carry more than 80 and more
than 90 coinbase addresses; the day has ~148 blocks but a very large
producer set, giving a very small daily Gini (0.34) and a very large
daily Shannon entropy (6.2).
"""

import pytest

from repro.util.timeutils import day_index


def measure_day14(btc):
    gini = btc.measure_calendar("gini", "day")
    entropy = btc.measure_calendar("entropy", "day")
    return gini, entropy


def test_day14_anomaly(benchmark, btc, study):
    gini, entropy = benchmark(measure_day14, btc)

    chain = study.chain("btc")
    day14_blocks = [
        b for b in chain.anomalous_blocks(threshold=80)
        if day_index(b.timestamp) == 13
    ]
    counts = sorted(b.producer_count for b in day14_blocks)
    print(f"\n=== day-14 anomaly ===")
    print(f"  anomalous blocks: "
          f"{[(b.height, b.producer_count) for b in day14_blocks]}")
    print(f"  daily gini[13]    = {gini.values[13]:.4f} (paper: 0.34)")
    print(f"  daily entropy[13] = {entropy.values[13]:.4f} (paper: 6.2)")

    assert len(day14_blocks) == 2
    assert counts[0] > 80 and counts[1] > 90
    assert gini.values[13] == pytest.approx(0.34, abs=0.06)
    assert gini.values[13] < gini.quantile(0.02)
    assert entropy.values[13] > 6.0
    assert entropy.values[13] > entropy.quantile(0.98)
