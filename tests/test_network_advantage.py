"""Tests for the connectivity-advantage model."""

import pytest

from repro.errors import SimulationError
from repro.network import NetworkParams, connectivity_advantage, generate_network


@pytest.fixture(scope="module")
def network():
    return generate_network(
        NetworkParams(n_nodes=400, pools=("P1", "P2", "P3", "P4"), seed=9)
    )


class TestConnectivityAdvantage:
    def test_adjustments_center_on_one(self, network):
        report = connectivity_advantage(network, 600.0)
        values = list(report.adjustment.values())
        assert min(values) <= 1.0 <= max(values)
        assert all(abs(v - 1.0) < 0.01 for v in values)  # 600s: negligible

    def test_fast_chain_amplifies_advantage(self, network):
        slow = connectivity_advantage(network, 600.0)
        fast = connectivity_advantage(network, 2.0)
        spread_slow = max(slow.adjustment.values()) - min(slow.adjustment.values())
        spread_fast = max(fast.adjustment.values()) - min(fast.adjustment.values())
        assert spread_fast > 10 * spread_slow

    def test_lower_latency_means_higher_adjustment(self, network):
        report = connectivity_advantage(network, 13.2)
        pools = sorted(report.latency_ms, key=report.latency_ms.get)
        adjustments = [report.adjustment[p] for p in pools]
        assert adjustments == sorted(adjustments, reverse=True)

    def test_effective_shares_renormalize(self, network):
        report = connectivity_advantage(network, 13.2)
        shares = {pool: 0.25 for pool in report.adjustment}
        effective = report.effective_shares(shares)
        assert sum(effective.values()) == pytest.approx(1.0)
        # The best-connected pool gains share at the others' expense.
        best = min(report.latency_ms, key=report.latency_ms.get)
        assert effective[best] > 0.25

    def test_invalid_interval_rejected(self, network):
        with pytest.raises(SimulationError):
            connectivity_advantage(network, 0.0)

    def test_requires_two_gateways(self):
        lonely = generate_network(NetworkParams(n_nodes=100, pools=("P1",), seed=1))
        with pytest.raises(SimulationError):
            connectivity_advantage(lonely, 600.0)
