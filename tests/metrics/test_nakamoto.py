"""Tests for the Nakamoto coefficient (paper Eq. 4)."""

import pytest

from repro.errors import MetricError
from repro.metrics.nakamoto import nakamoto_coefficient


class TestNakamotoCoefficient:
    def test_monopoly_is_one(self):
        assert nakamoto_coefficient([100.0]) == 1

    def test_majority_holder_is_one(self):
        assert nakamoto_coefficient([52, 30, 18]) == 1

    def test_paper_example_shape(self):
        # Two at 26% together pass 51%.
        assert nakamoto_coefficient([26, 26, 24, 24]) == 2

    def test_uniform_needs_majority_of_entities(self):
        assert nakamoto_coefficient([1, 1, 1, 1]) == 3
        assert nakamoto_coefficient([1] * 100) == 51

    def test_order_invariance(self):
        assert nakamoto_coefficient([10, 40, 30, 20]) == nakamoto_coefficient(
            [40, 30, 20, 10]
        )

    def test_exact_boundary_counts(self):
        # Top entity holds exactly 51%.
        assert nakamoto_coefficient([51, 49]) == 1

    def test_just_below_boundary_needs_next(self):
        assert nakamoto_coefficient([50.9, 49.1]) == 2

    def test_selfish_mining_threshold(self):
        values = [40, 30, 20, 10]
        assert nakamoto_coefficient(values, threshold=0.33) == 1
        assert nakamoto_coefficient(values, threshold=1.0) == 4

    def test_bitcoin_2019_pool_shape(self):
        """Top-4 just over 51% -> N = 4 (the paper's stable mid-year value)."""
        shares = [14.3, 13.4, 12.0, 11.6, 8.2, 7.0, 6.2, 5.2, 3.4, 2.6,
                  1.2, 1.5, 1.0, 1.4, 2.0, 0.7, 1.5, 1.6, 0.9, 0.9]
        assert nakamoto_coefficient(shares) == 4

    def test_ethereum_2019_pool_shape(self):
        """Top-2 just under 51% -> N = 3 (the paper's typical value)."""
        shares = [26.4, 23.3, 11.4, 9.0, 5.6, 3.7, 2.7, 2.4, 2.9, 1.3, 1.4, 1.0]
        tail = [1.0] * 9  # small miners filling the remaining ~9%
        assert nakamoto_coefficient(shares + tail) == 3

    def test_weights_not_shares_accepted(self):
        # Raw block counts work the same as normalized shares.
        assert nakamoto_coefficient([520, 300, 180]) == 1


class TestThresholdValidation:
    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.1])
    def test_invalid_threshold_rejected(self, bad):
        with pytest.raises(MetricError):
            nakamoto_coefficient([1, 2], threshold=bad)

    def test_empty_rejected(self):
        with pytest.raises(MetricError):
            nakamoto_coefficient([])

    def test_threshold_one_needs_everyone(self):
        assert nakamoto_coefficient([5, 3, 2], threshold=1.0) == 3
