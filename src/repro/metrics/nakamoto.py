"""Nakamoto coefficient (paper Eq. 4).

.. math::

    N = \\min \\{ k : \\sum_{i=1}^{k} p_{(i)} \\ge 0.51 \\}

with :math:`p_{(i)}` the entity shares sorted descending — the minimum
number of entities that must collude to control a majority of mining
power.  Higher is more decentralized.  The default threshold is the
paper's 0.51; pass ``threshold=0.33`` for the selfish-mining bound the
paper's introduction discusses.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError
from repro.metrics.base import validate_distribution


def nakamoto_coefficient(
    values: np.ndarray | list[float], threshold: float = 0.51
) -> int:
    """Minimum number of entities whose combined share reaches ``threshold``.

    >>> nakamoto_coefficient([40, 30, 20, 10])
    2
    >>> nakamoto_coefficient([40, 30, 20, 10], threshold=0.33)
    1
    >>> nakamoto_coefficient([1, 1, 1, 1])
    3
    """
    if not 0.0 < threshold <= 1.0:
        raise MetricError(f"threshold must be in (0, 1], got {threshold}")
    array = validate_distribution(values)
    shares = np.sort(array)[::-1] / array.sum()
    cumulative = np.cumsum(shares)
    # Guard the final element against floating-point undershoot of 1.0.
    cumulative[-1] = max(cumulative[-1], 1.0)
    return int(np.searchsorted(cumulative, threshold, side="left") + 1)
