"""Block-producer attribution policies.

Attribution turns a :class:`~repro.chain.chain.Chain` into *credits*: rows
of (block, entity, weight) from which per-window mining-power distributions
are computed.  Four policies are provided:

``per-address`` (the paper's policy)
    Every coinbase output address of a block counts as a producer of that
    block and receives weight 1.  A block with 90 addresses therefore
    contributes 90 credits — this is what makes the paper's day-14 Bitcoin
    anomaly (Gini 0.34, entropy 6.2) possible.

``first-address``
    Only the first (payout) address is credited, weight 1 per block.

``fractional``
    Every address is credited ``1/k`` for a block with ``k`` addresses, so
    each block contributes total weight 1.

``pool``
    Like ``first-address``, but addresses are canonicalized through a
    :class:`~repro.chain.pools.PoolRegistry`, collapsing pool payout
    addresses to pool identities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Final, Sequence

import numpy as np

from repro import obs
from repro.chain.chain import Chain
from repro.chain.pools import PoolRegistry
from repro.errors import AttributionError
from repro.parallel import WorkerPool, resolve_workers, shard_ranges
from repro.parallel import work as _work

#: The policies accepted by :func:`attribute`.
ATTRIBUTION_POLICIES: Final[tuple[str, ...]] = (
    "per-address",
    "first-address",
    "fractional",
    "pool",
)

#: Use the sparse ``np.unique`` distribution path when the window holds
#: fewer than ``n_entities / _SPARSE_CROSSOVER`` credit rows AND the
#: entity space is at least ``_SPARSE_MIN_ENTITIES`` wide.  The sparse
#: path pays an O(m log m) sort with a ~10 µs floor but skips the dense
#: O(n_entities) alloc+scan, which only starts to matter past roughly
#: 16k entities; see ``benchmarks/bench_perf_distribution.py`` for the
#: measured crossover.
_SPARSE_CROSSOVER: Final[int] = 4
_SPARSE_MIN_ENTITIES: Final[int] = 16_384

#: Upper bound on dense histogram matrix cells (segments x entities or
#: windows x entities, ~64 MB of float64) before the incremental sliding
#: path falls back to per-window slices.
_SEGMENT_BUDGET: Final[int] = 8_000_000

#: How many distinct step sizes to keep segment histograms for.
_SEGMENT_CACHE_SLOTS: Final[int] = 4


@dataclass
class Credits:
    """Per-(block, entity) block credits in block order.

    Arrays are aligned: credit ``i`` belongs to the block at position
    ``block_positions[i]`` in the source chain and assigns ``weights[i]``
    to entity ``entity_ids[i]``.  ``block_offsets`` is CSR: the credits of
    block position ``b`` are rows ``block_offsets[b]:block_offsets[b + 1]``.
    """

    chain_name: str
    policy: str
    entity_ids: np.ndarray
    weights: np.ndarray
    block_positions: np.ndarray
    timestamps: np.ndarray
    block_offsets: np.ndarray
    entity_names: Sequence[str]
    #: Per-step segment histograms keyed by step size (see
    #: :meth:`segment_histograms`); bounded LRU-ish cache, oldest evicted.
    _segment_cache: dict = field(default_factory=dict, init=False, repr=False, compare=False)

    @property
    def n_blocks(self) -> int:
        """Number of blocks covered."""
        return int(self.block_offsets.shape[0] - 1)

    @property
    def n_credits(self) -> int:
        """Total credit rows."""
        return int(self.entity_ids.shape[0])

    @property
    def n_entities(self) -> int:
        """Size of the entity id space (some may hold zero weight)."""
        return len(self.entity_names)

    @property
    def total_weight(self) -> float:
        """Sum of all weights."""
        return float(self.weights.sum())

    def credit_range_for_blocks(self, start_block: int, stop_block: int) -> tuple[int, int]:
        """Credit-row range covering block positions ``[start_block, stop_block)``."""
        if start_block < 0 or stop_block > self.n_blocks or start_block > stop_block:
            raise AttributionError(
                f"invalid block range [{start_block}, {stop_block}) "
                f"for {self.n_blocks} blocks"
            )
        return int(self.block_offsets[start_block]), int(self.block_offsets[stop_block])

    def credit_range_for_time(self, start_ts: int, end_ts: int) -> tuple[int, int]:
        """Credit-row range with timestamps in ``[start_ts, end_ts)``."""
        lo = int(np.searchsorted(self.timestamps, start_ts, side="left"))
        hi = int(np.searchsorted(self.timestamps, end_ts, side="left"))
        return lo, hi

    def distribution(self, lo: int, hi: int) -> np.ndarray:
        """Per-entity weight totals over credit rows ``[lo, hi)``.

        Returns only the non-zero totals (the distribution the metrics
        consume); entity identity is dropped.  Narrow windows (far fewer
        credit rows than entities) take a sparse ``np.unique`` path that
        avoids allocating a dense ``n_entities`` array per call.
        """
        return self.distribution_with_entities(lo, hi)[1]

    def distribution_with_entities(self, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
        """Like :meth:`distribution` but also returns the entity ids."""
        if (
            self.n_entities >= _SPARSE_MIN_ENTITIES
            and (hi - lo) * _SPARSE_CROSSOVER < self.n_entities
        ):
            ids, inverse = np.unique(self.entity_ids[lo:hi], return_inverse=True)
            totals = np.bincount(inverse, weights=self.weights[lo:hi])
            keep = totals > 0
            return ids[keep], totals[keep]
        totals = np.bincount(
            self.entity_ids[lo:hi],
            weights=self.weights[lo:hi],
            minlength=self.n_entities,
        )
        ids = np.flatnonzero(totals > 0)
        return ids, totals[ids]

    def top_entities(self, lo: int, hi: int, k: int = 10) -> list[tuple[str, float]]:
        """The ``k`` heaviest entities over ``[lo, hi)`` as (name, weight)."""
        ids, totals = self.distribution_with_entities(lo, hi)
        order = np.argsort(-totals, kind="stable")[:k]
        return [(self.entity_names[int(ids[i])], float(totals[i])) for i in order]

    # -- incremental sliding-window histograms -------------------------------

    def segment_histograms(self, step: int, workers: int | str | None = None) -> np.ndarray | None:
        """Dense per-segment entity histograms for segments of ``step`` blocks.

        Row ``j`` holds the per-entity weight totals of block positions
        ``[j*step, (j+1)*step)``; only full segments are materialized.  The
        result is cached per ``step`` (the cache keeps the most recent
        :data:`_SEGMENT_CACHE_SLOTS` steps), so one attribution pass serves
        every sweep that shares a step — e.g. the gini, entropy and
        nakamoto figures over the same window family.

        With ``workers`` >= 2 the segment rows are built in contiguous
        shards on a :class:`~repro.parallel.WorkerPool` and concatenated in
        shard order.  Each histogram cell belongs to exactly one segment —
        hence one shard — and rows keep their block order inside a shard,
        so every cell accumulates the same addends in the same order as
        the serial full-range ``np.bincount``: the merged matrix is
        bitwise identical, and the cache is shared across worker counts.

        Returns ``None`` when the dense matrix would exceed the memory
        budget (tiny steps over huge entity spaces); callers must then fall
        back to the per-window slice path.
        """
        if step <= 0:
            raise AttributionError(f"step must be positive, got {step}")
        cached = self._segment_cache.get(step)
        if cached is not None:
            obs.counter("attribution.segment_cache.hit")
            return cached
        obs.counter("attribution.segment_cache.miss")
        n_segments = self.n_blocks // step
        n_entities = self.n_entities
        if n_segments == 0 or n_segments * n_entities > _SEGMENT_BUDGET:
            return None
        n_workers = resolve_workers(workers) if workers is not None else 1
        with obs.span(
            "attribution.segment_histograms",
            step=step, segments=n_segments, workers=n_workers,
        ):
            if n_workers >= 2 and n_segments >= 2:
                ranges = shard_ranges(n_segments, n_workers)
                with WorkerPool(n_workers, payload=self) as pool:
                    parts = pool.map_shards(
                        _work.segment_histogram_shard,
                        [(step, seg_lo, seg_hi) for seg_lo, seg_hi in ranges],
                    )
                histograms = np.concatenate(parts, axis=0)
            else:
                rows_end = int(self.block_offsets[n_segments * step])
                segment_of = self.block_positions[:rows_end] // step
                keys = segment_of * n_entities + self.entity_ids[:rows_end]
                histograms = np.bincount(
                    keys,
                    weights=self.weights[:rows_end],
                    minlength=n_segments * n_entities,
                ).reshape(n_segments, n_entities)
        while len(self._segment_cache) >= _SEGMENT_CACHE_SLOTS:
            self._segment_cache.pop(next(iter(self._segment_cache)))
        self._segment_cache[step] = histograms
        return histograms

    def sliding_histograms(
        self, size: int, step: int, workers: int | str | None = None
    ) -> np.ndarray | None:
        """Dense per-window histograms for the standard sliding family.

        Window ``i`` covers block positions ``[i*step, i*step + size)`` —
        exactly the family :class:`~repro.windows.sliding.SlidingBlockWindows`
        generates.  Each window's histogram is derived from the shared
        per-segment partial histograms (each credit row is touched once for
        the whole sweep, instead of once per overlapping window), which is
        what makes the sliding path O(credits) rather than O(L x N).

        Returns ``None`` when the family doesn't decompose into aligned
        segments (``size % step != 0``) or the dense matrices would be too
        large; callers fall back to the per-window slice path.
        """
        if size <= 0 or step <= 0:
            raise AttributionError("size and step must be positive")
        if size % step != 0 or size > self.n_blocks:
            return None
        n_windows = (self.n_blocks - size) // step + 1
        segments_per_window = size // step
        if n_windows * self.n_entities > _SEGMENT_BUDGET:
            return None
        segments = self.segment_histograms(step, workers=workers)
        if segments is None:
            return None
        windows = np.zeros((n_windows, self.n_entities), dtype=np.float64)
        for j in range(segments_per_window):
            windows += segments[j : j + n_windows]
        return windows


def attribute(
    chain: Chain,
    policy: str = "per-address",
    registry: PoolRegistry | None = None,
    workers: int | str | None = None,
) -> Credits:
    """Apply an attribution ``policy`` to ``chain`` and return its credits.

    ``workers`` >= 2 (or ``"auto"`` on a multi-core host) shards the
    per-credit array construction across contiguous block ranges on a
    :class:`~repro.parallel.WorkerPool`; the shards are concatenated in
    block order, so the result is byte-identical to the serial path for
    every policy.  The sequential parts — the pool policy's
    first-appearance entity numbering and the CSR offsets — stay on the
    coordinator.
    """
    if policy not in ATTRIBUTION_POLICIES:
        raise AttributionError(
            f"unknown policy {policy!r}; expected one of {ATTRIBUTION_POLICIES}"
        )
    if policy == "pool" and registry is None:
        raise AttributionError("the 'pool' policy requires a PoolRegistry")
    n_workers = resolve_workers(workers) if workers is not None else 1
    with obs.span(
        "attribution.attribute",
        chain=chain.spec.name, policy=policy, workers=n_workers,
    ):
        if n_workers >= 2 and chain.n_blocks >= 2:
            return _attribute_parallel(chain, policy, registry, n_workers)
        return _attribute(chain, policy, registry)


def _pool_remap(
    chain: Chain, registry: PoolRegistry
) -> tuple[np.ndarray, list[str]]:
    """Producer-id -> pool-entity-id table plus the pool entity names.

    Entity ids are assigned in first appearance order over the producer
    name list, which is inherently sequential — both the serial and the
    sharded attribution paths build this on the coordinator.
    """
    remap = np.empty(len(chain.producer_names), dtype=np.int64)
    entity_names: list[str] = []
    seen: dict[str, int] = {}
    for pid, name in enumerate(chain.producer_names):
        entity = registry.pool_of(name)
        eid = seen.get(entity)
        if eid is None:
            eid = len(seen)
            seen[entity] = eid
            entity_names.append(entity)
        remap[pid] = eid
    return remap, entity_names


def _attribute_parallel(
    chain: Chain, policy: str, registry: PoolRegistry | None, n_workers: int
) -> Credits:
    """Sharded attribution: per-block-range credit arrays, merged in order."""
    remap = None
    if policy == "pool":
        remap, entity_names = _pool_remap(chain, registry)
    else:
        entity_names = list(chain.producer_names)
    ranges = shard_ranges(chain.n_blocks, n_workers)
    with WorkerPool(n_workers, payload=(chain, remap)) as pool:
        parts = pool.map_shards(
            _work.attribution_shard,
            [(policy, lo, hi) for lo, hi in ranges],
        )
    n = chain.n_blocks
    if policy in ("per-address", "fractional"):
        block_offsets = chain.offsets.copy()
    else:
        block_offsets = np.arange(n + 1, dtype=np.int64)
    return Credits(
        chain_name=chain.spec.name,
        policy=policy,
        entity_ids=np.concatenate([p[0] for p in parts]),
        weights=np.concatenate([p[1] for p in parts]),
        block_positions=np.concatenate([p[2] for p in parts]),
        timestamps=np.concatenate([p[3] for p in parts]),
        block_offsets=block_offsets,
        entity_names=entity_names,
    )


def _attribute(
    chain: Chain, policy: str, registry: PoolRegistry | None
) -> Credits:
    counts = chain.producer_counts()
    n = chain.n_blocks
    if policy == "per-address":
        return Credits(
            chain_name=chain.spec.name,
            policy=policy,
            entity_ids=chain.producer_ids.copy(),
            weights=np.ones(chain.n_credits, dtype=np.float64),
            block_positions=np.repeat(np.arange(n, dtype=np.int64), counts),
            timestamps=np.repeat(chain.timestamps, counts),
            block_offsets=chain.offsets.copy(),
            entity_names=list(chain.producer_names),
        )
    if policy == "fractional":
        weights = np.repeat(1.0 / counts.astype(np.float64), counts)
        return Credits(
            chain_name=chain.spec.name,
            policy=policy,
            entity_ids=chain.producer_ids.copy(),
            weights=weights,
            block_positions=np.repeat(np.arange(n, dtype=np.int64), counts),
            timestamps=np.repeat(chain.timestamps, counts),
            block_offsets=chain.offsets.copy(),
            entity_names=list(chain.producer_names),
        )
    first_ids = chain.producer_ids[chain.offsets[:-1]]
    if policy == "first-address":
        entity_ids = first_ids.copy()
        entity_names = list(chain.producer_names)
    else:  # pool
        remap, entity_names = _pool_remap(chain, registry)
        entity_ids = remap[first_ids]
    return Credits(
        chain_name=chain.spec.name,
        policy=policy,
        entity_ids=entity_ids,
        weights=np.ones(n, dtype=np.float64),
        block_positions=np.arange(n, dtype=np.int64),
        timestamps=chain.timestamps.copy(),
        block_offsets=np.arange(n + 1, dtype=np.int64),
        entity_names=entity_names,
    )
