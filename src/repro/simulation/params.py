"""Top-level simulation parameters."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.pools import PoolRegistry
from repro.chain.specs import ChainSpec
from repro.errors import SimulationError
from repro.simulation.anomalies import MultiCoinbaseEvent, ShareSpike
from repro.simulation.miners import TailConfig


@dataclass
class SimulationParams:
    """Everything :class:`~repro.simulation.powsim.ChainSimulator` needs.

    ``seed`` drives every random stream (derivations are per-component, see
    :mod:`repro.util.rng`), so one seed reproduces one chain bit-for-bit.
    """

    spec: ChainSpec
    registry: PoolRegistry
    tail: TailConfig
    seed: int = 2019
    #: Stationary sigma of the pools' multiplicative share jitter.
    jitter_sigma: float = 0.10
    #: AR(1) persistence of the share jitter (per day).
    jitter_phi: float = 0.92
    multi_coinbase_events: tuple[MultiCoinbaseEvent, ...] = field(default_factory=tuple)
    share_spikes: tuple[ShareSpike, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if len(self.registry) == 0:
            raise SimulationError("simulation requires at least one pool")
        pool_names = {pool.name for pool in self.registry.pools}
        for spike in self.share_spikes:
            if spike.pool_name not in pool_names:
                raise SimulationError(
                    f"share spike references unknown pool {spike.pool_name!r}"
                )

    def pool_index(self, pool_name: str) -> int:
        """Registry-order index of ``pool_name``."""
        for i, pool in enumerate(self.registry.pools):
            if pool.name == pool_name:
                return i
        raise SimulationError(f"unknown pool {pool_name!r}")
