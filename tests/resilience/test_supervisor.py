"""Bounded-restart supervision of a crashing worker."""

import pytest

from repro.errors import ValidationError
from repro.resilience.retry import ManualClock
from repro.resilience.supervisor import MonitorSupervisor


def crasher(n_crashes: int):
    """A target that raises ``n_crashes`` times, then completes."""
    state = {"runs": 0}

    def target():
        state["runs"] += 1
        if state["runs"] <= n_crashes:
            raise RuntimeError(f"crash {state['runs']}")

    target.state = state
    return target


class TestMonitorSupervisor:
    def test_clean_completion_needs_no_restarts(self):
        supervisor = MonitorSupervisor(crasher(0), clock=ManualClock())
        supervisor.run()
        assert supervisor.restarts == 0
        assert supervisor.crashes == 0
        assert not supervisor.degraded

    def test_restarts_until_target_completes(self):
        clock = ManualClock()
        target = crasher(2)
        events = []
        supervisor = MonitorSupervisor(
            target,
            max_restarts=3,
            restart_backoff=0.5,
            clock=clock,
            on_crash=lambda exc: events.append(("crash", str(exc))),
            on_recover=lambda: events.append(("recover", None)),
        )
        supervisor.run()
        assert target.state["runs"] == 3
        assert supervisor.restarts == 2
        assert supervisor.crashes == 2
        assert not supervisor.exhausted
        assert clock.sleeps == [0.5, 0.5]
        assert [kind for kind, _ in events] == ["crash", "recover", "crash", "recover"]

    def test_exhaustion_after_budget(self):
        supervisor = MonitorSupervisor(
            crasher(99), max_restarts=2, clock=ManualClock()
        )
        supervisor.run()
        assert supervisor.exhausted
        assert supervisor.degraded
        assert supervisor.crashes == 3  # initial run + 2 restarts, all crashed
        assert isinstance(supervisor.last_error, RuntimeError)
        assert "crash 3" in supervisor.snapshot()["last_error"]

    def test_zero_budget_means_one_shot(self):
        target = crasher(1)
        supervisor = MonitorSupervisor(target, max_restarts=0, clock=ManualClock())
        supervisor.run()
        assert target.state["runs"] == 1
        assert supervisor.exhausted

    def test_threaded_start_and_join(self):
        target = crasher(1)
        supervisor = MonitorSupervisor(
            target, max_restarts=2, restart_backoff=0.0
        )
        supervisor.start()
        supervisor.join(timeout=5.0)
        assert target.state["runs"] == 2
        assert not supervisor.exhausted

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValidationError):
            MonitorSupervisor(lambda: None, max_restarts=-1)
        with pytest.raises(ValidationError):
            MonitorSupervisor(lambda: None, restart_backoff=-0.1)
