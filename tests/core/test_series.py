"""Tests for MeasurementSeries."""

import numpy as np
import pytest

from repro.core.series import MeasurementSeries
from repro.errors import MeasurementError


def make_series(values, **overrides):
    n = len(values)
    config = dict(
        chain_name="testchain",
        metric_name="gini",
        window_desc="fixed-day",
        indices=np.arange(n),
        labels=tuple(f"w{i}" for i in range(n)),
        values=np.asarray(values, dtype=np.float64),
    )
    config.update(overrides)
    return MeasurementSeries(**config)


class TestConstruction:
    def test_length_and_iteration(self):
        series = make_series([1.0, 2.0, 3.0])
        assert len(series) == 3
        assert list(series) == [("w0", 1.0), ("w1", 2.0), ("w2", 3.0)]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(MeasurementError):
            make_series([1.0, 2.0], labels=("only-one",))

    def test_repr_mentions_identity(self):
        series = make_series([1.0])
        assert "testchain/gini/fixed-day" in repr(series)


class TestStatistics:
    def test_basic_stats(self):
        series = make_series([1.0, 2.0, 3.0, 4.0])
        assert series.mean() == 2.5
        assert series.min() == 1.0
        assert series.max() == 4.0
        assert series.median() == 2.5
        assert series.std() == pytest.approx(np.std([1, 2, 3, 4]))

    def test_quantile(self):
        series = make_series(list(range(101)))
        assert series.quantile(0.95) == pytest.approx(95.0)

    def test_quantile_bounds_checked(self):
        with pytest.raises(MeasurementError):
            make_series([1.0]).quantile(1.5)

    def test_coefficient_of_variation(self):
        series = make_series([2.0, 4.0])
        assert series.coefficient_of_variation() == pytest.approx(1.0 / 3.0)

    def test_cv_zero_mean_rejected(self):
        with pytest.raises(MeasurementError):
            make_series([1.0, -1.0]).coefficient_of_variation()

    def test_empty_series_stats_rejected(self):
        with pytest.raises(MeasurementError):
            make_series([]).mean()

    def test_fraction_in_range(self):
        """The paper's 'most values within 0.45-0.60' phrasing."""
        series = make_series([0.4, 0.5, 0.55, 0.58, 0.7])
        assert series.fraction_in_range(0.45, 0.60) == pytest.approx(0.6)

    def test_count_extremes(self):
        series = make_series([0.2, 0.5, 0.9, 1.5])
        assert series.count_extremes(low=0.3) == 1
        assert series.count_extremes(high=0.8) == 2
        assert series.count_extremes(low=0.3, high=0.8) == 3


class TestTransformation:
    def test_slice(self):
        series = make_series([1.0, 2.0, 3.0, 4.0]).slice(1, 3)
        assert series.values.tolist() == [2.0, 3.0]
        assert series.labels == ("w1", "w2")

    def test_head_fraction(self):
        series = make_series(list(range(10))).head_fraction(0.3)
        assert len(series) == 3

    def test_head_fraction_bounds(self):
        with pytest.raises(MeasurementError):
            make_series([1.0]).head_fraction(0.0)

    def test_select_by_index(self):
        series = make_series([1.0, 2.0, 3.0], indices=np.asarray([10, 20, 30]))
        picked = series.select_by_index([30, 10])
        assert picked.values.tolist() == [1.0, 3.0]

    def test_to_table(self):
        table = make_series([1.5, 2.5]).to_table()
        assert table.column_names == ("index", "label", "value")
        assert table["value"].tolist() == [1.5, 2.5]
