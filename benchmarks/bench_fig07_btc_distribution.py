"""Fig. 7 — Distribution of blocks produced in Bitcoin within a day and a month.

Paper claims (explaining the Gini/entropy divergence across
granularities): between the day 2019-12-07 and the month of December 2019,
the block-share ratios of the *top* miners change little, while the
population of *bottom* miners grows substantially.
"""

from _bench_util import report_notes
from repro.analysis.figures import figure_7


def test_fig07_btc_distribution(benchmark, btc):
    figure = benchmark(figure_7, btc)
    day, month = figure.distributions

    print(f"\n=== {figure.title} ===")
    for piece in (day, month):
        print(f"  window {piece.window_label}: {piece.n_producers} producers")
        for name, share in piece.top:
            print(f"    {name:<24s} {share:7.2%}")
        print(f"    {'<other>':<24s} {piece.other_share:7.2%}")
    report_notes(figure.notes)

    top_day = sum(share for _, share in day.top)
    top_month = sum(share for _, share in month.top)
    assert abs(top_day - top_month) < 0.10   # top miners barely move
    assert month.n_producers > 1.5 * day.n_producers  # bottom grows
