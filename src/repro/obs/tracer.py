"""The process-wide tracer: nested spans plus a metrics registry.

Tracing is off by default and the disabled path is engineered to be a
near-no-op: :meth:`Tracer.span` returns one shared null context manager
and the metric helpers return after a single ``enabled`` check, so
instrumented hot paths cost a guarded call per site (benchmarked in
``benchmarks/bench_perf_obs.py``).

When enabled, spans nest through an explicit stack::

    tracer = enable_tracing()
    with tracer.span("sweep", chain="btc"):
        with tracer.span("window"):
            ...
    tracer.counter("cache.hit")

and finished spans accumulate as flat :class:`SpanRecord` rows (id +
parent id), ready for the exporters in :mod:`repro.obs.export`.

Traces can cross process boundaries: :meth:`Tracer.context` captures a
propagatable trace context (trace id + the currently open span), a child
process records into its own tracer, and :meth:`Tracer.adopt` merges the
child's spans back into the coordinator's trace — ids renumbered into the
coordinator's space, start times rebased onto the coordinator's epoch,
and every adopted span stamped with the child's pid.  The worker pool
(:mod:`repro.parallel.pool`) does this automatically for every sharded
task, so one ``--trace`` file shows the whole fan-out.
"""

from __future__ import annotations

import functools
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, in tracer-relative seconds.

    ``pid``/``tid`` are ``None`` for spans recorded in the owning process
    (exporters substitute the tracer's own pid); spans adopted from a
    worker carry the worker's pid so multi-process traces keep one lane
    per process in ``chrome://tracing``.
    """

    span_id: int
    parent_id: int | None
    name: str
    start: float
    duration: float
    attrs: dict = field(default_factory=dict)
    pid: int | None = None
    tid: int | None = None

    @property
    def end(self) -> float:
        """Start plus duration."""
        return self.start + self.duration


class _NullSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span; records itself on the tracer when the block exits."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "_start", "_prof")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def set(self, **attrs: Any) -> "_Span":
        """Attach attributes to this span; chainable."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self.span_id = tracer._next_span_id()
        stack = tracer._stack
        self.parent_id = stack[-1][0] if stack else None
        stack.append((self.span_id, self.name))
        begin = tracer._profile_begin
        self._prof = begin() if begin is not None else None
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        end = time.perf_counter()
        tracer = self._tracer
        if self._prof is not None and tracer._profile_end is not None:
            # Resource deltas (cpu/rss/alloc) land as span attributes; the
            # sampling cost itself sits outside the timed window above.
            tracer._profile_end(self._prof, self.attrs)
        if tracer._stack and tracer._stack[-1][0] == self.span_id:
            tracer._stack.pop()
        tracer.spans.append(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                start=self._start - tracer._epoch,
                duration=end - self._start,
                attrs=self.attrs,
            )
        )
        return False


class Tracer:
    """Collects spans and metrics while enabled; inert otherwise."""

    def __init__(self) -> None:
        self.enabled = False
        self.spans: list[SpanRecord] = []
        self.metrics = MetricsRegistry()
        #: Correlates all spans of one recording session, across processes.
        self.trace_id: str | None = None
        #: The pid that owns this tracer's locally recorded spans.
        self.pid = os.getpid()
        #: Open spans as (span_id, name), innermost last.
        self._stack: list[tuple[int, str]] = []
        self._next_id = 0
        self._epoch = 0.0
        # Installed by repro.obs.profile while profiling is enabled.
        self._profile_begin: Callable[[], Any] | None = None
        self._profile_end: Callable[[Any, dict], None] | None = None

    # -- lifecycle -----------------------------------------------------------

    def enable(self) -> "Tracer":
        """Clear prior data and start recording; returns self."""
        self.reset()
        self.pid = os.getpid()
        self._epoch = time.perf_counter()
        self.trace_id = f"{self.pid:x}-{os.urandom(6).hex()}"
        self.enabled = True
        return self

    def disable(self) -> "Tracer":
        """Stop recording (data is kept until the next :meth:`enable`)."""
        self.enabled = False
        return self

    def reset(self) -> None:
        """Drop all recorded spans and metrics."""
        self.spans.clear()
        self.metrics.reset()
        self._stack.clear()
        self._next_id = 0

    def _next_span_id(self) -> int:
        self._next_id += 1
        return self._next_id

    # -- spans ----------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _Span | _NullSpan:
        """A context manager timing one named span (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    def current_span(self) -> tuple[int, str] | None:
        """The innermost open span as ``(span_id, name)``, or ``None``.

        Structured log records join against exported traces through this:
        see :class:`repro.obs.logging.SpanContextFilter`.
        """
        if self.enabled and self._stack:
            return self._stack[-1]
        return None

    # -- cross-process propagation -------------------------------------------

    @property
    def epoch(self) -> float:
        """The raw ``time.perf_counter()`` value of the last :meth:`enable`.

        ``perf_counter`` reads a system-wide monotonic clock on every
        platform the pool supports, so epochs taken in different processes
        share a timebase and child spans can be rebased exactly.
        """
        return self._epoch

    def context(self) -> dict | None:
        """Propagatable trace context, or ``None`` while disabled.

        Ship the returned dict to a child process (it is small and plain)
        and record there with a fresh tracer; :meth:`adopt` merges the
        child's :meth:`export_state` back under ``parent_span``.
        """
        if not self.enabled:
            return None
        from repro.obs import profile as _profile

        return {
            "trace_id": self.trace_id,
            "parent_span": self._stack[-1][0] if self._stack else None,
            "profile": _profile.profiling_enabled(),
        }

    def export_state(self) -> dict:
        """This tracer's recorded data as one picklable envelope.

        Called inside a worker after a task finishes; the coordinator
        passes the envelope to :meth:`adopt`.
        """
        return {
            "pid": self.pid,
            "epoch": self._epoch,
            "trace_id": self.trace_id,
            "spans": [
                {
                    "id": span.span_id,
                    "parent": span.parent_id,
                    "name": span.name,
                    "start": span.start,
                    "dur": span.duration,
                    "attrs": span.attrs,
                }
                for span in self.spans
            ],
            "metrics": self.metrics.dump_state(),
        }

    def adopt(self, state: dict, parent_span: int | None = None) -> int:
        """Merge a child tracer's :meth:`export_state` into this trace.

        Span ids are renumbered into this tracer's id space (internal
        parent links preserved), top-level child spans are parented under
        ``parent_span``, start times are rebased from the child's epoch
        onto this tracer's, and every adopted span carries the child's
        pid.  Child counters add into this registry, gauges overwrite,
        and timing histograms merge exactly.  Returns the number of spans
        adopted.
        """
        pid = int(state.get("pid", 0)) or None
        shift = float(state.get("epoch", self._epoch)) - self._epoch
        id_map: dict[int, int] = {}
        records = state.get("spans", [])
        for record in records:
            id_map[record["id"]] = self._next_span_id()
        for record in records:
            old_parent = record["parent"]
            self.spans.append(
                SpanRecord(
                    span_id=id_map[record["id"]],
                    parent_id=(
                        id_map[old_parent]
                        if old_parent in id_map
                        else parent_span
                    ),
                    name=record["name"],
                    start=record["start"] + shift,
                    duration=record["dur"],
                    attrs=dict(record.get("attrs", {})),
                    pid=pid,
                    tid=record.get("tid"),
                )
            )
        self.metrics.merge_state(state.get("metrics", {}))
        return len(records)

    # -- profiling hooks -----------------------------------------------------

    def set_profiler(
        self,
        begin: Callable[[], Any] | None,
        end: Callable[[Any, dict], None] | None,
    ) -> None:
        """Install (or clear, with ``None``) the per-span resource sampler."""
        self._profile_begin = begin
        self._profile_end = end

    def traced(self, name: str | None = None) -> Callable:
        """Decorator: wrap a function in a span named after it.

        The enabled check happens per call, so decorating a function does
        not slow it down while tracing is off.
        """

        def decorate(fn: Callable) -> Callable:
            label = name or f"{fn.__module__.rsplit('.', 1)[-1]}.{fn.__qualname__}"

            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                if not self.enabled:
                    return fn(*args, **kwargs)
                with self.span(label):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    # -- metrics -----------------------------------------------------------------

    def counter(self, name: str, n: float = 1.0) -> None:
        """Increment counter ``name`` by ``n`` (no-op when disabled)."""
        if self.enabled:
            self.metrics.counter(name).inc(n)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` (no-op when disabled)."""
        if self.enabled:
            self.metrics.gauge(name).set(value)

    def timing(self, name: str, seconds: float) -> None:
        """Observe a duration on histogram ``name`` (no-op when disabled)."""
        if self.enabled:
            self.metrics.timing(name).observe(seconds)


#: The process-wide tracer every instrumented module talks to.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer singleton."""
    return _TRACER


def tracing_enabled() -> bool:
    """Whether the process-wide tracer is currently recording."""
    return _TRACER.enabled


def enable_tracing() -> Tracer:
    """Enable the process-wide tracer (clearing prior data); returns it."""
    return _TRACER.enable()


def disable_tracing() -> Tracer:
    """Disable the process-wide tracer; recorded data stays readable."""
    return _TRACER.disable()


def span(name: str, **attrs: Any) -> _Span | _NullSpan:
    """Open a span on the process-wide tracer (shared no-op when disabled)."""
    return _TRACER.span(name, **attrs)


def current_span() -> tuple[int, str] | None:
    """The process-wide tracer's innermost open ``(span_id, name)``, if any."""
    return _TRACER.current_span()


def counter(name: str, n: float = 1.0) -> None:
    """Increment a counter on the process-wide tracer."""
    if _TRACER.enabled:
        _TRACER.metrics.counter(name).inc(n)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the process-wide tracer."""
    if _TRACER.enabled:
        _TRACER.metrics.gauge(name).set(value)


def timing(name: str, seconds: float) -> None:
    """Observe a duration on the process-wide tracer."""
    if _TRACER.enabled:
        _TRACER.metrics.timing(name).observe(seconds)


def traced(name: str | None = None) -> Callable:
    """Decorator form of :func:`span` on the process-wide tracer."""
    return _TRACER.traced(name)
