"""Block reward schedules.

A block's income is the protocol subsidy plus transaction fees, modeled
lognormal (fee income is heavy-tailed: most blocks earn modest fees, a
few congestion blocks earn multiples of the median).  2019 constants:
Bitcoin paid 12.5 BTC subsidy with ~0.2–0.5 BTC median fees; Ethereum paid
2 ETH subsidy with ~0.1–0.2 ETH fees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class RewardSchedule:
    """Per-block income model: ``subsidy + lognormal fees``."""

    name: str
    #: Protocol subsidy per block, in native units.
    subsidy: float
    #: Median fee income per block.
    fee_median: float
    #: Lognormal sigma of fee income (heavy tail).
    fee_sigma: float

    def __post_init__(self) -> None:
        if self.subsidy < 0 or self.fee_median < 0:
            raise SimulationError("subsidy and fee_median must be >= 0")
        if self.fee_sigma < 0:
            raise SimulationError("fee_sigma must be >= 0")

    def draw(self, n_blocks: int, seed: int) -> np.ndarray:
        """Per-block rewards for ``n_blocks`` blocks (deterministic per seed)."""
        if n_blocks < 0:
            raise SimulationError("n_blocks must be >= 0")
        rng = derive_rng(seed, f"rewards/{self.name}")
        if self.fee_median == 0 or self.fee_sigma == 0:
            fees = np.full(n_blocks, self.fee_median)
        else:
            fees = rng.lognormal(np.log(self.fee_median), self.fee_sigma, size=n_blocks)
        return self.subsidy + fees

    def expected_reward(self) -> float:
        """Mean per-block reward implied by the model."""
        return self.subsidy + self.fee_median * float(np.exp(self.fee_sigma**2 / 2.0))


#: Bitcoin 2019: 12.5 BTC subsidy, heavy-tailed fees around 0.3 BTC.
BITCOIN_REWARDS_2019 = RewardSchedule(
    name="bitcoin", subsidy=12.5, fee_median=0.30, fee_sigma=0.9
)

#: Ethereum 2019 (post-Constantinople): 2 ETH subsidy, ~0.15 ETH fees.
ETHEREUM_REWARDS_2019 = RewardSchedule(
    name="ethereum", subsidy=2.0, fee_median=0.15, fee_sigma=0.8
)
