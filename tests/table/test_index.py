"""Tests for secondary index structures (sorted-array and hash)."""

import numpy as np
import pytest

from repro.errors import TableError
from repro.table import Table, build_index
from repro.table.index import HashIndex, SortedIndex


@pytest.fixture
def numbers() -> Table:
    return Table({"x": [5, 1, 3, 1, 9, 3, 3]})


class TestSortedIndex:
    def test_lookup_eq_returns_ascending_positions(self, numbers):
        index = build_index(numbers, "x", "sorted")
        assert index.lookup_eq(3).tolist() == [2, 5, 6]
        assert index.lookup_eq(1).tolist() == [1, 3]

    def test_lookup_eq_miss(self, numbers):
        index = build_index(numbers, "x", "sorted")
        assert index.lookup_eq(4).tolist() == []
        assert index.lookup_eq(None).tolist() == []
        assert index.lookup_eq(float("nan")).tolist() == []

    def test_lookup_range(self, numbers):
        index = build_index(numbers, "x", "sorted")
        assert index.lookup_range(low=3, high=5).tolist() == [0, 2, 5, 6]
        assert index.lookup_range(low=3, high=5, include_low=False).tolist() == [0]
        assert index.lookup_range(high=1).tolist() == [1, 3]
        assert index.lookup_range(low=100).tolist() == []

    def test_range_matches_mask_semantics(self):
        values = [7, 2, 9, 4, 2, 8, 0, 4]
        table = Table({"x": values})
        index = build_index(table, "x", "sorted")
        arr = np.asarray(values)
        expected = np.flatnonzero((arr >= 2) & (arr < 8))
        assert index.lookup_range(low=2, high=8, include_high=False).tolist() == expected.tolist()

    def test_nan_rows_excluded(self):
        table = Table({"x": [1.0, np.nan, 2.0, np.nan]})
        index = build_index(table, "x", "sorted")
        assert index.lookup_range().tolist() == [0, 2]

    def test_str_with_nulls_rejected(self):
        table = Table({"name": ["a", None, "b"]})
        with pytest.raises(TableError, match="hash index"):
            build_index(table, "name", "sorted")

    def test_str_without_nulls_allowed(self):
        table = Table({"name": ["b", "a", "c", "a"]})
        index = build_index(table, "name", "sorted")
        assert index.lookup_eq("a").tolist() == [1, 3]
        assert index.lookup_range(low="b").tolist() == [0, 2]


class TestHashIndex:
    def test_lookup_eq(self):
        table = Table({"name": ["a", "b", "a", None, "c"]})
        index = build_index(table, "name", "hash")
        assert index.lookup_eq("a").tolist() == [0, 2]
        assert index.lookup_eq("z").tolist() == []

    def test_null_semantics_split(self):
        table = Table({"name": ["a", None, "b", None]})
        index = build_index(table, "name", "hash")
        # SQL `=` never matches NULL; a join-build dict does.
        assert index.lookup_eq(None).tolist() == []
        assert index.lookup_join(None).tolist() == [1, 3]

    def test_nan_never_matches(self):
        table = Table({"x": [1.0, np.nan, 2.0]})
        index = build_index(table, "x", "hash")
        assert index.lookup_eq(float("nan")).tolist() == []
        assert index.lookup_join(float("nan")).tolist() == []

    def test_all_duplicate_column(self):
        table = Table({"x": [7] * 100})
        index = build_index(table, "x", "hash")
        assert index.lookup_eq(7).tolist() == list(range(100))
        assert index.lookup_eq(8).tolist() == []


class TestBuildIndex:
    def test_auto_picks_hash_for_strings(self):
        table = Table({"name": ["a"], "x": [1]})
        assert isinstance(build_index(table, "name"), HashIndex)
        assert isinstance(build_index(table, "x"), SortedIndex)

    def test_unknown_kind(self):
        table = Table({"x": [1]})
        with pytest.raises(TableError, match="unknown index kind"):
            build_index(table, "x", "btree")

    def test_kind_attribute(self):
        table = Table({"x": [1]})
        assert build_index(table, "x", "sorted").kind == "sorted"
        assert build_index(table, "x", "hash").kind == "hash"
