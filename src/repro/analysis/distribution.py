"""Producer-share distributions for single windows (paper Fig. 7).

Fig. 7 shows two pie charts of Bitcoin producer shares — one for the day
2019-12-07 and one for the month of December 2019 — to explain why the
Gini coefficient depends so strongly on window length while Shannon
entropy barely moves: the *top* shares stay put, the *bottom* population
grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.engine import MeasurementEngine
from repro.errors import MeasurementError
from repro.windows.base import Window


@dataclass(frozen=True)
class DistributionSlice:
    """Producer shares inside one window, top-k plus an "other" bucket."""

    window_label: str
    #: (producer, share) pairs, heaviest first; shares sum to <= 1.
    top: tuple[tuple[str, float], ...]
    #: Combined share of all remaining producers.
    other_share: float
    #: Total number of distinct producers in the window.
    n_producers: int
    #: Total credit weight in the window.
    total_weight: float

    def share_of(self, producer: str) -> float:
        """Share of a named top producer (0.0 if not in the top bucket)."""
        for name, share in self.top:
            if name == producer:
                return share
        return 0.0


def producer_shares(
    engine: MeasurementEngine,
    window: Window,
    top_k: int = 8,
    labeler: Callable[[str], str] | None = None,
) -> DistributionSlice:
    """Compute the top-``top_k`` producer shares inside ``window``.

    ``labeler`` maps raw producer identities to display names (e.g. a
    :meth:`~repro.chain.pools.PoolRegistry.pool_of` bound method turning
    payout addresses into pool names).
    """
    if top_k <= 0:
        raise MeasurementError(f"top_k must be positive, got {top_k}")
    distribution = engine.distribution_for(window)
    total = float(distribution.sum())
    entities = engine.top_entities_for(window, k=top_k)
    labeler = labeler or (lambda name: name)
    top = tuple((labeler(name), weight / total) for name, weight in entities)
    return DistributionSlice(
        window_label=window.label,
        top=top,
        other_share=max(0.0, 1.0 - sum(share for _, share in top)),
        n_producers=int(distribution.shape[0]),
        total_weight=total,
    )
