"""Secondary indexes over :class:`~repro.table.Table` columns.

Two structures back the SQL optimizer's index access paths:

- :class:`SortedIndex` — a stable argsort of the column; equality and
  range lookups are binary searches (``np.searchsorted``).  Natural for
  numeric columns; supported for string columns without NULLs.
- :class:`HashIndex` — a dict of value → row positions; equality-only,
  and the natural choice for string columns.

Both return **ascending row positions**, so an index scan visits rows in
the same physical order as a full scan and the results stay byte-identical
to the unindexed path.  Lookup semantics are split to mirror the executor:

- ``lookup_eq`` matches SQL ``=``: NULL (None) and NaN never match.
- ``lookup_join`` matches the hash-join build dict: ``None`` matches
  ``None`` rows, while NaN still never matches (Python floats from two
  ``to_list`` calls are distinct objects and ``nan != nan``).

Indexes are immutable snapshots of the column they were built from; the
query engine rebuilds them when a table is re-registered.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import TableError
from repro.table.column import Column
from repro.table.table import Table

#: Index kinds accepted by :func:`build_index` (``"auto"`` picks per column).
INDEX_KINDS = ("sorted", "hash")

_EMPTY = np.empty(0, dtype=np.int64)


def _is_nan(value: Any) -> bool:
    return isinstance(value, float) and value != value


class SortedIndex:
    """Binary-search index over one column (equality and range lookups)."""

    kind = "sorted"
    supports_range = True

    def __init__(self, column: Column, name: str) -> None:
        self.column = name
        values = column.values
        if column.kind == "str" and any(v is None for v in values):
            raise TableError(
                f"cannot build a sorted index on {name!r}: "
                "string column contains NULLs (use a hash index)"
            )
        order = np.argsort(values, kind="stable").astype(np.int64)
        self._order = order
        ordered = values[order]
        n_valid = len(ordered)
        if column.kind == "float":
            # NaNs sort last under argsort; exclude them from the search range.
            n_valid -= int(np.isnan(values).sum())
        self._valid = ordered[:n_valid]
        self.n_rows = len(values)

    def lookup_eq(self, value: Any) -> np.ndarray:
        """Ascending positions of rows where ``column = value``."""
        if value is None or _is_nan(value):
            return _EMPTY
        lo = int(np.searchsorted(self._valid, value, side="left"))
        hi = int(np.searchsorted(self._valid, value, side="right"))
        if hi <= lo:
            return _EMPTY
        return np.sort(self._order[lo:hi])

    def lookup_join(self, value: Any) -> np.ndarray:
        """Join-probe positions; same as equality here (no NULL keys stored)."""
        return self.lookup_eq(value)

    def lookup_range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> np.ndarray:
        """Ascending positions of rows in the (possibly half-open) interval."""
        lo = 0
        hi = len(self._valid)
        if low is not None:
            lo = int(np.searchsorted(self._valid, low, side="left" if include_low else "right"))
        if high is not None:
            hi = int(np.searchsorted(self._valid, high, side="right" if include_high else "left"))
        if hi <= lo:
            return _EMPTY
        return np.sort(self._order[lo:hi])


class HashIndex:
    """Dict-backed equality index over one column."""

    kind = "hash"
    supports_range = False

    def __init__(self, column: Column, name: str) -> None:
        self.column = name
        buckets: dict[Any, list[int]] = {}
        for position, value in enumerate(column.to_list()):
            if _is_nan(value):
                continue  # NaN never matches itself in `=` or join probes
            buckets.setdefault(value, []).append(position)
        self._buckets = {
            value: np.asarray(rows, dtype=np.int64) for value, rows in buckets.items()
        }
        self.n_rows = len(column)

    def lookup_eq(self, value: Any) -> np.ndarray:
        """Ascending positions of rows where ``column = value``."""
        if value is None or _is_nan(value):
            return _EMPTY
        return self._buckets.get(value, _EMPTY)

    def lookup_join(self, value: Any) -> np.ndarray:
        """Join-probe positions: like ``lookup_eq`` but None matches None."""
        if _is_nan(value):
            return _EMPTY
        try:
            return self._buckets.get(value, _EMPTY)
        except TypeError:  # unhashable probe value
            return _EMPTY


Index = SortedIndex | HashIndex


def build_index(table: Table, column: str, kind: str = "auto") -> Index:
    """Build an index over ``table.column`` of the requested kind.

    ``"auto"`` picks sorted for numeric/boolean columns and hash for
    strings.  Raises :class:`~repro.errors.SchemaError` for unknown
    columns and :class:`~repro.errors.TableError` for invalid kinds.
    """
    col = table.column(column)
    if kind == "auto":
        kind = "hash" if col.kind == "str" else "sorted"
    if kind == "sorted":
        return SortedIndex(col, column)
    if kind == "hash":
        return HashIndex(col, column)
    raise TableError(f"unknown index kind {kind!r}; expected one of {INDEX_KINDS} or 'auto'")
