"""Tests for the production-rate models."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.difficulty import (
    bitcoin_daily_rates,
    ethereum_daily_rates,
    piecewise_curve,
)


class TestPiecewiseCurve:
    def test_interpolates_endpoints(self):
        curve = piecewise_curve(((0, 10.0), (364, 20.0)))
        assert curve[0] == pytest.approx(10.0)
        assert curve[364] == pytest.approx(20.0)
        assert curve.shape == (365,)

    def test_midpoint(self):
        curve = piecewise_curve(((0, 0.0), (100, 100.0)))
        assert curve[50] == pytest.approx(50.0)

    def test_flat_after_last_point(self):
        curve = piecewise_curve(((0, 1.0), (10, 2.0)), n_days=20)
        assert curve[19] == pytest.approx(2.0)

    def test_needs_two_points(self):
        with pytest.raises(SimulationError):
            piecewise_curve(((0, 1.0),))

    def test_rejects_unsorted_days(self):
        with pytest.raises(SimulationError):
            piecewise_curve(((10, 1.0), (0, 2.0)))

    def test_rejects_duplicate_days(self):
        with pytest.raises(SimulationError):
            piecewise_curve(((0, 1.0), (0, 2.0)))


class TestBitcoinRates:
    def test_shape_and_positivity(self):
        rates = bitcoin_daily_rates(seed=1)
        assert rates.shape == (365,)
        assert np.all(rates > 0)

    def test_deterministic_per_seed(self):
        assert bitcoin_daily_rates(seed=5).tolist() == bitcoin_daily_rates(seed=5).tolist()
        assert bitcoin_daily_rates(seed=5).tolist() != bitcoin_daily_rates(seed=6).tolist()

    def test_rates_near_target(self):
        """Retargeting keeps production within ~15% of 144 blocks/day."""
        rates = bitcoin_daily_rates(seed=1)
        assert 0.85 * 144 < rates.mean() < 1.15 * 144

    def test_growing_hashrate_runs_ahead_of_target(self):
        """With hashrate growth, most days beat the 144/day target."""
        rates = bitcoin_daily_rates(seed=1)
        assert (rates > 144).mean() > 0.5


class TestEthereumRates:
    def test_difficulty_bomb_dip(self):
        """January-February rates sag until Constantinople (day ~59)."""
        rates = ethereum_daily_rates(seed=1)
        assert rates[40:58].mean() < 0.8 * rates[90:150].mean()

    def test_post_fork_recovery(self):
        rates = ethereum_daily_rates(seed=1)
        assert rates[61] > rates[57] * 1.2

    def test_mean_near_6000(self):
        rates = ethereum_daily_rates(seed=1)
        assert 5_500 < rates[90:].mean() < 6_800
