"""Performance — sparse vs dense window-distribution extraction.

``Credits.distribution()`` picks between two strategies:

* **dense** — ``np.bincount`` over the full entity space, then compact.
  Cost scales with ``n_entities`` regardless of how few credits the
  window holds.
* **sparse** — ``np.unique`` over just the window's credit rows.  Cost
  scales with ``window_rows * log(window_rows)`` and ignores the entity
  space entirely.

The crossover constant (``attribution._SPARSE_CROSSOVER``) routes tiny
windows to the sparse path.  This module benchmarks both strategies on
real Bitcoin data and asserts the routing actually pays off where it is
used.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.chain import attribution


def _dense_extract(credits, lo, hi):
    """The dense strategy, inlined so we can time it on any window size."""
    totals = np.bincount(
        credits.entity_ids[lo:hi],
        weights=credits.weights[lo:hi],
        minlength=credits.n_entities,
    )
    return totals[totals > 0]


def _sparse_extract(credits, lo, hi):
    """The sparse strategy, inlined so we can time it on any window size."""
    ids = credits.entity_ids[lo:hi]
    unique_ids, inverse = np.unique(ids, return_inverse=True)
    totals = np.bincount(inverse, weights=credits.weights[lo:hi])
    return totals[totals > 0]


def _best_of(fn, *args, repeats=30):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def test_perf_distribution_small_window(benchmark, btc):
    """A 16-block window: far fewer rows than entities, sparse territory."""
    credits = btc.credits
    lo, hi = credits.credit_range_for_blocks(0, 16)
    values = benchmark(credits.distribution, lo, hi)
    assert values.sum() > 0


def test_perf_distribution_large_window(benchmark, btc):
    """A 4320-block window: dense bincount territory."""
    credits = btc.credits
    lo, hi = credits.credit_range_for_blocks(0, 4_320)
    values = benchmark(credits.distribution, lo, hi)
    assert values.sum() > 0


def _wide_entity_credits(n_entities=262_144, n_blocks=64, seed=0):
    """One-credit-per-block Credits over a deliberately huge entity space."""
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, n_entities, size=n_blocks).astype(np.int64)
    return attribution.Credits(
        chain_name="synthetic-wide",
        policy="per-address",
        entity_ids=ids,
        weights=np.ones(n_blocks),
        block_positions=np.arange(n_blocks, dtype=np.int64),
        timestamps=np.arange(n_blocks, dtype=np.int64) * 600,
        block_offsets=np.arange(n_blocks + 1, dtype=np.int64),
        entity_names=[f"e{i}" for i in range(n_entities)],
    )


def test_crossover_dense_wins_on_narrow_entity_space(btc):
    """~1.1k BTC entities: a dense bincount is a trivial 9 KB alloc, so
    np.unique's ~10 µs sort floor loses — the router must stay dense."""
    credits = btc.credits
    assert credits.n_entities < attribution._SPARSE_MIN_ENTITIES
    lo, hi = credits.credit_range_for_blocks(0, 8)
    dense_t = _best_of(_dense_extract, credits, lo, hi)
    sparse_t = _best_of(_sparse_extract, credits, lo, hi)
    # Generous margin: timing in CI is noisy.
    assert dense_t < sparse_t * 1.5, (dense_t, sparse_t)


def test_crossover_sparse_wins_on_wide_entity_space():
    """262k entities, 8-row window: the dense path's O(n_entities)
    alloc+scan dominates and the unique-based path wins — the router
    must go sparse past _SPARSE_MIN_ENTITIES."""
    credits = _wide_entity_credits()
    lo, hi = credits.credit_range_for_blocks(0, 8)
    sparse_t = _best_of(_sparse_extract, credits, lo, hi)
    dense_t = _best_of(_dense_extract, credits, lo, hi)
    assert sparse_t < dense_t * 1.5, (sparse_t, dense_t)
    # And the router actually routes it sparse:
    assert credits.n_entities >= attribution._SPARSE_MIN_ENTITIES
    assert (hi - lo) * attribution._SPARSE_CROSSOVER < credits.n_entities


@pytest.mark.parametrize("n_blocks", [1, 4, 16, 144])
def test_paths_agree_on_real_chain(btc, n_blocks):
    """Whatever the router picks must equal the dense reference."""
    credits = btc.credits
    lo, hi = credits.credit_range_for_blocks(0, n_blocks)
    assert np.array_equal(
        credits.distribution(lo, hi), _dense_extract(credits, lo, hi)
    )


@pytest.mark.parametrize("n_blocks", [1, 8, 64])
def test_paths_agree_on_wide_entity_space(n_blocks):
    credits = _wide_entity_credits()
    lo, hi = credits.credit_range_for_blocks(0, n_blocks)
    assert np.array_equal(
        credits.distribution(lo, hi), _dense_extract(credits, lo, hi)
    )
