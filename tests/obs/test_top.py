"""Tests for the ``repro top`` live dashboard (:mod:`repro.obs.top`).

Rendering is a pure function of status snapshots, so most tests drive it
with dicts; one test hits a real :class:`~repro.serve.TelemetryServer`
over HTTP to prove :func:`fetch_status` speaks the actual protocol.
"""

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry
from repro.obs.top import fetch_status, render_dashboard, run_top
from repro.serve import TelemetryServer

FULL_STATUS = {
    "chain": "bitcoin",
    "uptime_seconds": 120.0,
    "ready": True,
    "finished": False,
    "blocks_ingested": 1_440,
    "total_blocks": 4_320,
    "lag_blocks": 2_880,
    "evaluations": 18,
    "alerts": 1,
    "build": {"version": "1.3.0", "python": "3.12.0"},
    "workers": {
        "cpu_count": 8,
        "active_pools": 1,
        "last_pool": {"workers": 4},
        "lifetime": {"tasks_submitted": 40, "tasks_completed": 30},
    },
    "timings": {
        "engine.window_seconds": {
            "count": 18, "mean": 0.004, "p50": 0.003, "p99": 0.009,
        }
    },
    "latest": {"gini": 0.8123, "nakamoto": 4.0},
}


class TestRenderDashboard:
    def test_header_carries_chain_version_and_state(self):
        frame = render_dashboard(FULL_STATUS)
        header = frame.splitlines()[0]
        assert "chain=bitcoin" in header
        assert "version=1.3.0" in header
        assert "[ready]" in header

    def test_state_precedence(self):
        assert "[warming up]" in render_dashboard({})
        assert "[finished]" in render_dashboard({"ready": True, "finished": True})
        degraded = dict(FULL_STATUS, resilience={"degraded": True})
        assert "[DEGRADED]" in render_dashboard(degraded)

    def test_ingest_line_shows_progress_and_lag(self):
        frame = render_dashboard(FULL_STATUS)
        assert "blocks=1440/4320" in frame
        assert "lag=2880" in frame
        assert "alerts=1" in frame

    def test_first_frame_throughput_is_lifetime_average(self):
        frame = render_dashboard(FULL_STATUS, previous=None)
        assert "throughput=12.0 blocks/s" in frame  # 1440 blocks / 120 s

    def test_delta_throughput_between_polls(self):
        previous = dict(FULL_STATUS, blocks_ingested=1_400)
        frame = render_dashboard(FULL_STATUS, previous=previous, interval=2.0)
        assert "throughput=20.0 blocks/s" in frame  # 40 blocks / 2 s

    def test_pool_line_shows_utilization(self):
        frame = render_dashboard(FULL_STATUS)
        assert "cpus=8" in frame
        assert "tasks=30/40 (75% done)" in frame

    def test_latency_table_renders_percentiles(self):
        frame = render_dashboard(FULL_STATUS)
        assert "engine.window_seconds" in frame
        assert "3.00ms" in frame  # p50
        assert "9.00ms" in frame  # p99

    def test_metrics_line_sorted(self):
        frame = render_dashboard(FULL_STATUS)
        assert "gini=0.8123  nakamoto=4.0000" in frame

    def test_minimal_status_renders_without_crashing(self):
        frame = render_dashboard({})
        assert "repro top" in frame
        assert "latency" not in frame  # no timings section


class TestFetchStatus:
    def test_against_live_server(self):
        server = TelemetryServer(
            MetricsRegistry(), status_fn=lambda: dict(FULL_STATUS)
        )
        with server:
            status = fetch_status(f"http://127.0.0.1:{server.port}/status")
        assert status["chain"] == "bitcoin"

    def test_unreachable_server_raises(self):
        with pytest.raises(ObservabilityError, match="cannot reach"):
            fetch_status("http://127.0.0.1:1/status", timeout=0.2)

    def test_non_json_body_raises(self):
        server = TelemetryServer(MetricsRegistry())
        with server:
            with pytest.raises(ObservabilityError, match="did not return JSON"):
                fetch_status(f"http://127.0.0.1:{server.port}/healthz")


class TestRunTop:
    def _drive(self, statuses, **kwargs):
        """Run with canned fetch results; returns (exit_code, frames).

        Each item in ``statuses`` is either a status dict or an exception
        instance to raise from that poll.
        """
        frames: list[str] = []
        feed = iter(statuses)

        def fake_fetch(url, timeout=2.0):
            item = next(feed)
            if isinstance(item, Exception):
                raise item
            return item

        import repro.obs.top as top_mod

        original = top_mod.fetch_status
        top_mod.fetch_status = fake_fetch
        try:
            code = run_top(
                "http://x/status",
                interval=0.0,
                print_fn=frames.append,
                clear=False,
                sleep_fn=lambda _: None,
                **kwargs,
            )
        finally:
            top_mod.fetch_status = original
        return code, frames

    def test_bounded_iterations_render_that_many_frames(self):
        code, frames = self._drive([dict(FULL_STATUS)] * 5, iterations=2)
        assert code == 0
        assert len(frames) == 2

    def test_first_poll_failure_exits_1_and_names_url(self):
        code, frames = self._drive(
            [ObservabilityError("cannot reach it")], iterations=1
        )
        assert code == 1
        assert frames and frames[0].startswith("error:")
        assert "http://x/status" in frames[0]

    def test_bounded_run_fails_fast_on_any_poll_failure(self):
        # With --iterations set (scripted/CI usage) a dead server after
        # the first frame must exit 1 and name the target URL, not retry
        # forever past the iteration budget.
        code, frames = self._drive(
            [dict(FULL_STATUS), ObservabilityError("hiccup"), dict(FULL_STATUS)],
            iterations=2,
        )
        assert code == 1
        assert len(frames) == 2  # frame, then the fatal error line
        assert frames[1].startswith("error:")
        assert "http://x/status" in frames[1]

    def test_unbounded_run_retries_transient_failure_after_first_frame(self):
        # Interactive mode (no --iterations) keeps polling through
        # transient failures once a frame has rendered.
        frames: list[str] = []
        feed = iter(
            [dict(FULL_STATUS), ObservabilityError("hiccup"), dict(FULL_STATUS)]
        )

        def fake_fetch(url, timeout=2.0):
            item = next(feed)
            if isinstance(item, Exception):
                raise item
            return item

        stop_after = {"polls": 0}

        def sleepy(_):
            stop_after["polls"] += 1
            if stop_after["polls"] >= 3:
                raise KeyboardInterrupt

        import repro.obs.top as top_mod

        original = top_mod.fetch_status
        top_mod.fetch_status = fake_fetch
        try:
            code = run_top(
                "http://x/status",
                interval=0.1,
                print_fn=frames.append,
                clear=False,
                sleep_fn=sleepy,
            )
        finally:
            top_mod.fetch_status = original
        assert code == 0
        assert sum("retrying" in f for f in frames) == 1
        assert sum("repro top" in f for f in frames) == 2

    def test_keyboard_interrupt_during_sleep_exits_0(self):
        def sleepy(_):
            raise KeyboardInterrupt

        frames: list[str] = []
        import repro.obs.top as top_mod

        original = top_mod.fetch_status
        top_mod.fetch_status = lambda url, timeout=2.0: dict(FULL_STATUS)
        try:
            code = run_top(
                "http://x/status",
                interval=1.0,
                print_fn=frames.append,
                clear=False,
                sleep_fn=sleepy,
            )
        finally:
            top_mod.fetch_status = original
        assert code == 0
        assert len(frames) == 1


class TestOverloadPanels:
    OVERLOADED = {
        "chain": "bitcoin",
        "blocks_ingested": 100,
        "overload": {
            "admission": {"max_inflight": 4, "max_queue": 8, "inflight": 2,
                          "waiting": 1, "admitted_total": 90,
                          "queued_total": 12, "rejected_total": 7},
            "ratelimit": {"rate": 50.0, "burst": 100.0, "clients": 3,
                          "allowed_total": 80, "throttled_total": 20,
                          "evicted_total": 0},
            "cache": {"ttl": 1.0, "entries": 2, "hits": 40,
                      "stale_hits": 5, "misses": 10},
            "shedder": {"state": "open", "open_count": 1,
                        "shed_total": 6, "degraded": False},
        },
        "ingest": {"policy": "drop-oldest", "maxsize": 64, "depth": 12,
                   "peak_depth": 64, "enqueued_total": 500,
                   "consumed_total": 450, "dropped_total": 38,
                   "closed": False},
    }

    def test_overload_panel_shows_shed_admission_and_throttle(self):
        frame = render_dashboard(self.OVERLOADED)
        assert "overload  shed=open shed_total=6" in frame
        assert "cache_hits=40+5 stale" in frame
        assert "inflight=2/4 rejected=7" in frame
        assert "throttled=20 (3 clients)" in frame

    def test_ingest_queue_panel_shows_depth_and_drops(self):
        frame = render_dashboard(self.OVERLOADED)
        assert "queue     policy=drop-oldest depth=12/64 peak=64 dropped=38" in frame

    def test_panels_absent_when_guard_not_configured(self):
        frame = render_dashboard({"chain": "bitcoin"})
        assert "overload" not in frame
        assert "queue " not in frame
