"""The chain simulator: parameters in, a full 2019 :class:`Chain` out.

Pipeline per simulation:

1. Daily production rates from the chain's difficulty model.
2. Exact per-day block counts (one multinomial over the year).
3. Sorted uniform timestamps within each day.
4. Per-day producer draws: pools (jittered drifting shares) + persistent
   small miners + singleton one-off miners.
5. Anomaly injection: share spikes scale the hashrate schedule before
   drawing; multi-coinbase events append extra payout addresses to chosen
   blocks afterwards.
6. CSR assembly into an immutable :class:`~repro.chain.chain.Chain`.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.chain.chain import Chain
from repro.errors import SimulationError
from repro.simulation.arrivals import allocate_daily_counts, draw_timestamps_for_day
from repro.simulation.difficulty import bitcoin_daily_rates, ethereum_daily_rates
from repro.simulation.hashrate import HashrateSchedule
from repro.simulation.miners import MinerPopulation
from repro.simulation.params import SimulationParams
from repro.util.rng import derive_rng
from repro.util.timeutils import DAYS_IN_2019


class ChainSimulator:
    """Generates one simulated chain from a :class:`SimulationParams`."""

    def __init__(self, params: SimulationParams) -> None:
        self.params = params

    def daily_rates(self) -> np.ndarray:
        """Relative daily block-production rates for the configured chain."""
        spec = self.params.spec
        if spec.name == "bitcoin":
            return bitcoin_daily_rates(
                self.params.seed, target_interval=spec.target_interval
            )
        if spec.name == "ethereum":
            return ethereum_daily_rates(self.params.seed)
        # Generic chain: flat target rate with mild noise.
        rng = derive_rng(self.params.seed, "difficulty/generic")
        base = 86_400.0 / spec.target_interval
        return base * np.exp(rng.normal(0.0, 0.01, size=DAYS_IN_2019))

    def run(self) -> Chain:
        """Simulate the full year and return the chain."""
        params = self.params
        spec = params.spec
        with obs.span("simulate.run", chain=spec.name, seed=params.seed):
            with obs.span("simulate.difficulty"):
                rates = self.daily_rates()
            with obs.span("simulate.arrivals"):
                counts = allocate_daily_counts(
                    spec.block_count,
                    rates,
                    derive_rng(params.seed, "arrivals/daily-counts"),
                )
            with obs.span("simulate.pool_schedule"):
                schedule = HashrateSchedule(
                    params.registry,
                    seed=params.seed,
                    jitter_sigma=params.jitter_sigma,
                    jitter_phi=params.jitter_phi,
                )
                population = MinerPopulation(
                    prefix=spec.name,
                    registry=params.registry,
                    tail=params.tail,
                    seed=params.seed,
                )
            ts_rng = derive_rng(params.seed, "arrivals/timestamps")
            draw_rng = derive_rng(params.seed, "miners/draws")
            day_timestamps: list[np.ndarray] = []
            day_producers: list[np.ndarray] = []
            with obs.span("simulate.draw_days", days=DAYS_IN_2019):
                for day in range(DAYS_IN_2019):
                    n_blocks = int(counts[day])
                    timestamps_of_day = draw_timestamps_for_day(day, n_blocks, ts_rng)
                    day_timestamps.append(timestamps_of_day)
                    base_shares = schedule.pool_shares(day)
                    overrides = self._spike_overrides(timestamps_of_day, base_shares)
                    day_producers.append(
                        population.draw_day(
                            day, n_blocks, base_shares, draw_rng,
                            share_overrides=overrides,
                        )
                    )
            with obs.span("simulate.assemble"):
                timestamps = np.concatenate(day_timestamps)
                base_producers = np.concatenate(day_producers)
                total = int(counts.sum())
                if total != spec.block_count:
                    raise SimulationError(
                        f"internal error: generated {total} blocks, "
                        f"expected {spec.block_count}"
                    )
                heights = spec.start_height + np.arange(total, dtype=np.int64)
                offsets, producer_ids = self._assemble_credits(
                    base_producers, counts, population
                )
                return Chain(
                    spec,
                    heights,
                    timestamps,
                    offsets,
                    producer_ids,
                    population.entity_names,
                )

    def _spike_overrides(
        self, timestamps: np.ndarray, base_shares: np.ndarray
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Block-level share overrides for spikes overlapping these blocks.

        Overlapping spikes compound: a block inside two spikes gets both
        factors applied.
        """
        if not self.params.share_spikes or timestamps.shape[0] == 0:
            return []
        masks = []
        for spike in self.params.share_spikes:
            masks.append(
                (timestamps >= spike.start_ts) & (timestamps < spike.end_ts)
            )
        combined = np.zeros(timestamps.shape[0], dtype=bool)
        for mask in masks:
            combined |= mask
        if not combined.any():
            return []
        overrides: list[tuple[np.ndarray, np.ndarray]] = []
        keys = np.zeros(timestamps.shape[0], dtype=np.int64)
        for bit, mask in enumerate(masks):
            keys |= mask.astype(np.int64) << bit
        for key in np.unique(keys[keys > 0]):
            shares = base_shares.copy()
            for bit, spike in enumerate(self.params.share_spikes):
                if key >> bit & 1:
                    shares[self.params.pool_index(spike.pool_name)] *= spike.factor
            overrides.append((keys == key, shares))
        return overrides

    def _assemble_credits(
        self,
        base_producers: np.ndarray,
        daily_counts: np.ndarray,
        population: MinerPopulation,
    ) -> tuple[np.ndarray, np.ndarray]:
        """CSR producer layout, with multi-coinbase extras appended."""
        n = base_producers.shape[0]
        day_offsets = np.concatenate(([0], np.cumsum(daily_counts)))
        extras: dict[int, np.ndarray] = {}
        for event in self.params.multi_coinbase_events:
            if event.day >= daily_counts.shape[0] or daily_counts[event.day] == 0:
                raise SimulationError(
                    f"multi-coinbase event on day {event.day} has no blocks to attach to"
                )
            within = int(round(event.position * (daily_counts[event.day] - 1)))
            block = int(day_offsets[event.day]) + within
            new_ids = population.mint_singletons(event.day, event.n_addresses, kind="cbout")
            extras[block] = (
                np.concatenate([extras[block], new_ids]) if block in extras else new_ids
            )
        per_block = np.ones(n, dtype=np.int64)
        for block, ids in extras.items():
            per_block[block] += ids.shape[0]
        offsets = np.concatenate(([0], np.cumsum(per_block)))
        producer_ids = np.empty(int(offsets[-1]), dtype=np.int64)
        producer_ids[offsets[:-1]] = base_producers
        for block, ids in extras.items():
            start = int(offsets[block]) + 1
            producer_ids[start : start + ids.shape[0]] = ids
        return offsets, producer_ids
