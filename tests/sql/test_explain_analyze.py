"""Tests for EXPLAIN ANALYZE: per-operator plan trees with timings/rows."""

import pytest

from repro import obs
from repro.sql import QueryEngine, format_plan
from repro.sql.analyze import ExecutionTrace, stage_op
from repro.table import Table


@pytest.fixture
def engine():
    blocks = Table(
        {
            "height": list(range(10)),
            "producer": ["a", "b", "a", "c", "a", "b", "a", "c", "b", "a"],
        }
    )
    extra = Table({"producer": ["a", "b", "c"], "region": ["x", "y", "x"]})
    return QueryEngine({"blocks": blocks, "pools": extra})


def ops(node, acc=None):
    acc = [] if acc is None else acc
    acc.append(node.op)
    for child in node.children:
        ops(child, acc)
    return acc


class TestPlanTree:
    def test_simple_select_stages(self, engine):
        result, root = engine.explain_analyze(
            "SELECT producer FROM blocks WHERE height > 4"
        )
        assert result.num_rows == 5
        assert root.op == "Query"
        assert root.rows_out == 5
        names = ops(root)
        assert names[:3] == ["Query", "Parse", "Plan"]
        assert "Execute" in names
        assert "Scan" in names
        assert "Filter" in names

    def test_rows_in_out_on_filter(self, engine):
        _, root = engine.explain_analyze("SELECT * FROM blocks WHERE height > 4")
        execute = next(c for c in root.children if c.op == "Execute")
        filter_node = next(c for c in execute.children if c.op == "Filter")
        assert filter_node.rows_in == 10
        assert filter_node.rows_out == 5

    def test_aggregate_sort_limit_stages(self, engine):
        _, root = engine.explain_analyze(
            "SELECT producer, COUNT(*) AS n FROM blocks "
            "GROUP BY producer ORDER BY n DESC LIMIT 2"
        )
        names = ops(root)
        for op in ("Aggregate", "Sort", "Limit"):
            assert op in names, names
        execute = next(c for c in root.children if c.op == "Execute")
        aggregate = next(c for c in execute.children if c.op == "Aggregate")
        assert aggregate.rows_in == 10
        assert aggregate.rows_out == 3
        limit = next(c for c in execute.children if c.op == "Limit")
        assert limit.rows_out == 2

    def test_join_nests_scans(self, engine):
        _, root = engine.explain_analyze(
            "SELECT b.producer, p.region FROM blocks b "
            "JOIN pools p ON b.producer = p.producer"
        )
        execute = next(c for c in root.children if c.op == "Execute")
        join = next(c for c in execute.children if c.op == "Join")
        assert join.rows_out == 10
        assert [c.op for c in join.children].count("Scan") == 2

    def test_union_members(self, engine):
        _, root = engine.explain_analyze(
            "SELECT producer FROM blocks UNION ALL SELECT producer FROM pools"
        )
        union = next(c for c in root.children if c.op == "UnionAll")
        members = [c for c in union.children if c.op == "Member"]
        assert len(members) == 2

    def test_timings_are_recorded(self, engine):
        _, root = engine.explain_analyze("SELECT * FROM blocks")
        assert root.seconds > 0
        assert all(child.seconds >= 0 for child in root.children)


class TestFormatPlan:
    def test_rendering(self, engine):
        _, root = engine.explain_analyze(
            "SELECT producer, COUNT(*) AS n FROM blocks GROUP BY producer LIMIT 2"
        )
        text = format_plan(root)
        lines = text.splitlines()
        assert lines[0].startswith("Query")
        assert "time=" in lines[0]
        assert any("Scan blocks" in line for line in lines)
        assert any("in=10 out=3" in line for line in lines)
        assert any("└─" in line for line in lines)


class TestStageOpRouting:
    def test_collector_takes_priority(self):
        trace = ExecutionTrace()
        with stage_op(trace, "Scan", "blocks") as op:
            op.rows_out = 7
        (node,) = trace.root.children
        assert node.op == "Scan"
        assert node.rows_out == 7
        assert node.seconds >= 0

    def test_null_op_when_nothing_active(self):
        assert not obs.tracing_enabled()
        with stage_op(None, "Scan") as op:
            op.rows_in = 5
            op.rows_out = 3
        # accepts writes, records nothing

    def test_obs_spans_when_tracing_enabled(self):
        tracer = obs.enable_tracing()
        try:
            with stage_op(None, "Scan", "blocks") as op:
                op.rows_out = 4
            (span,) = tracer.spans
            assert span.name == "sql.Scan"
            assert span.attrs["rows_out"] == 4
        finally:
            obs.disable_tracing()

    def test_execute_emits_sql_spans_under_tracing(self, engine):
        tracer = obs.enable_tracing()
        try:
            engine.execute("SELECT * FROM blocks WHERE height > 4")
            names = {s.name for s in tracer.spans}
            assert "sql.query" in names
            assert "sql.Scan" in names
            assert "sql.Filter" in names
            assert tracer.metrics.snapshot()["counters"]["sql.queries"] == 1.0
        finally:
            obs.disable_tracing()
