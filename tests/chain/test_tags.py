"""Tests for coinbase tag parsing."""

import pytest

from repro.chain.tags import extract_pool_tag, is_known_pool_tag


class TestExtractPoolTag:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("/F2Pool/mined by xyz", "F2Pool"),
            ("something /ViaBTC/Mined by user/", "ViaBTC"),
            ("/BTC.COM/ extra", "BTC.com"),
            ("/slush/", "SlushPool"),
            ("POOLIN rocks", "Poolin"),
            ("/Mined by AntPool usa1/", "AntPool"),
            ("huobi pool block", "Huobi.pool"),
        ],
    )
    def test_known_pools_canonicalized(self, text, expected):
        assert extract_pool_tag(text) == expected

    def test_unknown_slash_tag_passes_through(self):
        assert extract_pool_tag("/SomeNewPool/") == "SomeNewPool"

    def test_no_tag_returns_none(self):
        assert extract_pool_tag("just random coinbase bytes") is None

    def test_empty_string(self):
        assert extract_pool_tag("") is None

    def test_case_insensitive_known_match(self):
        assert extract_pool_tag("F2POOL") == "F2Pool"

    def test_slash_tag_requires_two_chars(self):
        assert extract_pool_tag("/a/") is None


class TestIsKnownPoolTag:
    def test_known(self):
        assert is_known_pool_tag("f2pool")
        assert is_known_pool_tag("ViaBTC")

    def test_unknown(self):
        assert not is_known_pool_tag("SomeNewPool")
