"""Byte-identity of the sharded execution layer against the serial path.

The whole point of ``repro.parallel`` is that ``workers=N`` is purely a
wall-clock knob: every merged result must be **bitwise** equal to the
serial computation, for every attribution policy, metric and window
family.  These tests prove that on a real (truncated) Bitcoin dataset —
``.tobytes()`` comparisons, not ``allclose``.
"""

import numpy as np
import pytest

from repro.chain.attribution import attribute
from repro.chain.pools import bitcoin_pools_2019
from repro.core.engine import MeasurementEngine
from repro.resilience import chain_from_raw_blocks, raw_blocks

POLICIES = ("per-address", "first-address", "fractional", "pool")
METRICS = ("gini", "entropy", "nakamoto")

#: 30 simulated days — enough blocks for day windows, multi-shard sweeps
#: and every policy's multi-coinbase edge cases, small enough to stay fast.
N_BLOCKS = 4_320


@pytest.fixture(scope="module")
def chain(btc_chain):
    return chain_from_raw_blocks(btc_chain.spec, raw_blocks(btc_chain, 0, N_BLOCKS))


@pytest.fixture(scope="module")
def registry():
    return bitcoin_pools_2019()


def assert_credits_identical(serial, parallel):
    assert parallel.chain_name == serial.chain_name
    assert parallel.policy == serial.policy
    assert list(parallel.entity_names) == list(serial.entity_names)
    for attr in (
        "entity_ids", "weights", "block_positions", "timestamps", "block_offsets"
    ):
        a, b = getattr(serial, attr), getattr(parallel, attr)
        assert a.dtype == b.dtype, attr
        assert a.tobytes() == b.tobytes(), attr


def assert_series_identical(serial, parallel):
    assert set(parallel) == set(serial)
    for name, a in serial.items():
        b = parallel[name]
        assert b.values.tobytes() == a.values.tobytes(), name
        assert b.indices.tobytes() == a.indices.tobytes(), name
        assert b.labels == a.labels, name
        assert b.skipped == a.skipped, name


class TestAttributionEquivalence:
    @pytest.mark.parametrize("workers", [2, 3, 4])
    @pytest.mark.parametrize("policy", POLICIES)
    def test_sharded_attribution_is_bitwise_serial(
        self, chain, registry, policy, workers
    ):
        serial = attribute(chain, policy, registry)
        parallel = attribute(chain, policy, registry, workers=workers)
        assert_credits_identical(serial, parallel)


class TestEngineEquivalence:
    """Separate serial/parallel engines per case so the sliding caches and
    segment-histogram caches can never mask a divergent parallel result."""

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("policy", POLICIES)
    def test_calendar_sweep(self, chain, registry, policy, workers):
        serial = MeasurementEngine.from_chain(chain, policy, registry, workers=1)
        sharded = MeasurementEngine.from_chain(
            chain, policy, registry, workers=workers
        )
        assert_series_identical(
            serial.measure_calendar_many(METRICS, "day"),
            sharded.measure_calendar_many(METRICS, "day"),
        )

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("policy", POLICIES)
    def test_sliding_fast_path(self, chain, registry, policy, workers):
        # size % step == 0: the incremental segment-histogram fast path.
        serial = MeasurementEngine.from_chain(chain, policy, registry, workers=1)
        sharded = MeasurementEngine.from_chain(
            chain, policy, registry, workers=workers
        )
        assert_series_identical(
            serial.measure_sliding_many(METRICS, 144, 72),
            sharded.measure_sliding_many(METRICS, 144, 72),
        )

    @pytest.mark.parametrize("workers", [2, 4])
    def test_sliding_fallback_path(self, chain, registry, workers):
        # size % step != 0 forces the generic batched sweep (per-window
        # distributions sharded instead of segment histograms).
        serial = MeasurementEngine.from_chain(chain, "per-address", workers=1)
        sharded = MeasurementEngine.from_chain(
            chain, "per-address", workers=workers
        )
        assert_series_identical(
            serial.measure_sliding_many(METRICS, 144, 100),
            sharded.measure_sliding_many(METRICS, 144, 100),
        )

    @pytest.mark.parametrize("workers", [2, 3])
    def test_segment_histograms(self, chain, workers):
        serial = attribute(chain, "per-address")
        sharded = attribute(chain, "per-address")
        a = serial.segment_histograms(72)
        b = sharded.segment_histograms(72, workers=workers)
        assert a is not None and b is not None
        assert a.dtype == b.dtype
        assert a.tobytes() == b.tobytes()

    def test_per_call_workers_override(self, chain):
        # workers=N on the call wins over the engine default and is still
        # bitwise identical.
        engine = MeasurementEngine.from_chain(chain, "per-address", workers=1)
        baseline = engine.measure_calendar_many(METRICS, "week")
        other = MeasurementEngine.from_chain(chain, "per-address", workers=1)
        assert_series_identical(
            baseline, other.measure_calendar_many(METRICS, "week", workers=3)
        )
