"""Ablation — block-count vs wall-clock sliding windows.

The paper slides over block counts; the wall-clock formulation (24-hour
window, 12-hour step) measures the same process.  Because Bitcoin's 2019
block rate ran ~3% above one-per-10-minutes, the 144-block windows cover
slightly less than a day; the two families still agree closely on level
and variability, validating the paper's block-count choice.
"""

import pytest

from _bench_util import report_series
from repro.util.timeutils import SECONDS_PER_DAY


def measure_both(btc):
    return {
        "blocks-144": btc.measure_sliding("entropy", 144),
        "time-24h": btc.measure_time_sliding("entropy", SECONDS_PER_DAY),
    }


def test_ablation_time_vs_block_windows(benchmark, btc):
    results = benchmark.pedantic(measure_both, args=(btc,), rounds=1, iterations=1)
    report_series("time vs block sliding windows (BTC entropy)", results)

    by_blocks = results["blocks-144"]
    by_time = results["time-24h"]
    assert by_time.mean() == pytest.approx(by_blocks.mean(), abs=0.1)
    assert by_time.std() == pytest.approx(by_blocks.std(), rel=0.5)
    # Block windows are exactly-N; time windows fluctuate in block count,
    # producing a few more points over the year at matched step.
    assert len(by_time) == pytest.approx(len(by_blocks), abs=40)
