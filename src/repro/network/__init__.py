"""Network-layer decentralization (extension; related work [5]).

The paper's related work (Gencer et al., FC'18) measures decentralization
at the *network* layer — node topology, relay concentration, propagation —
rather than the consensus layer the paper itself measures.  This package
builds that substrate: P2P topology generation with latency-weighted
edges, pool-gateway placement, network decentralization metrics (degree
Gini, betweenness concentration, relay dominance) and a block-propagation
model, so the two layers can be compared on the same simulated chains.
"""

from repro.network.advantage import AdvantageReport, connectivity_advantage
from repro.network.metrics import (
    betweenness_concentration,
    degree_gini,
    network_nakamoto,
    relay_dominance,
)
from repro.network.propagation import PropagationReport, propagation_report, stale_rate
from repro.network.topology import NetworkParams, P2PNetwork, generate_network

__all__ = [
    "AdvantageReport",
    "NetworkParams",
    "connectivity_advantage",
    "P2PNetwork",
    "PropagationReport",
    "betweenness_concentration",
    "degree_gini",
    "generate_network",
    "network_nakamoto",
    "propagation_report",
    "relay_dominance",
    "stale_rate",
]
