"""Span-tree summaries: aggregate a trace into self/total times.

Spans sharing a (parent-path, name) are merged into one
:class:`SpanTreeNode` carrying call count, total wall time and *self*
time (total minus the time spent in child spans), then rendered as an
indented tree — the output of the ``repro trace`` subcommand.

When the trace was recorded with :mod:`repro.obs.profile` enabled, the
spans additionally carry cpu/rss/alloc attributes; :func:`profile_rollup`
folds those into per-stage resource totals and
:func:`format_profile_rollup` renders them (the ``repro --profile``
stderr report and part of ``repro trace`` output for profiled traces).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.obs.export import load_trace_file
from repro.obs.tracer import SpanRecord, Tracer


@dataclass
class SpanTreeNode:
    """Aggregated statistics for one span name at one tree position."""

    name: str
    count: int = 0
    total: float = 0.0
    child_time: float = 0.0
    children: dict = field(default_factory=dict)

    @property
    def self_time(self) -> float:
        """Wall time spent in this span outside any child span."""
        return max(self.total - self.child_time, 0.0)


def aggregate_spans(spans: Sequence[SpanRecord]) -> SpanTreeNode:
    """Merge span records into a tree rooted at a synthetic ``<trace>``."""
    root = SpanTreeNode("<trace>")
    by_id = {span.span_id: span for span in spans}
    node_of: dict[int | None, SpanTreeNode] = {}

    def node_for(span: SpanRecord) -> SpanTreeNode:
        cached = node_of.get(span.span_id)
        if cached is not None:
            return cached
        parent_span = by_id.get(span.parent_id) if span.parent_id is not None else None
        parent_node = node_for(parent_span) if parent_span is not None else root
        node = parent_node.children.get(span.name)
        if node is None:
            node = parent_node.children[span.name] = SpanTreeNode(span.name)
        node_of[span.span_id] = node
        return node

    for span in sorted(spans, key=lambda s: s.start):
        node = node_for(span)
        node.count += 1
        node.total += span.duration
        if span.parent_id in by_id:
            node_of[span.parent_id].child_time += span.duration
        else:
            root.total += span.duration
            root.count = max(root.count, 1)
    return root


def format_duration(seconds: float) -> str:
    """Human duration: µs under 1 ms, ms under 1 s, seconds above."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def format_span_tree(root: SpanTreeNode) -> str:
    """Render an aggregated tree with count, total and self columns."""
    lines = [f"{'span':<52s} {'count':>6s} {'total':>10s} {'self':>10s}"]

    def visit(node: SpanTreeNode, prefix: str, is_last: bool, depth: int) -> None:
        if depth == 0:
            label = node.name
            child_prefix = ""
        else:
            connector = "└─ " if is_last else "├─ "
            label = prefix + connector + node.name
            child_prefix = prefix + ("   " if is_last else "│  ")
        lines.append(
            f"{label:<52s} {node.count:>6d} "
            f"{format_duration(node.total):>10s} {format_duration(node.self_time):>10s}"
        )
        ordered = sorted(node.children.values(), key=lambda n: -n.total)
        for i, child in enumerate(ordered):
            visit(child, child_prefix, i == len(ordered) - 1, depth + 1)

    top_level = sorted(root.children.values(), key=lambda n: -n.total)
    for i, node in enumerate(top_level):
        visit(node, "", i == len(top_level) - 1, 0)
    if len(lines) == 1:
        lines.append("(no spans recorded)")
    return "\n".join(lines)


def format_metrics(metrics: dict) -> str:
    """Render a metrics snapshot (counters, gauges, timing histograms)."""
    lines: list[str] = []
    if metrics.get("counters"):
        lines.append("counters:")
        for name, value in sorted(metrics["counters"].items()):
            lines.append(f"  {name:<48s} {value:>12g}")
    if metrics.get("gauges"):
        lines.append("gauges:")
        for name, value in sorted(metrics["gauges"].items()):
            lines.append(f"  {name:<48s} {value:>12g}")
    if metrics.get("timings"):
        lines.append("timings:")
        for name, stats in sorted(metrics["timings"].items()):
            lines.append(
                f"  {name:<48s} count={stats.get('count', 0):<6g} "
                f"total={format_duration(stats.get('total', 0.0))} "
                f"mean={format_duration(stats.get('mean', 0.0))} "
                f"p95={format_duration(stats.get('p95', 0.0))}"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"


def profile_rollup(spans: Sequence[SpanRecord]) -> list[dict]:
    """Per-stage resource totals over profiled spans (cpu-descending).

    Only spans that carry profiler attributes contribute (see
    :mod:`repro.obs.profile`); each row aggregates every span sharing a
    name, across processes: call count, wall/cpu seconds summed, peak
    ``rss_kb`` across calls, allocation deltas summed when tracemalloc
    sampling was on.
    """
    stages: dict[str, dict] = {}
    for span in spans:
        if "cpu" not in span.attrs:
            continue
        row = stages.get(span.name)
        if row is None:
            row = stages[span.name] = {
                "name": span.name,
                "calls": 0,
                "wall": 0.0,
                "cpu": 0.0,
                "rss_kb": 0.0,
                "alloc_kb": None,
            }
        row["calls"] += 1
        row["wall"] += span.duration
        row["cpu"] += float(span.attrs.get("cpu", 0.0))
        row["rss_kb"] = max(row["rss_kb"], float(span.attrs.get("rss_kb", 0.0)))
        alloc = span.attrs.get("alloc_kb")
        if alloc is not None:
            row["alloc_kb"] = (row["alloc_kb"] or 0.0) + float(alloc)
    return sorted(stages.values(), key=lambda r: -r["cpu"])


def format_profile_rollup(rollup: list[dict]) -> str:
    """Render :func:`profile_rollup` rows as an aligned table."""
    if not rollup:
        return "(no profiled spans — record with profiling enabled)"
    lines = [
        f"{'stage':<44s} {'calls':>6s} {'wall':>10s} {'cpu':>10s} "
        f"{'rss':>10s} {'alloc':>10s}"
    ]
    for row in rollup:
        alloc = (
            f"{row['alloc_kb']:+.0f}kB" if row["alloc_kb"] is not None else "-"
        )
        lines.append(
            f"{row['name']:<44s} {row['calls']:>6d} "
            f"{format_duration(row['wall']):>10s} {format_duration(row['cpu']):>10s} "
            f"{row['rss_kb'] / 1024.0:>8.1f}MB {alloc:>10s}"
        )
    return "\n".join(lines)


def _compose_summary(spans: Sequence[SpanRecord], metrics: dict) -> str:
    parts = [format_span_tree(aggregate_spans(spans))]
    rollup = profile_rollup(spans)
    if rollup:
        parts.append("profile:\n" + format_profile_rollup(rollup))
    parts.append(format_metrics(metrics))
    return "\n\n".join(parts)


def summarize_tracer(tracer: Tracer) -> str:
    """Span tree (+ profile rollup, when present) + metrics of a live tracer."""
    return _compose_summary(tracer.spans, tracer.metrics.snapshot())


def summarize_trace_file(path: str | Path) -> str:
    """Span tree + metrics summary of a trace file in either format."""
    spans, metrics = load_trace_file(path)
    return _compose_summary(spans, metrics)


def summarize_trace_file_lenient(path: str | Path) -> tuple[str, int, int]:
    """Summary tolerating corrupt records (for traces from interrupted runs).

    Returns ``(summary_text, n_records, n_skipped)`` where ``n_records``
    counts the span and metric records that did load.  Used by the
    ``repro trace`` subcommand: it warns about skipped records and fails
    only when nothing at all was readable.
    """
    from repro.obs.export import load_trace_file_lenient

    spans, metrics, skipped = load_trace_file_lenient(path)
    n_records = (
        len(spans)
        + len(metrics["counters"])
        + len(metrics["gauges"])
        + len(metrics["timings"])
    )
    return _compose_summary(spans, metrics), n_records, skipped
