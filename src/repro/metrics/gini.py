"""Gini coefficient (paper Eq. 1).

.. math::

    G = \\frac{\\sum_{i,j} |NB_i - NB_j|}{2 |A| \\sum_i NB_i}

0 means perfectly equal block production; values near 1 mean a few entities
produce nearly everything.  The paper reads a *lower* Gini as a *higher*
degree of decentralization.

The implementation uses the sorted form, equivalent to the double sum but
O(n log n):

.. math::

    G = \\frac{2 \\sum_{i=1}^{n} i\\,x_{(i)} - (n + 1) \\sum_i x_i}{n \\sum_i x_i}
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import validate_distribution


def gini_coefficient(values: np.ndarray | list[float]) -> float:
    """Gini coefficient of a credit distribution, in ``[0, 1)``.

    >>> gini_coefficient([1.0, 1.0, 1.0])
    0.0
    >>> round(gini_coefficient([0.0, 0.0, 10.0]), 3)  # zeros are dropped
    0.0
    >>> round(gini_coefficient([1, 1, 1, 97]), 2)
    0.72
    """
    array = np.sort(validate_distribution(values))
    n = array.shape[0]
    total = array.sum()
    ranks = np.arange(1, n + 1, dtype=np.float64)
    gini = float((2.0 * np.dot(ranks, array) - (n + 1) * total) / (n * total))
    # Equal distributions can land an epsilon below zero; clamp.
    return min(max(gini, 0.0), 1.0)


def gini_pairwise(values: np.ndarray | list[float]) -> float:
    """Gini via the literal O(n²) double sum of Eq. 1 (reference/tests only)."""
    array = validate_distribution(values)
    n = array.shape[0]
    diffs = np.abs(array[:, None] - array[None, :]).sum()
    return float(diffs / (2.0 * n * array.sum()))


def lorenz_curve(values: np.ndarray | list[float]) -> tuple[np.ndarray, np.ndarray]:
    """Lorenz curve points ``(population share, credit share)``.

    Returns two arrays of length ``n + 1`` starting at (0, 0); the Gini
    coefficient equals twice the area between the curve and the diagonal.
    """
    array = np.sort(validate_distribution(values))
    n = array.shape[0]
    population = np.arange(n + 1, dtype=np.float64) / n
    cumulative = np.concatenate(([0.0], np.cumsum(array))) / array.sum()
    return population, cumulative
