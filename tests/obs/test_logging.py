"""Tests for span-correlated structured logging."""

import io
import json
import logging

import pytest

from repro import obs
from repro.obs.logging import (
    ROOT_LOGGER_NAME,
    configure_logging,
    get_logger,
)


@pytest.fixture
def log_stream():
    """Configure the repro hierarchy onto a buffer; restore afterwards."""
    stream = io.StringIO()
    root = logging.getLogger(ROOT_LOGGER_NAME)
    saved_level, saved_propagate = root.level, root.propagate
    yield stream
    for handler in [
        h for h in root.handlers if getattr(h, "_repro_managed", False)
    ]:
        root.removeHandler(handler)
        handler.close()
    root.setLevel(saved_level)
    root.propagate = saved_propagate


class TestTextMode:
    def test_line_has_level_logger_and_message(self, log_stream):
        configure_logging(stream=log_stream)
        get_logger("engine").warning("fell off the fast path")
        line = log_stream.getvalue().strip()
        assert "WARNING" in line
        assert "repro.engine" in line
        assert line.endswith("fell off the fast path")

    def test_span_context_appears_when_tracing(self, log_stream):
        configure_logging(stream=log_stream)
        obs.enable_tracing()
        try:
            with obs.span("engine.sliding_sweep"):
                get_logger("engine").warning("slow rebuild")
        finally:
            obs.disable_tracing()
        assert "[engine.sliding_sweep#" in log_stream.getvalue()

    def test_no_span_marker_outside_spans(self, log_stream):
        configure_logging(stream=log_stream)
        get_logger("engine").warning("plain")
        assert "[" not in log_stream.getvalue()

    def test_level_filters(self, log_stream):
        configure_logging(level="WARNING", stream=log_stream)
        get_logger("x").info("hidden")
        get_logger("x").warning("shown")
        assert "hidden" not in log_stream.getvalue()
        assert "shown" in log_stream.getvalue()


class TestJsonMode:
    def test_one_parseable_object_per_line(self, log_stream):
        configure_logging(json_lines=True, stream=log_stream)
        logger = get_logger("cache")
        logger.info("first")
        logger.warning("second")
        lines = log_stream.getvalue().splitlines()
        payloads = [json.loads(line) for line in lines]
        assert [p["message"] for p in payloads] == ["first", "second"]
        assert payloads[1]["level"] == "WARNING"
        assert payloads[0]["logger"] == "repro.cache"
        assert payloads[0]["ts"].endswith("+00:00")

    def test_span_id_and_name_are_injected(self, log_stream):
        configure_logging(json_lines=True, stream=log_stream)
        obs.enable_tracing()
        try:
            with obs.span("streaming.evaluate"):
                get_logger("streaming").warning("threshold alert")
        finally:
            obs.disable_tracing()
        payload = json.loads(log_stream.getvalue())
        assert payload["span"] == "streaming.evaluate"
        assert isinstance(payload["span_id"], int)

    def test_extra_fields_pass_through(self, log_stream):
        configure_logging(json_lines=True, stream=log_stream)
        get_logger("sql").warning("slow", extra={"rows": 100000, "op": "eq"})
        payload = json.loads(log_stream.getvalue())
        assert payload["rows"] == 100000
        assert payload["op"] == "eq"

    def test_exceptions_are_captured(self, log_stream):
        configure_logging(json_lines=True, stream=log_stream)
        try:
            raise ValueError("boom")
        except ValueError:
            get_logger("x").exception("failed")
        payload = json.loads(log_stream.getvalue())
        assert "ValueError: boom" in payload["exception"]


class TestConfiguration:
    def test_reconfigure_replaces_the_managed_handler(self, log_stream):
        configure_logging(stream=log_stream)
        configure_logging(json_lines=True, stream=log_stream)
        root = logging.getLogger(ROOT_LOGGER_NAME)
        managed = [
            h for h in root.handlers if getattr(h, "_repro_managed", False)
        ]
        assert len(managed) == 1
        get_logger("x").info("once")
        assert len(log_stream.getvalue().splitlines()) == 1

    def test_foreign_handlers_survive_reconfiguration(self, log_stream):
        root = logging.getLogger(ROOT_LOGGER_NAME)
        foreign = logging.NullHandler()
        root.addHandler(foreign)
        try:
            configure_logging(stream=log_stream)
            assert foreign in root.handlers
        finally:
            root.removeHandler(foreign)

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging(level="LOUD")

    def test_get_logger_prefixes_once(self):
        assert get_logger("serve").name == "repro.serve"
        assert get_logger("repro.serve").name == "repro.serve"
        assert get_logger("repro").name == "repro"
