"""Series and figure export to CSV/JSON."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.figures import FigureResult
from repro.core.series import MeasurementSeries
from repro.core.summary import summarize
from repro.table.io import write_csv


def series_to_csv(series: MeasurementSeries, path: str | Path) -> None:
    """Write one series as CSV (``index,label,value``)."""
    write_csv(series.to_table(), path)


def series_to_json(series: MeasurementSeries, path: str | Path) -> None:
    """Write one series plus its summary statistics as JSON."""
    payload = {
        "chain": series.chain_name,
        "metric": series.metric_name,
        "windows": series.window_desc,
        "skipped_windows": series.skipped,
        "summary": summarize(series).as_dict(),
        "points": [
            {"index": int(i), "label": label, "value": float(v)}
            for i, label, v in zip(series.indices, series.labels, series.values)
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def export_figure(figure: FigureResult, directory: str | Path) -> list[Path]:
    """Write every series of ``figure`` into ``directory``; return the paths.

    Produces one CSV per series plus a ``<figure_id>.json`` manifest with
    the figure's notes and (for Fig. 7) its distributions.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for label, series in figure.series.items():
        safe_label = label.replace("=", "-").replace("/", "-")
        path = directory / f"{figure.figure_id}_{safe_label}.csv"
        series_to_csv(series, path)
        written.append(path)
    manifest = {
        "figure_id": figure.figure_id,
        "title": figure.title,
        "notes": figure.notes,
        "series": sorted(figure.series),
        "distributions": [
            {
                "window": d.window_label,
                "top": [{"producer": name, "share": share} for name, share in d.top],
                "other_share": d.other_share,
                "n_producers": d.n_producers,
            }
            for d in figure.distributions
        ],
    }
    manifest_path = directory / f"{figure.figure_id}.json"
    manifest_path.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
    written.append(manifest_path)
    return written
