"""Query execution over :mod:`repro.table` tables.

The executor takes a validated :class:`~repro.sql.planner.QueryPlan` and
runs it: FROM (with hash joins) → WHERE → GROUP BY/aggregates → HAVING →
SELECT projection → DISTINCT → ORDER BY → LIMIT/OFFSET.

NULL handling is deliberately simple (the datasets the study uses have no
NULLs outside LEFT JOIN results): comparisons treat ``None`` as an ordinary
value, ``IS NULL`` matches ``None`` and NaN, and ``COUNT(x)`` skips NULLs.
"""

from __future__ import annotations

import logging
import time
from typing import Any, Mapping

import numpy as np

from repro import obs
from repro.errors import SqlExecutionError, SqlPlanError
from repro.sql.astnodes import (
    Aggregate,
    Analyze,
    Between,
    Binary,
    Case,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    Join,
    Literal,
    Star,
    SubquerySource,
    TableRef,
    Unary,
    Union,
)
from repro.parallel import WorkerPool, resolve_workers, shard_ranges
from repro.parallel import work as _work
from repro.sql.analyze import ExecutionTrace, PlanNode, format_plan, stage_op
from repro.sql.cost import PlannerOptions
from repro.sql.functions import AGGREGATE_FUNCTIONS, call_scalar_function, like_match
from repro.sql.parser import parse
from repro.sql.planner import (
    PhysicalPlan,
    QueryPlan,
    SourceInfo,
    and_combine,
    find_aggregates,
    optimize,
    plan,
    source_tables,
)
from repro.table import Table
from repro.table.aggregates import grouped_aggregate
from repro.table.column import Column
from repro.table.index import Index, build_index
from repro.table.stats import TableStatistics

logger = logging.getLogger(__name__)

#: Object-dtype comparisons below this many rows skip the fallback warning.
_OBJECT_COMPARE_WARN_ROWS = 100_000

#: Below this many input rows a fork-per-query costs more than the grouping
#: itself, so the parallel aggregate defers to the serial path even when
#: the engine was built with ``workers`` >= 2.
_PARALLEL_MIN_ROWS = 50_000

#: Aggregates with a mergeable partial state (COUNT/SUM as running sums,
#: AVG as (sum, count), MIN/MAX as running extrema).  DISTINCT variants
#: and the holistic aggregates (MEDIAN, STDDEV, VARIANCE) have no cheap
#: partial and always run serially.
_PARALLEL_FUNCS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})

#: Rows processed by per-row Python fallbacks since process start.  There
#: is no disk spill in this engine; "spill" counts the analogous cliff —
#: rows leaving the vectorized numpy kernels.  Stage ops diff this around
#: their block to attribute spilled rows to an operator.
_SPILL_ROWS = 0


def _note_spill(rows: int) -> None:
    global _SPILL_ROWS
    _SPILL_ROWS += int(rows)


def _table_bytes(table: Table) -> int:
    """Raw size of a table's column buffers (what a scan materializes)."""
    return int(
        sum(table.column(name).values.nbytes for name in table.column_names)
    )


def query(sql: str, **tables: Table) -> Table:
    """Parse and execute ``sql`` against keyword-argument tables.

    >>> query("SELECT COUNT(*) AS n FROM t", t=Table({"x": [1, 2]})).to_rows()
    [{'n': 2}]
    """
    return QueryEngine(tables).execute(sql)


class QueryEngine:
    """Executes SQL against a named catalog of in-memory tables.

    ``workers`` >= 2 enables the parallel group-by operators: eligible
    aggregations over at least :data:`_PARALLEL_MIN_ROWS` input rows run
    as a partitioned columnar scan plus partial aggregates on a
    :class:`~repro.parallel.WorkerPool`, finalized on the coordinator
    (group numbering and COUNT/MIN/MAX results match the serial path
    exactly; SUM/AVG may differ in the last float ulp because partial
    sums reassociate).  The default is serial execution.
    """

    def __init__(
        self,
        catalog: Mapping[str, Table] | None = None,
        workers: int | str | None = 1,
        optimizer: bool = True,
        options: PlannerOptions | None = None,
    ) -> None:
        self._catalog: dict[str, Table] = dict(catalog or {})
        self.workers = resolve_workers(workers if workers is not None else 1)
        self.optimizer_enabled = bool(optimizer)
        self.options = options if options is not None else PlannerOptions()
        #: ANALYZE results: table name -> (the table object analyzed, stats).
        #: Replacing the table via :meth:`register` marks its stats stale.
        self._analyzed: dict[str, tuple[Table, TableStatistics]] = {}
        #: Declared indexes: table name -> {column -> kind}.  Specs survive
        #: re-registration; the structures are rebuilt against the new table.
        self._index_specs: dict[str, dict[str, str]] = {}
        self._indexes: dict[str, dict[str, Index]] = {}

    def register(self, name: str, table: Table) -> None:
        """Add or replace a table in the catalog.

        Index structures declared with :meth:`create_index` are rebuilt
        against the new table; specs whose column disappeared are dropped
        with a warning.  ANALYZE statistics are kept but become stale
        (see :meth:`stats_state`).
        """
        self._catalog[name] = table
        specs = self._index_specs.get(name)
        if not specs:
            return
        rebuilt: dict[str, Index] = {}
        for column, kind in list(specs.items()):
            if column not in table:
                logger.warning(
                    "dropping index on %s.%s: column no longer exists", name, column
                )
                del specs[column]
                continue
            rebuilt[column] = build_index(table, column, kind)
        self._indexes[name] = rebuilt

    def table_names(self) -> tuple[str, ...]:
        """Names of registered tables, sorted."""
        return tuple(sorted(self._catalog))

    # -- statistics and indexes ------------------------------------------------

    def analyze(self, table: str | None = None) -> Table:
        """Collect optimizer statistics (the ``ANALYZE [table]`` statement).

        Returns a per-column summary table; the statistics are kept for
        cost-based planning until the table is replaced (then marked
        stale: value distributions are reused as ratios against the
        current row count).
        """
        obs.counter("sql.analyze")
        names = [table] if table is not None else list(self.table_names())
        rows: list[dict[str, Any]] = []
        for name in names:
            target = self._lookup(name)
            stats = target.statistics(refresh=True)
            self._analyzed[name] = (target, stats)
            for column in target.column_names:
                cs = stats.column(column)
                top_value, top_count = (None, None)
                if cs is not None and cs.most_common:
                    top_value = _display(cs.most_common[0][0])
                    top_count = cs.most_common[0][1]
                rows.append(
                    {
                        "table": name,
                        "column": column,
                        "kind": cs.kind if cs is not None else "?",
                        "rows": stats.row_count,
                        "nulls": cs.n_null if cs is not None else 0,
                        "distinct": cs.n_distinct if cs is not None else 0,
                        "min": _display(cs.min_value) if cs is not None else None,
                        "max": _display(cs.max_value) if cs is not None else None,
                        "top_value": top_value,
                        "top_count": 0 if top_count is None else top_count,
                    }
                )
        if not rows:
            return Table(
                {
                    "table": [],
                    "column": [],
                    "kind": [],
                    "rows": [],
                    "nulls": [],
                    "distinct": [],
                    "min": [],
                    "max": [],
                    "top_value": [],
                    "top_count": [],
                }
            )
        data = {key: [row[key] for row in rows] for key in rows[0]}
        return Table(data)

    def create_index(self, table: str, column: str, kind: str = "auto") -> Index:
        """Build a secondary index over ``table.column``.

        ``kind`` is ``"sorted"``, ``"hash"`` or ``"auto"`` (hash for
        strings, sorted otherwise).  The index is maintained across
        :meth:`register` calls for the same table name.
        """
        target = self._lookup(table)
        index = build_index(target, column, kind)
        self._index_specs.setdefault(table, {})[column] = index.kind
        self._indexes.setdefault(table, {})[column] = index
        obs.counter("sql.create_index")
        return index

    def index_specs(self, table: str) -> dict[str, str]:
        """Declared indexes for ``table`` as ``{column: kind}``."""
        return dict(self._index_specs.get(table, {}))

    def stats_state(self, table: str) -> str:
        """``"fresh"``, ``"stale"`` or ``"absent"`` statistics for ``table``."""
        entry = self._analyzed.get(table)
        if entry is None:
            return "absent"
        return "fresh" if entry[0] is self._catalog.get(table) else "stale"

    def _source_info(self, ref: TableRef) -> SourceInfo | None:
        """What the optimizer may assume about one catalog table."""
        table = self._catalog.get(ref.name)
        if table is None:
            return None  # abort optimization; the legacy path reports the error
        entry = self._analyzed.get(ref.name)
        return SourceInfo(
            rows=table.num_rows,
            columns=tuple(table.column_names),
            column_kinds={name: table.column(name).kind for name in table.column_names},
            stats=entry[1] if entry is not None else None,
            stats_state=self.stats_state(ref.name),
            indexes={
                column: index.kind
                for column, index in self._indexes.get(ref.name, {}).items()
            },
        )

    def _optimize(self, query_plan: QueryPlan) -> PhysicalPlan | None:
        if not self.optimizer_enabled:
            return None
        return optimize(query_plan, self._source_info, self.options)

    def execute(self, sql: str) -> Table:
        """Parse, plan and execute one statement (SELECT, UNION ALL, ANALYZE)."""
        with obs.span("sql.query"):
            obs.counter("sql.queries")
            statement = parse(sql)
            if isinstance(statement, Analyze):
                return self.analyze(statement.table)
            if isinstance(statement, Union):
                return self._execute_union(statement)
            return self.execute_plan(plan(statement))

    def explain_analyze(self, sql: str) -> tuple[Table, PlanNode]:
        """Execute ``sql`` with per-operator instrumentation.

        Returns the result table plus the root :class:`PlanNode` of the
        measured plan tree (wall time and rows in/out per operator),
        rendered by :func:`repro.sql.analyze.format_plan`.
        """
        trace = ExecutionTrace()
        start = time.perf_counter()
        with trace.op("Parse"):
            statement = parse(sql)
        if isinstance(statement, Analyze):
            with trace.op("Analyze", statement.table or "all tables") as op:
                result = self.analyze(statement.table)
                op.rows_out = result.num_rows
        elif isinstance(statement, Union):
            with trace.op("UnionAll", f"{len(statement.selects)} members") as op:
                result = self._execute_union(statement, trace=trace)
                op.rows_out = result.num_rows
        else:
            with trace.op("Plan"):
                query_plan = plan(statement)
            with trace.op("Execute") as op:
                result = self.execute_plan(query_plan, trace=trace)
                op.rows_out = result.num_rows
        trace.root.seconds = time.perf_counter() - start
        trace.root.rows_out = result.num_rows
        return result, trace.root

    def _execute_union(self, union: Union, trace: ExecutionTrace | None = None) -> Table:
        from repro.table import concat

        parts = []
        for i, select in enumerate(union.selects):
            with stage_op(trace, "Member", str(i + 1)) as op:
                part = self.execute_plan(plan(select), trace=trace)
                op.rows_out = part.num_rows
            parts.append(part)
        schema = parts[0].schema
        for part in parts[1:]:
            if part.schema != schema:
                raise SqlPlanError(
                    "UNION ALL members must produce identical schemas: "
                    f"{part.schema} vs {schema}"
                )
        return concat(parts)

    def explain(self, sql: str) -> str:
        """Return a human-readable summary of the query plan.

        With the optimizer enabled the logical summary is followed by the
        physical plan tree (access paths, join strategies and estimated
        rows per operator) rendered without timings.
        """
        statement = parse(sql)
        if isinstance(statement, Analyze):
            target = statement.table or "all registered tables"
            return (
                f"ANALYZE {target}\n"
                "COLLECT row count, per-column distinct/null counts, "
                "min/max and most-common values"
            )
        if isinstance(statement, Union):
            members = "\n".join(
                f"-- member {i + 1} --" for i in range(len(statement.selects))
            )
            return f"UNION ALL of {len(statement.selects)} selects\n{members}"
        query_plan = plan(statement)
        select = query_plan.select
        lines = [
            "FROM "
            + " JOIN ".join(t.binding for t in source_tables(select.source))
        ]
        if select.where is not None:
            lines.append("WHERE <predicate>")
        if query_plan.is_aggregation:
            lines.append(
                f"AGGREGATE keys={len(select.group_by)} aggregates={len(query_plan.aggregates)}"
            )
        if select.having is not None:
            lines.append("HAVING <predicate>")
        lines.append(f"PROJECT {list(query_plan.output_names) or '*'}")
        if select.distinct:
            lines.append("DISTINCT")
        if select.order_by:
            lines.append(f"ORDER BY {len(select.order_by)} key(s)")
        if select.limit is not None:
            lines.append(f"LIMIT {select.limit} OFFSET {select.offset or 0}")
        physical = self._optimize(query_plan)
        if physical is not None:
            lines.append("")
            lines.append("-- physical plan (estimated rows) --")
            lines.append(
                format_plan(self._physical_tree(query_plan, physical), include_time=False)
            )
        return "\n".join(lines)

    def _physical_tree(self, query_plan: QueryPlan, physical: PhysicalPlan) -> PlanNode:
        """A :class:`PlanNode` tree mirroring execution, estimates only."""
        select = query_plan.select
        est = physical.estimates
        root = PlanNode("Execute", rows_est=est.get("final"))

        def source_nodes(
            source: TableRef | SubquerySource | Join,
        ) -> list[PlanNode]:
            if isinstance(source, TableRef):
                sp = physical.scans.get(source.binding)
                if sp is None or sp.is_trivial:
                    rows = sp.base_rows if sp is not None else None
                    return [PlanNode("Scan", source.name, rows_est=rows)]
                access_rows = sp.access_est_rows if sp.access != "seq" else sp.base_rows
                nodes = [PlanNode("Scan", sp.describe(), rows_est=access_rows)]
                if sp.pushed:
                    nodes.append(PlanNode("Filter", "pushed", rows_est=sp.est_rows))
                return nodes
            if isinstance(source, SubquerySource):
                rows = physical.subquery_rows.get(source.binding)
                return [PlanNode("Subquery", source.binding, rows_est=rows)]
            jp = physical.joins.get(source)
            detail = source.kind.upper()
            if jp is not None:
                detail = f"{detail} {jp.describe()}"
            node = PlanNode("Join", detail, rows_est=jp.est_rows if jp else None)
            node.children.extend(source_nodes(source.left))
            node.children.extend(source_nodes(source.right))
            return [node]

        root.children.extend(source_nodes(select.source))
        if physical.residual_where is not None:
            root.children.append(PlanNode("Filter", rows_est=est.get("filter")))
        if query_plan.is_aggregation:
            detail = (
                f"keys={len(select.group_by)} aggregates={len(query_plan.aggregates)}"
            )
            root.children.append(PlanNode("Aggregate", detail, rows_est=est.get("aggregate")))
        else:
            root.children.append(
                PlanNode("Project", _project_detail(query_plan), rows_est=est.get("project"))
            )
        if select.distinct:
            root.children.append(PlanNode("Distinct", rows_est=est.get("distinct")))
        if select.order_by:
            root.children.append(
                PlanNode("Sort", f"keys={len(select.order_by)}", rows_est=est.get("sort"))
            )
        if select.limit is not None or select.offset is not None:
            root.children.append(PlanNode("Limit", rows_est=est.get("limit")))
        return root

    def execute_plan(
        self,
        query_plan: QueryPlan,
        trace: ExecutionTrace | None = None,
        physical: PhysicalPlan | None = None,
    ) -> Table:
        """Run a validated plan against the catalog.

        ``trace`` (an :class:`~repro.sql.analyze.ExecutionTrace`) collects
        per-operator wall time and row counts for EXPLAIN ANALYZE; when
        omitted the stage hooks are no-ops (or ``sql.*`` spans if the
        process-wide tracer is enabled).  ``physical`` carries the
        cost-based optimizer's decisions; when omitted one is computed
        (unless the engine was built with ``optimizer=False``).  Physical
        planning never changes results — only access paths, join
        strategies and the ``est=`` numbers on the plan tree.
        """
        select = query_plan.select
        if physical is None and self.optimizer_enabled:
            with stage_op(trace, "Optimize"):
                physical = self._optimize(query_plan)
        est = physical.estimates if physical is not None else {}
        scope = self._build_scope(select.source, trace, physical)
        table = scope.table
        where_expr = physical.residual_where if physical is not None else select.where
        if where_expr is not None:
            with stage_op(trace, "Filter") as op:
                op.rows_in = table.num_rows
                op.rows_est = est.get("filter")
                spill_base = _SPILL_ROWS
                mask = _as_bool_mask(
                    _evaluate(where_expr, table, scope), table.num_rows
                )
                table = table.filter(mask)
                op.rows_out = table.num_rows
                op.spilled_rows = (_SPILL_ROWS - spill_base) or None
        if query_plan.is_aggregation:
            detail = (
                f"keys={len(select.group_by)} aggregates={len(query_plan.aggregates)}"
            )
            with stage_op(trace, "Aggregate", detail) as op:
                op.rows_in = table.num_rows
                op.rows_est = est.get("aggregate")
                spill_base = _SPILL_ROWS
                result = self._run_aggregation(query_plan, table, scope, trace)
                op.rows_out = result.num_rows
                op.spilled_rows = (_SPILL_ROWS - spill_base) or None
        else:
            with stage_op(trace, "Project", _project_detail(query_plan)) as op:
                op.rows_est = est.get("project")
                result = self._run_projection(query_plan, table, scope)
                op.rows_out = result.num_rows
        if select.distinct and result.num_rows:
            with stage_op(trace, "Distinct") as op:
                op.rows_in = result.num_rows
                op.rows_est = est.get("distinct")
                result = result.distinct()
                op.rows_out = result.num_rows
        if select.order_by:
            with stage_op(trace, "Sort", f"keys={len(select.order_by)}") as op:
                op.rows_est = est.get("sort")
                result = self._apply_order(query_plan, result, table, scope)
                op.rows_out = result.num_rows
        if select.offset is not None or select.limit is not None:
            detail = f"{select.limit if select.limit is not None else 'ALL'}"
            if select.offset:
                detail += f" offset={select.offset}"
            with stage_op(trace, "Limit", detail) as op:
                op.rows_in = result.num_rows
                op.rows_est = est.get("limit")
                start = select.offset or 0
                stop = None if select.limit is None else start + select.limit
                result = result.slice(start, stop)
                op.rows_out = result.num_rows
        return result

    # -- FROM ------------------------------------------------------------------

    def _build_scope(
        self,
        source: TableRef | SubquerySource | Join,
        trace: ExecutionTrace | None = None,
        physical: PhysicalPlan | None = None,
    ) -> "_Scope":
        if isinstance(source, TableRef):
            return self._scan_table(source, trace, physical)
        if isinstance(source, SubquerySource):
            with stage_op(trace, "Subquery", source.binding) as op:
                if physical is not None:
                    op.rows_est = physical.subquery_rows.get(source.binding)
                derived = self.execute_plan(plan(source.select), trace)
                op.rows_out = derived.num_rows
            return _Scope.single(source.binding, derived)
        join_plan = physical.joins.get(source) if physical is not None else None
        detail = source.kind.upper()
        if join_plan is not None:
            detail = f"{detail} {join_plan.describe()}"
        with stage_op(trace, "Join", detail) as op:
            if join_plan is not None:
                op.rows_est = join_plan.est_rows
            left_scope = self._build_scope(source.left, trace, physical)
            right = self._build_scope(source.right, trace, physical)
            left_qualified = left_scope.qualified()
            right_qualified = right.qualified()
            left_key = left_qualified.resolve(source.on_left)
            right_key = right_qualified.resolve(source.on_right)
            strategy = join_plan.strategy if join_plan is not None else "hash"
            if strategy == "sort_merge":
                joined = _sort_merge_join(
                    left_qualified.table,
                    left_key,
                    right_qualified.table,
                    right_key,
                    source.kind,
                )
            elif strategy == "index" and join_plan is not None:
                index = self._indexes[join_plan.index_table][join_plan.index_column]
                joined = _index_join(
                    left_qualified.table,
                    left_key,
                    right_qualified.table,
                    index,
                    source.kind,
                )
            else:
                joined = _hash_join(
                    left_qualified.table,
                    left_key,
                    right_qualified.table,
                    right_key,
                    source.kind,
                )
            op.rows_out = joined.num_rows
        return _Scope.joined(joined)

    def _scan_table(
        self,
        source: TableRef,
        trace: ExecutionTrace | None,
        physical: PhysicalPlan | None,
    ) -> "_Scope":
        scan = physical.scans.get(source.binding) if physical is not None else None
        if scan is None or scan.is_trivial:
            with stage_op(trace, "Scan", source.name) as op:
                table = self._lookup(source.name)
                op.rows_out = table.num_rows
                op.bytes_scanned = _table_bytes(table)
                if scan is not None:
                    op.rows_est = scan.base_rows
            return _Scope.single(source.binding, table)
        table = self._lookup(source.name)
        with stage_op(trace, "Scan", scan.describe()) as op:
            if scan.access == "index-eq":
                index = self._indexes[source.name][scan.index_column]
                table = table.take(index.lookup_eq(scan.index_value))
                op.rows_est = scan.access_est_rows
            elif scan.access == "index-range":
                index = self._indexes[source.name][scan.index_column]
                table = table.take(
                    index.lookup_range(
                        scan.index_low,
                        scan.index_high,
                        scan.index_include_low,
                        scan.index_include_high,
                    )
                )
                op.rows_est = scan.access_est_rows
            else:
                op.rows_est = scan.base_rows
            if scan.columns is not None:
                table = table.select(list(scan.columns))
            op.rows_out = table.num_rows
            op.bytes_scanned = _table_bytes(table)
        scope = _Scope.single(source.binding, table)
        if scan.pushed:
            with stage_op(trace, "Filter", "pushed") as op:
                op.rows_in = table.num_rows
                op.rows_est = scan.est_rows
                spill_base = _SPILL_ROWS
                predicate = and_combine(list(scan.pushed))
                mask = _as_bool_mask(
                    _evaluate(predicate, table, scope), table.num_rows
                )
                table = table.filter(mask)
                op.rows_out = table.num_rows
                op.spilled_rows = (_SPILL_ROWS - spill_base) or None
            scope = _Scope.single(source.binding, table)
        return scope

    def _lookup(self, name: str) -> Table:
        try:
            return self._catalog[name]
        except KeyError:
            known = ", ".join(sorted(self._catalog)) or "<none>"
            raise SqlPlanError(f"unknown table {name!r}; registered tables: {known}") from None

    # -- plain projection --------------------------------------------------------

    def _run_projection(self, query_plan: QueryPlan, table: Table, scope: "_Scope") -> Table:
        select = query_plan.select
        if isinstance(select.items, Star):
            return scope.star_projection(table)
        data: dict[str, Column] = {}
        for name, item in zip(query_plan.output_names, select.items):
            value = _evaluate(item.expr, table, scope)
            data[name] = _to_column(value, table.num_rows)
        return Table(data)

    # -- aggregation --------------------------------------------------------------

    def _run_aggregation(
        self,
        query_plan: QueryPlan,
        table: Table,
        scope: "_Scope",
        trace: ExecutionTrace | None = None,
    ) -> Table:
        select = query_plan.select
        n_rows = table.num_rows
        group_exprs = _resolve_group_keys(query_plan, scope)
        key_arrays = [
            _broadcast(_evaluate(expr, table, scope), n_rows)
            for expr in group_exprs
        ]
        env: dict[Expr, np.ndarray] | None = None
        if group_exprs and self._parallel_eligible(query_plan, n_rows):
            env, n_groups = self._parallel_aggregation(
                query_plan, table, scope, group_exprs, key_arrays, trace
            )
        if env is None:
            if group_exprs:
                group_ids, n_groups = _factorize(key_arrays)
            else:
                group_ids = np.zeros(n_rows, dtype=np.int64)
                n_groups = 1
            env = {}
            for expr, keys in zip(group_exprs, key_arrays):
                env[expr] = _first_per_group(keys, group_ids, n_groups)
            for aggregate in query_plan.aggregates:
                env[aggregate] = _evaluate_aggregate(
                    aggregate, table, scope, group_ids, n_groups
                )
        alias_map = _alias_map(query_plan)
        if select.having is not None:
            having_expr = _resolve_aliases(select.having, alias_map)
            mask_values = _evaluate_grouped(having_expr, env, n_groups)
            mask = _as_bool_mask(mask_values, n_groups)
            keep = np.flatnonzero(mask)
        else:
            keep = np.arange(n_groups)
        data: dict[str, Column] = {}
        for name, item in zip(query_plan.output_names, select.items):
            values = _broadcast(_evaluate_grouped(item.expr, env, n_groups), n_groups)
            data[name] = _to_column(values[keep], len(keep))
        result = Table(data)
        # Stash the group environment for ORDER BY over aggregate expressions.
        self._last_group_env = (env, keep, n_groups)
        return result

    def _parallel_eligible(self, query_plan: QueryPlan, n_rows: int) -> bool:
        """Whether this aggregation can run as partial/final over partitions."""
        if self.workers < 2 or n_rows < _PARALLEL_MIN_ROWS:
            return False
        for aggregate in query_plan.aggregates:
            if aggregate.distinct or aggregate.func not in _PARALLEL_FUNCS:
                return False
        return True

    def _parallel_aggregation(
        self,
        query_plan: QueryPlan,
        table: Table,
        scope: "_Scope",
        group_exprs: tuple[Expr, ...],
        key_arrays: list[np.ndarray],
        trace: ExecutionTrace | None,
    ) -> tuple[dict[Expr, np.ndarray], int]:
        """Partitioned scan + parallel partial aggregate + in-order finalize.

        Rows are split into contiguous partitions; each worker scans its
        slice of the already-evaluated key/argument columns, groups it
        locally in first-appearance order, and returns mergeable partial
        states.  The coordinator walks the partitions **in order**,
        numbering each unseen key tuple as it appears — which is exactly
        the first-appearance-over-all-rows numbering ``_factorize``
        produces — then folds the partials into final values.  With
        EXPLAIN ANALYZE the plan shows one ``ParallelScan`` +
        ``PartialAggregate`` node pair per partition (worker-measured
        times) and a ``FinalizeAggregate`` merge node.
        """
        n_rows = table.num_rows
        n_workers = self.workers
        funcs = tuple(a.func for a in query_plan.aggregates)
        agg_arrays = [
            None
            if a.argument is None
            else np.asarray(_broadcast(_evaluate(a.argument, table, scope), n_rows))
            for a in query_plan.aggregates
        ]
        ranges = shard_ranges(n_rows, n_workers)
        obs.counter("sql.parallel_aggregate")
        with WorkerPool(n_workers, payload=(key_arrays, agg_arrays)) as pool:
            parts = pool.map_shards(
                _work.sql_partial_aggregate,
                [(lo, hi, funcs) for lo, hi in ranges],
            )
        if trace is not None:
            for i, ((lo, hi), part) in enumerate(zip(ranges, parts)):
                with trace.op("ParallelScan", f"partition={i} rows[{lo}:{hi}]") as op:
                    pass
                op.node.seconds = part["scan_seconds"]
                op.node.rows_out = part["rows"]
                with trace.op("PartialAggregate", f"partition={i}") as op:
                    pass
                op.node.seconds = part["agg_seconds"]
                op.node.rows_in = part["rows"]
                op.node.rows_out = len(part["keys"])
        with stage_op(
            trace, "FinalizeAggregate", f"partitions={len(parts)} workers={n_workers}"
        ) as op:
            mapping: dict = {}
            remaps: list[np.ndarray] = []
            for part in parts:
                remap = np.empty(len(part["keys"]), dtype=np.int64)
                for local_gid, key in enumerate(part["keys"]):
                    gid = mapping.get(key)
                    if gid is None:
                        gid = len(mapping)
                        mapping[key] = gid
                    remap[local_gid] = gid
                remaps.append(remap)
            n_groups = len(mapping)
            env: dict[Expr, np.ndarray] = {}
            for k, expr in enumerate(group_exprs):
                out = np.empty(n_groups, dtype=key_arrays[k].dtype)
                for key, gid in mapping.items():
                    out[gid] = key[k]
                env[expr] = out
            for i, aggregate in enumerate(query_plan.aggregates):
                env[aggregate] = _merge_partials(
                    funcs[i],
                    agg_arrays[i],
                    [part["partials"][i] for part in parts],
                    remaps,
                    n_groups,
                )
            op.rows_in = sum(len(part["keys"]) for part in parts)
            op.rows_out = n_groups
        return env, n_groups

    # -- ORDER BY ---------------------------------------------------------------

    def _apply_order(
        self, query_plan: QueryPlan, result: Table, table: Table, scope: "_Scope"
    ) -> Table:
        select = query_plan.select
        if not select.order_by:
            return result
        sort_arrays: list[np.ndarray] = []
        flags: list[bool] = []
        alias_map = _alias_map(query_plan)
        for item in select.order_by:
            expr = item.expr
            if isinstance(expr, Literal) and isinstance(expr.value, int):
                index = expr.value - 1
                if not 0 <= index < result.num_columns:
                    raise SqlPlanError(
                        f"ORDER BY position {expr.value} out of range"
                    )
                values = result[result.column_names[index]]
            elif isinstance(expr, ColumnRef) and expr.table is None and expr.name in result:
                values = result[expr.name]
            elif expr in alias_map.values() and _find_output(expr, query_plan) is not None:
                values = result[_find_output(expr, query_plan)]
            elif query_plan.is_aggregation:
                env, keep, n_groups = self._last_group_env
                resolved = _resolve_aliases(expr, alias_map)
                values = _broadcast(
                    _evaluate_grouped(resolved, env, n_groups), n_groups
                )[keep]
            else:
                if select.distinct:
                    raise SqlPlanError(
                        "ORDER BY with DISTINCT must reference output columns"
                    )
                values = _broadcast(_evaluate(expr, table, scope), table.num_rows)
            if len(values) != result.num_rows:
                raise SqlExecutionError("ORDER BY expression length mismatch")
            sort_arrays.append(np.asarray(values))
            flags.append(item.descending)
        codes = []
        for values, descending in zip(sort_arrays, flags):
            code = _order_codes(values)
            codes.append(-code if descending else code)
        order = np.lexsort(list(reversed(codes)))
        return result.take(order)


# -- scope -----------------------------------------------------------------------


class _Scope:
    """Column-name resolution for the current FROM clause.

    For a single table the physical names are the original column names.
    After a join every physical name is ``binding.column`` and unqualified
    references resolve when exactly one binding has the column.
    """

    def __init__(self, table: Table, binding: str | None, is_join: bool) -> None:
        self.table = table
        self._binding = binding
        self._is_join = is_join

    @classmethod
    def single(cls, binding: str, table: Table) -> "_Scope":
        """Scope over one physical or derived table."""
        return cls(table, binding, is_join=False)

    @classmethod
    def joined(cls, table: Table) -> "_Scope":
        """Scope over a join result with qualified column names."""
        return cls(table, None, is_join=True)

    def qualified(self) -> "_Scope":
        """Return this scope with every physical column qualified."""
        if self._is_join:
            return self
        renamed = self.table.rename(
            {name: f"{self._binding}.{name}" for name in self.table.column_names}
        )
        return _Scope(renamed, None, is_join=True)

    def resolve(self, ref: ColumnRef) -> str:
        """Map a column reference to a physical column name."""
        if not self._is_join:
            if ref.table is not None and ref.table != self._binding:
                raise SqlPlanError(f"unknown table qualifier {ref.table!r}")
            if ref.name not in self.table:
                raise SqlPlanError(f"unknown column {ref.display!r}")
            return ref.name
        if ref.table is not None:
            physical = f"{ref.table}.{ref.name}"
            if physical not in self.table:
                raise SqlPlanError(f"unknown column {ref.display!r}")
            return physical
        matches = [
            name
            for name in self.table.column_names
            if name.rsplit(".", 1)[-1] == ref.name
        ]
        if not matches:
            raise SqlPlanError(f"unknown column {ref.name!r}")
        if len(matches) > 1:
            raise SqlPlanError(f"ambiguous column {ref.name!r}: {matches}")
        return matches[0]

    def star_projection(self, table: Table) -> Table:
        """Project all columns, unqualifying join columns where unambiguous."""
        if not self._is_join:
            return table
        renames: dict[str, str] = {}
        short_names = [name.rsplit(".", 1)[-1] for name in table.column_names]
        for name, short in zip(table.column_names, short_names):
            if short_names.count(short) == 1:
                renames[name] = short
        return table.rename(renames)


def _hash_join(
    left: Table, left_key: str, right: Table, right_key: str, how: str
) -> Table:
    """Equality hash-join on one key column per side (names may differ).

    Emits matches in ``(left row, right row)`` lexicographic order — the
    canonical pair order every join strategy reproduces so results are
    byte-identical regardless of the optimizer's choice.
    """
    build: dict[Any, list[int]] = {}
    for j, value in enumerate(right.column(right_key).to_list()):
        build.setdefault(value, []).append(j)
    left_rows: list[int] = []
    right_rows: list[int] = []
    for i, value in enumerate(left.column(left_key).to_list()):
        matches = build.get(value)
        if matches:
            left_rows.extend([i] * len(matches))
            right_rows.extend(matches)
        elif how == "left":
            left_rows.append(i)
            right_rows.append(-1)
    return _assemble_join(left, right, left_rows, right_rows)


def _sort_merge_join(
    left: Table, left_key: str, right: Table, right_key: str, how: str
) -> Table:
    """Sort-merge equality join, byte-identical to :func:`_hash_join`.

    Keys are dense-coded through one shared dict (so equality semantics —
    ``None`` matches ``None``, NaN never matches — are exactly the hash
    join's), both sides are sorted by code, merged linearly, and the match
    pairs re-sorted into canonical ``(left, right)`` order.
    """
    left_values = left.column(left_key).to_list()
    right_values = right.column(right_key).to_list()
    mapping: dict[Any, int] = {}

    def encode(values: list) -> np.ndarray:
        codes = np.empty(len(values), dtype=np.int64)
        for i, value in enumerate(values):
            code = mapping.get(value)
            if code is None:
                code = len(mapping)
                mapping[value] = code
            codes[i] = code
        return codes

    left_codes = encode(left_values)
    right_codes = encode(right_values)
    left_order = np.argsort(left_codes, kind="stable")
    right_order = np.argsort(right_codes, kind="stable")
    left_rows: list[int] = []
    right_rows: list[int] = []
    i = j = 0
    n_left, n_right = len(left_order), len(right_order)
    while i < n_left:
        code = left_codes[left_order[i]]
        while j < n_right and right_codes[right_order[j]] < code:
            j += 1
        j_end = j
        while j_end < n_right and right_codes[right_order[j_end]] == code:
            j_end += 1
        i_end = i
        while i_end < n_left and left_codes[left_order[i_end]] == code:
            i_end += 1
        if j_end > j:
            run = right_order[j:j_end]
            for left_row in left_order[i:i_end]:
                left_rows.extend([int(left_row)] * len(run))
                right_rows.extend(int(r) for r in run)
        elif how == "left":
            for left_row in left_order[i:i_end]:
                left_rows.append(int(left_row))
                right_rows.append(-1)
        i = i_end
        j = j_end
    left_arr = np.asarray(left_rows, dtype=np.int64)
    right_arr = np.asarray(right_rows, dtype=np.int64)
    if len(left_arr):
        order = np.lexsort((right_arr, left_arr))
        left_arr = left_arr[order]
        right_arr = right_arr[order]
    return _assemble_join(left, right, left_arr, right_arr)


def _index_join(
    left: Table, left_key: str, right: Table, index: Any, how: str
) -> Table:
    """Index nested-loop join probing a right-side secondary index.

    ``index`` was built over the right base table, whose row positions the
    planner guarantees are still valid (sequential scan, no pushed
    filters).  ``lookup_join`` uses dict-equality semantics and returns
    ascending positions, so the output is naturally in canonical order.
    """
    left_rows: list[int] = []
    right_rows: list[int] = []
    for i, value in enumerate(left.column(left_key).to_list()):
        matches = index.lookup_join(value)
        if len(matches):
            left_rows.extend([i] * len(matches))
            right_rows.extend(int(j) for j in matches)
        elif how == "left":
            left_rows.append(i)
            right_rows.append(-1)
    return _assemble_join(left, right, left_rows, right_rows)


def _assemble_join(left: Table, right: Table, left_rows: Any, right_rows: Any) -> Table:
    """Materialize join output from matched row-index pairs.

    ``right_rows == -1`` marks a LEFT JOIN miss: right columns widen to
    NULL (``None`` for strings, NaN for numerics) on those rows.
    """
    left_part = left.take(np.asarray(left_rows, dtype=np.int64))
    right_idx = np.asarray(right_rows, dtype=np.int64)
    missing = right_idx < 0
    safe_idx = np.where(missing, 0, right_idx)
    data = {name: left_part.column(name) for name in left_part.column_names}
    for name in right.column_names:
        column = right.column(name)
        if right.num_rows == 0:
            data[name] = Column(np.full(len(right_idx), np.nan), "float")
            continue
        taken = column.values[safe_idx]
        if missing.any():
            if column.kind == "str":
                taken = taken.copy()
                taken[missing] = None
                data[name] = Column(taken, "str")
            else:
                values = taken.astype(np.float64)
                values[missing] = np.nan
                data[name] = Column(values, "float")
        else:
            data[name] = Column(taken, column.kind)
    return Table(data)


# -- expression evaluation ----------------------------------------------------------


def _evaluate(expr: Expr, table: Table, scope: _Scope) -> Any:
    """Evaluate ``expr`` against table rows; returns an array or a scalar."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        return table[scope.resolve(expr)]
    if isinstance(expr, Unary):
        return _apply_unary(expr.op, _evaluate(expr.operand, table, scope))
    if isinstance(expr, Binary):
        return _apply_binary(
            expr.op,
            _evaluate(expr.left, table, scope),
            lambda: _evaluate(expr.right, table, scope),
            expr,
        )
    if isinstance(expr, Between):
        value = _evaluate(expr.operand, table, scope)
        low = _evaluate(expr.low, table, scope)
        high = _evaluate(expr.high, table, scope)
        mask = np.logical_and(
            _compare(">=", value, low), _compare("<=", value, high)
        )
        return np.logical_not(mask) if expr.negated else mask
    if isinstance(expr, InList):
        value = _evaluate(expr.operand, table, scope)
        items = [_evaluate(item, table, scope) for item in expr.items]
        return _in_list(value, items, expr.negated)
    if isinstance(expr, IsNull):
        value = _evaluate(expr.operand, table, scope)
        mask = _is_null(value, table.num_rows)
        return np.logical_not(mask) if expr.negated else mask
    if isinstance(expr, FunctionCall):
        args = tuple(_evaluate(arg, table, scope) for arg in expr.args)
        return call_scalar_function(expr.name, args)
    if isinstance(expr, Case):
        return _apply_case(expr, lambda e: _evaluate(e, table, scope), table.num_rows)
    if isinstance(expr, Aggregate):
        raise SqlPlanError("aggregate functions are not allowed in this context")
    raise SqlPlanError(f"cannot evaluate expression node {type(expr).__name__}")


def _evaluate_grouped(expr: Expr, env: dict[Expr, np.ndarray], n_groups: int) -> Any:
    """Evaluate ``expr`` per group; columns must come through ``env``."""
    if expr in env:
        return env[expr]
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        raise SqlPlanError(
            f"column {expr.display!r} must appear in GROUP BY or inside an aggregate"
        )
    if isinstance(expr, Unary):
        return _apply_unary(expr.op, _evaluate_grouped(expr.operand, env, n_groups))
    if isinstance(expr, Binary):
        return _apply_binary(
            expr.op,
            _evaluate_grouped(expr.left, env, n_groups),
            lambda: _evaluate_grouped(expr.right, env, n_groups),
            expr,
        )
    if isinstance(expr, Between):
        value = _evaluate_grouped(expr.operand, env, n_groups)
        low = _evaluate_grouped(expr.low, env, n_groups)
        high = _evaluate_grouped(expr.high, env, n_groups)
        mask = np.logical_and(_compare(">=", value, low), _compare("<=", value, high))
        return np.logical_not(mask) if expr.negated else mask
    if isinstance(expr, InList):
        value = _evaluate_grouped(expr.operand, env, n_groups)
        items = [_evaluate_grouped(item, env, n_groups) for item in expr.items]
        return _in_list(value, items, expr.negated)
    if isinstance(expr, IsNull):
        value = _evaluate_grouped(expr.operand, env, n_groups)
        mask = _is_null(value, n_groups)
        return np.logical_not(mask) if expr.negated else mask
    if isinstance(expr, FunctionCall):
        args = tuple(_evaluate_grouped(arg, env, n_groups) for arg in expr.args)
        return call_scalar_function(expr.name, args)
    if isinstance(expr, Case):
        return _apply_case(expr, lambda e: _evaluate_grouped(e, env, n_groups), n_groups)
    raise SqlPlanError(f"cannot evaluate expression node {type(expr).__name__}")


def _evaluate_aggregate(
    aggregate: Aggregate,
    table: Table,
    scope: _Scope,
    group_ids: np.ndarray,
    n_groups: int,
) -> np.ndarray:
    if aggregate.argument is None:  # COUNT(*)
        return np.bincount(group_ids, minlength=n_groups).astype(np.int64)
    values = _broadcast(
        _evaluate(aggregate.argument, table, scope), table.num_rows
    )
    values = np.asarray(values)
    if aggregate.func == "COUNT":
        non_null = ~_is_null(values, len(values))
        rows = np.flatnonzero(non_null)
        if aggregate.distinct:
            return grouped_aggregate(
                values[rows], group_ids[rows], n_groups, "count_distinct"
            )
        return np.bincount(group_ids[rows], minlength=n_groups).astype(np.int64)
    func = AGGREGATE_FUNCTIONS[aggregate.func]
    return grouped_aggregate(values, group_ids, n_groups, func)


# -- operator helpers ----------------------------------------------------------------


def _apply_unary(op: str, value: Any) -> Any:
    if op == "-":
        if isinstance(value, np.ndarray) and value.dtype == object:
            raise SqlExecutionError("cannot negate a string value")
        return -value  # numpy handles arrays and scalars alike
    if op == "NOT":
        return np.logical_not(value)
    raise SqlPlanError(f"unknown unary operator {op!r}")


def _apply_binary(op: str, left: Any, right_thunk: Any, node: Binary) -> Any:
    right = right_thunk()
    if op in ("AND", "OR"):
        fn = np.logical_and if op == "AND" else np.logical_or
        return fn(left, right)
    if op in ("=", "!=", "<", "<=", ">", ">="):
        return _compare(op, left, right)
    if op == "LIKE":
        if not isinstance(right, str):
            raise SqlPlanError("LIKE pattern must be a string literal")
        return like_match(left, right)
    if op in ("+", "-", "*", "/", "%"):
        return _arithmetic(op, left, right)
    raise SqlPlanError(f"unknown binary operator {op!r}")


def _arithmetic(op: str, left: Any, right: Any) -> Any:
    for side in (left, right):
        if isinstance(side, str) or (
            isinstance(side, np.ndarray) and side.dtype == object
        ):
            raise SqlExecutionError(f"operator {op!r} is not defined for strings")
    if op in ("/", "%"):
        divisor = np.asarray(right)
        if np.any(divisor == 0):
            raise SqlExecutionError("division by zero")
    if op == "+":
        return np.add(left, right)
    if op == "-":
        return np.subtract(left, right)
    if op == "*":
        return np.multiply(left, right)
    if op == "/":
        return np.divide(left, right)
    return np.mod(left, right)


def _compare(op: str, left: Any, right: Any) -> np.ndarray:
    left_is_obj = isinstance(left, np.ndarray) and left.dtype == object
    right_is_obj = isinstance(right, np.ndarray) and right.dtype == object
    if left_is_obj or right_is_obj or isinstance(left, str) or isinstance(right, str):
        return _compare_object(op, left, right)
    ops = {
        "=": np.equal,
        "!=": np.not_equal,
        "<": np.less,
        "<=": np.less_equal,
        ">": np.greater,
        ">=": np.greater_equal,
    }
    return ops[op](left, right)


def _compare_object(op: str, left: Any, right: Any) -> np.ndarray:
    import operator as _operator

    _note_spill(
        len(left) if isinstance(left, np.ndarray) else len(right)
    )

    ops = {
        "=": _operator.eq,
        "!=": _operator.ne,
        "<": _operator.lt,
        "<=": _operator.le,
        ">": _operator.gt,
        ">=": _operator.ge,
    }
    fn = ops[op]
    left_arr = left if isinstance(left, np.ndarray) else None
    right_arr = right if isinstance(right, np.ndarray) else None
    length = len(left_arr) if left_arr is not None else len(right_arr)
    if length >= _OBJECT_COMPARE_WARN_ROWS:
        obs.counter("sql.object_compare_fallback")
        logger.warning(
            "object-dtype %r comparison fell back to a Python row loop "
            "over %d rows; consider filtering earlier or comparing numerics",
            op, length,
        )
    out = np.empty(length, dtype=bool)
    for i in range(length):
        lhs = left_arr[i] if left_arr is not None else left
        rhs = right_arr[i] if right_arr is not None else right
        if lhs is None or rhs is None:
            out[i] = False if op != "!=" else True
            continue
        try:
            out[i] = bool(fn(lhs, rhs))
        except TypeError as exc:
            raise SqlExecutionError(
                f"cannot compare {type(lhs).__name__} with {type(rhs).__name__}"
            ) from exc
    return out


def _in_list(value: Any, items: list[Any], negated: bool) -> np.ndarray:
    if any(isinstance(item, np.ndarray) for item in items):
        raise SqlPlanError("IN list items must be scalar expressions")
    array = np.asarray(value) if not isinstance(value, np.ndarray) else value
    if array.dtype == object:
        allowed = set(items)
        mask = np.asarray([v in allowed for v in array], dtype=bool)
    else:
        mask = np.isin(array, items)
    return np.logical_not(mask) if negated else mask


def _is_null(value: Any, length: int) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype == object:
            return np.asarray([v is None for v in value], dtype=bool)
        if np.issubdtype(value.dtype, np.floating):
            return np.isnan(value)
        return np.zeros(value.shape[0], dtype=bool)
    if value is None:
        return np.ones(length, dtype=bool)
    if isinstance(value, float) and np.isnan(value):
        return np.ones(length, dtype=bool)
    return np.zeros(length, dtype=bool)


def _apply_case(expr: Case, evaluate: Any, length: int) -> np.ndarray:
    default = evaluate(expr.default) if expr.default is not None else None
    values = [evaluate(value) for _, value in expr.whens]
    conditions = [
        _as_bool_mask(evaluate(condition), length) for condition, _ in expr.whens
    ]
    use_object = any(
        isinstance(v, str)
        or (isinstance(v, np.ndarray) and v.dtype == object)
        for v in values + [default]
    ) or default is None
    if use_object:
        out = np.empty(length, dtype=object)
        out[:] = None
    else:
        out = np.empty(length, dtype=np.float64)
    out[:] = _broadcast(default, length) if default is not None else out[:]
    # Apply whens in reverse so the FIRST matching branch wins.
    for condition, value in zip(reversed(conditions), reversed(values)):
        broadcast_value = _broadcast(value, length)
        out[condition] = broadcast_value[condition]
    return out


# -- small utilities -------------------------------------------------------------------


def _display(value: Any) -> str | None:
    """Render an ANALYZE summary value as a string (None stays NULL)."""
    if value is None:
        return None
    if isinstance(value, float) and not isinstance(value, bool):
        if not np.isfinite(value):
            return str(value)
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
    return str(value)


def _project_detail(query_plan: QueryPlan) -> str:
    names = query_plan.output_names
    if not names:
        return "*"
    if len(names) > 4:
        return f"[{', '.join(names[:4])}, ... +{len(names) - 4}]"
    return f"[{', '.join(names)}]"


def _broadcast(value: Any, length: int) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.shape[0] != length:
            raise SqlExecutionError(
                f"expression produced {value.shape[0]} rows, expected {length}"
            )
        return value
    if isinstance(value, str) or value is None:
        out = np.empty(length, dtype=object)
        out[:] = value
        return out
    return np.full(length, value)


def _as_bool_mask(value: Any, length: int) -> np.ndarray:
    array = _broadcast(value, length)
    if array.dtype == object:
        return np.asarray([bool(v) for v in array], dtype=bool)
    if array.dtype != np.bool_:
        raise SqlExecutionError("predicate did not evaluate to a boolean")
    return array


def _to_column(value: Any, length: int) -> Column:
    array = _broadcast(value, length)
    if array.dtype == object:
        return Column(array, "str") if _all_str_or_none(array) else Column(array.tolist())
    return Column(array)


def _all_str_or_none(array: np.ndarray) -> bool:
    return all(v is None or isinstance(v, str) for v in array)


def _factorize(key_arrays: list[np.ndarray]) -> tuple[np.ndarray, int]:
    if len(key_arrays) == 1 and key_arrays[0].dtype != object:
        values = key_arrays[0]
        _, inverse = np.unique(values, return_inverse=True)
        return _renumber(inverse.astype(np.int64), values)
    combos = list(zip(*[a.tolist() for a in key_arrays]))
    mapping: dict[Any, int] = {}
    ids = np.empty(len(combos), dtype=np.int64)
    for i, combo in enumerate(combos):
        gid = mapping.get(combo)
        if gid is None:
            gid = len(mapping)
            mapping[combo] = gid
        ids[i] = gid
    return ids, len(mapping)


def _renumber(ids: np.ndarray, _values: np.ndarray) -> tuple[np.ndarray, int]:
    n_groups = int(ids.max()) + 1 if ids.size else 0
    first = np.full(n_groups, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(first, ids, np.arange(ids.shape[0], dtype=np.int64))
    order = np.argsort(first, kind="stable")
    remap = np.empty(n_groups, dtype=np.int64)
    remap[order] = np.arange(n_groups, dtype=np.int64)
    return remap[ids], n_groups


def _merge_partials(
    func: str,
    values: np.ndarray | None,
    partials: list,
    remaps: list[np.ndarray],
    n_groups: int,
) -> np.ndarray:
    """Fold per-partition partial aggregate states into final group values.

    ``remaps[p]`` maps partition ``p``'s local group ids to global ids;
    within one partition the global ids are distinct, so fancy-indexed
    accumulation is safe.  COUNT merges exactly; SUM/AVG add partial sums
    in partition order (last-ulp float reassociation vs serial); MIN/MAX
    merge via ``np.minimum``/``np.maximum`` (NaN-propagating, matching the
    serial per-group ``min()``/``max()``).
    """
    if values is None or func == "COUNT":
        total = np.zeros(n_groups, dtype=np.int64)
        for part, remap in zip(partials, remaps):
            total[remap] += part
        return total
    if func == "SUM":
        sums = np.zeros(n_groups, dtype=np.float64)
        for part, remap in zip(partials, remaps):
            sums[remap] += part
        if np.issubdtype(values.dtype, np.integer):
            return sums.astype(np.int64)
        return sums
    if func == "AVG":
        sums = np.zeros(n_groups, dtype=np.float64)
        counts = np.zeros(n_groups, dtype=np.int64)
        for (part_sums, part_counts), remap in zip(partials, remaps):
            sums[remap] += part_sums
            counts[remap] += part_counts
        return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    if func in ("MIN", "MAX"):
        out = np.empty(n_groups, dtype=partials[0].dtype)
        seen = np.zeros(n_groups, dtype=bool)
        for part, remap in zip(partials, remaps):
            if out.dtype == object:
                for j, gid in enumerate(remap):
                    value = part[j]
                    if not seen[gid]:
                        out[gid] = value
                    elif func == "MIN":
                        out[gid] = min(out[gid], value)
                    else:
                        out[gid] = max(out[gid], value)
            else:
                new = ~seen[remap]
                out[remap[new]] = part[new]
                old_idx = remap[~new]
                if old_idx.size:
                    fold = np.minimum if func == "MIN" else np.maximum
                    out[old_idx] = fold(out[old_idx], part[~new])
            seen[remap] = True
        return out
    raise SqlExecutionError(  # pragma: no cover - guarded by _parallel_eligible
        f"aggregate {func!r} has no mergeable partial"
    )


def _first_per_group(
    values: np.ndarray, group_ids: np.ndarray, n_groups: int
) -> np.ndarray:
    first = np.full(n_groups, -1, dtype=np.int64)
    for i in range(group_ids.shape[0] - 1, -1, -1):
        first[group_ids[i]] = i
    if n_groups and first.min() < 0:
        raise SqlExecutionError("internal error: empty group")
    return values[first]


def _resolve_group_keys(query_plan: QueryPlan, scope: "_Scope") -> tuple[Expr, ...]:
    """Resolve positional (``GROUP BY 1``) and alias group keys.

    BigQuery-style: an integer literal refers to the 1-based select item,
    and a bare identifier that matches an output alias (and is not itself a
    physical column) groups by that item's expression.
    """
    select = query_plan.select
    alias_map = _alias_map(query_plan)
    items = select.items if not isinstance(select.items, Star) else ()
    resolved: list[Expr] = []
    for expr in select.group_by:
        if isinstance(expr, Literal) and isinstance(expr.value, int):
            index = expr.value - 1
            if not 0 <= index < len(items):
                raise SqlPlanError(f"GROUP BY position {expr.value} out of range")
            expr = items[index].expr
        elif isinstance(expr, ColumnRef) and expr.table is None and expr.name in alias_map:
            if not _is_physical_column(expr, scope):
                expr = alias_map[expr.name]
        if find_aggregates(expr):
            raise SqlPlanError("aggregate functions are not allowed in GROUP BY")
        resolved.append(expr)
    return tuple(resolved)


def _is_physical_column(ref: ColumnRef, scope: "_Scope") -> bool:
    try:
        scope.resolve(ref)
    except SqlPlanError:
        return False
    return True


def _alias_map(query_plan: QueryPlan) -> dict[str, Expr]:
    select = query_plan.select
    if isinstance(select.items, Star):
        return {}
    return {
        name: item.expr
        for name, item in zip(query_plan.output_names, select.items)
    }


def _find_output(expr: Expr, query_plan: QueryPlan) -> str | None:
    select = query_plan.select
    if isinstance(select.items, Star):
        return None
    for name, item in zip(query_plan.output_names, select.items):
        if item.expr == expr:
            return name
    return None


def _resolve_aliases(expr: Expr, alias_map: dict[str, Expr]) -> Expr:
    """Rewrite bare column references that name an output alias."""
    if isinstance(expr, ColumnRef) and expr.table is None and expr.name in alias_map:
        return alias_map[expr.name]
    if isinstance(expr, Unary):
        return Unary(expr.op, _resolve_aliases(expr.operand, alias_map))
    if isinstance(expr, Binary):
        return Binary(
            expr.op,
            _resolve_aliases(expr.left, alias_map),
            _resolve_aliases(expr.right, alias_map),
        )
    if isinstance(expr, Between):
        return Between(
            _resolve_aliases(expr.operand, alias_map),
            _resolve_aliases(expr.low, alias_map),
            _resolve_aliases(expr.high, alias_map),
            expr.negated,
        )
    if isinstance(expr, InList):
        return InList(
            _resolve_aliases(expr.operand, alias_map),
            tuple(_resolve_aliases(item, alias_map) for item in expr.items),
            expr.negated,
        )
    if isinstance(expr, IsNull):
        return IsNull(_resolve_aliases(expr.operand, alias_map), expr.negated)
    if isinstance(expr, FunctionCall):
        return FunctionCall(
            expr.name, tuple(_resolve_aliases(arg, alias_map) for arg in expr.args)
        )
    if isinstance(expr, Case):
        return Case(
            tuple(
                (_resolve_aliases(c, alias_map), _resolve_aliases(v, alias_map))
                for c, v in expr.whens
            ),
            _resolve_aliases(expr.default, alias_map) if expr.default else None,
        )
    return expr


def _order_codes(values: np.ndarray) -> np.ndarray:
    """Dense order-preserving integer codes (ties equal) for lexsort."""
    if values.dtype == object:
        try:
            distinct = sorted(set(values.tolist()))
        except TypeError as exc:
            raise SqlExecutionError(f"cannot order mixed-type values: {exc}") from exc
        mapping = {value: code for code, value in enumerate(distinct)}
        return np.asarray([mapping[v] for v in values], dtype=np.int64)
    _, inverse = np.unique(values, return_inverse=True)
    return inverse.astype(np.int64)
