"""Fig. 10 — Shannon entropy measured in Ethereum using sliding windows.

Paper claims: means ≈ 3.420 / 3.433 / 3.445 for N = 6,000 / 42,000 /
180,000; results close to the fixed-window ones; stable trend with most
values between 3.3 and 3.5; Ethereum more stable but less decentralized
than Bitcoin.
"""

import pytest

from _bench_util import report_series
from repro.analysis.figures import figure_10


def test_fig10_eth_entropy_sliding(benchmark, btc, eth):
    figure = benchmark.pedantic(figure_10, args=(eth,), rounds=1, iterations=1)
    report_series(figure.title, figure.series)

    means = {
        size: figure.series[f"N={size}"].mean() for size in (6000, 42000, 180000)
    }
    assert means[6000] == pytest.approx(3.420, abs=0.15)
    assert means[42000] == pytest.approx(3.433, abs=0.15)
    assert means[180000] == pytest.approx(3.445, abs=0.15)

    daily = figure.series["N=6000"]
    assert daily.fraction_in_range(3.3, 3.6) > 0.8
    assert daily.mean() == pytest.approx(
        eth.measure_calendar("entropy", "day").mean(), abs=0.05
    )
    btc_daily = btc.measure_sliding("entropy", 144)
    assert daily.mean() < btc_daily.mean()  # less decentralized
    assert daily.std() < btc_daily.std()    # more stable
