"""Live telemetry serving for a long-running streaming monitor.

The paper argues for *continuous* measurement; this package is the
operational half of that argument — a dependency-free HTTP server
(stdlib :class:`~http.server.ThreadingHTTPServer`) an operator can point
Prometheus at while a :class:`~repro.core.streaming.StreamingMonitor`
ingests blocks, plus the machinery that keeps it answering under load:

:mod:`repro.serve.http`
    The endpoints (``/metrics``, ``/healthz``, ``/readyz``, ``/status``,
    ``/api/v1/series``, ``/api/v1/alerts``), standardized JSON error
    bodies, and the :class:`TelemetryServer` lifecycle.
:mod:`repro.serve.overload`
    Admission control, per-client token-bucket rate limiting, the
    ETag/TTL response cache, and breaker-driven load shedding.
:mod:`repro.serve.ingest`
    The bounded backpressure queue between a block feed and the monitor
    (``block`` | ``drop-oldest`` | ``shed``).
:mod:`repro.serve.monitor`
    :func:`run_monitor`, the operational entry point behind
    ``repro monitor``.
:mod:`repro.serve.loadgen`
    The closed/open-loop load generator behind ``repro loadgen``.
:mod:`repro.serve.state`
    The thread-safe :class:`MonitorState` snapshot both sides share.

The original single-module API (``from repro.serve import
TelemetryServer, MonitorState, run_monitor, ...``) is re-exported here
unchanged.
"""

from repro.serve.http import (
    PROMETHEUS_CONTENT_TYPE,
    TelemetryServer,
    error_body,
)
from repro.serve.ingest import INGEST_POLICIES, IngestQueue
from repro.serve.loadgen import (
    LOADGEN_MODES,
    LoadgenConfig,
    LoadgenReport,
    format_report,
    print_report,
    run_loadgen,
)
from repro.serve.monitor import MonitorRun, run_monitor
from repro.serve.overload import (
    AdmissionController,
    OverloadConfig,
    OverloadGuard,
    ResponseCache,
    TokenBucketLimiter,
    parse_rate_limit,
)
from repro.serve.state import MonitorState

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "TelemetryServer",
    "error_body",
    "INGEST_POLICIES",
    "IngestQueue",
    "LOADGEN_MODES",
    "LoadgenConfig",
    "LoadgenReport",
    "format_report",
    "print_report",
    "run_loadgen",
    "MonitorRun",
    "run_monitor",
    "AdmissionController",
    "OverloadConfig",
    "OverloadGuard",
    "ResponseCache",
    "TokenBucketLimiter",
    "parse_rate_limit",
    "MonitorState",
]
