"""Abstract syntax tree node types for the mini SQL engine.

All nodes are frozen dataclasses; the parser builds them and the planner /
executor walk them.  Expression nodes share the :class:`Expr` base.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


class Expr:
    """Base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: number, string, boolean or NULL (``value is None``)."""

    value: Any


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A (possibly table-qualified) column reference."""

    name: str
    table: str | None = None

    @property
    def display(self) -> str:
        """The reference as written (``table.column`` or ``column``)."""
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Unary(Expr):
    """Unary operator: ``-`` or ``NOT``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    """Binary operator: arithmetic, comparison, AND/OR, LIKE."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class InList(Expr):
    """``expr [NOT] IN (literal, ...)``."""

    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class FunctionCall(Expr):
    """A scalar function call, e.g. ``ABS(x)`` or ``ROUND(x, 2)``."""

    name: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class Aggregate(Expr):
    """An aggregate call, e.g. ``COUNT(*)`` or ``SUM(DISTINCT x)``.

    ``argument is None`` encodes ``COUNT(*)``.
    """

    func: str
    argument: Expr | None
    distinct: bool = False


@dataclass(frozen=True)
class Case(Expr):
    """``CASE WHEN cond THEN value [...] [ELSE value] END``."""

    whens: tuple[tuple[Expr, Expr], ...]
    default: Expr | None = None


@dataclass(frozen=True)
class SelectItem:
    """One item of the select list: an expression plus an optional alias."""

    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class Star:
    """The bare ``*`` select list."""


@dataclass(frozen=True)
class TableRef:
    """A table in FROM, with an optional alias."""

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """Name this source is referred to by (alias if given)."""
        return self.alias or self.name


@dataclass(frozen=True)
class SubquerySource:
    """A derived table: ``FROM (SELECT ...) alias``."""

    select: "Select"
    alias: str

    @property
    def binding(self) -> str:
        """Name this derived table is referred to by."""
        return self.alias


@dataclass(frozen=True)
class Join:
    """``<left> [INNER|LEFT] JOIN <right> ON left_col = right_col``."""

    left: "TableRef | SubquerySource | Join"
    right: "TableRef | SubquerySource"
    kind: str  # "inner" | "left"
    on_left: ColumnRef
    on_right: ColumnRef


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key: an expression (or output alias) and a direction."""

    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Select:
    """A full SELECT statement."""

    items: tuple[SelectItem, ...] | Star
    source: "TableRef | SubquerySource | Join"
    where: Expr | None = None
    group_by: tuple[Expr, ...] = field(default_factory=tuple)
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = field(default_factory=tuple)
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False


@dataclass(frozen=True)
class Union:
    """``<select> UNION ALL <select> [...]`` — bag-semantics concatenation."""

    selects: tuple[Select, ...]


@dataclass(frozen=True)
class Analyze:
    """``ANALYZE [table]`` — collect optimizer statistics.

    ``table is None`` analyzes every table in the catalog.
    """

    table: str | None = None
