"""Block-production-rate models with difficulty adjustment.

The paper's windows are sized from nominal production rates (144 and 6,000
blocks/day) but the real 2019 chains deviated from them day to day.  Two
models reproduce that texture:

* **Bitcoin** retargets difficulty every 2,016 blocks.  When network
  hashrate grows mid-epoch, blocks arrive faster than one per 10 minutes
  until the retarget catches up.  We simulate the epoch mechanism against
  a 2019-shaped hashrate curve (~40 EH/s in January to ~95 EH/s in
  autumn).
* **Ethereum** retargets every block, so its rate tracks the target
  closely — except for the difficulty-bomb slowdown in January–February
  2019 that the Constantinople hard fork (Feb 28) removed, which we model
  directly in the rate curve.

Both functions return a length-365 array of *relative* daily rates that
callers scale to the exact dataset block count.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.util.rng import derive_rng
from repro.util.timeutils import DAYS_IN_2019

#: (day, EH/s) control points approximating Bitcoin's 2019 hashrate growth.
BITCOIN_HASHRATE_POINTS = (
    (0, 40.0),
    (60, 44.0),
    (120, 55.0),
    (180, 68.0),
    (240, 84.0),
    (290, 95.0),
    (330, 92.0),
    (364, 97.0),
)

#: (day, blocks/day) control points for Ethereum's 2019 production rate:
#: the pre-Constantinople difficulty bomb depressed early-2019 rates.
ETHEREUM_RATE_POINTS = (
    (0, 5_900.0),
    (25, 5_200.0),
    (45, 4_600.0),
    (58, 4_500.0),
    (60, 6_100.0),
    (90, 6_300.0),
    (180, 6_300.0),
    (270, 6_250.0),
    (364, 6_350.0),
)


def piecewise_curve(points: tuple[tuple[int, float], ...], n_days: int = DAYS_IN_2019) -> np.ndarray:
    """Linearly interpolate (day, value) control points over ``n_days``."""
    if len(points) < 2:
        raise SimulationError("piecewise curve needs at least two control points")
    days = [d for d, _ in points]
    if days != sorted(days) or len(set(days)) != len(days):
        raise SimulationError("control-point days must be strictly increasing")
    xs = np.asarray(days, dtype=np.float64)
    ys = np.asarray([v for _, v in points], dtype=np.float64)
    return np.interp(np.arange(n_days, dtype=np.float64), xs, ys)


def bitcoin_daily_rates(
    seed: int,
    n_days: int = DAYS_IN_2019,
    target_interval: float = 600.0,
    epoch_blocks: int = 2_016,
) -> np.ndarray:
    """Relative daily block-production rates under 2,016-block retargeting.

    Simulates the retarget feedback loop: production speed is proportional
    to ``hashrate / difficulty``; each completed epoch rescales difficulty
    by the epoch's average speed-up (clamped to the protocol's 4x bounds).
    """
    hashrate = piecewise_curve(BITCOIN_HASHRATE_POINTS, n_days)
    rng = derive_rng(seed, "difficulty/bitcoin")
    # Small day-level hashrate noise (weather, curtailment, luck).
    hashrate = hashrate * np.exp(rng.normal(0.0, 0.01, size=n_days))
    target_per_day = 86_400.0 / target_interval
    difficulty = hashrate[0]  # start in equilibrium
    epoch_progress = 0.0
    epoch_speed_sum = 0.0
    epoch_days = 0
    rates = np.empty(n_days, dtype=np.float64)
    for day in range(n_days):
        speed = hashrate[day] / difficulty
        rates[day] = target_per_day * speed
        epoch_progress += rates[day]
        epoch_speed_sum += speed
        epoch_days += 1
        if epoch_progress >= epoch_blocks:
            mean_speed = epoch_speed_sum / epoch_days
            adjustment = float(np.clip(mean_speed, 0.25, 4.0))
            difficulty *= adjustment
            epoch_progress -= epoch_blocks
            epoch_speed_sum = 0.0
            epoch_days = 0
    return rates


def ethereum_daily_rates(seed: int, n_days: int = DAYS_IN_2019) -> np.ndarray:
    """Relative daily block-production rates for Ethereum 2019.

    Per-block difficulty adjustment keeps production near target, so the
    curve is the rate model plus small noise; the January–February
    difficulty-bomb dip is in the control points.
    """
    rates = piecewise_curve(ETHEREUM_RATE_POINTS, n_days)
    rng = derive_rng(seed, "difficulty/ethereum")
    return rates * np.exp(rng.normal(0.0, 0.008, size=n_days))
