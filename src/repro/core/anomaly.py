"""Anomaly detection on measurement series.

The paper's motivation for sliding windows is catching "special or
abnormal values of the degree of decentralization".  These detectors make
that operational: given a series they return the windows whose values are
statistical outliers, by three standard rules (z-score, Tukey IQR, rolling
median absolute deviation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.series import MeasurementSeries
from repro.errors import MeasurementError


@dataclass(frozen=True)
class AnomalyReport:
    """Outlier windows found in a series."""

    method: str
    #: Positions within the series (not window indices).
    positions: tuple[int, ...]
    labels: tuple[str, ...]
    values: tuple[float, ...]

    @property
    def count(self) -> int:
        """Number of anomalous windows found."""
        return len(self.positions)

    def __bool__(self) -> bool:
        return self.count > 0

    def __repr__(self) -> str:
        return f"AnomalyReport(method={self.method!r}, count={self.count})"


def _report(series: MeasurementSeries, mask: np.ndarray, method: str) -> AnomalyReport:
    positions = np.flatnonzero(mask)
    return AnomalyReport(
        method=method,
        positions=tuple(int(p) for p in positions),
        labels=tuple(series.labels[int(p)] for p in positions),
        values=tuple(float(series.values[int(p)]) for p in positions),
    )


def zscore_anomalies(series: MeasurementSeries, threshold: float = 3.0) -> AnomalyReport:
    """Windows whose value deviates more than ``threshold`` sigmas from the mean."""
    if threshold <= 0:
        raise MeasurementError(f"threshold must be positive, got {threshold}")
    values = series.values
    if values.shape[0] < 3:
        return _report(series, np.zeros(values.shape[0], dtype=bool), "zscore")
    std = values.std(ddof=0)
    if std == 0:
        return _report(series, np.zeros(values.shape[0], dtype=bool), "zscore")
    z = np.abs(values - values.mean()) / std
    return _report(series, z > threshold, "zscore")


def iqr_anomalies(series: MeasurementSeries, k: float = 1.5) -> AnomalyReport:
    """Tukey's rule: values outside ``[Q1 - k*IQR, Q3 + k*IQR]``."""
    if k <= 0:
        raise MeasurementError(f"k must be positive, got {k}")
    values = series.values
    if values.shape[0] < 4:
        return _report(series, np.zeros(values.shape[0], dtype=bool), "iqr")
    q1, q3 = np.quantile(values, [0.25, 0.75])
    iqr = q3 - q1
    mask = np.logical_or(values < q1 - k * iqr, values > q3 + k * iqr)
    return _report(series, mask, "iqr")


def rolling_mad_anomalies(
    series: MeasurementSeries, window: int = 15, threshold: float = 5.0
) -> AnomalyReport:
    """Deviation from a rolling median, scaled by the rolling MAD.

    Robust to the slow drifts the yearly series exhibit: a value is
    anomalous when it sits ``threshold`` rolling-MADs away from the rolling
    median of the surrounding ``window`` points.
    """
    if window < 3:
        raise MeasurementError(f"window must be >= 3, got {window}")
    if threshold <= 0:
        raise MeasurementError(f"threshold must be positive, got {threshold}")
    values = series.values
    n = values.shape[0]
    if n < window:
        return _report(series, np.zeros(n, dtype=bool), "rolling-mad")
    half = window // 2
    mask = np.zeros(n, dtype=bool)
    for i in range(n):
        lo = max(0, i - half)
        hi = min(n, i + half + 1)
        neighborhood = np.delete(values[lo:hi], i - lo)
        median = np.median(neighborhood)
        mad = np.median(np.abs(neighborhood - median))
        scale = mad if mad > 0 else 1e-12
        if abs(values[i] - median) / scale > threshold:
            mask[i] = True
    return _report(series, mask, "rolling-mad")
