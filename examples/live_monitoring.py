"""Streaming monitoring: catching the day-14 anomaly "in a timely manner".

The paper's closing argument for sliding windows is timeliness.  This
example replays the first quarter of simulated Bitcoin 2019 block by
block through a :class:`~repro.core.streaming.StreamingMonitor`
(window = 144 blocks, stride = 72, the paper's N and M) with alert rules
on all three metrics, and prints the alert log an operator would have
seen — the Jan 14 multi-coinbase anomaly fires within half a day of
blocks instead of waiting for a week- or month-end batch measurement.

While the replay runs, a :class:`~repro.serve.TelemetryServer` exposes
the live state the way a deployment would — ``/status`` for humans and
dashboards, ``/metrics`` for a Prometheus scraper — and the example
scrapes its own endpoints mid-replay to show what an operator sees.

Run with::

    python examples/live_monitoring.py
"""

import json
import urllib.request

from repro import obs, simulate_bitcoin_2019
from repro.core import StreamingMonitor, ThresholdRule
from repro.serve import MonitorState, TelemetryServer
from repro.util.timeutils import day_index
from repro.viz import sparkline


def scrape(port: int, path: str) -> str:
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=5) as r:
        return r.read().decode("utf-8")


def main() -> None:
    chain = simulate_bitcoin_2019(seed=2019)
    quarter = chain.slice_by_time(
        int(chain.timestamps[0]), int(chain.timestamps[0]) + 90 * 86_400
    )
    monitor = StreamingMonitor(window_size=144, stride=72)
    monitor.add_rule(ThresholdRule("entropy", above=5.0))
    monitor.add_rule(ThresholdRule("gini", below=0.40))
    monitor.add_rule(ThresholdRule("nakamoto", below=3, above=20))

    registry = obs.get_tracer().metrics
    state = MonitorState("bitcoin", 144, 72, total_blocks=quarter.n_blocks)
    server = TelemetryServer(
        registry, status_fn=state.snapshot, ready_fn=state.is_ready
    )
    port = server.start()
    print(f"replaying {quarter.n_blocks} blocks (Q1 2019), "
          f"telemetry on http://127.0.0.1:{port} ...")

    alert_log = []
    try:
        for i in range(quarter.n_blocks):
            start, stop = quarter.offsets[i], quarter.offsets[i + 1]
            producers = [
                quarter.producer_names[pid]
                for pid in quarter.producer_ids[start:stop]
            ]
            alerts = monitor.push(producers)
            state.record_push(monitor.blocks_seen)
            registry.gauge("monitor.blocks_ingested").set(monitor.blocks_seen)
            if monitor.evaluations > state.evaluations:
                latest = monitor.latest()
                for name, value in latest.items():
                    registry.gauge(f"monitor.latest.{name}").set(value)
                state.record_evaluation(latest, len(alerts))
            for alert in alerts:
                day = day_index(int(quarter.timestamps[i]))
                alert_log.append((day, alert))
            if i == quarter.n_blocks // 2:
                status = json.loads(scrape(port, "/status"))
                print(f"\nmid-replay GET /status: "
                      f"{status['blocks_ingested']}/{status['total_blocks']} "
                      f"blocks, {status['evaluations']} evaluations, "
                      f"ready={status['ready']}, latest={status['latest']}")

        print("\nfinal GET /metrics (monitor gauges):")
        for line in scrape(port, "/metrics").splitlines():
            if line.startswith("repro_monitor_"):
                print(f"  {line}")
    finally:
        server.stop()

    print(f"\n{len(alert_log)} alerts fired:")
    last_day = None
    for day, alert in alert_log:
        marker = f"day {day + 1:>3d}" if day != last_day else "       "
        print(f"  {marker}  {alert}  (rule: {alert.rule.metric} "
              f"below={alert.rule.below} above={alert.rule.above})")
        last_day = day

    entropy_history = [v for _, v in monitor.history("entropy")]
    print(f"\nentropy over Q1 (one point per 72 blocks): "
          f"{sparkline(entropy_history, width=60)}")
    day14_alerts = [a for d, a in alert_log if d == 13]
    print(
        f"\nthe paper's day-14 anomaly produced {len(day14_alerts)} alert(s) "
        "while the day was still in progress — that is the timeliness the "
        "sliding-window methodology buys."
    )


if __name__ == "__main__":
    main()
