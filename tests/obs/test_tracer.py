"""Tests for the span/metrics tracer core."""

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry, TimingHistogram
from repro.obs.tracer import Tracer, _NULL_SPAN


@pytest.fixture
def tracer():
    """A private tracer, so tests don't disturb the process singleton."""
    return Tracer().enable()


class TestSpans:
    def test_nested_spans_record_parent_ids(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans  # children finish first
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_span_timing_is_ordered(self, tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        b, a = tracer.spans
        assert a.start <= b.start
        assert b.duration <= a.duration
        assert b.end <= a.end + 1e-9

    def test_attrs_at_open_and_via_set(self, tracer):
        with tracer.span("s", chain="btc") as span:
            span.set(windows=12)
        (record,) = tracer.spans
        assert record.attrs == {"chain": "btc", "windows": 12}

    def test_span_recorded_even_when_body_raises(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert [s.name for s in tracer.spans] == ["doomed"]
        assert tracer._stack == []

    def test_sibling_spans_share_parent(self, tracer):
        with tracer.span("parent"):
            with tracer.span("one"):
                pass
            with tracer.span("two"):
                pass
        one, two, parent = tracer.spans
        assert one.parent_id == parent.span_id
        assert two.parent_id == parent.span_id


class TestDisabledPath:
    def test_disabled_span_is_the_shared_null(self):
        tracer = Tracer()
        assert tracer.span("x") is _NULL_SPAN
        assert tracer.span("y", key=1) is _NULL_SPAN

    def test_disabled_records_nothing(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.counter("c")
        tracer.gauge("g", 1.0)
        tracer.timing("t", 0.5)
        assert tracer.spans == []
        assert tracer.metrics.snapshot() == {
            "counters": {},
            "gauges": {},
            "timings": {},
        }

    def test_null_span_set_is_chainable_noop(self):
        assert _NULL_SPAN.set(anything=1) is _NULL_SPAN


class TestLifecycle:
    def test_enable_clears_prior_data(self, tracer):
        with tracer.span("old"):
            pass
        tracer.counter("old")
        tracer.enable()
        assert tracer.spans == []
        assert tracer.metrics.snapshot()["counters"] == {}

    def test_disable_keeps_data(self, tracer):
        with tracer.span("kept"):
            pass
        tracer.disable()
        assert [s.name for s in tracer.spans] == ["kept"]
        assert not tracer.enabled


class TestDecorator:
    def test_traced_names_after_module_and_function(self, tracer):
        @tracer.traced()
        def work():
            return 42

        assert work() == 42
        (record,) = tracer.spans
        assert record.name.endswith(".work")

    def test_traced_explicit_name(self, tracer):
        @tracer.traced("custom.label")
        def work():
            return 1

        work()
        assert tracer.spans[0].name == "custom.label"

    def test_traced_checks_enabled_per_call(self):
        tracer = Tracer()

        @tracer.traced("late")
        def work():
            return 1

        work()
        assert tracer.spans == []
        tracer.enable()
        work()
        assert [s.name for s in tracer.spans] == ["late"]


class TestMetrics:
    def test_counter_gauge_timing(self, tracer):
        tracer.counter("hits")
        tracer.counter("hits", 2)
        tracer.gauge("depth", 7.0)
        tracer.timing("build", 0.25)
        tracer.timing("build", 0.75)
        snap = tracer.metrics.snapshot()
        assert snap["counters"]["hits"] == 3.0
        assert snap["gauges"]["depth"] == 7.0
        assert snap["timings"]["build"]["count"] == 2
        assert snap["timings"]["build"]["mean"] == pytest.approx(0.5)

    def test_timing_histogram_percentiles(self):
        hist = TimingHistogram("t")
        for v in range(1, 101):
            hist.observe(v / 100)
        stats = hist.as_dict()
        assert stats["min"] == pytest.approx(0.01)
        assert stats["max"] == pytest.approx(1.0)
        assert 0.4 < stats["p50"] < 0.6
        assert 0.9 < stats["p95"] <= 1.0

    def test_registry_instruments_are_cached(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.timing("t") is registry.timing("t")


class TestModuleSingleton:
    def test_module_helpers_route_to_singleton(self):
        tracer = obs.enable_tracing()
        try:
            assert obs.tracing_enabled()
            assert obs.get_tracer() is tracer
            with obs.span("top", kind="test"):
                obs.counter("events")
            assert [s.name for s in tracer.spans] == ["top"]
            assert tracer.metrics.snapshot()["counters"]["events"] == 1.0
        finally:
            obs.disable_tracing()
        assert not obs.tracing_enabled()
