"""Terminal line charts.

Minimal-but-useful ASCII rendering of measurement series: one character
column per horizontal bucket, value range mapped to a fixed number of
rows, multiple series overlaid with distinct glyphs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.series import MeasurementSeries
from repro.errors import ValidationError

_GLYPHS = ("*", "+", "o", "x", "#", "@")


def ascii_chart(
    series: MeasurementSeries | Sequence[float],
    width: int = 78,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Render one series as an ASCII line chart.

    >>> print(ascii_chart([1, 2, 3, 2, 1], width=10, height=3))  # doctest: +SKIP
    """
    values = _values_of(series)
    label = title
    if label is None and isinstance(series, MeasurementSeries):
        label = f"{series.chain_name}/{series.metric_name}/{series.window_desc}"
    return multi_series_chart({label or "series": values}, width=width, height=height)


def multi_series_chart(
    series_map: Mapping[str, MeasurementSeries | Sequence[float]],
    width: int = 78,
    height: int = 16,
) -> str:
    """Overlay several series in one chart, one glyph per series."""
    if not series_map:
        raise ValidationError("series_map must not be empty")
    if width < 8 or height < 3:
        raise ValidationError("chart must be at least 8x3 characters")
    arrays = {name: _values_of(s) for name, s in series_map.items()}
    finite = np.concatenate([a for a in arrays.values() if a.size])
    if finite.size == 0:
        raise ValidationError("all series are empty")
    low, high = float(finite.min()), float(finite.max())
    if high == low:
        high = low + 1.0
    grid = [[" "] * width for _ in range(height)]
    for glyph, (name, values) in zip(_cycle_glyphs(), arrays.items()):
        if values.size == 0:
            continue
        buckets = _bucketize(values, width)
        for column, value in enumerate(buckets):
            if np.isnan(value):
                continue
            row = int(round((value - low) / (high - low) * (height - 1)))
            grid[height - 1 - row][column] = glyph
    axis_width = 10
    lines = []
    for i, row in enumerate(grid):
        if i == 0:
            axis_label = f"{high:>9.3g} "
        elif i == height - 1:
            axis_label = f"{low:>9.3g} "
        else:
            axis_label = " " * axis_width
        lines.append(axis_label + "|" + "".join(row))
    lines.append(" " * axis_width + "+" + "-" * width)
    legend = "  ".join(
        f"{glyph}={name}" for glyph, name in zip(_cycle_glyphs(), arrays)
    )
    lines.append(" " * (axis_width + 1) + legend)
    return "\n".join(lines)


def ascii_histogram(
    values: Sequence[float] | np.ndarray,
    bins: int = 10,
    width: int = 50,
) -> str:
    """Render a horizontal-bar histogram of ``values``."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        raise ValidationError("values must not be empty")
    if bins < 1:
        raise ValidationError(f"bins must be >= 1, got {bins}")
    counts, edges = np.histogram(array, bins=bins)
    peak = max(int(counts.max()), 1)
    lines = []
    for i, count in enumerate(counts):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"[{edges[i]:>9.3g}, {edges[i + 1]:>9.3g}) {bar} {count}")
    return "\n".join(lines)


def _values_of(series: MeasurementSeries | Sequence[float]) -> np.ndarray:
    if isinstance(series, MeasurementSeries):
        return series.values
    return np.asarray(list(series), dtype=np.float64)


def _bucketize(values: np.ndarray, width: int) -> np.ndarray:
    """Average ``values`` into ``width`` buckets (NaN for empty buckets)."""
    n = values.shape[0]
    if n <= width:
        out = np.full(width, np.nan)
        positions = np.linspace(0, width - 1, n).round().astype(int)
        for position, value in zip(positions, values):
            out[position] = value
        return out
    edges = np.linspace(0, n, width + 1).round().astype(int)
    return np.asarray(
        [
            values[edges[i] : edges[i + 1]].mean() if edges[i + 1] > edges[i] else np.nan
            for i in range(width)
        ]
    )


def _cycle_glyphs():
    while True:
        yield from _GLYPHS
