"""Observability: tracing, metrics and trace export for the pipeline.

The measurement machinery is itself part of the experiment — a sweep that
silently falls off its fast path, or a cache that never hits, changes how
far the system scales without changing any result.  This package makes
that machinery visible:

* a process-wide :class:`~repro.obs.tracer.Tracer` with nested spans
  (context-manager and decorator APIs) and counter/gauge/timing metrics,
  plus cross-process trace propagation/adoption for the worker pool
  (:meth:`~repro.obs.tracer.Tracer.context` /
  :meth:`~repro.obs.tracer.Tracer.adopt`),
* opt-in per-span resource profiling — cpu/RSS/allocations
  (:mod:`repro.obs.profile`),
* JSONL and Chrome ``chrome://tracing`` exporters
  (:mod:`repro.obs.export`) with schema validation and per-process
  pid/tid lanes,
* span-tree summaries with self/total times and per-stage profile
  rollups (:mod:`repro.obs.report`),
* a live terminal dashboard over a serving monitor
  (:mod:`repro.obs.top`, the ``repro top`` subcommand),
* bounded in-process metric history with downsampling rollups
  (:mod:`repro.obs.timeseries`, attached to a registry via
  :meth:`~repro.obs.metrics.MetricsRegistry.set_history`),
* declarative SLOs with Google-SRE multi-window burn rates
  (:mod:`repro.obs.slo`), and
* stateful pending/firing/resolved alerting with pluggable sinks and an
  EWMA z-score anomaly detector (:mod:`repro.obs.alerts`).

Tracing is **off by default** and the disabled path is a shared no-op
(one ``enabled`` check per call site; see
``benchmarks/bench_perf_obs.py`` for the overhead budget), so the hot
layers stay instrumented permanently::

    from repro import obs

    with obs.span("engine.sweep", chain="btc"):
        ...
    obs.counter("engine.sliding_cache.hit")

Enable around a workload with :func:`enable_tracing` or, end to end, via
the CLI's global ``--trace FILE`` flag.
"""

from repro.obs.alerts import (
    AlertEvent,
    AlertManager,
    AlertRule,
    AlertSink,
    AnomalyDetector,
    JSONLSink,
    LogSink,
    WebhookSink,
    anomaly_rule,
    format_alert_event,
    rules_from_thresholds,
)
from repro.obs.export import (
    load_trace_file,
    load_trace_file_lenient,
    validate_trace_file,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from repro.obs.logging import configure_logging, get_logger
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, TimingHistogram
from repro.obs.profile import (
    disable_profiling,
    enable_profiling,
    profiled,
    profiling_enabled,
)
from repro.obs.prometheus import build_info, render_prometheus, sanitize_metric_name
from repro.obs.regression import (
    compare_benchmarks,
    format_comparison,
    load_benchmark_file,
)
from repro.obs.report import (
    aggregate_spans,
    format_profile_rollup,
    format_span_tree,
    profile_rollup,
    summarize_trace_file,
    summarize_trace_file_lenient,
    summarize_tracer,
)
from repro.obs.slo import SLO, BurnWindow, SLOEngine, load_slo_file, parse_slo_config
from repro.obs.timeseries import QuantileSketch, TimeSeriesStore, attach_history
from repro.obs.tracer import (
    SpanRecord,
    Tracer,
    counter,
    current_span,
    disable_tracing,
    enable_tracing,
    gauge,
    get_tracer,
    span,
    timing,
    traced,
    tracing_enabled,
)

__all__ = [
    "AlertEvent",
    "AlertManager",
    "AlertRule",
    "AlertSink",
    "AnomalyDetector",
    "BurnWindow",
    "Counter",
    "Gauge",
    "JSONLSink",
    "LogSink",
    "MetricsRegistry",
    "QuantileSketch",
    "SLO",
    "SLOEngine",
    "SpanRecord",
    "TimeSeriesStore",
    "TimingHistogram",
    "Tracer",
    "WebhookSink",
    "aggregate_spans",
    "anomaly_rule",
    "attach_history",
    "build_info",
    "compare_benchmarks",
    "configure_logging",
    "counter",
    "current_span",
    "disable_profiling",
    "disable_tracing",
    "enable_profiling",
    "enable_tracing",
    "format_alert_event",
    "format_comparison",
    "format_profile_rollup",
    "format_span_tree",
    "gauge",
    "get_logger",
    "get_tracer",
    "load_benchmark_file",
    "load_slo_file",
    "load_trace_file",
    "load_trace_file_lenient",
    "parse_slo_config",
    "profile_rollup",
    "profiled",
    "profiling_enabled",
    "render_prometheus",
    "rules_from_thresholds",
    "sanitize_metric_name",
    "span",
    "summarize_trace_file",
    "summarize_trace_file_lenient",
    "summarize_tracer",
    "timing",
    "traced",
    "tracing_enabled",
    "validate_trace_file",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]
