"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ValidationError,
            errors.SchemaError,
            errors.TableError,
            errors.SqlError,
            errors.SqlSyntaxError,
            errors.SqlPlanError,
            errors.SqlExecutionError,
            errors.ChainError,
            errors.AttributionError,
            errors.SimulationError,
            errors.MetricError,
            errors.WindowError,
            errors.MeasurementError,
        ],
    )
    def test_everything_derives_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_sql_errors_share_base(self):
        for exc in (errors.SqlSyntaxError, errors.SqlPlanError, errors.SqlExecutionError):
            assert issubclass(exc, errors.SqlError)

    def test_validation_error_is_value_error(self):
        """Callers using plain ``except ValueError`` still catch validation."""
        assert issubclass(errors.ValidationError, ValueError)

    def test_syntax_error_carries_position(self):
        exc = errors.SqlSyntaxError("bad token", position=17)
        assert exc.position == 17
        assert "offset 17" in str(exc)

    def test_syntax_error_without_position(self):
        exc = errors.SqlSyntaxError("bad token")
        assert exc.position is None
        assert "offset" not in str(exc)

    def test_one_catch_all_at_api_boundary(self):
        """The documented usage: one except clause for the whole library."""
        from repro.metrics import gini_coefficient

        with pytest.raises(errors.ReproError):
            gini_coefficient([])

    def test_store_error_is_repro_error(self):
        from repro.data.store import ChainStoreError

        assert issubclass(ChainStoreError, errors.ReproError)
