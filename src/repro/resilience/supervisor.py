"""Bounded-restart supervision for long-running worker threads.

The streaming monitor's ingest loop can die on a malformed block or an
unexpected bug; a dead thread must not keep answering ``/readyz`` with
200.  :class:`MonitorSupervisor` runs the loop on a worker thread,
restarts it on a crash (with a small backoff) up to ``max_restarts``
times, and exposes its degradation state so the serving layer can flip
readiness to 503 while recovering and surface crash details in
``/status``.

The supervised target receives no arguments and is expected to consume a
*shared* feed iterator, so each restart resumes after the block that
killed the previous incarnation instead of replaying the feed.
"""

from __future__ import annotations

import logging
import threading
import traceback
from typing import Callable

from repro import obs
from repro.errors import ValidationError
from repro.resilience.retry import Clock

logger = logging.getLogger(__name__)


class MonitorSupervisor:
    """Runs ``target`` on a thread, restarting it on crash, boundedly.

    ``on_crash``/``on_recover`` are notification hooks (the serving layer
    flips ``MonitorState`` degradation through them).  After
    ``max_restarts`` crashes the supervisor gives up: :attr:`exhausted`
    becomes True and the last exception is kept in :attr:`last_error`.
    """

    def __init__(
        self,
        target: Callable[[], None],
        *,
        max_restarts: int = 3,
        restart_backoff: float = 0.05,
        clock: Clock | None = None,
        on_crash: Callable[[BaseException], None] | None = None,
        on_recover: Callable[[], None] | None = None,
        name: str = "monitor",
    ) -> None:
        if max_restarts < 0:
            raise ValidationError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        if restart_backoff < 0:
            raise ValidationError(
                f"restart_backoff must be >= 0, got {restart_backoff}"
            )
        self._target = target
        self.max_restarts = max_restarts
        self.restart_backoff = restart_backoff
        self._clock = clock or Clock()
        self._on_crash = on_crash
        self._on_recover = on_recover
        self.name = name
        self.restarts = 0
        self.crashes = 0
        self.exhausted = False
        self.last_error: BaseException | None = None
        self.last_traceback: str | None = None
        self._thread: threading.Thread | None = None

    def run(self) -> None:
        """Drive ``target`` to completion (or exhaustion), blocking.

        Runs the crash/restart loop on the calling thread; use
        :meth:`start` for the non-blocking form.
        """
        registry = obs.get_tracer().metrics
        while True:
            try:
                self._target()
            except Exception as exc:  # noqa: BLE001 — supervision boundary
                self.crashes += 1
                self.last_error = exc
                self.last_traceback = traceback.format_exc()
                registry.counter("resilience.supervisor.crashes_total").inc()
                if self.restarts >= self.max_restarts:
                    self.exhausted = True
                    registry.counter("resilience.supervisor.exhausted_total").inc()
                    logger.error(
                        "%s crashed %d time(s); restart budget (%d) exhausted: %s",
                        self.name, self.crashes, self.max_restarts, exc,
                    )
                    if self._on_crash is not None:
                        self._on_crash(exc)
                    return
                self.restarts += 1
                registry.counter("resilience.supervisor.restarts_total").inc()
                logger.warning(
                    "%s crashed (%s); restart %d/%d after %.3fs",
                    self.name, exc, self.restarts, self.max_restarts,
                    self.restart_backoff,
                )
                if self._on_crash is not None:
                    self._on_crash(exc)
                if self.restart_backoff:
                    self._clock.sleep(self.restart_backoff)
                if self._on_recover is not None:
                    self._on_recover()
            else:
                return

    def start(self) -> threading.Thread:
        """Run the supervision loop on a daemon thread; returns it."""
        self._thread = threading.Thread(
            target=self.run, name=f"supervised-{self.name}", daemon=True
        )
        self._thread.start()
        return self._thread

    def join(self, timeout: float | None = None) -> None:
        """Wait for a :meth:`start`-ed supervision loop to finish."""
        if self._thread is not None:
            self._thread.join(timeout)

    @property
    def degraded(self) -> bool:
        """True from first crash until a clean completion or restart succeeds.

        The serving layer combines this with its own recovery signal (an
        evaluation completing after a restart) — see
        :class:`repro.serve.MonitorState`.
        """
        return self.exhausted

    def snapshot(self) -> dict:
        """JSON-ready supervision state for ``/status``."""
        return {
            "restarts": self.restarts,
            "crashes": self.crashes,
            "max_restarts": self.max_restarts,
            "exhausted": self.exhausted,
            "last_error": repr(self.last_error) if self.last_error else None,
        }
