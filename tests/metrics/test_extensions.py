"""Tests for the extension metrics (HHI, Theil, top-k)."""

import numpy as np
import pytest

from repro.errors import MetricError
from repro.metrics.hhi import effective_producers_hhi, herfindahl_hirschman_index
from repro.metrics.theil import theil_index
from repro.metrics.topk import top_k_share


class TestHHI:
    def test_uniform(self):
        assert herfindahl_hirschman_index([1, 1, 1, 1]) == pytest.approx(0.25)

    def test_monopoly(self):
        assert herfindahl_hirschman_index([7.0]) == pytest.approx(1.0)

    def test_bounds(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            values = rng.integers(1, 100, size=rng.integers(2, 50))
            hhi = herfindahl_hirschman_index(values)
            assert 1.0 / len(values) <= hhi <= 1.0

    def test_effective_producers_inverse(self):
        values = [10, 10, 10, 10]
        assert effective_producers_hhi(values) == pytest.approx(4.0)

    def test_concentration_raises_hhi(self):
        assert herfindahl_hirschman_index([97, 1, 1, 1]) > herfindahl_hirschman_index(
            [25, 25, 25, 25]
        )


class TestTheil:
    def test_equality_is_zero(self):
        assert theil_index([3, 3, 3]) == pytest.approx(0.0)

    def test_nonnegative(self):
        rng = np.random.default_rng(2)
        for _ in range(10):
            values = rng.integers(1, 100, size=rng.integers(2, 50))
            assert theil_index(values) >= -1e-12

    def test_bounded_by_log_n(self):
        values = [1] * 9 + [1_000_000]
        assert theil_index(values) <= np.log(10) + 1e-9

    def test_agrees_with_gini_direction(self):
        from repro.metrics.gini import gini_coefficient

        flat = [10, 11, 9, 10]
        skewed = [1, 1, 1, 37]
        assert theil_index(flat) < theil_index(skewed)
        assert gini_coefficient(flat) < gini_coefficient(skewed)


class TestTopKShare:
    def test_basic(self):
        assert top_k_share([50, 30, 10, 10], k=2) == pytest.approx(0.8)

    def test_k_larger_than_population(self):
        assert top_k_share([5.0, 5.0], k=10) == 1.0

    def test_k_one_is_max_share(self):
        assert top_k_share([10, 30, 60], k=1) == pytest.approx(0.6)

    def test_monotone_in_k(self):
        values = [40, 25, 15, 10, 5, 5]
        shares = [top_k_share(values, k=k) for k in range(1, 7)]
        assert shares == sorted(shares)
        assert shares[-1] == pytest.approx(1.0)

    def test_invalid_k_rejected(self):
        with pytest.raises(MetricError):
            top_k_share([1, 2], k=0)
