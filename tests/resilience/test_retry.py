"""Retry policy, backoff timing (fake clock) and circuit breaker transitions."""

import threading

import pytest

from repro.errors import (
    CircuitOpenError,
    InjectedFaultError,
    RetryExhaustedError,
    ValidationError,
)
from repro.resilience.retry import (
    CircuitBreaker,
    ManualClock,
    RetryPolicy,
    retry_call,
)
from repro.util.rng import derive_rng


def flaky(n_failures: int, exc: type = InjectedFaultError):
    """A callable that fails ``n_failures`` times, then returns 'ok'."""
    state = {"calls": 0}

    def call():
        state["calls"] += 1
        if state["calls"] <= n_failures:
            raise exc(f"boom {state['calls']}")
        return "ok"

    call.state = state
    return call


class TestRetryPolicy:
    def test_delay_grows_exponentially(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=10.0, jitter=0.0)
        assert [policy.delay(k) for k in (1, 2, 3, 4)] == [0.1, 0.2, 0.4, 0.8]

    def test_delay_is_capped(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=5.0, jitter=0.0)
        assert policy.delay(3) == 5.0

    def test_jitter_stays_within_band_and_is_deterministic(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.5)
        draws_a = [policy.delay(1, derive_rng(9, "t")) for _ in range(1)]
        draws_b = [policy.delay(1, derive_rng(9, "t")) for _ in range(1)]
        assert draws_a == draws_b
        rng = derive_rng(3, "band")
        for _ in range(50):
            assert 0.5 <= policy.delay(1, rng) <= 1.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -0.1},
            {"multiplier": 0.5},
            {"jitter": 1.5},
            {"deadline": 0.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            RetryPolicy(**kwargs)


class TestRetryCall:
    def test_disabled_path_is_a_direct_call(self):
        # No policy, no breaker: the function runs once, errors pass through.
        calls = flaky(1)
        with pytest.raises(InjectedFaultError):
            retry_call(calls)
        assert calls.state["calls"] == 1

    def test_backoff_schedule_on_fake_clock(self):
        clock = ManualClock()
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0, max_delay=10.0, jitter=0.0
        )
        assert retry_call(flaky(3), policy=policy, clock=clock) == "ok"
        assert clock.sleeps == [0.1, 0.2, 0.4]

    def test_exhaustion_raises_with_attempt_count(self):
        clock = ManualClock()
        policy = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)
        with pytest.raises(RetryExhaustedError) as excinfo:
            retry_call(flaky(99), policy=policy, clock=clock)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, InjectedFaultError)
        assert len(clock.sleeps) == 2  # no sleep after the final failure

    def test_deadline_bounds_total_wait(self):
        clock = ManualClock()
        policy = RetryPolicy(
            max_attempts=100, base_delay=1.0, multiplier=1.0, jitter=0.0, deadline=2.5
        )
        with pytest.raises(RetryExhaustedError, match="deadline"):
            retry_call(flaky(99), policy=policy, clock=clock)
        assert clock.monotonic() <= 2.5

    def test_non_retryable_errors_pass_through(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.0, jitter=0.0)
        with pytest.raises(KeyError):
            retry_call(flaky(2, exc=KeyError), policy=policy, clock=ManualClock())

    def test_seeded_jitter_is_reproducible(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.5)

        def schedule():
            clock = ManualClock()
            retry_call(flaky(3), policy=policy, clock=clock, seed=11, name="x")
            return clock.sleeps

        assert schedule() == schedule()

    def test_on_retry_hook_sees_each_failure(self):
        seen = []
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.0)
        retry_call(
            flaky(2),
            policy=policy,
            clock=ManualClock(),
            on_retry=lambda k, exc, delay: seen.append((k, delay)),
        )
        assert seen == [(1, 0.1), (2, 0.2)]


class TestCircuitBreaker:
    def test_transitions_closed_open_halfopen_closed(self):
        clock = ManualClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=10.0, clock=clock)
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_halfopen_probe_failure_reopens(self):
        clock = ManualClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=5.0, clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_open_breaker_rejects_before_calling(self):
        clock = ManualClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0, clock=clock)
        breaker.record_failure()
        calls = flaky(0)
        with pytest.raises(CircuitOpenError):
            retry_call(calls, breaker=breaker, clock=clock)
        assert calls.state["calls"] == 0

    def test_breaker_trips_mid_retry(self):
        clock = ManualClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0, clock=clock)
        policy = RetryPolicy(max_attempts=10, base_delay=0.0, jitter=0.0)
        with pytest.raises(CircuitOpenError):
            retry_call(flaky(99), policy=policy, breaker=breaker, clock=clock)
        assert breaker.open_count == 1

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValidationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValidationError):
            CircuitBreaker(reset_timeout=-1.0)


class TestCircuitBreakerThreadSafety:
    def test_concurrent_hammer_never_corrupts_state(self):
        """Many threads racing allow/record_failure/record_success must
        never corrupt the breaker: the state stays one of the three
        legal values and the counters stay consistent."""
        breaker = CircuitBreaker(failure_threshold=5, reset_timeout=0.01)
        legal = {
            CircuitBreaker.CLOSED,
            CircuitBreaker.OPEN,
            CircuitBreaker.HALF_OPEN,
        }
        errors = []

        def hammer(seed: int) -> None:
            rng = derive_rng(seed, "breaker-hammer")
            try:
                for _ in range(400):
                    if breaker.allow():
                        if rng.random() < 0.5:
                            breaker.record_failure()
                        else:
                            breaker.record_success()
                    if breaker.state not in legal:
                        errors.append(f"illegal state {breaker.state!r}")
                    if breaker.failure_count < 0:
                        errors.append("negative failure count")
            except Exception as exc:  # noqa: BLE001 - any crash is a failure
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not any(thread.is_alive() for thread in threads)
        assert errors == []
        assert breaker.state in legal
        assert 0 <= breaker.failure_count <= 5

    def test_half_open_admits_exactly_one_probe(self):
        """After the cool-down only the first caller wins the half-open
        probe slot; everyone else is refused until the probe resolves."""
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=10.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(10.0)

        admitted = []
        barrier = threading.Barrier(8)

        def probe() -> None:
            barrier.wait(timeout=5.0)
            if breaker.allow():
                admitted.append(threading.get_ident())

        threads = [threading.Thread(target=probe) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert len(admitted) == 1
        # The probe succeeds: the breaker closes for everyone.
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_stale_probe_slot_is_reclaimed(self):
        """If the half-open probe dies without reporting, the slot frees
        up after another cool-down instead of wedging the breaker open."""
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=10.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()  # probe admitted, then silently lost
        assert not breaker.allow()  # probe outstanding: refused
        clock.advance(10.0)
        assert breaker.allow()  # stale probe reclaimed
