"""DPoS chain simulator (extension).

The paper's related work ([11], Li & Palanisamy) compares decentralization
between DPoS and PoW chains.  This module provides the DPoS side: a
Steem/EOS-style chain where a fixed-size committee of elected block
producers takes perfectly regular turns, elections periodically reshuffle
the committee from a stake-weighted candidate pool, and producers
occasionally miss their slot (the next producer in the schedule fills in).

The interesting measurement outcome — reproduced by
``bench_extension_dpos.py`` — is that *within a window* a DPoS chain looks
extremely decentralized under the paper's metrics (near-zero Gini, entropy
≈ log2(committee size), Nakamoto ≈ committee/2 + 1), even though the
committee itself is a small closed set; the metrics measure equality among
*active* producers, not openness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chain.chain import Chain
from repro.chain.specs import ChainSpec
from repro.errors import SimulationError
from repro.util.rng import derive_rng
from repro.util.timeutils import DAYS_IN_2019, SECONDS_PER_DAY, YEAR_2019_START

#: A Steem-like 2019 chain: 12-second slots, 7,200 blocks/day.
DPOS_2019 = ChainSpec(
    name="dpos",
    start_height=29_000_000,
    block_count=DAYS_IN_2019 * 7_200,
    target_interval=12.0,
    blocks_per_day=7_200,
    window_day=7_200,
    window_week=50_400,
    window_month=216_000,
)


@dataclass
class DposParams:
    """Parameters of the DPoS simulation."""

    spec: ChainSpec = DPOS_2019
    #: Size of the elected producer committee.
    n_active: int = 21
    #: Total candidates standing for election.
    candidate_count: int = 60
    #: Days between elections.
    election_interval_days: int = 7
    #: Probability a producer misses its slot (the next committee member in
    #: the schedule produces the block instead, keeping the committee closed).
    miss_rate: float = 0.02
    #: Dirichlet concentration of candidate stake (lower = more unequal).
    stake_concentration: float = 2.0
    #: Per-election lognormal sigma applied to stakes (drives churn).
    election_noise: float = 0.25
    seed: int = 2019

    def __post_init__(self) -> None:
        if self.n_active <= 0 or self.candidate_count < self.n_active:
            raise SimulationError(
                "need candidate_count >= n_active > 0, got "
                f"{self.candidate_count} / {self.n_active}"
            )
        if not 0.0 <= self.miss_rate < 1.0:
            raise SimulationError(f"miss_rate must be in [0, 1), got {self.miss_rate}")
        if self.election_interval_days <= 0:
            raise SimulationError("election_interval_days must be positive")


class DposSimulator:
    """Generates a DPoS chain for 2019."""

    def __init__(self, params: DposParams) -> None:
        self.params = params

    def run(self) -> Chain:
        """Simulate the full year and return the chain."""
        params = self.params
        spec = params.spec
        n = spec.block_count
        interval = (DAYS_IN_2019 * SECONDS_PER_DAY) / n
        timestamps = (
            YEAR_2019_START + (np.arange(n, dtype=np.float64) * interval)
        ).astype(np.int64)
        heights = spec.start_height + np.arange(n, dtype=np.int64)
        producer_ids = self._draw_producers(n, timestamps)
        names = [f"dpos-witness-{i:03d}" for i in range(params.candidate_count)]
        return Chain.single_producer(
            spec, heights, timestamps, producer_ids, names, validate=False
        )

    def _draw_producers(self, n: int, timestamps: np.ndarray) -> np.ndarray:
        params = self.params
        stake_rng = derive_rng(params.seed, "dpos/stakes")
        schedule_rng = derive_rng(params.seed, "dpos/schedule")
        miss_rng = derive_rng(params.seed, "dpos/misses")
        stakes = stake_rng.dirichlet(
            np.full(params.candidate_count, params.stake_concentration)
        )
        producer_ids = np.empty(n, dtype=np.int64)
        blocks_per_election = (
            params.election_interval_days * params.spec.blocks_per_day
        )
        position = 0
        while position < n:
            # Election: noisy stakes decide the committee; churn happens at
            # the boundary between ranks n_active-1 and n_active.
            noisy = stakes * np.exp(
                stake_rng.normal(0.0, params.election_noise, stakes.shape[0])
            )
            committee = np.argsort(-noisy, kind="stable")[: params.n_active]
            stop = min(position + blocks_per_election, n)
            span = stop - position
            # Round-robin schedule, shuffled once per round.
            rounds = span // params.n_active + 1
            slots = np.empty(rounds * params.n_active, dtype=np.int64)
            for r in range(rounds):
                order = schedule_rng.permutation(params.n_active)
                slots[r * params.n_active : (r + 1) * params.n_active] = committee[order]
            slots = slots[:span]
            missed = miss_rng.random(span) < params.miss_rate
            if missed.any() and span > 1:
                # The next scheduled committee member covers a missed slot.
                positions = np.flatnonzero(missed)
                slots[positions] = slots[(positions + 1) % span]
            producer_ids[position:stop] = slots
            position = stop
        return producer_ids


def simulate_dpos_2019(seed: int = 2019, **overrides) -> Chain:
    """Simulate the Steem-like 2019 DPoS chain (2,628,000 blocks)."""
    params = DposParams(seed=seed, **overrides)
    return DposSimulator(params).run()
