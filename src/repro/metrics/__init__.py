"""Decentralization metrics over mining-power distributions.

Every metric consumes a 1-D array of non-negative per-entity block credits
(the output of :meth:`repro.chain.Credits.distribution`) and returns a
scalar.  The paper's three metrics are :func:`gini_coefficient`,
:func:`shannon_entropy` and :func:`nakamoto_coefficient`; the package adds
HHI, Theil index, top-k share and normalized entropy as extensions, all
registered in a common registry for the measurement engine.
"""

from repro.metrics.base import (
    DistributionBatch,
    FunctionMetric,
    Metric,
    available_metrics,
    compute_batch,
    get_metric,
    has_batch_kernel,
    register_batch_kernel,
    register_metric,
)
from repro.metrics.registry import PAPER_METRICS
from repro.metrics.entropy import effective_producers_entropy, normalized_entropy, shannon_entropy
from repro.metrics.gini import gini_coefficient, lorenz_curve
from repro.metrics.hhi import effective_producers_hhi, herfindahl_hirschman_index
from repro.metrics.nakamoto import nakamoto_coefficient
from repro.metrics.theil import theil_index
from repro.metrics.topk import top_k_share
from repro.metrics.uncertainty import BootstrapCI, bootstrap_ci

__all__ = [
    "BootstrapCI",
    "DistributionBatch",
    "FunctionMetric",
    "Metric",
    "PAPER_METRICS",
    "bootstrap_ci",
    "available_metrics",
    "compute_batch",
    "has_batch_kernel",
    "register_batch_kernel",
    "effective_producers_entropy",
    "effective_producers_hhi",
    "get_metric",
    "gini_coefficient",
    "herfindahl_hirschman_index",
    "lorenz_curve",
    "nakamoto_coefficient",
    "normalized_entropy",
    "register_metric",
    "shannon_entropy",
    "theil_index",
    "top_k_share",
]
