"""Seed robustness: the paper's findings must not depend on a lucky seed.

Re-simulates Bitcoin (cheap) under alternate seeds and checks that the
*shape* conclusions — granularity ordering, Nakamoto mode, headline
comparisons — survive.  Ethereum is re-simulated once (it is slower) for
the cross-chain claims.
"""

import numpy as np
import pytest

from repro.core.engine import MeasurementEngine
from repro.simulation.scenarios import simulate_bitcoin_2019, simulate_ethereum_2019

ALT_SEEDS = (7, 1234)


@pytest.fixture(scope="module", params=ALT_SEEDS)
def alt_btc(request):
    return MeasurementEngine.from_chain(simulate_bitcoin_2019(seed=request.param))


@pytest.fixture(scope="module")
def alt_eth():
    return MeasurementEngine.from_chain(simulate_ethereum_2019(seed=7))


class TestBitcoinShapeAcrossSeeds:
    def test_gini_granularity_ordering(self, alt_btc):
        means = [
            alt_btc.measure_calendar("gini", g).mean() for g in ("day", "week", "month")
        ]
        assert means[0] < means[1] < means[2]

    def test_nakamoto_mode_is_4_midyear(self, alt_btc):
        mid = alt_btc.measure_calendar("nakamoto", "day").slice(100, 260)
        values, counts = np.unique(mid.values, return_counts=True)
        assert values[counts.argmax()] in (4.0, 5.0)

    def test_day14_anomaly_direction(self, alt_btc):
        gini = alt_btc.measure_calendar("gini", "day")
        entropy = alt_btc.measure_calendar("entropy", "day")
        assert gini.values[13] < gini.quantile(0.05)
        assert entropy.values[13] > entropy.quantile(0.95)

    def test_sliding_mean_matches_fixed(self, alt_btc):
        fixed = alt_btc.measure_calendar("entropy", "day").mean()
        sliding = alt_btc.measure_sliding("entropy", 144).mean()
        assert sliding == pytest.approx(fixed, abs=0.1)

    def test_early_year_extremes(self, alt_btc):
        daily = alt_btc.measure_calendar("nakamoto", "day")
        assert daily.slice(0, 50).max() > 30


class TestHeadlinesAcrossSeeds:
    def test_bitcoin_more_decentralized_seed7(self, alt_eth):
        btc = MeasurementEngine.from_chain(simulate_bitcoin_2019(seed=7))
        assert (
            btc.measure_calendar("gini", "day").mean()
            < alt_eth.measure_calendar("gini", "day").mean()
        )
        assert (
            btc.measure_calendar("entropy", "day").mean()
            > alt_eth.measure_calendar("entropy", "day").mean()
        )
        assert (
            btc.measure_calendar("nakamoto", "day").mean()
            > alt_eth.measure_calendar("nakamoto", "day").mean()
        )

    def test_ethereum_more_stable_seed7(self, alt_eth):
        btc = MeasurementEngine.from_chain(simulate_bitcoin_2019(seed=7))
        for metric in ("gini", "entropy", "nakamoto"):
            assert (
                alt_eth.measure_calendar(metric, "day").coefficient_of_variation()
                < btc.measure_calendar(metric, "day").coefficient_of_variation()
            )
