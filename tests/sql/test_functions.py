"""Tests for SQL scalar functions and LIKE matching."""

import numpy as np
import pytest

from repro.errors import SqlExecutionError, SqlPlanError
from repro.sql.functions import call_scalar_function, like_match


def obj(*items):
    array = np.empty(len(items), dtype=object)
    for i, item in enumerate(items):
        array[i] = item
    return array


class TestNumericFunctions:
    def test_abs(self):
        out = call_scalar_function("ABS", (np.asarray([-1, 2]),))
        assert out.tolist() == [1, 2]

    def test_round_default(self):
        out = call_scalar_function("ROUND", (np.asarray([1.6]),))
        assert out.tolist() == [2.0]

    def test_round_digits(self):
        out = call_scalar_function("ROUND", (np.asarray([1.2345]), 2))
        assert out.tolist() == [1.23]

    def test_floor_ceil(self):
        values = np.asarray([1.5])
        assert call_scalar_function("FLOOR", (values,)).tolist() == [1]
        assert call_scalar_function("CEIL", (values,)).tolist() == [2]

    def test_sqrt(self):
        assert call_scalar_function("SQRT", (np.asarray([9.0]),)).tolist() == [3.0]

    def test_sqrt_negative_raises(self):
        with pytest.raises(SqlExecutionError):
            call_scalar_function("SQRT", (np.asarray([-1.0]),))

    def test_log2(self):
        assert call_scalar_function("LOG2", (np.asarray([8.0]),)).tolist() == [3.0]

    def test_log2_nonpositive_raises(self):
        with pytest.raises(SqlExecutionError):
            call_scalar_function("LOG2", (np.asarray([0.0]),))

    def test_power(self):
        assert call_scalar_function("POWER", (np.asarray([2.0]), 10)).tolist() == [1024.0]


class TestStringFunctions:
    def test_lower_upper(self):
        assert call_scalar_function("LOWER", (obj("AbC"),)).tolist() == ["abc"]
        assert call_scalar_function("UPPER", (obj("AbC"),)).tolist() == ["ABC"]

    def test_length(self):
        assert call_scalar_function("LENGTH", (obj("miner", ""),)).tolist() == [5, 0]

    def test_substr(self):
        assert call_scalar_function("SUBSTR", (obj("bitcoin"), 1, 3)).tolist() == ["bit"]
        assert call_scalar_function("SUBSTR", (obj("bitcoin"), 4)).tolist() == ["coin"]

    def test_substr_zero_start_raises(self):
        with pytest.raises(SqlExecutionError):
            call_scalar_function("SUBSTR", (obj("x"), 0))

    def test_concat_mixes_scalars_and_arrays(self):
        out = call_scalar_function("CONCAT", (obj("a", "b"), "-", obj("1", "2")))
        assert out.tolist() == ["a-1", "b-2"]

    def test_none_passes_through_strings(self):
        assert call_scalar_function("UPPER", (obj(None, "a"),)).tolist() == [None, "A"]

    def test_coalesce(self):
        out = call_scalar_function("COALESCE", (obj(None, "x"), "fallback"))
        assert out.tolist() == ["fallback", "x"]


class TestDispatch:
    def test_unknown_function(self):
        with pytest.raises(SqlPlanError, match="unknown function"):
            call_scalar_function("FROBNICATE", (1,))

    def test_wrong_arity(self):
        with pytest.raises(SqlPlanError, match="argument"):
            call_scalar_function("ABS", (1, 2))


class TestLikeMatch:
    def test_percent_wildcard(self):
        out = like_match(obj("/F2Pool/", "solo"), "/%/")
        assert out.tolist() == [True, False]

    def test_underscore_single_char(self):
        out = like_match(obj("abc", "abbc"), "a_c")
        assert out.tolist() == [True, False]

    def test_literal_star_not_special(self):
        out = like_match(obj("a*b", "axb"), "a*b")
        assert out.tolist() == [True, False]

    def test_none_never_matches(self):
        assert like_match(obj(None), "%").tolist() == [False]

    def test_case_sensitive(self):
        assert like_match(obj("ABC"), "abc").tolist() == [False]
