"""Property-based tests for the decentralization metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.entropy import normalized_entropy, shannon_entropy
from repro.metrics.gini import gini_coefficient, gini_pairwise
from repro.metrics.hhi import herfindahl_hirschman_index
from repro.metrics.nakamoto import nakamoto_coefficient
from repro.metrics.theil import theil_index
from repro.metrics.topk import top_k_share

distributions = st.lists(
    st.floats(min_value=0.01, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)

multi_distributions = st.lists(
    st.floats(min_value=0.01, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=200,
)


class TestGiniProperties:
    @given(distributions)
    def test_bounded(self, values):
        assert 0.0 <= gini_coefficient(values) < 1.0

    @given(distributions, st.floats(min_value=0.1, max_value=1e4))
    def test_scale_invariant(self, values, scale):
        base = gini_coefficient(values)
        scaled = gini_coefficient([v * scale for v in values])
        assert scaled == pytest.approx(base, abs=1e-8)

    @given(distributions, st.randoms(use_true_random=False))
    def test_permutation_invariant(self, values, rng):
        shuffled = list(values)
        rng.shuffle(shuffled)
        assert gini_coefficient(shuffled) == pytest.approx(
            gini_coefficient(values), abs=1e-9
        )

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=2, max_size=30))
    @settings(max_examples=50)
    def test_matches_equation_one(self, values):
        """The O(n log n) form equals the paper's literal double sum."""
        assert gini_coefficient(values) == pytest.approx(
            gini_pairwise(values), abs=1e-9
        )

    @given(multi_distributions)
    def test_pigou_dalton_transfer(self, values):
        """Moving credit from the richest to the poorest lowers Gini."""
        values = sorted(values)
        poorest, richest = values[0], values[-1]
        gap = richest - poorest
        if gap < 1e-6:
            return
        transfer = gap / 4
        transferred = [poorest + transfer] + values[1:-1] + [richest - transfer]
        assert gini_coefficient(transferred) <= gini_coefficient(values) + 1e-9


class TestEntropyProperties:
    @given(distributions)
    def test_bounded_by_log_n(self, values):
        entropy = shannon_entropy(values)
        assert -1e-9 <= entropy <= np.log2(len(values)) + 1e-9

    @given(multi_distributions)
    def test_uniform_maximizes(self, values):
        uniform = [1.0] * len(values)
        assert shannon_entropy(values) <= shannon_entropy(uniform) + 1e-9

    @given(distributions)
    def test_normalized_in_unit_interval(self, values):
        assert 0.0 <= normalized_entropy(values) <= 1.0 + 1e-12

    @given(distributions, st.floats(min_value=0.1, max_value=1e4))
    def test_scale_invariant(self, values, scale):
        assert shannon_entropy([v * scale for v in values]) == pytest.approx(
            shannon_entropy(values), abs=1e-7
        )


class TestNakamotoProperties:
    @given(distributions)
    def test_range(self, values):
        n = nakamoto_coefficient(values)
        assert 1 <= n <= len(values)

    @given(distributions)
    def test_monotone_in_threshold(self, values):
        low = nakamoto_coefficient(values, threshold=0.33)
        mid = nakamoto_coefficient(values, threshold=0.51)
        high = nakamoto_coefficient(values, threshold=0.90)
        assert low <= mid <= high

    @given(distributions)
    def test_prefix_sums_satisfy_definition(self, values):
        """N is the *minimum* k whose top-k share reaches the threshold."""
        n = nakamoto_coefficient(values)
        array = np.sort(np.asarray(values, dtype=np.float64))[::-1]
        shares = array / array.sum()
        assert shares[:n].sum() >= 0.51 - 1e-12
        if n > 1:
            assert shares[: n - 1].sum() < 0.51

    @given(distributions)
    def test_adding_dust_never_decreases(self, values):
        """Adding a tiny producer cannot reduce the Nakamoto coefficient."""
        before = nakamoto_coefficient(values)
        after = nakamoto_coefficient(list(values) + [min(values) / 1000])
        assert after >= before


class TestCrossMetricConsistency:
    @given(multi_distributions)
    @settings(max_examples=50)
    def test_hhi_and_entropy_disagree_in_direction(self, values):
        """HHI up = concentration up = entropy down, versus uniform."""
        uniform = [1.0] * len(values)
        hhi_delta = herfindahl_hirschman_index(values) - herfindahl_hirschman_index(uniform)
        entropy_delta = shannon_entropy(values) - shannon_entropy(uniform)
        assert hhi_delta >= -1e-9
        assert entropy_delta <= 1e-9

    @given(multi_distributions)
    @settings(max_examples=50)
    def test_theil_zero_iff_gini_zero(self, values):
        theil = theil_index(values)
        gini = gini_coefficient(values)
        assert (theil < 1e-9) == (gini < 1e-9)

    @given(distributions, st.integers(min_value=1, max_value=10))
    def test_topk_bounds(self, values, k):
        share = top_k_share(values, k=k)
        assert 0.0 < share <= 1.0
        if k >= len(values):
            assert share == pytest.approx(1.0)

    @given(distributions)
    def test_top1_at_least_uniform_share(self, values):
        assert top_k_share(values, k=1) >= 1.0 / len(values) - 1e-12
