"""Unit tests for the overload-protection building blocks.

Admission, rate limiting and caching are tested as plain objects here
(clock-injected, no sockets); the HTTP integration lives in
``tests/serve/test_lifecycle.py`` and the end-to-end overload behaviour
in ``tests/serve/test_degraded.py``.
"""

import threading

import pytest

from repro.errors import ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.resilience.retry import CircuitBreaker, ManualClock
from repro.serve.overload import (
    AdmissionController,
    LoadShedder,
    OverloadConfig,
    OverloadGuard,
    ResponseCache,
    TokenBucketLimiter,
    parse_rate_limit,
)


class TestOverloadConfig:
    def test_defaults_are_valid(self):
        config = OverloadConfig()
        assert config.max_inflight is None
        assert config.rate_limit is None
        assert config.cache_ttl == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_inflight": 0},
            {"max_queue": -1},
            {"queue_timeout": -0.1},
            {"rate_limit": 0.0},
            {"rate_limit": -5.0},
            {"burst": 0.5},
            {"cache_ttl": -1.0},
            {"retry_after": 0.0},
            {"shed_threshold": 0},
            {"shed_reset": -1.0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            OverloadConfig(**kwargs)


class TestParseRateLimit:
    def test_rate_only(self):
        assert parse_rate_limit("100") == (100.0, None)

    def test_rate_and_burst(self):
        assert parse_rate_limit("50:200") == (50.0, 200.0)

    @pytest.mark.parametrize("text", ["", "fast", "10:many", "0", "-1", "5:0"])
    def test_bad_specs_rejected(self, text):
        with pytest.raises(ValidationError):
            parse_rate_limit(text)


class TestAdmissionController:
    def test_admits_up_to_max_inflight(self):
        admission = AdmissionController(2, max_queue=0, queue_timeout=0.0)
        assert admission.acquire()
        assert admission.acquire()
        assert not admission.acquire()  # full, no queue
        admission.release()
        assert admission.acquire()

    def test_release_wakes_a_queued_waiter(self):
        admission = AdmissionController(1, max_queue=1, queue_timeout=5.0)
        assert admission.acquire()
        outcomes = []
        waiter = threading.Thread(
            target=lambda: outcomes.append(admission.acquire())
        )
        waiter.start()
        # The waiter parks in the queue, then gets the released slot.
        for _ in range(1000):
            if admission.snapshot()["waiting"] == 1:
                break
            threading.Event().wait(0.001)
        admission.release()
        waiter.join(timeout=5.0)
        assert outcomes == [True]

    def test_queue_timeout_rejects(self):
        admission = AdmissionController(1, max_queue=4, queue_timeout=0.02)
        assert admission.acquire()
        assert not admission.acquire()  # waits 0.02s, then rejected
        assert admission.snapshot()["rejected_total"] == 1
        assert admission.snapshot()["queued_total"] == 1

    def test_full_queue_rejects_immediately(self):
        admission = AdmissionController(1, max_queue=0, queue_timeout=10.0)
        assert admission.acquire()
        assert admission.saturated()
        assert not admission.acquire()  # no wait: the queue is size 0

    def test_metrics_reach_the_registry(self):
        registry = MetricsRegistry()
        admission = AdmissionController(
            1, max_queue=0, queue_timeout=0.0, registry=registry
        )
        admission.acquire()
        admission.acquire()
        snap = registry.snapshot()
        assert snap["gauges"]["serve.admission.inflight"] == 1.0
        assert snap["counters"]["serve.admission.rejected_total"] == 1


class TestTokenBucketLimiter:
    def test_burst_then_throttle(self):
        clock = ManualClock()
        limiter = TokenBucketLimiter(rate=1.0, burst=3, clock=clock)
        verdicts = [limiter.allow("c").allowed for _ in range(4)]
        assert verdicts == [True, True, True, False]

    def test_tokens_refill_at_rate(self):
        clock = ManualClock()
        limiter = TokenBucketLimiter(rate=2.0, burst=1, clock=clock)
        assert limiter.allow("c").allowed
        assert not limiter.allow("c").allowed
        clock.advance(0.5)  # 2 tokens/s * 0.5s = 1 token back
        assert limiter.allow("c").allowed

    def test_clients_are_independent(self):
        clock = ManualClock()
        limiter = TokenBucketLimiter(rate=1.0, burst=1, clock=clock)
        assert limiter.allow("a").allowed
        assert not limiter.allow("a").allowed
        assert limiter.allow("b").allowed

    def test_denied_decision_carries_retry_after_and_headers(self):
        clock = ManualClock()
        limiter = TokenBucketLimiter(rate=2.0, burst=1, clock=clock)
        limiter.allow("c")
        decision = limiter.allow("c")
        assert not decision.allowed
        assert decision.retry_after == pytest.approx(0.5)
        headers = dict(decision.headers())
        assert headers["RateLimit-Limit"] == "2"
        assert headers["RateLimit-Remaining"] == "0"
        assert "Retry-After" in headers

    def test_allowed_decision_has_no_retry_after(self):
        limiter = TokenBucketLimiter(rate=10.0, clock=ManualClock())
        headers = dict(limiter.allow("c").headers())
        assert "Retry-After" not in headers

    def test_client_table_is_bounded_lru(self):
        clock = ManualClock()
        limiter = TokenBucketLimiter(
            rate=1.0, burst=1, max_clients=2, clock=clock
        )
        limiter.allow("a")
        limiter.allow("b")
        limiter.allow("c")  # evicts a, the least recently seen
        assert limiter.evicted_total == 1
        # a starts over with a full bucket: eviction favours the client.
        assert limiter.allow("a").allowed

    def test_default_burst_is_twice_rate(self):
        limiter = TokenBucketLimiter(rate=5.0, clock=ManualClock())
        assert limiter.burst == 10.0

    def test_throttle_counter_reaches_registry(self):
        registry = MetricsRegistry()
        limiter = TokenBucketLimiter(
            rate=1.0, burst=1, clock=ManualClock(), registry=registry
        )
        limiter.allow("c")
        limiter.allow("c")
        snap = registry.snapshot()
        assert snap["counters"]["serve.ratelimit.throttled_total"] == 1


class TestResponseCache:
    def test_fresh_hit_within_ttl(self):
        now = [0.0]
        cache = ResponseCache(ttl=1.0, clock=lambda: now[0])
        cache.put("/status", b'{"a": 1}', "application/json")
        entry, fresh = cache.get("/status")
        assert fresh and entry.body == b'{"a": 1}'

    def test_stale_after_ttl_still_served_byte_identical(self):
        now = [0.0]
        cache = ResponseCache(ttl=1.0, clock=lambda: now[0])
        put_entry = cache.put("/status", b'{"a": 1}', "application/json")
        now[0] = 5.0
        assert cache.get("/status", fresh_only=True) is None
        entry, fresh = cache.get("/status")
        assert not fresh
        assert entry.body == put_entry.body
        assert entry.etag == put_entry.etag
        assert cache.snapshot()["stale_hits"] == 1

    def test_etag_is_stable_for_identical_bytes(self):
        cache = ResponseCache()
        first = cache.put("/a", b"same", "text/plain")
        second = cache.put("/b", b"same", "text/plain")
        assert first.etag == second.etag
        assert first.etag.startswith('"') and first.etag.endswith('"')

    def test_entry_table_is_bounded(self):
        cache = ResponseCache(max_entries=2, clock=lambda: 0.0)
        for i in range(5):
            cache.put(f"/k{i}", b"x", "text/plain")
        assert cache.snapshot()["entries"] == 2
        assert cache.get("/k0") is None


class TestLoadShedder:
    def test_consecutive_saturation_opens_the_breaker(self):
        clock = ManualClock()
        shedder = LoadShedder(
            breaker=CircuitBreaker(
                failure_threshold=3, reset_timeout=10.0, clock=clock
            )
        )
        assert not shedder.shedding()
        for _ in range(3):
            shedder.note_saturated()
        assert shedder.shedding()
        clock.advance(10.0)  # cool-down: half-open, no longer shedding
        assert not shedder.shedding()
        shedder.note_admitted()
        assert not shedder.shedding()

    def test_admission_resets_the_failure_run(self):
        shedder = LoadShedder(
            breaker=CircuitBreaker(failure_threshold=3, reset_timeout=10.0,
                                   clock=ManualClock())
        )
        shedder.note_saturated()
        shedder.note_saturated()
        shedder.note_admitted()  # run broken: stays closed
        shedder.note_saturated()
        shedder.note_saturated()
        assert not shedder.shedding()

    def test_degraded_monitor_sheds_regardless_of_breaker(self):
        degraded = [False]
        shedder = LoadShedder(degraded_fn=lambda: degraded[0])
        assert not shedder.shedding()
        degraded[0] = True
        assert shedder.shedding()
        assert shedder.snapshot()["degraded"] is True


class TestOverloadGuard:
    def test_unset_knobs_leave_pieces_disabled(self):
        guard = OverloadGuard(OverloadConfig())
        assert guard.admission is None
        assert guard.limiter is None
        assert guard.cache is not None
        snap = guard.snapshot()
        assert snap["admission"] is None
        assert snap["ratelimit"] is None
        assert snap["cache"]["entries"] == 0
        assert snap["shedder"]["state"] == "closed"

    def test_configured_guard_wires_everything(self):
        guard = OverloadGuard(
            OverloadConfig(max_inflight=4, rate_limit=10.0, burst=20)
        )
        assert guard.admission.max_inflight == 4
        assert guard.limiter.rate == 10.0
        assert guard.limiter.burst == 20.0
        snap = guard.snapshot()
        assert snap["admission"]["max_inflight"] == 4
        assert snap["ratelimit"]["rate"] == 10.0
