"""Vectorized batch kernels for the standard metrics.

Each kernel evaluates one metric over every row of a
:class:`~repro.metrics.base.DistributionBatch` at once, sharing the
batch's single per-row sort.  Kernels mirror their scalar counterparts
element-for-element: integer-weight distributions (the per-address,
first-address and pool policies) produce bit-identical values; fractional
weights agree to float re-association error (~1e-15 relative).

Importing :mod:`repro.metrics` registers these kernels for the standard
metric names alongside the scalar metrics (see
:mod:`repro.metrics.registry`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError
from repro.metrics.base import DistributionBatch


def batch_gini(batch: DistributionBatch) -> np.ndarray:
    """Gini coefficient per row (sorted form of paper Eq. 1)."""
    sorted_rows = batch.sorted_ascending
    totals = batch.totals
    counts = batch.counts.astype(np.float64)
    width = sorted_rows.shape[1]
    # Zeros sort first, so a non-zero value at global position p has rank
    # p - z within the non-zero suffix; the zero entries contribute nothing
    # to the dot product itself.
    positions = np.arange(1, width + 1, dtype=np.float64)
    weighted = sorted_rows @ positions
    zeros = width - counts
    weighted -= zeros * totals
    gini = (2.0 * weighted - (counts + 1.0) * totals) / (counts * totals)
    return np.clip(gini, 0.0, 1.0)


def batch_entropy(batch: DistributionBatch) -> np.ndarray:
    """Shannon entropy per row, in bits (paper Eqs. 2-3)."""
    p = batch.matrix / batch.totals[:, None]
    plogp = np.zeros_like(p)
    mask = p > 0
    np.log2(p, out=plogp, where=mask)
    plogp *= p
    # "+ 0.0" normalizes the single-entity rows' -0.0 to 0.0.
    return -plogp.sum(axis=1) + 0.0


def batch_normalized_entropy(batch: DistributionBatch) -> np.ndarray:
    """Entropy divided by ``log2(n)``; 1.0 for single-entity rows."""
    entropy = batch_entropy(batch)
    counts = batch.counts.astype(np.float64)
    single = counts <= 1
    denominator = np.where(single, 1.0, np.log2(np.maximum(counts, 2.0)))
    return np.where(single, 1.0, entropy / denominator)


def batch_effective_producers(batch: DistributionBatch) -> np.ndarray:
    """Perplexity ``2^E`` per row."""
    return 2.0 ** batch_entropy(batch)


def batch_nakamoto(batch: DistributionBatch, threshold: float = 0.51) -> np.ndarray:
    """Nakamoto coefficient per row (paper Eq. 4)."""
    if not 0.0 < threshold <= 1.0:
        raise MetricError(f"threshold must be in (0, 1], got {threshold}")
    descending = batch.sorted_ascending[:, ::-1]
    shares = descending / batch.totals[:, None]
    cumulative = np.cumsum(shares, axis=1)
    below = (cumulative < threshold).sum(axis=1) + 1
    # Mirror the scalar guard against the final cumulative share
    # undershooting 1.0: the answer never exceeds the entity count.
    return np.minimum(below, np.maximum(batch.counts, 1)).astype(np.float64)


def batch_hhi(batch: DistributionBatch) -> np.ndarray:
    """Herfindahl-Hirschman index per row."""
    p = batch.matrix / batch.totals[:, None]
    return (p * p).sum(axis=1)


def batch_theil(batch: DistributionBatch) -> np.ndarray:
    """Theil-T index per row."""
    counts = batch.counts.astype(np.float64)
    mean = batch.totals / counts
    ratio = batch.matrix / mean[:, None]
    term = np.zeros_like(ratio)
    mask = ratio > 0
    np.log(ratio, out=term, where=mask)
    term *= ratio
    return term.sum(axis=1) / counts


def batch_top_k_share(batch: DistributionBatch, k: int = 4) -> np.ndarray:
    """Combined share of the ``k`` heaviest entities per row."""
    if k <= 0:
        raise MetricError(f"k must be positive, got {k}")
    top = batch.sorted_ascending[:, : -k - 1 : -1]
    share = top.sum(axis=1) / batch.totals
    return np.minimum(share, 1.0)
