"""Performance — resilience overhead when fault injection is disabled.

Every ingest-path read goes through :func:`repro.resilience.retry.retry_call`
unconditionally; with neither a policy nor a breaker it is a direct
passthrough, and the fault-injection hooks are ``None``-guarded.  The
contract is that this disabled path (the shipped default) costs less than
2% of the BTC sliding-family sweep.  This file measures both halves of
that claim: the per-call cost of the disabled passthrough, and the
end-to-end sweep time with the resilience layer wired into the pipeline.
"""

import time

from repro.resilience.retry import retry_call

#: Maximum tolerated disabled-path cost, as a fraction of sweep time.
OVERHEAD_BUDGET = 0.02

#: Safety factor on the per-sweep call bound.
CALL_MARGIN = 2.0

#: Generous bound on resilient call sites around one sweep.  The sweep
#: itself contains none; the always-on sites are the retry_call wrappers
#: around each dataset's chain load and query (two per dataset, two
#: datasets).  Per-page injector hooks exist only on the fault-injected
#: path, never the disabled one.  Bound = 4x the real count.
PER_SWEEP_CALLS = 16


def _noop():
    return None


def _disabled_call_cost(calls: int = 200_000) -> float:
    """Mean seconds per disabled retry_call passthrough, measured directly."""
    start = time.perf_counter()
    for _ in range(calls):
        retry_call(_noop)
    return (time.perf_counter() - start) / calls


def test_perf_disabled_retry_per_call(benchmark):
    """Microbenchmark: one policy-less, breaker-less retry_call."""
    assert benchmark(lambda: retry_call(_noop)) is None


def test_perf_btc_sliding_family_resilience_disabled(benchmark, btc):
    """The acceptance sweep with the resilience layer at its defaults."""

    def full_family():
        return [btc.measure_sliding("entropy", n) for n in (144, 1_008, 4_320)]

    series = benchmark(full_family)
    assert sum(len(s) for s in series) > 800


def test_disabled_overhead_under_budget(btc):
    """Disabled resilience costs <2% of the BTC sliding-family sweep.

    Bounds the overhead as (per-call passthrough cost) x (a generous
    per-sweep call count, with margin) and compares against the measured
    sweep time — both sides scale with machine speed, so the 2% claim is
    robust across hosts.
    """

    def full_family():
        return [btc.measure_sliding("entropy", n) for n in (144, 1_008, 4_320)]

    full_family()  # warm the sliding caches, as in the perf benchmark

    per_call = _disabled_call_cost()
    start = time.perf_counter()
    full_family()
    sweep_seconds = time.perf_counter() - start

    overhead = per_call * PER_SWEEP_CALLS * CALL_MARGIN
    budget = OVERHEAD_BUDGET * sweep_seconds
    assert overhead < budget, (
        f"disabled resilience would cost {overhead * 1e6:.1f}us per sweep "
        f"({PER_SWEEP_CALLS} calls x{CALL_MARGIN} margin x "
        f"{per_call * 1e9:.0f}ns), over the 2% budget of "
        f"{budget * 1e6:.1f}us (sweep {sweep_seconds * 1e3:.1f}ms)"
    )
