"""Ablation — attribution policy choice.

The paper credits *every* coinbase output address with the block
(per-address).  This ablation quantifies how much that choice drives the
day-14 anomaly: under first-address or fractional attribution the anomaly
shrinks drastically, and under pool-level attribution the entity
population collapses to the pools plus the tail.
"""

import pytest

from repro.chain.attribution import attribute
from repro.chain.pools import bitcoin_pools_2019
from repro.core.engine import MeasurementEngine


def measure_policies(chain):
    registry = bitcoin_pools_2019()
    results = {}
    for policy in ("per-address", "first-address", "fractional", "pool"):
        engine = MeasurementEngine(
            attribute(chain, policy, registry=registry if policy == "pool" else None)
        )
        entropy = engine.measure_calendar("entropy", "day")
        results[policy] = entropy
    return results


def test_ablation_attribution_policies(benchmark, study):
    chain = study.chain("btc")
    results = benchmark.pedantic(measure_policies, args=(chain,), rounds=1, iterations=1)

    print("\n=== attribution-policy ablation (daily entropy) ===")
    for policy, series in results.items():
        print(
            f"  {policy:<14s} mean={series.mean():.4f} "
            f"day14={series.values[13]:.4f} max={series.max():.4f}"
        )

    per_address = results["per-address"]
    first = results["first-address"]
    fractional = results["fractional"]
    pool = results["pool"]
    # The day-14 spike is a per-address artifact: the other policies see far less.
    assert per_address.values[13] > first.values[13] + 1.5
    assert per_address.values[13] > fractional.values[13] + 1.5
    # Pool-level attribution gives the lowest entropy (fewest entities).
    assert pool.mean() < first.mean() + 1e-9
    # Fractional preserves per-block total weight, so it tracks first-address.
    assert fractional.mean() == pytest.approx(first.mean(), abs=0.25)
