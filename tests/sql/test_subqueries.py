"""Tests for derived tables (subqueries in FROM) and UNION ALL."""

import pytest

from repro.errors import SqlPlanError, SqlSyntaxError
from repro.sql import QueryEngine, parse
from repro.sql.astnodes import SubquerySource, Union
from repro.table import Table


@pytest.fixture
def engine() -> QueryEngine:
    blocks = Table(
        {
            "height": [1, 2, 3, 4, 5, 6],
            "miner": ["a", "b", "a", "c", "b", "a"],
            "reward": [5.0, 3.0, 2.0, 9.0, 1.0, 4.0],
        }
    )
    return QueryEngine({"blocks": blocks})


class TestParsing:
    def test_derived_table_node(self):
        select = parse("SELECT x FROM (SELECT height AS x FROM blocks) t")
        assert isinstance(select.source, SubquerySource)
        assert select.source.alias == "t"

    def test_derived_table_requires_alias(self):
        with pytest.raises(SqlSyntaxError, match="alias"):
            parse("SELECT x FROM (SELECT height AS x FROM blocks)")

    def test_union_node(self):
        statement = parse("SELECT 1 a FROM t UNION ALL SELECT 2 a FROM t")
        assert isinstance(statement, Union)
        assert len(statement.selects) == 2

    def test_union_requires_all(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT 1 a FROM t UNION SELECT 2 a FROM t")


class TestDerivedTables:
    def test_aggregate_over_aggregate(self, engine):
        out = engine.execute(
            "SELECT AVG(total) AS avg_total "
            "FROM (SELECT miner, SUM(reward) AS total FROM blocks GROUP BY miner) s"
        )
        assert out.row(0)["avg_total"] == pytest.approx(8.0)

    def test_filter_on_derived_column(self, engine):
        out = engine.execute(
            "SELECT miner FROM "
            "(SELECT miner, COUNT(*) AS n FROM blocks GROUP BY miner) t "
            "WHERE n >= 2 ORDER BY miner"
        )
        assert out["miner"].tolist() == ["a", "b"]

    def test_qualified_access_to_derived_columns(self, engine):
        out = engine.execute(
            "SELECT t.n FROM (SELECT COUNT(*) AS n FROM blocks) t"
        )
        assert out.row(0)["n"] == 6

    def test_join_table_with_derived(self, engine):
        out = engine.execute(
            "SELECT b.height, s.total FROM blocks b "
            "JOIN (SELECT miner, SUM(reward) AS total FROM blocks GROUP BY miner) s "
            "ON b.miner = s.miner WHERE b.height = 4"
        )
        assert out.row(0) == {"height": 4, "total": 9.0}

    def test_join_two_derived_tables(self, engine):
        out = engine.execute(
            "SELECT x.miner, x.n, y.total FROM "
            "(SELECT miner, COUNT(*) AS n FROM blocks GROUP BY miner) x "
            "JOIN (SELECT miner, SUM(reward) AS total FROM blocks GROUP BY miner) y "
            "ON x.miner = y.miner ORDER BY x.miner"
        )
        assert out.num_rows == 3
        assert out.row(0) == {"miner": "a", "n": 3, "total": 11.0}

    def test_nested_derived_tables(self, engine):
        out = engine.execute(
            "SELECT MAX(n) AS biggest FROM "
            "(SELECT miner, n FROM "
            "  (SELECT miner, COUNT(*) AS n FROM blocks GROUP BY miner) inner1 "
            " WHERE n > 1) outer1"
        )
        assert out.row(0)["biggest"] == 3

    def test_invalid_inner_query_surfaces_at_plan_time(self, engine):
        with pytest.raises(SqlPlanError):
            engine.execute(
                "SELECT * FROM (SELECT miner, COUNT(*) FROM blocks) t"
            )  # star-with-aggregate is invalid inside too? -> actually this is
            # 'bare column outside GROUP BY' at execution; plan() catches the
            # missing GROUP BY validation lazily; either way it must raise.


class TestDerivedTableClauses:
    def test_inner_order_by_and_limit(self, engine):
        out = engine.execute(
            "SELECT miner FROM "
            "(SELECT miner, reward FROM blocks ORDER BY reward DESC LIMIT 2) top2 "
            "ORDER BY miner"
        )
        assert out["miner"].tolist() == ["a", "c"]  # rewards 9.0 and 5.0

    def test_inner_distinct(self, engine):
        out = engine.execute(
            "SELECT COUNT(*) AS n FROM (SELECT DISTINCT miner FROM blocks) u"
        )
        assert out.row(0)["n"] == 3

    def test_scalar_function_over_aggregate(self, engine):
        out = engine.execute(
            "SELECT miner, ROUND(SUM(reward), 1) AS total FROM blocks "
            "GROUP BY miner ORDER BY miner"
        )
        assert out["total"].tolist() == [11.0, 4.0, 9.0]

    def test_case_over_aggregate(self, engine):
        out = engine.execute(
            "SELECT miner, CASE WHEN COUNT(*) > 2 THEN 'major' ELSE 'minor' END AS tier "
            "FROM blocks GROUP BY miner ORDER BY miner"
        )
        assert out["tier"].tolist() == ["major", "minor", "minor"]


class TestUnionAll:
    def test_concatenates_rows(self, engine):
        out = engine.execute(
            "SELECT miner FROM blocks WHERE reward > 4 "
            "UNION ALL SELECT miner FROM blocks WHERE reward < 2"
        )
        assert sorted(out["miner"].tolist()) == ["a", "b", "c"]

    def test_keeps_duplicates(self, engine):
        out = engine.execute(
            "SELECT miner FROM blocks UNION ALL SELECT miner FROM blocks"
        )
        assert out.num_rows == 12

    def test_three_way_union(self, engine):
        out = engine.execute(
            "SELECT 1 AS v FROM blocks LIMIT 1 "
            "UNION ALL SELECT 2 AS v FROM blocks LIMIT 1 "
            "UNION ALL SELECT 3 AS v FROM blocks LIMIT 1"
        )
        assert out["v"].tolist() == [1, 2, 3]

    def test_schema_mismatch_rejected(self, engine):
        with pytest.raises(SqlPlanError, match="identical schemas"):
            engine.execute(
                "SELECT miner FROM blocks UNION ALL SELECT height FROM blocks"
            )

    def test_union_of_derived_tables(self, engine):
        out = engine.execute(
            "SELECT miner, n FROM "
            "(SELECT miner, COUNT(*) AS n FROM blocks GROUP BY miner) a "
            "WHERE n = 3 "
            "UNION ALL "
            "SELECT miner, n FROM "
            "(SELECT miner, COUNT(*) AS n FROM blocks GROUP BY miner) b "
            "WHERE n = 1"
        )
        assert sorted(out["miner"].tolist()) == ["a", "c"]
