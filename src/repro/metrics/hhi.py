"""Herfindahl–Hirschman index (extension metric).

The sum of squared shares :math:`HHI = \\sum_i p_i^2`, a standard market
concentration measure.  Ranges from :math:`1/n` (perfectly even over ``n``
entities) to 1 (monopoly); *lower* is more decentralized.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import validate_distribution


def herfindahl_hirschman_index(values: np.ndarray | list[float]) -> float:
    """HHI of a credit distribution, in ``(0, 1]``.

    >>> herfindahl_hirschman_index([1, 1, 1, 1])
    0.25
    >>> herfindahl_hirschman_index([10.0])
    1.0
    """
    array = validate_distribution(values)
    p = array / array.sum()
    return float((p * p).sum())


def effective_producers_hhi(values: np.ndarray | list[float]) -> float:
    """Inverse HHI: the "effective number" of equally-sized producers."""
    return 1.0 / herfindahl_hirschman_index(values)
