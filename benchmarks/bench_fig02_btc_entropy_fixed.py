"""Fig. 2 — Shannon entropy measured in Bitcoin using fixed windows.

Paper claims: the daily/weekly/monthly patterns are close; values are
higher during the first two months; daily values sit in 3.5–4.0 with
extremes above 5.5.
"""

from _bench_util import report_series
from repro.analysis.figures import figure_2


def test_fig02_btc_entropy_fixed(benchmark, btc):
    figure = benchmark(figure_2, btc)
    report_series(figure.title, figure.series)

    day = figure.series["day"]
    means = [figure.series[g].mean() for g in ("day", "week", "month")]
    assert max(means) - min(means) < 0.5  # granularities are close
    assert day.fraction_in_range(3.5, 4.0) > 0.5
    assert day.max() > 5.5
    assert day.slice(0, 60).mean() > day.slice(150, 250).mean()
