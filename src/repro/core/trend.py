"""Trend utilities over measurement series (extension).

Rolling statistics and detrending support the "continuous trends" side of
the paper's motivation: a rolling mean shows the drift of decentralization
over 2019, and detrended residuals separate slow drift from the short-term
fluctuations the stability comparison is really about.
"""

from __future__ import annotations

import numpy as np

from repro.core.series import MeasurementSeries
from repro.errors import MeasurementError


def _derived(series: MeasurementSeries, values: np.ndarray, suffix: str) -> MeasurementSeries:
    return MeasurementSeries(
        chain_name=series.chain_name,
        metric_name=series.metric_name,
        window_desc=f"{series.window_desc}:{suffix}",
        indices=series.indices,
        labels=series.labels,
        values=values,
        skipped=series.skipped,
    )


def rolling_mean(series: MeasurementSeries, window: int) -> MeasurementSeries:
    """Centered rolling mean (edges use the available neighborhood)."""
    if window < 1:
        raise MeasurementError(f"window must be >= 1, got {window}")
    values = series.values
    n = values.shape[0]
    if n == 0:
        return _derived(series, values.copy(), f"rollmean{window}")
    half = window // 2
    cumulative = np.concatenate(([0.0], np.cumsum(values)))
    out = np.empty(n)
    for i in range(n):
        lo = max(0, i - half)
        hi = min(n, i + half + 1)
        out[i] = (cumulative[hi] - cumulative[lo]) / (hi - lo)
    return _derived(series, out, f"rollmean{window}")


def rolling_std(series: MeasurementSeries, window: int) -> MeasurementSeries:
    """Centered rolling population standard deviation."""
    if window < 2:
        raise MeasurementError(f"window must be >= 2, got {window}")
    values = series.values
    n = values.shape[0]
    half = window // 2
    out = np.empty(n)
    for i in range(n):
        lo = max(0, i - half)
        hi = min(n, i + half + 1)
        out[i] = values[lo:hi].std(ddof=0)
    return _derived(series, out, f"rollstd{window}")


def detrend(series: MeasurementSeries, window: int) -> MeasurementSeries:
    """Residuals after removing the centered rolling mean."""
    trend = rolling_mean(series, window)
    return _derived(series, series.values - trend.values, f"detrended{window}")


def linear_trend(series: MeasurementSeries) -> tuple[float, float]:
    """Least-squares ``(slope per window, intercept)`` of the series."""
    values = series.values
    if values.shape[0] < 2:
        raise MeasurementError("linear trend requires at least two points")
    x = np.arange(values.shape[0], dtype=np.float64)
    slope, intercept = np.polyfit(x, values, 1)
    return float(slope), float(intercept)
