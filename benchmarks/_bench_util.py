"""Reporting helpers shared by the figure benchmarks.

The row formatting lives in :mod:`repro.viz.tables` (shared with the CLI
``measure`` summary); these wrappers only print.  ``record_stage_timings``
feeds stage-level span totals into pytest-benchmark's ``extra_info`` so
``make bench-perf`` lands them in ``BENCH_pipeline.json`` alongside the
headline numbers.
"""

from __future__ import annotations

from typing import Callable

from repro.core.series import MeasurementSeries
from repro.viz.tables import format_notes, format_series_rows


def report_series(title: str, series_map: dict[str, MeasurementSeries]) -> None:
    """Print the per-series rows the paper quotes for a figure."""
    print(f"\n{format_series_rows(series_map, title=title)}")


def report_notes(notes: dict[str, float]) -> None:
    """Print a figure's named scalar statistics."""
    if notes:
        print(format_notes(notes))


def record_stage_timings(benchmark, fn: Callable[[], object]) -> None:
    """Run ``fn`` once under tracing and stash span totals on ``benchmark``.

    Aggregates the recorded spans by name into ``{count, total_seconds}``
    entries under ``extra_info["stages"]`` (plus the tracer's counters
    under ``extra_info["counters"]``), which pytest-benchmark serializes
    into the ``--benchmark-json`` output.
    """
    from repro import obs
    from repro.obs.report import aggregate_spans

    tracer = obs.enable_tracing()
    try:
        fn()
        stages: dict[str, dict] = {}

        def collect(node, path: str) -> None:
            for child in node.children.values():
                key = f"{path}{child.name}"
                entry = stages.setdefault(key, {"count": 0, "total_seconds": 0.0})
                entry["count"] += child.count
                entry["total_seconds"] += child.total
                collect(child, f"{key}/")

        collect(aggregate_spans(tracer.spans), "")
        benchmark.extra_info["stages"] = stages
        benchmark.extra_info["counters"] = tracer.metrics.snapshot()["counters"]
    finally:
        obs.disable_tracing()
