"""Performance — observability overhead when tracing is disabled.

The tracer is a process-wide singleton that every hot layer calls into
unconditionally; the contract is that with tracing *disabled* those calls
are guard-checked no-ops whose total cost stays under 2% of the BTC
sliding-family sweep.  This file measures both halves of that claim: the
per-call cost of the disabled primitives, and the end-to-end sweep time
with instrumentation live in the code.
"""

import time

import pytest

from repro import obs

#: Maximum tolerated disabled-path cost, as a fraction of sweep time.
OVERHEAD_BUDGET = 0.02

#: Safety factor on the measured per-sweep event count.
EVENT_MARGIN = 2.0


def _disabled_call_cost(calls: int = 200_000) -> float:
    """Mean seconds per disabled span+counter pair, measured directly."""
    assert not obs.tracing_enabled()
    start = time.perf_counter()
    for _ in range(calls):
        with obs.span("bench.noop", key=1):
            pass
        obs.counter("bench.noop")
    return (time.perf_counter() - start) / calls


def test_perf_disabled_span_per_call(benchmark):
    """Microbenchmark: one disabled span + one disabled counter."""
    assert not obs.tracing_enabled()

    def noop_pair():
        with obs.span("bench.noop", key=1):
            pass
        obs.counter("bench.noop")

    benchmark(noop_pair)


def test_perf_btc_sliding_family_untraced(benchmark, btc):
    """The acceptance sweep, tracing disabled (the shipped default)."""
    assert not obs.tracing_enabled()

    def full_family():
        return [btc.measure_sliding("entropy", n) for n in (144, 1_008, 4_320)]

    series = benchmark(full_family)
    assert sum(len(s) for s in series) > 800


def test_disabled_overhead_under_budget(btc):
    """Disabled-path cost is <2% of the BTC sliding-family sweep.

    Counts the instrumentation events one warmed sweep actually fires
    (by running it once under tracing), bounds the overhead as
    (per-call disabled cost) x (that count, with margin), and compares
    against the measured untraced sweep time — both sides scale with
    machine speed, so the 2% claim is robust.
    """

    def full_family():
        return [btc.measure_sliding("entropy", n) for n in (144, 1_008, 4_320)]

    full_family()  # warm the sliding caches, as in the perf benchmark

    tracer = obs.enable_tracing()
    try:
        full_family()
        counter_events = sum(tracer.metrics.snapshot()["counters"].values())
        events = len(tracer.spans) + counter_events
    finally:
        obs.disable_tracing()

    per_call = _disabled_call_cost()
    start = time.perf_counter()
    full_family()
    sweep_seconds = time.perf_counter() - start

    overhead = per_call * events * EVENT_MARGIN
    budget = OVERHEAD_BUDGET * sweep_seconds
    assert overhead < budget, (
        f"disabled tracing would cost {overhead * 1e6:.1f}us per sweep "
        f"({events:.0f} events x{EVENT_MARGIN} margin x {per_call * 1e9:.0f}ns), "
        f"over the 2% budget of {budget * 1e6:.1f}us "
        f"(sweep {sweep_seconds * 1e3:.1f}ms)"
    )


def test_enabled_tracing_records_sweep_spans(btc):
    """Sanity: with tracing on, the sweep emits engine spans + counters."""
    tracer = obs.enable_tracing()
    try:
        btc.measure_sliding("entropy", 2_016, 1_008)
        names = {span.name for span in tracer.spans}
        counters = tracer.metrics.snapshot()["counters"]
        assert "engine.sliding_sweep" in names
        assert "engine.sliding.fast_path" in counters
    finally:
        obs.disable_tracing()
