"""Fig. 11 — Gini coefficient measured in Bitcoin using sliding windows.

Paper claims: means ≈ 0.523 / 0.667 / 0.760 for N = 144 / 1008 / 4320;
values strongly correlated with granularity (larger windows -> higher
Gini); sliding windows reveal extra cross-interval information.
"""

import pytest

from _bench_util import report_series
from repro.analysis.figures import figure_11


def test_fig11_btc_gini_sliding(benchmark, btc):
    figure = benchmark(figure_11, btc)
    report_series(figure.title, figure.series)

    means = {size: figure.series[f"N={size}"].mean() for size in (144, 1008, 4320)}
    assert means[144] == pytest.approx(0.523, abs=0.06)
    assert means[1008] == pytest.approx(0.667, abs=0.06)
    assert means[4320] == pytest.approx(0.760, abs=0.06)
    assert means[144] < means[1008] < means[4320]

    # Sliding and fixed daily means agree (§III-B).
    fixed_daily = btc.measure_calendar("gini", "day")
    assert figure.series["N=144"].mean() == pytest.approx(fixed_daily.mean(), abs=0.05)
