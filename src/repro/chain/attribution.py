"""Block-producer attribution policies.

Attribution turns a :class:`~repro.chain.chain.Chain` into *credits*: rows
of (block, entity, weight) from which per-window mining-power distributions
are computed.  Four policies are provided:

``per-address`` (the paper's policy)
    Every coinbase output address of a block counts as a producer of that
    block and receives weight 1.  A block with 90 addresses therefore
    contributes 90 credits — this is what makes the paper's day-14 Bitcoin
    anomaly (Gini 0.34, entropy 6.2) possible.

``first-address``
    Only the first (payout) address is credited, weight 1 per block.

``fractional``
    Every address is credited ``1/k`` for a block with ``k`` addresses, so
    each block contributes total weight 1.

``pool``
    Like ``first-address``, but addresses are canonicalized through a
    :class:`~repro.chain.pools.PoolRegistry`, collapsing pool payout
    addresses to pool identities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Final, Sequence

import numpy as np

from repro.chain.chain import Chain
from repro.chain.pools import PoolRegistry
from repro.errors import AttributionError

#: The policies accepted by :func:`attribute`.
ATTRIBUTION_POLICIES: Final[tuple[str, ...]] = (
    "per-address",
    "first-address",
    "fractional",
    "pool",
)


@dataclass
class Credits:
    """Per-(block, entity) block credits in block order.

    Arrays are aligned: credit ``i`` belongs to the block at position
    ``block_positions[i]`` in the source chain and assigns ``weights[i]``
    to entity ``entity_ids[i]``.  ``block_offsets`` is CSR: the credits of
    block position ``b`` are rows ``block_offsets[b]:block_offsets[b + 1]``.
    """

    chain_name: str
    policy: str
    entity_ids: np.ndarray
    weights: np.ndarray
    block_positions: np.ndarray
    timestamps: np.ndarray
    block_offsets: np.ndarray
    entity_names: Sequence[str]

    @property
    def n_blocks(self) -> int:
        """Number of blocks covered."""
        return int(self.block_offsets.shape[0] - 1)

    @property
    def n_credits(self) -> int:
        """Total credit rows."""
        return int(self.entity_ids.shape[0])

    @property
    def n_entities(self) -> int:
        """Size of the entity id space (some may hold zero weight)."""
        return len(self.entity_names)

    @property
    def total_weight(self) -> float:
        """Sum of all weights."""
        return float(self.weights.sum())

    def credit_range_for_blocks(self, start_block: int, stop_block: int) -> tuple[int, int]:
        """Credit-row range covering block positions ``[start_block, stop_block)``."""
        if start_block < 0 or stop_block > self.n_blocks or start_block > stop_block:
            raise AttributionError(
                f"invalid block range [{start_block}, {stop_block}) "
                f"for {self.n_blocks} blocks"
            )
        return int(self.block_offsets[start_block]), int(self.block_offsets[stop_block])

    def credit_range_for_time(self, start_ts: int, end_ts: int) -> tuple[int, int]:
        """Credit-row range with timestamps in ``[start_ts, end_ts)``."""
        lo = int(np.searchsorted(self.timestamps, start_ts, side="left"))
        hi = int(np.searchsorted(self.timestamps, end_ts, side="left"))
        return lo, hi

    def distribution(self, lo: int, hi: int) -> np.ndarray:
        """Per-entity weight totals over credit rows ``[lo, hi)``.

        Returns only the non-zero totals (the distribution the metrics
        consume); entity identity is dropped.
        """
        totals = np.bincount(
            self.entity_ids[lo:hi],
            weights=self.weights[lo:hi],
            minlength=self.n_entities,
        )
        return totals[totals > 0]

    def distribution_with_entities(self, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
        """Like :meth:`distribution` but also returns the entity ids."""
        totals = np.bincount(
            self.entity_ids[lo:hi],
            weights=self.weights[lo:hi],
            minlength=self.n_entities,
        )
        ids = np.flatnonzero(totals > 0)
        return ids, totals[ids]

    def top_entities(self, lo: int, hi: int, k: int = 10) -> list[tuple[str, float]]:
        """The ``k`` heaviest entities over ``[lo, hi)`` as (name, weight)."""
        ids, totals = self.distribution_with_entities(lo, hi)
        order = np.argsort(-totals, kind="stable")[:k]
        return [(self.entity_names[int(ids[i])], float(totals[i])) for i in order]


def attribute(
    chain: Chain,
    policy: str = "per-address",
    registry: PoolRegistry | None = None,
) -> Credits:
    """Apply an attribution ``policy`` to ``chain`` and return its credits."""
    if policy not in ATTRIBUTION_POLICIES:
        raise AttributionError(
            f"unknown policy {policy!r}; expected one of {ATTRIBUTION_POLICIES}"
        )
    if policy == "pool" and registry is None:
        raise AttributionError("the 'pool' policy requires a PoolRegistry")
    counts = chain.producer_counts()
    n = chain.n_blocks
    if policy == "per-address":
        return Credits(
            chain_name=chain.spec.name,
            policy=policy,
            entity_ids=chain.producer_ids.copy(),
            weights=np.ones(chain.n_credits, dtype=np.float64),
            block_positions=np.repeat(np.arange(n, dtype=np.int64), counts),
            timestamps=np.repeat(chain.timestamps, counts),
            block_offsets=chain.offsets.copy(),
            entity_names=list(chain.producer_names),
        )
    if policy == "fractional":
        weights = np.repeat(1.0 / counts.astype(np.float64), counts)
        return Credits(
            chain_name=chain.spec.name,
            policy=policy,
            entity_ids=chain.producer_ids.copy(),
            weights=weights,
            block_positions=np.repeat(np.arange(n, dtype=np.int64), counts),
            timestamps=np.repeat(chain.timestamps, counts),
            block_offsets=chain.offsets.copy(),
            entity_names=list(chain.producer_names),
        )
    first_ids = chain.producer_ids[chain.offsets[:-1]]
    if policy == "first-address":
        entity_ids = first_ids.copy()
        entity_names = list(chain.producer_names)
    else:  # pool
        remap = np.empty(len(chain.producer_names), dtype=np.int64)
        entity_names = []
        seen: dict[str, int] = {}
        for pid, name in enumerate(chain.producer_names):
            entity = registry.pool_of(name)
            eid = seen.get(entity)
            if eid is None:
                eid = len(seen)
                seen[entity] = eid
                entity_names.append(entity)
            remap[pid] = eid
        entity_ids = remap[first_ids]
    return Credits(
        chain_name=chain.spec.name,
        policy=policy,
        entity_ids=entity_ids,
        weights=np.ones(n, dtype=np.float64),
        block_positions=np.arange(n, dtype=np.int64),
        timestamps=chain.timestamps.copy(),
        block_offsets=np.arange(n + 1, dtype=np.int64),
        entity_names=entity_names,
    )
