"""The measurement engine.

Binds a chain's credits to metrics and window families:

>>> from repro.core import MeasurementEngine
>>> from repro.simulation import simulate_bitcoin_2019
>>> engine = MeasurementEngine.from_chain(simulate_bitcoin_2019())  # doctest: +SKIP
>>> daily_gini = engine.measure_calendar("gini", "day")             # doctest: +SKIP
>>> weekly_sliding = engine.measure_sliding("entropy", size=1008)   # doctest: +SKIP
"""

from __future__ import annotations

import logging
from typing import Sequence

import numpy as np

from repro import obs
from repro.chain.attribution import Credits, attribute
from repro.chain.chain import Chain
from repro.chain.pools import PoolRegistry
from repro.core.series import MeasurementSeries
from repro.errors import MeasurementError
from repro.metrics.base import DistributionBatch, Metric, compute_batch, get_metric
from repro.parallel import WorkerPool, resolve_workers, shard_ranges
from repro.parallel import work as _work
from repro.windows.base import BlockWindow, TimeWindow, Window
from repro.windows.fixed import FixedCalendarWindows
from repro.windows.sliding import SlidingBlockWindows
from repro.windows.timesliding import SlidingTimeWindows

logger = logging.getLogger(__name__)


class MeasurementEngine:
    """Computes decentralization series over one chain's credits."""

    #: How many (size, step) sliding batches to keep per engine.
    _SLIDING_CACHE_SLOTS = 8

    def __init__(
        self,
        credits: Credits,
        quality: dict | None = None,
        workers: int | str | None = "auto",
    ) -> None:
        self.credits = credits
        #: Ingest data-quality report stamped onto every series this
        #: engine produces (``None`` for a clean/direct ingest).
        self.quality = quality
        #: Default worker count for the batched sweeps.  ``"auto"`` means
        #: one worker per core, which on a single-core host resolves to 1
        #: — the serial fast path, bit-for-bit the pre-parallel code.
        #: Parallel merges are byte-identical to serial regardless (see
        #: ``docs/PARALLELISM.md``), so this only changes wall clock.
        self.workers = resolve_workers(workers)
        # (size, step) -> (batch, indices, labels, skipped); lets the figure
        # suite evaluate gini/entropy/nakamoto over one shared sweep.
        self._sliding_cache: dict[tuple[int, int], tuple] = {}

    @classmethod
    def from_chain(
        cls,
        chain: Chain,
        policy: str = "per-address",
        registry: PoolRegistry | None = None,
        quality: dict | None = None,
        workers: int | str | None = "auto",
    ) -> "MeasurementEngine":
        """Attribute ``chain`` under ``policy`` and wrap the credits.

        ``workers`` feeds both the attribution pass (sharded across block
        ranges when >= 2) and the engine's sweep default.
        """
        return cls(
            attribute(chain, policy=policy, registry=registry, workers=workers),
            quality=quality,
            workers=workers,
        )

    def _resolve_workers(self, workers: int | str | None) -> int:
        """Per-call worker count: ``None`` falls back to the engine default."""
        if workers is None:
            return self.workers
        return resolve_workers(workers)

    # -- generic measurement -----------------------------------------------------

    def measure(
        self,
        metric: str | Metric,
        windows: Sequence[Window],
        window_desc: str | None = None,
    ) -> MeasurementSeries:
        """Compute ``metric`` over each window; empty windows are skipped.

        This is the reference per-window loop: it recomputes each window's
        distribution from its credit slice and dispatches one metric call
        per window.  :meth:`measure_many` and :meth:`measure_sliding` build
        on faster batched/incremental paths that must agree with it.
        """
        resolved = get_metric(metric) if isinstance(metric, str) else metric
        indices: list[int] = []
        labels: list[str] = []
        values: list[float] = []
        skipped = 0
        with obs.span(
            "engine.measure", metric=resolved.name, windows=len(windows)
        ):
            for window in windows:
                lo, hi = self._credit_range(window)
                if hi <= lo:
                    skipped += 1
                    continue
                distribution = self.credits.distribution(lo, hi)
                indices.append(window.index)
                labels.append(window.label)
                values.append(float(resolved.compute(distribution)))
        return MeasurementSeries(
            chain_name=self.credits.chain_name,
            metric_name=resolved.name,
            window_desc=window_desc or _describe(windows),
            indices=np.asarray(indices, dtype=np.int64),
            labels=tuple(labels),
            values=np.asarray(values, dtype=np.float64),
            skipped=skipped,
            quality=self.quality,
        )

    def measure_many(
        self,
        metrics: Sequence[str | Metric],
        windows: Sequence[Window],
        window_desc: str | None = None,
        workers: int | str | None = None,
    ) -> dict[str, MeasurementSeries]:
        """Compute several metrics over one window sweep.

        Each window's distribution is built exactly once and every metric
        is evaluated over the whole sweep at once through
        :func:`~repro.metrics.base.compute_batch`, so metrics with
        vectorized kernels share a single sort per window.  Returns one
        series per metric, keyed by metric name.

        With ``workers`` >= 2 (``None`` uses the engine default) the
        per-window distribution builds are sharded across a
        :class:`~repro.parallel.WorkerPool` and gathered in window order;
        each worker runs the identical ``Credits.distribution`` call on
        the identical credit slice, and the batch construction and metric
        kernels stay on the coordinator, so the series are byte-identical
        to the serial sweep.
        """
        resolved = [get_metric(m) if isinstance(m, str) else m for m in metrics]
        n_workers = self._resolve_workers(workers)
        ranges: list[tuple[int, int]] = []
        indices: list[int] = []
        labels: list[str] = []
        skipped = 0
        with obs.span(
            "engine.measure_many",
            metrics=[m.name for m in resolved],
            windows=len(windows),
            workers=n_workers,
        ):
            for window in windows:
                lo, hi = self._credit_range(window)
                if hi <= lo:
                    skipped += 1
                    continue
                ranges.append((lo, hi))
                indices.append(window.index)
                labels.append(window.label)
            if n_workers >= 2 and len(ranges) >= 2:
                shards = shard_ranges(len(ranges), n_workers)
                with WorkerPool(n_workers, payload=self.credits) as pool:
                    parts = pool.map_shards(
                        _work.distribution_shard,
                        [(ranges[s_lo:s_hi],) for s_lo, s_hi in shards],
                    )
                distributions = [d for part in parts for d in part]
            else:
                distributions = [
                    self.credits.distribution(lo, hi) for lo, hi in ranges
                ]
            batch = DistributionBatch.from_distributions(distributions)
        return self._series_from_batch(
            resolved,
            batch,
            indices=np.asarray(indices, dtype=np.int64),
            labels=tuple(labels),
            skipped=skipped,
            window_desc=window_desc or _describe(windows),
        )

    def measure_calendar_many(
        self,
        metrics: Sequence[str | Metric],
        granularity: str,
        workers: int | str | None = None,
    ) -> dict[str, MeasurementSeries]:
        """Several metrics over one fixed-calendar sweep (one pass)."""
        windows = FixedCalendarWindows(granularity).generate()
        return self.measure_many(
            metrics, windows, window_desc=f"fixed-{granularity}", workers=workers
        )

    def measure_sliding_many(
        self,
        metrics: Sequence[str | Metric],
        size: int,
        step: int | None = None,
        workers: int | str | None = None,
    ) -> dict[str, MeasurementSeries]:
        """Several metrics over one sliding sweep.

        Uses the incremental segment-histogram fast path when the family
        decomposes into aligned segments (``size % step == 0``, the
        paper's M = N/2 always does); otherwise falls back to the generic
        batched sweep.  ``workers`` shards the segment-histogram build
        (fast path) or the per-window distributions (fallback); both
        merges are byte-identical to serial.
        """
        generator = SlidingBlockWindows(size, step)
        resolved = [get_metric(m) if isinstance(m, str) else m for m in metrics]
        fast = self._measure_sliding_fast(resolved, generator, workers=workers)
        if fast is not None:
            obs.counter("engine.sliding.fast_path")
            return fast
        obs.counter("engine.sliding.fallback")
        logger.warning(
            "sliding sweep size=%d step=%d fell off the incremental fast path "
            "(size %% step != 0); using the generic per-window sweep",
            generator.size, generator.step,
        )
        windows = generator.generate(self.credits.n_blocks)
        return self.measure_many(
            resolved,
            windows,
            window_desc=f"sliding-{generator.size}/{generator.step}",
            workers=workers,
        )

    def distribution_for(self, window: Window) -> np.ndarray:
        """The per-entity credit distribution inside ``window``."""
        lo, hi = self._credit_range(window)
        return self.credits.distribution(lo, hi)

    def top_entities_for(self, window: Window, k: int = 10) -> list[tuple[str, float]]:
        """The ``k`` heaviest producers inside ``window``."""
        lo, hi = self._credit_range(window)
        return self.credits.top_entities(lo, hi, k)

    # -- the paper's two window families ---------------------------------------------

    def measure_calendar(self, metric: str | Metric, granularity: str) -> MeasurementSeries:
        """Fixed calendar windows (paper §II): ``day``, ``week`` or ``month``."""
        windows = FixedCalendarWindows(granularity).generate()
        return self.measure(metric, windows, window_desc=f"fixed-{granularity}")

    def measure_sliding(
        self,
        metric: str | Metric,
        size: int,
        step: int | None = None,
        workers: int | str | None = None,
    ) -> MeasurementSeries:
        """Count-based sliding windows (paper §III); ``step`` defaults to N/2.

        Routes through the incremental fast path when available (see
        :meth:`measure_sliding_many`); results match the per-window
        reference loop.
        """
        resolved = get_metric(metric) if isinstance(metric, str) else metric
        generator = SlidingBlockWindows(size, step)
        fast = self._measure_sliding_fast([resolved], generator, workers=workers)
        if fast is not None:
            obs.counter("engine.sliding.fast_path")
            return fast[resolved.name]
        obs.counter("engine.sliding.fallback")
        logger.warning(
            "sliding sweep size=%d step=%d fell off the incremental fast path "
            "(size %% step != 0); using the generic per-window sweep",
            generator.size, generator.step,
        )
        windows = generator.generate(self.credits.n_blocks)
        return self.measure(
            resolved, windows, window_desc=f"sliding-{generator.size}/{generator.step}"
        )

    def measure_time_sliding(
        self,
        metric: str | Metric,
        duration: int,
        step: int | None = None,
    ) -> MeasurementSeries:
        """Wall-clock sliding windows (extension; see
        :class:`~repro.windows.timesliding.SlidingTimeWindows`)."""
        generator = SlidingTimeWindows(duration, step)
        windows = generator.generate()
        return self.measure(
            metric,
            windows,
            window_desc=f"time-sliding-{generator.duration}/{generator.step}",
        )

    def measure_time_sliding_many(
        self,
        metrics: Sequence[str | Metric],
        duration: int,
        step: int | None = None,
    ) -> dict[str, MeasurementSeries]:
        """Several metrics over one wall-clock sliding sweep.

        Builds each window's distribution once and shares it across all
        metrics through the batched kernels — the time-window counterpart
        of :meth:`measure_sliding_many`.
        """
        generator = SlidingTimeWindows(duration, step)
        windows = generator.generate()
        return self.measure_many(
            metrics,
            windows,
            window_desc=f"time-sliding-{generator.duration}/{generator.step}",
        )

    # -- internals -------------------------------------------------------------------

    def _measure_sliding_fast(
        self,
        metrics: Sequence[Metric],
        generator: SlidingBlockWindows,
        workers: int | str | None = None,
    ) -> dict[str, MeasurementSeries] | None:
        """The incremental sliding sweep, or ``None`` when it doesn't apply.

        Derives every window's dense histogram from the credits' shared
        segment partials (one attribution pass per step size) and hands
        the whole sweep to the batched metric kernels.  The segment build
        is sharded when ``workers`` >= 2; the cache may be shared across
        worker counts because the merged matrix is bitwise identical.
        """
        size, step = generator.size, generator.step
        n_workers = self._resolve_workers(workers)
        cached = self._sliding_cache.get((size, step))
        if cached is None:
            obs.counter("engine.sliding_cache.miss")
            with obs.span(
                "engine.sliding_sweep", size=size, step=step, workers=n_workers
            ):
                matrix = self.credits.sliding_histograms(
                    size, step, workers=n_workers
                )
            if matrix is None:
                return None
            n_windows = matrix.shape[0]
            offsets = self.credits.block_offsets
            starts = np.arange(n_windows, dtype=np.int64) * step
            nonempty = offsets[starts + size] > offsets[starts]
            indices = np.flatnonzero(nonempty)
            labels = tuple(
                f"blocks[{int(i) * step}:{int(i) * step + size}]" for i in indices
            )
            rows = matrix if bool(nonempty.all()) else matrix[nonempty]
            batch = DistributionBatch.from_dense(rows)
            cached = (batch, indices, labels, int(n_windows - indices.size))
            while len(self._sliding_cache) >= self._SLIDING_CACHE_SLOTS:
                self._sliding_cache.pop(next(iter(self._sliding_cache)))
            self._sliding_cache[(size, step)] = cached
        else:
            obs.counter("engine.sliding_cache.hit")
        batch, indices, labels, skipped = cached
        return self._series_from_batch(
            metrics,
            batch,
            indices=indices,
            labels=labels,
            skipped=skipped,
            window_desc=f"sliding-{size}/{step}",
        )

    def _series_from_batch(
        self,
        metrics: Sequence[Metric],
        batch: DistributionBatch,
        indices: np.ndarray,
        labels: tuple[str, ...],
        skipped: int,
        window_desc: str,
    ) -> dict[str, MeasurementSeries]:
        result: dict[str, MeasurementSeries] = {}
        for metric in metrics:
            values = (
                compute_batch(metric, batch)
                if batch.n_windows
                else np.zeros(0, dtype=np.float64)
            )
            result[metric.name] = MeasurementSeries(
                chain_name=self.credits.chain_name,
                metric_name=metric.name,
                window_desc=window_desc,
                indices=indices,
                labels=labels,
                values=values,
                skipped=skipped,
                quality=self.quality,
            )
        return result

    def _credit_range(self, window: Window) -> tuple[int, int]:
        if isinstance(window, TimeWindow):
            return self.credits.credit_range_for_time(window.start_ts, window.end_ts)
        if isinstance(window, BlockWindow):
            stop = min(window.stop_block, self.credits.n_blocks)
            start = min(window.start_block, stop)
            return self.credits.credit_range_for_blocks(start, stop)
        raise MeasurementError(f"unsupported window type: {type(window).__name__}")


def _describe(windows: Sequence[Window]) -> str:
    if not windows:
        return "empty"
    first = windows[0]
    if isinstance(first, TimeWindow):
        return f"time-windows[{len(windows)}]"
    return f"block-windows[{len(windows)}]"
