"""Semantic analysis and cost-based physical planning for parsed queries.

Two layers live here.  The *semantic* planner walks a
:class:`~repro.sql.astnodes.Select` and produces a :class:`QueryPlan` with
everything the executor needs decided up front: whether the query
aggregates, which aggregate nodes occur where, the output column names,
and validation errors surfaced as :class:`SqlPlanError` before any data
is touched.

The *physical* planner (:func:`optimize`) then turns a :class:`QueryPlan`
into a :class:`PhysicalPlan`: per-table access paths (sequential scan vs.
index equality/range scan), predicate and projection pushdown into the
columnar scans, a join strategy per join node (hash / sort-merge / index
nested-loop, priced by :mod:`repro.sql.cost`), and estimated row counts
for every stage — the ``est=`` column of EXPLAIN / EXPLAIN ANALYZE.
Physical planning is purely advisory: the executor produces byte-identical
results with or without a physical plan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import SqlPlanError
from repro.sql.astnodes import (
    Aggregate,
    Between,
    Binary,
    Case,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    Join,
    Literal,
    Select,
    SelectItem,
    Star,
    SubquerySource,
    TableRef,
    Unary,
)
from repro.sql.cost import (
    PlannerOptions,
    choose_join_strategy,
    estimate_join_rows,
    selectivity,
)
from repro.table.stats import TableStatistics


@dataclass
class QueryPlan:
    """A validated query, ready for execution."""

    select: Select
    is_aggregation: bool
    aggregates: tuple[Aggregate, ...]
    output_names: tuple[str, ...]
    table_names: tuple[str, ...] = field(default_factory=tuple)


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every sub-expression, depth-first."""
    yield expr
    if isinstance(expr, Unary):
        yield from walk(expr.operand)
    elif isinstance(expr, Binary):
        yield from walk(expr.left)
        yield from walk(expr.right)
    elif isinstance(expr, Between):
        yield from walk(expr.operand)
        yield from walk(expr.low)
        yield from walk(expr.high)
    elif isinstance(expr, InList):
        yield from walk(expr.operand)
        for item in expr.items:
            yield from walk(item)
    elif isinstance(expr, IsNull):
        yield from walk(expr.operand)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            yield from walk(arg)
    elif isinstance(expr, Aggregate):
        if expr.argument is not None:
            yield from walk(expr.argument)
    elif isinstance(expr, Case):
        for condition, value in expr.whens:
            yield from walk(condition)
            yield from walk(value)
        if expr.default is not None:
            yield from walk(expr.default)


def find_aggregates(expr: Expr) -> list[Aggregate]:
    """Return the aggregate nodes inside ``expr`` (not descending into them)."""
    found: list[Aggregate] = []

    def visit(node: Expr) -> None:
        if isinstance(node, Aggregate):
            found.append(node)
            return
        for child in _direct_children(node):
            visit(child)

    visit(expr)
    return found


def _direct_children(expr: Expr) -> list[Expr]:
    if isinstance(expr, Unary):
        return [expr.operand]
    if isinstance(expr, Binary):
        return [expr.left, expr.right]
    if isinstance(expr, Between):
        return [expr.operand, expr.low, expr.high]
    if isinstance(expr, InList):
        return [expr.operand, *expr.items]
    if isinstance(expr, IsNull):
        return [expr.operand]
    if isinstance(expr, FunctionCall):
        return list(expr.args)
    if isinstance(expr, Case):
        children: list[Expr] = []
        for condition, value in expr.whens:
            children.extend((condition, value))
        if expr.default is not None:
            children.append(expr.default)
        return children
    return []


def source_tables(
    source: TableRef | SubquerySource | Join,
) -> list[TableRef | SubquerySource]:
    """Flatten a FROM clause into its sources, left to right."""
    if isinstance(source, (TableRef, SubquerySource)):
        return [source]
    return source_tables(source.left) + [source.right]


def plan(select: Select) -> QueryPlan:
    """Validate ``select`` and produce a :class:`QueryPlan`."""
    tables = source_tables(select.source)
    bindings = [t.binding for t in tables]
    if len(set(bindings)) != len(bindings):
        raise SqlPlanError(f"duplicate table binding in FROM: {bindings}")
    for table in tables:
        if isinstance(table, SubquerySource):
            plan(table.select)  # validate derived tables eagerly

    if select.where is not None and find_aggregates(select.where):
        raise SqlPlanError("aggregate functions are not allowed in WHERE")
    for expr in select.group_by:
        if find_aggregates(expr):
            raise SqlPlanError("aggregate functions are not allowed in GROUP BY")

    aggregates: list[Aggregate] = []
    if not isinstance(select.items, Star):
        for item in select.items:
            aggregates.extend(find_aggregates(item.expr))
    if select.having is not None:
        aggregates.extend(find_aggregates(select.having))
    for order in select.order_by:
        aggregates.extend(find_aggregates(order.expr))

    is_aggregation = bool(select.group_by) or bool(aggregates)
    if is_aggregation and isinstance(select.items, Star):
        raise SqlPlanError("SELECT * cannot be combined with GROUP BY or aggregates")
    if select.having is not None and not is_aggregation:
        raise SqlPlanError("HAVING requires GROUP BY or aggregate functions")

    for aggregate in aggregates:
        if aggregate.distinct and aggregate.func != "COUNT":
            raise SqlPlanError(
                f"DISTINCT is only supported inside COUNT, not {aggregate.func}"
            )
        if aggregate.argument is not None and find_aggregates(aggregate.argument):
            raise SqlPlanError("nested aggregate functions are not allowed")

    output_names = _output_names(select)
    deduped: list[Aggregate] = []
    for aggregate in aggregates:
        if aggregate not in deduped:
            deduped.append(aggregate)
    return QueryPlan(
        select=select,
        is_aggregation=is_aggregation,
        aggregates=tuple(deduped),
        output_names=output_names,
        table_names=tuple(
            t.name for t in tables if isinstance(t, TableRef)
        ),
    )


def _output_names(select: Select) -> tuple[str, ...]:
    if isinstance(select.items, Star):
        return ()
    names: list[str] = []
    for i, item in enumerate(select.items):
        names.append(item.alias or _default_name(item, i))
    seen: dict[str, int] = {}
    unique: list[str] = []
    for name in names:
        if name in seen:
            seen[name] += 1
            unique.append(f"{name}_{seen[name]}")
        else:
            seen[name] = 0
            unique.append(name)
    return tuple(unique)


def _default_name(item: SelectItem, index: int) -> str:
    expr = item.expr
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, Aggregate):
        if expr.argument is None:
            return "count"
        if isinstance(expr.argument, ColumnRef):
            return f"{expr.func.lower()}_{expr.argument.name}"
        return expr.func.lower()
    if isinstance(expr, FunctionCall):
        return expr.name.lower()
    if isinstance(expr, Literal):
        return f"literal_{index}"
    return f"col_{index}"


# -- physical planning ---------------------------------------------------------


@dataclass(frozen=True)
class SourceInfo:
    """What the optimizer knows about one catalog table."""

    rows: int
    columns: tuple[str, ...]
    column_kinds: dict[str, str]
    stats: TableStatistics | None = None
    stats_state: str = "absent"  # "fresh" | "stale" | "absent"
    indexes: dict[str, str] = field(default_factory=dict)  # column -> index kind


@dataclass
class ScanPlan:
    """Access path for one base table in FROM."""

    binding: str
    table_name: str
    access: str = "seq"  # "seq" | "index-eq" | "index-range"
    index_column: str | None = None
    index_kind: str | None = None
    index_value: Any = None
    index_low: Any = None
    index_high: Any = None
    index_include_low: bool = True
    index_include_high: bool = True
    pushed: tuple[Expr, ...] = ()  # conjuncts evaluated right after the access path
    columns: tuple[str, ...] | None = None  # projection pushdown; None keeps all
    base_rows: int = 0
    access_est_rows: int = 0  # after the access path, before pushed filters
    est_rows: int = 0  # after access path and pushed filters
    stats_state: str = "absent"

    @property
    def is_trivial(self) -> bool:
        """True when this plan degenerates to the unoptimized full scan."""
        return self.access == "seq" and not self.pushed and self.columns is None

    def describe(self) -> str:
        """Human-readable access-path summary for EXPLAIN."""
        parts = [self.table_name]
        if self.access == "index-eq":
            parts.append(f"via {self.index_column}[{self.index_kind}] = {self.index_value!r}")
        elif self.access == "index-range":
            low = "-inf" if self.index_low is None else repr(self.index_low)
            high = "+inf" if self.index_high is None else repr(self.index_high)
            left = "[" if self.index_include_low else "("
            right = "]" if self.index_include_high else ")"
            parts.append(f"via {self.index_column}[{self.index_kind}] {left}{low}, {high}{right}")
        if self.columns is not None:
            parts.append(f"cols={len(self.columns)}")
        parts.append(f"stats={self.stats_state}")
        return " ".join(parts)


@dataclass
class JoinPlan:
    """Physical strategy and cardinality estimate for one join node."""

    strategy: str  # "hash" | "sort_merge" | "index"
    est_rows: int
    cost: float
    index_table: str | None = None  # catalog name owning the probe index
    index_column: str | None = None

    def describe(self) -> str:
        return f"strategy={self.strategy} cost={self.cost:.0f}"


@dataclass
class PhysicalPlan:
    """The optimizer's decisions for one SELECT."""

    options: PlannerOptions
    scans: dict[str, ScanPlan] = field(default_factory=dict)  # by binding
    subquery_rows: dict[str, int] = field(default_factory=dict)  # by binding
    joins: dict[Join, JoinPlan] = field(default_factory=dict)
    residual_where: Expr | None = None
    estimates: dict[str, int] = field(default_factory=dict)


def split_conjuncts(expr: Expr) -> list[Expr]:
    """Flatten an AND tree into its conjuncts, left to right."""
    if isinstance(expr, Binary) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def and_combine(conjuncts: list[Expr]) -> Expr | None:
    """Left-associative AND of ``conjuncts`` (None when empty)."""
    if not conjuncts:
        return None
    combined = conjuncts[0]
    for conjunct in conjuncts[1:]:
        combined = Binary("AND", combined, conjunct)
    return combined


def optimize(
    query_plan: QueryPlan,
    source_info: Callable[[TableRef], SourceInfo | None],
    options: PlannerOptions | None = None,
) -> PhysicalPlan | None:
    """Produce a :class:`PhysicalPlan` for ``query_plan``.

    ``source_info`` maps each base :class:`TableRef` to its
    :class:`SourceInfo`; returning None for any table (e.g. it is not in
    the catalog) aborts optimization so the executor's legacy path can
    surface its usual error.
    """
    options = options or PlannerOptions()
    select = query_plan.select
    sources = source_tables(select.source)
    infos: dict[str, SourceInfo | None] = {}
    physical = PhysicalPlan(options=options)
    for source in sources:
        if isinstance(source, TableRef):
            info = source_info(source)
            if info is None:
                return None
            infos[source.binding] = info
        else:
            inner_plan = plan(source.select)
            inner_physical = optimize(inner_plan, source_info, options)
            est = inner_physical.estimates.get("final", 0) if inner_physical else 0
            physical.subquery_rows[source.binding] = est
            if isinstance(source.select.items, Star):
                # Output columns unknown before execution; treat as opaque.
                infos[source.binding] = None
            else:
                infos[source.binding] = SourceInfo(
                    rows=est,
                    columns=inner_plan.output_names,
                    column_kinds={},
                    stats_state="absent",
                )

    known_columns: dict[str, tuple[str, ...] | None] = {
        binding: (info.columns if info is not None else None)
        for binding, info in infos.items()
    }
    nullable = _nullable_bindings(select.source)

    def attribute(ref: ColumnRef) -> str | None:
        return _attribute_ref(ref, known_columns)

    def stats_for(ref: ColumnRef):
        binding = attribute(ref)
        if binding is None:
            return None
        info = infos.get(binding)
        if info is None or info.stats is None:
            return None
        return info.stats.column(ref.name)

    # -- predicate pushdown ---------------------------------------------------
    table_bindings = {s.binding for s in sources if isinstance(s, TableRef)}
    pushed_by_binding: dict[str, list[Expr]] = {}
    residual: list[Expr] = []
    if select.where is not None:
        conjuncts = split_conjuncts(select.where)
        if options.predicate_pushdown:
            for conjunct in conjuncts:
                binding = _conjunct_binding(conjunct, attribute)
                if binding in table_bindings and binding not in nullable:
                    pushed_by_binding.setdefault(binding, []).append(conjunct)
                else:
                    residual.append(conjunct)
        else:
            residual = conjuncts
    physical.residual_where = and_combine(residual)

    # -- projection pushdown --------------------------------------------------
    needed = (
        _needed_columns(select, query_plan, known_columns)
        if options.projection_pushdown
        else None
    )

    # -- per-table access paths -----------------------------------------------
    for source in sources:
        if not isinstance(source, TableRef):
            continue
        binding = source.binding
        info = infos[binding]
        assert info is not None
        pushed = pushed_by_binding.get(binding, [])
        scan = ScanPlan(
            binding=binding,
            table_name=source.name,
            base_rows=info.rows,
            access_est_rows=info.rows,
            stats_state=info.stats_state,
        )
        if options.index_scan and info.indexes and pushed:
            chosen = _choose_index(pushed, binding, info, stats_for)
            if chosen is not None:
                index_conjunct, updates, access_est = chosen
                for key, value in updates.items():
                    setattr(scan, key, value)
                scan.access_est_rows = access_est
                pushed = [c for c in pushed if c is not index_conjunct]
        scan.pushed = tuple(pushed)
        combined_sel = 1.0
        for conjunct in pushed_by_binding.get(binding, []):
            combined_sel *= selectivity(conjunct, stats_for)
        scan.est_rows = max(int(round(info.rows * combined_sel)), 0)
        if scan.access != "seq":
            scan.est_rows = min(scan.est_rows, scan.access_est_rows)
        if needed is not None and info.columns:
            keep = tuple(c for c in info.columns if c in needed.get(binding, set()))
            if not keep:
                keep = (info.columns[0],)
            if set(keep) != set(info.columns):
                scan.columns = keep
        physical.scans[binding] = scan

    # -- join strategies and cardinalities ------------------------------------
    source_est = _walk_joins(select.source, physical, infos, attribute, options)

    # -- stage estimates ------------------------------------------------------
    estimates = physical.estimates
    estimates["source"] = source_est
    current = source_est
    if physical.residual_where is not None:
        current = max(int(round(current * selectivity(physical.residual_where, stats_for))), 0)
        estimates["filter"] = current
    if query_plan.is_aggregation:
        current = _estimate_groups(select, current, stats_for)
        if select.having is not None:
            current = max(int(round(current * selectivity(select.having, stats_for))), 0)
        estimates["aggregate"] = current
    estimates["project"] = current
    if select.distinct:
        estimates["distinct"] = current
    if select.order_by:
        estimates["sort"] = current
    if select.limit is not None or select.offset is not None:
        start = select.offset or 0
        remaining = max(current - start, 0)
        if select.limit is not None:
            remaining = min(remaining, select.limit)
        current = remaining
        estimates["limit"] = current
    estimates["final"] = current
    return physical


def _nullable_bindings(source: TableRef | SubquerySource | Join) -> set[str]:
    """Bindings on the preserved-NULL side of a LEFT JOIN (no pushdown)."""
    nullable: set[str] = set()

    def visit(node: TableRef | SubquerySource | Join) -> None:
        if isinstance(node, Join):
            visit(node.left)
            if node.kind == "left":
                nullable.add(node.right.binding)

    visit(source)
    return nullable


def _attribute_ref(
    ref: ColumnRef, known_columns: dict[str, tuple[str, ...] | None]
) -> str | None:
    """Find the unique binding owning ``ref``, or None when unresolvable."""
    if ref.table is not None:
        if ref.table not in known_columns:
            return None
        columns = known_columns[ref.table]
        if columns is not None and ref.name not in columns:
            return None
        return ref.table
    if any(columns is None for columns in known_columns.values()):
        return None  # a source with unknown columns could own this ref
    owners = [
        binding
        for binding, columns in known_columns.items()
        if columns is not None and ref.name in columns
    ]
    return owners[0] if len(owners) == 1 else None


def _conjunct_binding(
    conjunct: Expr, attribute: Callable[[ColumnRef], str | None]
) -> str | None:
    """The single binding a conjunct touches, or None when not pushable."""
    refs = [node for node in walk(conjunct) if isinstance(node, ColumnRef)]
    if not refs:
        return None
    bindings = {attribute(ref) for ref in refs}
    if len(bindings) != 1 or None in bindings:
        return None
    return next(iter(bindings))


_NUMERIC_KINDS = ("int", "float", "bool")


def _literal_compatible(kind: str | None, value: Any) -> bool:
    """Whether an index over a ``kind`` column can be probed with ``value``."""
    if value is None:
        return False
    if kind == "str":
        return isinstance(value, str)
    if kind in _NUMERIC_KINDS:
        return isinstance(value, (bool, int, float)) and not isinstance(value, str)
    return False


def _choose_index(
    pushed: list[Expr],
    binding: str,
    info: SourceInfo,
    stats_for: Callable[[ColumnRef], Any],
) -> tuple[Expr, dict[str, Any], int] | None:
    """Pick the most selective index-servable conjunct for this scan.

    Returns ``(conjunct, scan-field updates, estimated rows)`` or None when
    a full scan is preferable (no candidate, or none selective enough).
    """
    best: tuple[int, int, Expr, dict[str, Any]] | None = None
    for order, conjunct in enumerate(pushed):
        updates = _index_candidate(conjunct, binding, info)
        if updates is None:
            continue
        est = max(int(round(info.rows * selectivity(conjunct, stats_for))), 0)
        if best is None or (est, order) < (best[0], best[1]):
            best = (est, order, conjunct, updates)
    if best is None:
        return None
    est, _, conjunct, updates = best
    if est >= info.rows * 0.5:
        return None  # not selective enough to beat a vectorized full scan
    return conjunct, updates, est


def _index_candidate(
    conjunct: Expr, binding: str, info: SourceInfo
) -> dict[str, Any] | None:
    """Scan-plan updates if ``conjunct`` can be answered by an index."""

    def owned(ref: Expr) -> str | None:
        if not isinstance(ref, ColumnRef):
            return None
        if ref.table is not None and ref.table != binding:
            return None
        if ref.name not in info.columns:
            return None
        return ref.name

    if isinstance(conjunct, Binary) and conjunct.op in ("=", "<", "<=", ">", ">="):
        column, value, flipped = None, None, False
        if isinstance(conjunct.right, Literal):
            column, value = owned(conjunct.left), conjunct.right.value
        elif isinstance(conjunct.left, Literal):
            column, value, flipped = owned(conjunct.right), conjunct.left.value, True
        if column is None:
            return None
        index_kind = info.indexes.get(column)
        if index_kind is None or not _literal_compatible(info.column_kinds.get(column), value):
            return None
        if conjunct.op == "=":
            return {
                "access": "index-eq",
                "index_column": column,
                "index_kind": index_kind,
                "index_value": value,
            }
        if index_kind != "sorted":
            return None
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[conjunct.op] if flipped else conjunct.op
        updates: dict[str, Any] = {
            "access": "index-range",
            "index_column": column,
            "index_kind": index_kind,
        }
        if op in ("<", "<="):
            updates["index_high"] = value
            updates["index_include_high"] = op == "<="
        else:
            updates["index_low"] = value
            updates["index_include_low"] = op == ">="
        return updates
    if isinstance(conjunct, Between) and not conjunct.negated:
        if not (isinstance(conjunct.low, Literal) and isinstance(conjunct.high, Literal)):
            return None
        column = owned(conjunct.operand)
        if column is None or info.indexes.get(column) != "sorted":
            return None
        kind = info.column_kinds.get(column)
        if not (
            _literal_compatible(kind, conjunct.low.value)
            and _literal_compatible(kind, conjunct.high.value)
        ):
            return None
        return {
            "access": "index-range",
            "index_column": column,
            "index_kind": "sorted",
            "index_low": conjunct.low.value,
            "index_high": conjunct.high.value,
        }
    return None


def _needed_columns(
    select: Select,
    query_plan: QueryPlan,
    known_columns: dict[str, tuple[str, ...] | None],
) -> dict[str, set[str]] | None:
    """Columns each binding must provide, or None to disable pruning.

    Pruning is disabled for ``SELECT *`` and whenever any referenced
    column cannot be attributed to exactly one binding (ambiguous or
    unknown references keep their original error behavior; aliases used
    in GROUP BY / HAVING / ORDER BY are skipped because their underlying
    expressions are collected from the select list).
    """
    if isinstance(select.items, Star):
        return None
    aliases = set(query_plan.output_names)
    refs: list[ColumnRef] = []
    alias_refs: list[ColumnRef] = []

    def collect(expr: Expr, allow_aliases: bool) -> None:
        for node in walk(expr):
            if isinstance(node, ColumnRef):
                target = alias_refs if allow_aliases else refs
                target.append(node)

    for item in select.items:
        collect(item.expr, allow_aliases=False)
    if select.where is not None:
        collect(select.where, allow_aliases=False)
    for expr in select.group_by:
        collect(expr, allow_aliases=True)
    if select.having is not None:
        collect(select.having, allow_aliases=True)
    for order in select.order_by:
        collect(order.expr, allow_aliases=True)
    join_refs = _join_key_refs(select.source)

    needed: dict[str, set[str]] = {}
    for ref in refs + join_refs:
        binding = _attribute_ref(ref, known_columns)
        if binding is None:
            return None
        needed.setdefault(binding, set()).add(ref.name)
    for ref in alias_refs:
        binding = _attribute_ref(ref, known_columns)
        if binding is None:
            if ref.table is None and ref.name in aliases:
                continue  # output alias; its expression is already collected
            return None
        needed.setdefault(binding, set()).add(ref.name)
    return needed


def _join_key_refs(source: TableRef | SubquerySource | Join) -> list[ColumnRef]:
    refs: list[ColumnRef] = []

    def visit(node: TableRef | SubquerySource | Join) -> None:
        if isinstance(node, Join):
            visit(node.left)
            refs.append(node.on_left)
            refs.append(node.on_right)

    visit(source)
    return refs


def _walk_joins(
    source: TableRef | SubquerySource | Join,
    physical: PhysicalPlan,
    infos: dict[str, SourceInfo | None],
    attribute: Callable[[ColumnRef], str | None],
    options: PlannerOptions,
) -> int:
    """Estimate cardinality bottom-up and pick a strategy per join node."""
    if isinstance(source, TableRef):
        return physical.scans[source.binding].est_rows
    if isinstance(source, SubquerySource):
        return physical.subquery_rows.get(source.binding, 0)
    left_rows = _walk_joins(source.left, physical, infos, attribute, options)
    right_binding = source.right.binding
    if isinstance(source.right, TableRef):
        right_rows = physical.scans[right_binding].est_rows
    else:
        right_rows = physical.subquery_rows.get(right_binding, 0)
    left_distinct = _key_distinct(source.on_left, infos, attribute)
    right_distinct = _key_distinct(source.on_right, infos, attribute)
    est = estimate_join_rows(
        left_rows, right_rows, source.kind, left_distinct, right_distinct
    )
    index_kind = _join_index_kind(source, physical, infos)
    strategy, cost = choose_join_strategy(options, left_rows, right_rows, index_kind)
    join_plan = JoinPlan(strategy=strategy, est_rows=est, cost=cost)
    if strategy == "index" and isinstance(source.right, TableRef):
        join_plan.index_table = source.right.name
        join_plan.index_column = source.on_right.name
    physical.joins[source] = join_plan
    return est


def _key_distinct(
    ref: ColumnRef,
    infos: dict[str, SourceInfo | None],
    attribute: Callable[[ColumnRef], str | None],
) -> int | None:
    binding = attribute(ref)
    if binding is None:
        return None
    info = infos.get(binding)
    if info is None or info.stats is None:
        return None
    column = info.stats.column(ref.name)
    return column.n_distinct if column is not None else None


def _join_index_kind(
    join: Join, physical: PhysicalPlan, infos: dict[str, SourceInfo | None]
) -> str | None:
    """Kind of a usable right-side join-key index, or None.

    Index nested-loop probes base-table row positions, so the right side
    must be a bare table scanned without an index access path or pushed
    filters (column pruning keeps row positions valid).
    """
    if not isinstance(join.right, TableRef):
        return None
    scan = physical.scans.get(join.right.binding)
    if scan is None or scan.access != "seq" or scan.pushed:
        return None
    info = infos.get(join.right.binding)
    if info is None:
        return None
    key = join.on_right.name
    if join.on_right.table is not None and join.on_right.table != join.right.binding:
        return None
    return info.indexes.get(key)


def _estimate_groups(
    select: Select, input_rows: int, stats_for: Callable[[ColumnRef], Any]
) -> int:
    """Estimated group count: product of key distincts, capped at the input."""
    if not select.group_by:
        return 1
    if input_rows == 0:
        return 0
    product = 1
    for expr in select.group_by:
        if isinstance(expr, ColumnRef):
            stats = stats_for(expr)
            distinct = stats.n_distinct if stats is not None else None
        else:
            distinct = None
        if distinct is None:
            distinct = max(int(math.isqrt(input_rows)), 1)
        product = min(product * max(distinct, 1), input_rows)
    return max(min(product, input_rows), 1)
