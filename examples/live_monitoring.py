"""Streaming monitoring: catching the day-14 anomaly "in a timely manner".

The paper's closing argument for sliding windows is timeliness.  This
example replays the first quarter of simulated Bitcoin 2019 block by
block through a :class:`~repro.core.streaming.StreamingMonitor`
(window = 144 blocks, stride = 72, the paper's N and M) with alert rules
on all three metrics, and prints the alert log an operator would have
seen — the Jan 14 multi-coinbase anomaly fires within half a day of
blocks instead of waiting for a week- or month-end batch measurement.

Run with::

    python examples/live_monitoring.py
"""

from repro import simulate_bitcoin_2019
from repro.core import StreamingMonitor, ThresholdRule
from repro.util.timeutils import day_index
from repro.viz import sparkline


def main() -> None:
    chain = simulate_bitcoin_2019(seed=2019)
    quarter = chain.slice_by_time(
        int(chain.timestamps[0]), int(chain.timestamps[0]) + 90 * 86_400
    )
    monitor = StreamingMonitor(window_size=144, stride=72)
    monitor.add_rule(ThresholdRule("entropy", above=5.0))
    monitor.add_rule(ThresholdRule("gini", below=0.40))
    monitor.add_rule(ThresholdRule("nakamoto", below=3, above=20))

    print(f"replaying {quarter.n_blocks} blocks (Q1 2019) ...")
    alert_log = []
    for i in range(quarter.n_blocks):
        start, stop = quarter.offsets[i], quarter.offsets[i + 1]
        producers = [
            quarter.producer_names[pid] for pid in quarter.producer_ids[start:stop]
        ]
        for alert in monitor.push(producers):
            day = day_index(int(quarter.timestamps[i]))
            alert_log.append((day, alert))

    print(f"\n{len(alert_log)} alerts fired:")
    last_day = None
    for day, alert in alert_log:
        marker = f"day {day + 1:>3d}" if day != last_day else "       "
        print(f"  {marker}  {alert}  (rule: {alert.rule.metric} "
              f"below={alert.rule.below} above={alert.rule.above})")
        last_day = day

    entropy_history = [v for _, v in monitor.history("entropy")]
    print(f"\nentropy over Q1 (one point per 72 blocks): "
          f"{sparkline(entropy_history, width=60)}")
    day14_alerts = [a for d, a in alert_log if d == 13]
    print(
        f"\nthe paper's day-14 anomaly produced {len(day14_alerts)} alert(s) "
        "while the day was still in progress — that is the timeliness the "
        "sliding-window methodology buys."
    )


if __name__ == "__main__":
    main()
