"""Fig. 6 — Nakamoto coefficient measured in Ethereum using fixed windows.

Paper claims: quite stable at every granularity, fluctuating only between
2 and 3.
"""

import numpy as np

from _bench_util import report_series
from repro.analysis.figures import figure_6


def test_fig06_eth_nakamoto_fixed(benchmark, eth):
    figure = benchmark(figure_6, eth)
    report_series(figure.title, figure.series)

    for label in ("day", "week", "month"):
        series = figure.series[label]
        assert set(np.unique(series.values)) <= {2.0, 3.0}, label
    day = figure.series["day"]
    assert {2.0, 3.0} <= set(np.unique(day.values))
