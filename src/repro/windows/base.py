"""Window value types.

A window is either time-bounded (calendar windows over timestamps) or
block-bounded (count windows over block positions).  Both carry a label for
plotting and an index within their series.  The measurement engine
dispatches on the concrete type to find the credit rows a window covers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import WindowError


@dataclass(frozen=True)
class TimeWindow:
    """A half-open timestamp interval ``[start_ts, end_ts)``."""

    index: int
    label: str
    start_ts: int
    end_ts: int

    def __post_init__(self) -> None:
        if self.end_ts <= self.start_ts:
            raise WindowError(
                f"window {self.label!r}: end_ts must exceed start_ts "
                f"({self.start_ts} >= {self.end_ts})"
            )

    @property
    def duration(self) -> int:
        """Window length in seconds."""
        return self.end_ts - self.start_ts


@dataclass(frozen=True)
class BlockWindow:
    """A half-open block-position interval ``[start_block, stop_block)``."""

    index: int
    label: str
    start_block: int
    stop_block: int

    def __post_init__(self) -> None:
        if self.start_block < 0:
            raise WindowError(f"window {self.label!r}: start_block must be >= 0")
        if self.stop_block <= self.start_block:
            raise WindowError(
                f"window {self.label!r}: stop_block must exceed start_block"
            )

    @property
    def size(self) -> int:
        """Number of blocks in the window."""
        return self.stop_block - self.start_block

    def overlap(self, other: "BlockWindow") -> int:
        """Number of block positions shared with ``other``."""
        lo = max(self.start_block, other.start_block)
        hi = min(self.stop_block, other.stop_block)
        return max(0, hi - lo)


Window = Union[TimeWindow, BlockWindow]
