"""Tests for the SLO burn-rate engine (:mod:`repro.obs.slo`).

Burn-rate math runs against a :class:`TimeSeriesStore` with injected
clocks so every window boundary is exact; file loading covers JSON
always and TOML when the interpreter ships ``tomllib``.
"""

import json

import pytest

from repro.errors import ValidationError
from repro.obs.alerts import AlertManager
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_BURN_WINDOWS,
    SLO,
    BurnWindow,
    SLOEngine,
    _counter_delta,
    load_slo_file,
    parse_slo_config,
)
from repro.obs.timeseries import TimeSeriesStore

NOW = 100_000.0


def store_at(now=NOW):
    return TimeSeriesStore(clock=lambda: now)


class TestBurnWindow:
    def test_validation(self):
        with pytest.raises(ValidationError):
            BurnWindow("bad", 0.0, 60.0, 1.0)
        with pytest.raises(ValidationError):
            BurnWindow("bad", 60.0, 60.0, 1.0)
        with pytest.raises(ValidationError):
            BurnWindow("bad", 60.0, 120.0, 0.0)

    def test_defaults_are_the_sre_pairs(self):
        fast, slow = DEFAULT_BURN_WINDOWS
        assert (fast.short, fast.long, fast.factor) == (300.0, 3600.0, 14.4)
        assert fast.severity == "page"
        assert (slow.short, slow.long, slow.factor) == (21600.0, 259200.0, 1.0)


class TestSLOValidation:
    def test_bad_type_target_op(self):
        with pytest.raises(ValidationError):
            SLO("s", "nope", 0.99)
        with pytest.raises(ValidationError):
            SLO("s", "availability", 1.0)
        with pytest.raises(ValidationError):
            SLO("s", "metric", 0.99, series="m", op="~=")
        with pytest.raises(ValidationError):
            SLO("s", "metric", 0.99)  # metric needs a series
        with pytest.raises(ValidationError):
            SLO("s", "availability", 0.99, windows=())

    def test_budget(self):
        assert SLO("s", "availability", 0.99).budget == pytest.approx(0.01)


class TestBadFraction:
    def test_metric_counts_violations_of_good_condition(self):
        store = store_at()
        # 1 in 4 windows below the nakamoto floor.
        for i, v in enumerate([4.0, 2.0, 4.0, 4.0]):
            store.record("nakamoto", v, ts=NOW - 40 + i * 10)
        slo = SLO("drift", "metric", 0.99, series="nakamoto", op=">=", value=3)
        assert slo.bad_fraction(store, NOW - 60, NOW) == pytest.approx(0.25)

    def test_latency_counts_slow_observations(self):
        store = store_at()
        for i, v in enumerate([0.1, 0.4, 0.1, 0.1]):
            store.record("lat", v, ts=NOW - 40 + i * 10)
        slo = SLO("lat", "latency", 0.99, series="lat", value=0.25)
        assert slo.bad_fraction(store, NOW - 60, NOW) == pytest.approx(0.25)

    def test_availability_uses_counter_deltas(self):
        store = store_at()
        # total: 100 -> 200 (delta 100); errors: 5 -> 10 (delta 5).
        store.record("serve.http_requests_total", 100.0, ts=NOW - 50)
        store.record("serve.http_requests_total", 200.0, ts=NOW - 10)
        store.record("serve.http_errors_total", 5.0, ts=NOW - 50)
        store.record("serve.http_errors_total", 10.0, ts=NOW - 10)
        slo = SLO("avail", "availability", 0.99)
        assert slo.bad_fraction(store, NOW - 60, NOW) == pytest.approx(0.05)

    def test_no_data_is_none(self):
        store = store_at()
        slo = SLO("drift", "metric", 0.99, series="nakamoto", value=3)
        assert slo.bad_fraction(store, NOW - 60, NOW) is None
        assert SLO("a", "availability", 0.99).bad_fraction(store, NOW - 60, NOW) is None


class TestCounterDelta:
    def test_single_point_falls_back_to_pre_window_baseline(self):
        store = store_at()
        store.record("c", 40.0, ts=NOW - 500)  # before the window
        store.record("c", 50.0, ts=NOW - 10)  # the only in-window sample
        assert _counter_delta(store, "c", NOW - 60, NOW) == pytest.approx(10.0)

    def test_single_point_without_history_counts_from_zero(self):
        store = store_at()
        store.record("c", 50.0, ts=NOW - 10)
        assert _counter_delta(store, "c", NOW - 60, NOW) == pytest.approx(50.0)

    def test_no_points_is_none(self):
        assert _counter_delta(store_at(), "c", NOW - 60, NOW) is None


def drift_slo(**kwargs):
    defaults = dict(series="nakamoto", op=">=", value=3.0)
    defaults.update(kwargs)
    return SLO("drift", "metric", 0.99, **defaults)


class TestSLOEngine:
    def fill(self, store, bad_every=2, span=3600.0, step=30.0):
        """Half (or 1/bad_every) of the points violate nakamoto >= 3."""
        t = NOW - span
        i = 0
        while t <= NOW:
            store.record("nakamoto", 2.0 if i % bad_every == 0 else 4.0, ts=t)
            t += step
            i += 1

    def test_sustained_breach_trips_both_fast_windows(self):
        store = store_at()
        self.fill(store)  # 50% bad for the last hour -> burn 50x budget
        engine = SLOEngine([drift_slo()], store, clock=lambda: NOW)
        status = engine.evaluate()[0]
        assert status["breached"] is True
        fast = status["windows"][0]
        assert fast["breached"] is True
        assert fast["short_burn"] == pytest.approx(50.0, rel=0.1)
        assert fast["long_burn"] == pytest.approx(50.0, rel=0.1)

    def test_short_blip_does_not_breach_long_window(self):
        store = store_at()
        # A two-point blip in an otherwise healthy hour: the 5m window
        # burns hot but the 1h window stays under 14.4x, so no breach.
        t = NOW - 3600.0
        while t <= NOW:
            store.record("nakamoto", 4.0, ts=t)
            t += 30.0
        store.record("nakamoto", 2.0, ts=NOW - 60.0)
        store.record("nakamoto", 2.0, ts=NOW - 45.0)
        engine = SLOEngine([drift_slo()], store, clock=lambda: NOW)
        fast = engine.evaluate()[0]["windows"][0]
        assert fast["short_burn"] > 14.4
        assert fast["long_burn"] < 14.4
        assert fast["breached"] is False

    def test_no_data_burns_are_none_not_breached(self):
        engine = SLOEngine([drift_slo()], store_at(), clock=lambda: NOW)
        fast = engine.evaluate()[0]["windows"][0]
        assert fast["short_burn"] is None
        assert fast["long_burn"] is None
        assert fast["breached"] is False

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            SLOEngine([drift_slo(), drift_slo()], store_at())

    def test_rules_fire_through_alert_manager(self):
        store = store_at()
        self.fill(store)
        engine = SLOEngine([drift_slo()], store, clock=lambda: NOW)
        manager = AlertManager(clock=lambda: NOW, registry=MetricsRegistry())
        for rule in engine.rules():
            manager.add_rule(rule)
        events = manager.evaluate({})
        names = {e.rule for e in events if e.state == "firing"}
        assert "slo:drift:fast" in names
        active = {a["rule"]: a for a in manager.active()}
        assert active["slo:drift:fast"]["labels"]["slo"] == "drift"
        # The reported value is the worse burn rate.
        assert active["slo:drift:fast"]["value"] == pytest.approx(50.0, rel=0.1)

    def test_summary_names_breached_objectives(self):
        store = store_at()
        self.fill(store)
        engine = SLOEngine([drift_slo()], store, clock=lambda: NOW)
        summary = engine.summary()
        assert summary["objectives"] == 1
        assert summary["breached"] == ["drift"]


SAMPLE_CONFIG = {
    "slo": [
        {
            "name": "drift",
            "type": "metric",
            "target": 0.99,
            "series": "nakamoto",
            "op": ">=",
            "value": 3,
        },
        {"name": "avail", "type": "availability", "target": 0.999},
    ]
}


class TestParseConfig:
    def test_parses_mapping_and_list_forms(self):
        slos = parse_slo_config(SAMPLE_CONFIG)
        assert [s.name for s in slos] == ["drift", "avail"]
        assert slos[0].value == 3.0
        assert slos[1].windows == DEFAULT_BURN_WINDOWS
        assert parse_slo_config(SAMPLE_CONFIG["slo"])[0].name == "drift"

    def test_custom_windows(self):
        entry = dict(SAMPLE_CONFIG["slo"][0])
        entry["windows"] = [
            {"label": "quick", "short": 60, "long": 600, "factor": 10,
             "severity": "page"}
        ]
        (slo,) = parse_slo_config([entry])
        assert slo.windows[0].label == "quick"
        assert slo.windows[0].factor == 10.0

    def test_rejections(self):
        with pytest.raises(ValidationError, match="top-level 'slo'"):
            parse_slo_config({"wrong": []})
        with pytest.raises(ValidationError, match="at least one"):
            parse_slo_config([])
        with pytest.raises(ValidationError, match="unknown keys"):
            parse_slo_config([{"name": "x", "type": "metric", "target": 0.9,
                              "series": "m", "typo": 1}])
        with pytest.raises(ValidationError, match="missing required"):
            parse_slo_config([{"name": "x", "type": "metric"}])
        with pytest.raises(ValidationError, match="non-numeric"):
            parse_slo_config([{"name": "x", "type": "metric", "target": "lots",
                              "series": "m"}])
        with pytest.raises(ValidationError, match="duplicate"):
            parse_slo_config([
                {"name": "x", "type": "availability", "target": 0.9},
                {"name": "x", "type": "availability", "target": 0.99},
            ])
        with pytest.raises(ValidationError, match="bad window pair"):
            parse_slo_config([{"name": "x", "type": "availability",
                              "target": 0.9, "windows": [{"short": 60}]}])


class TestLoadFile:
    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(SAMPLE_CONFIG))
        assert [s.name for s in load_slo_file(str(path))] == ["drift", "avail"]

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text("{nope")
        with pytest.raises(ValidationError, match="invalid JSON"):
            load_slo_file(str(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="cannot read"):
            load_slo_file(str(tmp_path / "absent.json"))

    def test_toml_when_available(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "slo.toml"
        path.write_text(
            '[[slo]]\nname = "drift"\ntype = "metric"\ntarget = 0.99\n'
            'series = "nakamoto"\nop = ">="\nvalue = 3\n'
        )
        (slo,) = load_slo_file(str(path))
        assert slo.name == "drift"
        assert slo.op == ">="

    def test_invalid_toml(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "slo.toml"
        path.write_text("= broken")
        with pytest.raises(ValidationError, match="invalid TOML"):
            load_slo_file(str(path))
