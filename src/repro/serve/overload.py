"""Overload protection for the telemetry/read API.

Four cooperating pieces, all dependency-free and clock-injectable:

:class:`AdmissionController`
    Bounds concurrent in-flight requests.  Up to ``max_inflight``
    requests execute at once; up to ``max_queue`` more wait (bounded, at
    most ``queue_timeout`` seconds) for a slot; everyone else is turned
    away immediately — the caller answers 503 with ``Retry-After``.

:class:`TokenBucketLimiter`
    Per-client token buckets (keyed by ``X-Client-Id`` or the socket
    peer address).  A client over its rate gets 429 with the standard
    ``RateLimit-*`` headers; the tracked-client table is bounded with
    least-recently-seen eviction so hostile key churn cannot grow memory.

:class:`ResponseCache`
    Byte-stable snapshots of recent 200 responses with strong ETags.
    Within ``ttl`` a cached body is served as-is (cheap reads under
    fan-in); when the server is shedding, the *stale* copy is served
    byte-identical with ``X-Repro-Degraded: stale`` so readers keep
    getting answers while the monitor recovers.

:class:`LoadShedder`
    The degrade trigger: a :class:`~repro.resilience.retry.CircuitBreaker`
    fed by admission saturation.  ``shed_threshold`` consecutive
    saturated admissions open the breaker, and while it is open
    cacheable endpoints skip admission entirely and serve stale — the
    fastest possible path exactly when the server is drowning.  A
    degraded monitor (crashed ingest loop, see
    :class:`~repro.resilience.supervisor.MonitorSupervisor`) sheds too.

:class:`OverloadConfig` carries the knobs; :class:`OverloadGuard` wires
the four pieces to a metrics registry and exposes the ``/status``
``overload`` section.  With no guard configured the handler pays a single
``is None`` check (budgeted in ``benchmarks/bench_perf_serve.py``).
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.errors import ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.resilience.retry import CircuitBreaker, Clock, _REAL_CLOCK


@dataclass(frozen=True)
class OverloadConfig:
    """Knobs for the overload-protection layer (all optional).

    ``max_inflight`` bounds concurrently executing requests (``None``
    disables admission control); ``max_queue``/``queue_timeout`` size the
    bounded wait queue in front of it.  ``rate_limit`` is requests per
    second per client with ``burst`` extra headroom (``None`` disables
    rate limiting; ``burst`` defaults to ``2 * rate_limit``).
    ``cache_ttl`` is how long a cached 200 body serves as *fresh*;
    ``retry_after`` is the hint sent with every 503.  ``shed_threshold``
    consecutive saturated admissions open the shed breaker for
    ``shed_reset`` seconds.
    """

    max_inflight: int | None = None
    max_queue: int = 16
    queue_timeout: float = 0.25
    rate_limit: float | None = None
    burst: float | None = None
    cache_ttl: float = 1.0
    retry_after: float = 1.0
    shed_threshold: int = 5
    shed_reset: float = 2.0

    def __post_init__(self) -> None:
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValidationError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.max_queue < 0:
            raise ValidationError(f"max_queue must be >= 0, got {self.max_queue}")
        if self.queue_timeout < 0:
            raise ValidationError(
                f"queue_timeout must be >= 0, got {self.queue_timeout}"
            )
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ValidationError(
                f"rate_limit must be positive, got {self.rate_limit}"
            )
        if self.burst is not None and self.burst < 1:
            raise ValidationError(f"burst must be >= 1, got {self.burst}")
        if self.cache_ttl < 0:
            raise ValidationError(f"cache_ttl must be >= 0, got {self.cache_ttl}")
        if self.retry_after <= 0:
            raise ValidationError(
                f"retry_after must be positive, got {self.retry_after}"
            )
        if self.shed_threshold < 1:
            raise ValidationError(
                f"shed_threshold must be >= 1, got {self.shed_threshold}"
            )
        if self.shed_reset < 0:
            raise ValidationError(
                f"shed_reset must be >= 0, got {self.shed_reset}"
            )


def parse_rate_limit(text: str) -> tuple[float, float | None]:
    """Parse the CLI's ``RPS[:BURST]`` spell into ``(rate, burst)``.

    >>> parse_rate_limit("100")
    (100.0, None)
    >>> parse_rate_limit("50:200")
    (50.0, 200.0)
    """
    rate_text, sep, burst_text = text.partition(":")
    try:
        rate = float(rate_text)
        burst = float(burst_text) if sep else None
    except ValueError:
        raise ValidationError(
            f"bad rate limit spec {text!r} (expected RPS[:BURST])"
        ) from None
    if rate <= 0 or (burst is not None and burst < 1):
        raise ValidationError(
            f"bad rate limit spec {text!r}: RPS must be > 0 and BURST >= 1"
        )
    return rate, burst


class AdmissionController:
    """Bounded concurrency with a small bounded wait queue.

    ``acquire`` admits immediately while fewer than ``max_inflight``
    requests are executing; otherwise the caller joins a wait queue of
    at most ``max_queue`` and blocks up to ``queue_timeout`` seconds for
    a slot.  A full queue or an elapsed wait is a rejection — the HTTP
    layer turns it into 503 + ``Retry-After``.
    """

    def __init__(
        self,
        max_inflight: int,
        max_queue: int = 16,
        queue_timeout: float = 0.25,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if max_inflight < 1:
            raise ValidationError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.queue_timeout = queue_timeout
        self._cond = threading.Condition()
        self._inflight = 0
        self._waiting = 0
        self.admitted_total = 0
        self.queued_total = 0
        self.rejected_total = 0
        self._registry = registry

    def acquire(self) -> bool:
        """Try to enter; True = admitted (caller must :meth:`release`)."""
        with self._cond:
            if self._inflight < self.max_inflight:
                self._inflight += 1
                self.admitted_total += 1
                self._observe()
                return True
            if self._waiting >= self.max_queue:
                self.rejected_total += 1
                self._count("serve.admission.rejected_total")
                return False
            self._waiting += 1
            self.queued_total += 1
            deadline = time.monotonic() + self.queue_timeout
            try:
                while self._inflight >= self.max_inflight:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self.rejected_total += 1
                        self._count("serve.admission.rejected_total")
                        return False
                    self._cond.wait(remaining)
            finally:
                self._waiting -= 1
            self._inflight += 1
            self.admitted_total += 1
            self._observe()
            return True

    def release(self) -> None:
        """Leave; wakes one queued waiter."""
        with self._cond:
            self._inflight -= 1
            self._cond.notify()
            self._observe()

    def saturated(self) -> bool:
        """Whether a new arrival would be rejected outright."""
        with self._cond:
            return (
                self._inflight >= self.max_inflight
                and self._waiting >= self.max_queue
            )

    def _observe(self) -> None:
        if self._registry is not None:
            self._registry.gauge(
                "serve.admission.inflight",
                help="Concurrently executing telemetry requests.",
            ).set(self._inflight)

    def _count(self, name: str) -> None:
        if self._registry is not None:
            self._registry.counter(
                name, help="Requests rejected by admission control."
            ).inc()

    def snapshot(self) -> dict:
        """JSON-ready view for the ``/status`` overload section."""
        with self._cond:
            return {
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "inflight": self._inflight,
                "waiting": self._waiting,
                "admitted_total": self.admitted_total,
                "queued_total": self.queued_total,
                "rejected_total": self.rejected_total,
            }


@dataclass(frozen=True)
class RateLimitDecision:
    """One :meth:`TokenBucketLimiter.allow` verdict plus header material."""

    allowed: bool
    limit: float
    remaining: int
    retry_after: float

    def headers(self) -> list[tuple[str, str]]:
        """The standard draft ``RateLimit-*`` header set."""
        out = [
            ("RateLimit-Limit", f"{self.limit:g}"),
            ("RateLimit-Remaining", str(self.remaining)),
            ("RateLimit-Reset", f"{self.retry_after:.3f}"),
        ]
        if not self.allowed:
            out.append(("Retry-After", str(max(1, round(self.retry_after)))))
        return out


class TokenBucketLimiter:
    """Per-client token buckets with bounded, least-recently-seen keys.

    Each key accrues ``rate`` tokens per second up to ``burst``; a
    request spends one token.  At most ``max_clients`` buckets are kept —
    beyond that the least recently *seen* client is evicted (it simply
    starts over with a full bucket on its next request, which errs in
    the client's favour, never the server's memory).
    """

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        max_clients: int = 1024,
        clock: Clock | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if rate <= 0:
            raise ValidationError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(2.0 * rate, 1.0)
        if self.burst < 1:
            raise ValidationError(f"burst must be >= 1, got {self.burst}")
        self.max_clients = max_clients
        self._clock = clock or _REAL_CLOCK
        self._lock = threading.Lock()
        #: key -> (tokens, last_refill); ordered by last-seen for eviction.
        self._buckets: OrderedDict[str, tuple[float, float]] = OrderedDict()
        self.allowed_total = 0
        self.throttled_total = 0
        self.evicted_total = 0
        self._registry = registry

    def allow(self, key: str) -> RateLimitDecision:
        """Spend one token for ``key``; the decision carries the headers."""
        now = self._clock.monotonic()
        with self._lock:
            tokens, last = self._buckets.get(key, (self.burst, now))
            tokens = min(self.burst, tokens + (now - last) * self.rate)
            allowed = tokens >= 1.0
            if allowed:
                tokens -= 1.0
                self.allowed_total += 1
            else:
                self.throttled_total += 1
                if self._registry is not None:
                    self._registry.counter(
                        "serve.ratelimit.throttled_total",
                        help="Requests refused with 429 by the rate limiter.",
                    ).inc()
            self._buckets[key] = (tokens, now)
            self._buckets.move_to_end(key)
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
                self.evicted_total += 1
            retry_after = 0.0 if allowed else (1.0 - tokens) / self.rate
            return RateLimitDecision(
                allowed=allowed,
                limit=self.rate,
                remaining=int(tokens),
                retry_after=retry_after,
            )

    def snapshot(self) -> dict:
        """JSON-ready view for the ``/status`` overload section."""
        with self._lock:
            return {
                "rate": self.rate,
                "burst": self.burst,
                "clients": len(self._buckets),
                "allowed_total": self.allowed_total,
                "throttled_total": self.throttled_total,
                "evicted_total": self.evicted_total,
            }


@dataclass(frozen=True)
class CachedResponse:
    """One cached 200 body: exact bytes, strong ETag, creation time."""

    body: bytes
    content_type: str
    etag: str
    created: float

    def age(self, now: float) -> float:
        return max(now - self.created, 0.0)


class ResponseCache:
    """ETag/TTL cache of recent 200 responses, keyed by path + query.

    Entries never expire on their own — a stale entry is exactly what
    load shedding serves (byte-identical to the last fresh snapshot);
    ``ttl`` only decides whether :meth:`get` counts a hit as *fresh*.
    The entry table is bounded with least-recently-written eviction.
    """

    def __init__(
        self,
        ttl: float = 1.0,
        max_entries: int = 256,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if ttl < 0:
            raise ValidationError(f"ttl must be >= 0, got {ttl}")
        self.ttl = ttl
        self.max_entries = max_entries
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, CachedResponse] = OrderedDict()
        self.hits = 0
        self.stale_hits = 0
        self.misses = 0

    def put(self, key: str, body: bytes, content_type: str) -> CachedResponse:
        """Cache a fresh 200 body; returns the entry (with its ETag)."""
        entry = CachedResponse(
            body=body,
            content_type=content_type,
            etag='"' + hashlib.sha256(body).hexdigest()[:16] + '"',
            created=self._clock(),
        )
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return entry

    def get(self, key: str, fresh_only: bool = False) -> tuple[CachedResponse, bool] | None:
        """Look up ``key``; returns ``(entry, is_fresh)`` or ``None``.

        With ``fresh_only`` a stale entry counts as a miss (the normal
        read path); without it the stale entry is returned for shedding.
        """
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            fresh = self.ttl > 0 and entry.age(now) < self.ttl
            if fresh:
                self.hits += 1
                return entry, True
            if fresh_only:
                self.misses += 1
                return None
            self.stale_hits += 1
            return entry, False

    def snapshot(self) -> dict:
        """JSON-ready view for the ``/status`` overload section."""
        with self._lock:
            return {
                "ttl": self.ttl,
                "entries": len(self._entries),
                "hits": self.hits,
                "stale_hits": self.stale_hits,
                "misses": self.misses,
            }


class LoadShedder:
    """Breaker-driven degrade trigger for the serving layer.

    Admission saturation feeds the breaker's failure run; once
    ``shed_threshold`` consecutive arrivals found the server saturated
    the breaker opens and :meth:`shedding` turns True for ``shed_reset``
    seconds — cacheable endpoints then serve stale without touching the
    admission queue at all.  The first non-saturated admission after the
    cool-down (the breaker's half-open probe) closes it again.  A
    degraded monitor sheds regardless of the breaker.
    """

    def __init__(
        self,
        breaker: CircuitBreaker | None = None,
        degraded_fn: Callable[[], bool] | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=5, reset_timeout=2.0, name="serve-shed"
        )
        self.degraded_fn = degraded_fn
        self.shed_total = 0
        self._registry = registry

    def shedding(self) -> bool:
        """Whether cacheable endpoints should serve stale right now."""
        if self.degraded_fn is not None and self.degraded_fn():
            return True
        return self.breaker.state == CircuitBreaker.OPEN

    def note_saturated(self) -> None:
        """An arrival found admission saturated."""
        self.breaker.record_failure()

    def note_admitted(self) -> None:
        """An arrival was admitted normally; the failure run resets."""
        self.breaker.record_success()

    def note_shed(self) -> None:
        """One response was actually degraded to a stale/shed answer."""
        self.shed_total += 1
        if self._registry is not None:
            self._registry.counter(
                "serve.shed_total",
                help="Responses degraded to stale snapshots or 503 sheds.",
            ).inc()

    def snapshot(self) -> dict:
        """JSON-ready view for the ``/status`` overload section."""
        return {
            "state": self.breaker.state,
            "open_count": self.breaker.open_count,
            "shed_total": self.shed_total,
            "degraded": bool(self.degraded_fn()) if self.degraded_fn else False,
        }


class OverloadGuard:
    """The wired-together overload layer one server instance consults.

    Built from an :class:`OverloadConfig`; pieces whose knob is unset
    stay ``None`` and their check short-circuits.  The HTTP handler
    consults the guard in order: rate limit -> shed check -> admission;
    see :meth:`repro.serve.http._TelemetryHandler._handle`.
    """

    def __init__(
        self,
        config: OverloadConfig,
        registry: MetricsRegistry | None = None,
        degraded_fn: Callable[[], bool] | None = None,
    ) -> None:
        self.config = config
        self.admission = (
            AdmissionController(
                config.max_inflight,
                max_queue=config.max_queue,
                queue_timeout=config.queue_timeout,
                registry=registry,
            )
            if config.max_inflight is not None
            else None
        )
        self.limiter = (
            TokenBucketLimiter(
                config.rate_limit, burst=config.burst, registry=registry
            )
            if config.rate_limit is not None
            else None
        )
        self.cache = ResponseCache(ttl=config.cache_ttl)
        self.shedder = LoadShedder(
            breaker=CircuitBreaker(
                failure_threshold=config.shed_threshold,
                reset_timeout=config.shed_reset,
                name="serve-shed",
            ),
            degraded_fn=degraded_fn,
            registry=registry,
        )

    def snapshot(self) -> dict:
        """The ``/status`` ``overload`` section."""
        return {
            "admission": self.admission.snapshot() if self.admission else None,
            "ratelimit": self.limiter.snapshot() if self.limiter else None,
            "cache": self.cache.snapshot(),
            "shedder": self.shedder.snapshot(),
        }
