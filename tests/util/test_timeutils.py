"""Tests for the 2019 calendar helpers."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.util import timeutils as tu


class TestDayIndex:
    def test_first_second_of_year_is_day_zero(self):
        assert tu.day_index(tu.YEAR_2019_START) == 0

    def test_last_second_of_year_is_day_364(self):
        assert tu.day_index(tu.YEAR_2019_END - 1) == 364

    def test_before_year_is_negative(self):
        assert tu.day_index(tu.YEAR_2019_START - 1) == -1

    def test_after_year_is_365(self):
        assert tu.day_index(tu.YEAR_2019_END) == 365

    def test_vectorized_matches_scalar(self):
        stamps = np.asarray(
            [tu.YEAR_2019_START, tu.YEAR_2019_START + 86_400 * 100 + 5]
        )
        result = tu.day_index(stamps)
        assert isinstance(result, np.ndarray)
        assert result.tolist() == [0, 100]


class TestWeekIndex:
    def test_first_week(self):
        assert tu.week_index(tu.YEAR_2019_START) == 0
        assert tu.week_index(tu.day_start(6)) == 0

    def test_second_week_starts_on_day_7(self):
        assert tu.week_index(tu.day_start(7)) == 1

    def test_trailing_day_folds_into_last_week(self):
        assert tu.week_index(tu.day_start(363)) == 51
        assert tu.week_index(tu.day_start(364)) == 51

    def test_all_indices_within_bounds(self):
        days = np.arange(365)
        weeks = tu.week_index(tu.YEAR_2019_START + days * tu.SECONDS_PER_DAY)
        assert weeks.min() == 0
        assert weeks.max() == 51


class TestMonthIndex:
    def test_january(self):
        assert tu.month_index(tu.YEAR_2019_START) == 0
        assert tu.month_index(tu.day_start(30)) == 0

    def test_february_starts_day_31(self):
        assert tu.month_index(tu.day_start(31)) == 1

    def test_december_ends_year(self):
        assert tu.month_index(tu.YEAR_2019_END - 1) == 11

    def test_month_lengths_sum_to_365(self):
        assert sum(tu.MONTH_LENGTHS_2019) == 365

    def test_out_of_year_sentinels(self):
        assert tu.month_index(tu.YEAR_2019_START - 1) == -1
        assert tu.month_index(tu.YEAR_2019_END) == 12

    def test_every_day_maps_to_correct_month(self):
        day = 0
        for month, length in enumerate(tu.MONTH_LENGTHS_2019):
            assert tu.month_index(tu.day_start(day)) == month
            assert tu.month_index(tu.day_start(day + length - 1)) == month
            day += length


class TestMonthBounds:
    def test_january_bounds(self):
        start, end = tu.month_bounds(0)
        assert start == tu.YEAR_2019_START
        assert end == tu.day_start(31)

    def test_december_ends_at_year_end(self):
        _, end = tu.month_bounds(11)
        assert end == tu.YEAR_2019_END

    def test_bounds_are_contiguous(self):
        for month in range(11):
            assert tu.month_bounds(month)[1] == tu.month_bounds(month + 1)[0]

    def test_invalid_month_raises(self):
        with pytest.raises(ValidationError):
            tu.month_bounds(12)


class TestIsoDates:
    def test_day_zero_is_january_first(self):
        assert tu.iso_date(0) == "2019-01-01"

    def test_day_364_is_december_31(self):
        assert tu.iso_date(364) == "2019-12-31"

    def test_roundtrip(self):
        for day in (0, 13, 100, 200, 364):
            assert tu.parse_iso_date(tu.iso_date(day)) == day

    def test_paper_day_14_example(self):
        # The paper's day-14 anomaly is Jan 14, i.e. 0-based day 13.
        assert tu.parse_iso_date("2019-01-14") == 13

    def test_out_of_range_day_raises(self):
        with pytest.raises(ValidationError):
            tu.iso_date(365)

    def test_non_2019_date_raises(self):
        with pytest.raises(ValidationError):
            tu.parse_iso_date("2020-01-01")

    def test_garbage_raises(self):
        with pytest.raises(ValidationError):
            tu.parse_iso_date("not-a-date")


class TestEnsureWithin2019:
    def test_accepts_in_year(self):
        tu.ensure_within_2019(np.asarray([tu.YEAR_2019_START, tu.YEAR_2019_END - 1]))

    def test_accepts_empty(self):
        tu.ensure_within_2019(np.asarray([], dtype=np.int64))

    def test_rejects_out_of_year(self):
        with pytest.raises(ValidationError):
            tu.ensure_within_2019(np.asarray([tu.YEAR_2019_END]))
