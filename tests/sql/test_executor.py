"""End-to-end SQL execution tests."""

import numpy as np
import pytest

from repro.errors import SqlExecutionError, SqlPlanError
from repro.sql import QueryEngine, query
from repro.table import Table


@pytest.fixture
def engine() -> QueryEngine:
    blocks = Table(
        {
            "height": [1, 2, 3, 4, 5, 6],
            "miner": ["a", "b", "a", "c", "b", "a"],
            "day": [0, 0, 1, 1, 1, 2],
            "reward": [12.5, 12.5, 12.5, 6.25, 6.25, 6.25],
        }
    )
    pools = Table({"miner": ["a", "b"], "pool": ["P1", "P2"]})
    return QueryEngine({"blocks": blocks, "pools": pools})


class TestProjection:
    def test_select_star(self, engine):
        out = engine.execute("SELECT * FROM blocks")
        assert out.num_rows == 6
        assert out.column_names == ("height", "miner", "day", "reward")

    def test_select_columns(self, engine):
        out = engine.execute("SELECT miner, height FROM blocks")
        assert out.column_names == ("miner", "height")

    def test_expression_with_alias(self, engine):
        out = engine.execute("SELECT height * 10 AS h FROM blocks LIMIT 1")
        assert out.row(0) == {"h": 10}

    def test_default_output_names(self, engine):
        out = engine.execute("SELECT height, COUNT(*) FROM blocks GROUP BY height LIMIT 1")
        assert out.column_names == ("height", "count")

    def test_duplicate_names_uniquified(self, engine):
        out = engine.execute("SELECT height, height FROM blocks LIMIT 1")
        assert out.column_names == ("height", "height_1")

    def test_literal_output(self, engine):
        out = engine.execute("SELECT 7 AS seven FROM blocks LIMIT 2")
        assert out["seven"].tolist() == [7, 7]

    def test_unknown_table(self, engine):
        with pytest.raises(SqlPlanError, match="unknown table"):
            engine.execute("SELECT * FROM nope")

    def test_unknown_column(self, engine):
        with pytest.raises(SqlPlanError, match="unknown column"):
            engine.execute("SELECT nope FROM blocks")


class TestWhere:
    def test_comparison(self, engine):
        out = engine.execute("SELECT height FROM blocks WHERE day = 1")
        assert out["height"].tolist() == [3, 4, 5]

    def test_and_or(self, engine):
        out = engine.execute(
            "SELECT height FROM blocks WHERE day = 1 AND miner = 'b' OR height = 1"
        )
        assert out["height"].tolist() == [1, 5]

    def test_between(self, engine):
        out = engine.execute("SELECT height FROM blocks WHERE height BETWEEN 2 AND 4")
        assert out["height"].tolist() == [2, 3, 4]

    def test_in_list(self, engine):
        out = engine.execute("SELECT height FROM blocks WHERE miner IN ('b', 'c')")
        assert out["height"].tolist() == [2, 4, 5]

    def test_not_in(self, engine):
        out = engine.execute("SELECT height FROM blocks WHERE miner NOT IN ('a')")
        assert out["height"].tolist() == [2, 4, 5]

    def test_like(self, engine):
        blocks = Table({"tag": ["/F2Pool/", "/ViaBTC/", "solo"]})
        out = query("SELECT tag FROM t WHERE tag LIKE '/%/'", t=blocks)
        assert out["tag"].tolist() == ["/F2Pool/", "/ViaBTC/"]

    def test_not_condition(self, engine):
        out = engine.execute("SELECT height FROM blocks WHERE NOT day = 0")
        assert out.num_rows == 4

    def test_not_like(self, engine):
        blocks = Table({"tag": ["/F2Pool/", "/ViaBTC/", "solo"]})
        out = query("SELECT tag FROM t WHERE tag NOT LIKE '/%/'", t=blocks)
        assert out["tag"].tolist() == ["solo"]

    def test_is_not_null(self, engine):
        left = Table({"k": ["a", "b"]})
        right = Table({"k": ["a"], "v": ["present"]})
        joined = query(
            "SELECT l.k FROM l LEFT JOIN r ON l.k = r.k WHERE r.v IS NOT NULL",
            l=left,
            r=right,
        )
        assert joined["k"].tolist() == ["a"]

    def test_is_null_on_float_nan(self, engine):
        table = Table({"v": [1.0, float("nan")]})
        out = query("SELECT v FROM t WHERE v IS NULL", t=table)
        assert out.num_rows == 1

    def test_aggregate_in_where_rejected(self, engine):
        with pytest.raises(SqlPlanError):
            engine.execute("SELECT height FROM blocks WHERE COUNT(*) > 1")


class TestAggregation:
    def test_group_by_with_count_sum(self, engine):
        out = engine.execute(
            "SELECT miner, COUNT(*) AS n, SUM(reward) AS r "
            "FROM blocks GROUP BY miner ORDER BY miner"
        )
        assert out.to_rows() == [
            {"miner": "a", "n": 3, "r": 31.25},
            {"miner": "b", "n": 2, "r": 18.75},
            {"miner": "c", "n": 1, "r": 6.25},
        ]

    def test_ungrouped_aggregates(self, engine):
        out = engine.execute("SELECT COUNT(*) AS n, AVG(reward) AS m FROM blocks")
        assert out.row(0) == {"n": 6, "m": pytest.approx(9.375)}

    def test_count_distinct(self, engine):
        out = engine.execute("SELECT COUNT(DISTINCT miner) AS u FROM blocks")
        assert out.row(0)["u"] == 3

    def test_min_max_median(self, engine):
        out = engine.execute(
            "SELECT MIN(height) lo, MAX(height) hi, MEDIAN(height) mid FROM blocks"
        )
        assert out.row(0) == {"lo": 1, "hi": 6, "mid": 3.5}

    def test_having_with_alias(self, engine):
        out = engine.execute(
            "SELECT miner, COUNT(*) AS n FROM blocks GROUP BY miner HAVING n >= 2 "
            "ORDER BY n DESC"
        )
        assert out["miner"].tolist() == ["a", "b"]

    def test_having_with_aggregate_expr(self, engine):
        out = engine.execute(
            "SELECT miner FROM blocks GROUP BY miner HAVING SUM(reward) > 10"
        )
        assert sorted(out["miner"].tolist()) == ["a", "b"]

    def test_arithmetic_over_aggregates(self, engine):
        out = engine.execute(
            "SELECT SUM(reward) / COUNT(*) AS mean_reward FROM blocks"
        )
        assert out.row(0)["mean_reward"] == pytest.approx(9.375)

    def test_group_by_expression(self, engine):
        out = engine.execute(
            "SELECT day % 2 AS parity, COUNT(*) AS n FROM blocks GROUP BY day % 2 ORDER BY parity"
        )
        assert out.to_rows() == [{"parity": 0, "n": 3}, {"parity": 1, "n": 3}]

    def test_group_by_position(self, engine):
        out = engine.execute(
            "SELECT miner, COUNT(*) AS n FROM blocks GROUP BY 1 ORDER BY 1"
        )
        assert out["miner"].tolist() == ["a", "b", "c"]

    def test_group_by_alias_of_expression(self, engine):
        out = engine.execute(
            "SELECT day % 2 AS parity, COUNT(*) AS n FROM blocks GROUP BY parity ORDER BY parity"
        )
        assert out.num_rows == 2

    def test_bare_column_outside_group_by_rejected(self, engine):
        with pytest.raises(SqlPlanError, match="GROUP BY"):
            engine.execute("SELECT height, COUNT(*) FROM blocks GROUP BY miner")

    def test_having_without_group_rejected(self, engine):
        with pytest.raises(SqlPlanError):
            engine.execute("SELECT height FROM blocks HAVING height > 1")

    def test_star_with_group_by_rejected(self, engine):
        with pytest.raises(SqlPlanError):
            engine.execute("SELECT * FROM blocks GROUP BY miner")

    def test_nested_aggregates_rejected(self, engine):
        with pytest.raises(SqlPlanError):
            engine.execute("SELECT SUM(COUNT(*)) FROM blocks")

    def test_distinct_sum_rejected(self, engine):
        with pytest.raises(SqlPlanError):
            engine.execute("SELECT SUM(DISTINCT reward) FROM blocks")

    def test_empty_group_result(self, engine):
        out = engine.execute(
            "SELECT miner, COUNT(*) n FROM blocks WHERE height > 100 GROUP BY miner"
        )
        assert out.num_rows == 0

    def test_count_on_empty_table_is_zero(self, engine):
        out = engine.execute("SELECT COUNT(*) AS n FROM blocks WHERE height > 100")
        assert out.row(0)["n"] == 0


class TestOrderLimit:
    def test_order_by_column_desc(self, engine):
        out = engine.execute("SELECT height FROM blocks ORDER BY height DESC")
        assert out["height"].tolist() == [6, 5, 4, 3, 2, 1]

    def test_order_by_position(self, engine):
        out = engine.execute("SELECT miner, height FROM blocks ORDER BY 2 DESC LIMIT 2")
        assert out["height"].tolist() == [6, 5]

    def test_order_by_expression_not_in_select(self, engine):
        out = engine.execute("SELECT miner FROM blocks ORDER BY height DESC LIMIT 1")
        assert out.row(0)["miner"] == "a"

    def test_order_by_multiple_keys(self, engine):
        out = engine.execute("SELECT day, height FROM blocks ORDER BY day DESC, height ASC")
        assert out["height"].tolist() == [6, 3, 4, 5, 1, 2]

    def test_limit_offset(self, engine):
        out = engine.execute("SELECT height FROM blocks ORDER BY height LIMIT 2 OFFSET 3")
        assert out["height"].tolist() == [4, 5]

    def test_order_position_out_of_range(self, engine):
        with pytest.raises(SqlPlanError):
            engine.execute("SELECT miner FROM blocks ORDER BY 5")

    def test_stable_order_on_ties(self, engine):
        out = engine.execute("SELECT height, day FROM blocks ORDER BY day")
        assert out.filter(out["day"] == 1)["height"].tolist() == [3, 4, 5]


class TestDistinct:
    def test_distinct_rows(self, engine):
        out = engine.execute("SELECT DISTINCT miner FROM blocks ORDER BY miner")
        assert out["miner"].tolist() == ["a", "b", "c"]

    def test_distinct_multi_column(self, engine):
        out = engine.execute("SELECT DISTINCT day, miner FROM blocks")
        assert out.num_rows == 6


class TestJoins:
    def test_inner_join(self, engine):
        out = engine.execute(
            "SELECT b.height, p.pool FROM blocks b JOIN pools p ON b.miner = p.miner "
            "ORDER BY b.height"
        )
        assert out.num_rows == 5
        assert out.row(0) == {"height": 1, "pool": "P1"}

    def test_left_join_produces_null(self, engine):
        out = engine.execute(
            "SELECT b.miner, p.pool FROM blocks b LEFT JOIN pools p ON b.miner = p.miner "
            "WHERE p.pool IS NULL"
        )
        assert out["miner"].tolist() == ["c"]

    def test_join_with_aggregation(self, engine):
        out = engine.execute(
            "SELECT p.pool, COUNT(*) AS n FROM blocks b JOIN pools p ON b.miner = p.miner "
            "GROUP BY p.pool ORDER BY n DESC"
        )
        assert out.to_rows() == [{"pool": "P1", "n": 3}, {"pool": "P2", "n": 2}]

    def test_select_star_join_unqualifies_unambiguous(self, engine):
        out = engine.execute("SELECT * FROM blocks b JOIN pools p ON b.miner = p.miner")
        assert "pool" in out.column_names

    def test_ambiguous_column_rejected(self, engine):
        with pytest.raises(SqlPlanError, match="ambiguous"):
            engine.execute("SELECT miner FROM blocks b JOIN pools p ON b.miner = p.miner")

    def test_duplicate_binding_rejected(self, engine):
        with pytest.raises(SqlPlanError):
            engine.execute("SELECT 1 FROM blocks b JOIN pools b ON b.miner = b.miner")


class TestScalarFunctionsInQueries:
    def test_case_when(self, engine):
        out = engine.execute(
            "SELECT height, CASE WHEN reward > 10 THEN 'big' ELSE 'small' END AS size "
            "FROM blocks ORDER BY height LIMIT 4"
        )
        assert out["size"].tolist() == ["big", "big", "big", "small"]

    def test_upper_concat(self, engine):
        out = engine.execute(
            "SELECT CONCAT(UPPER(miner), '-', day) AS tag FROM blocks LIMIT 2"
        )
        assert out["tag"].tolist() == ["A-0", "B-0"]

    def test_division_by_zero_raises(self, engine):
        with pytest.raises(SqlExecutionError, match="division by zero"):
            engine.execute("SELECT height / 0 FROM blocks")

    def test_round_floor(self, engine):
        out = engine.execute("SELECT ROUND(reward, 1) r, FLOOR(reward) f FROM blocks LIMIT 1")
        assert out.row(0) == {"r": 12.5, "f": 12}


class TestEngineApi:
    def test_register_and_table_names(self, engine):
        engine.register("extra", Table({"x": [1]}))
        assert "extra" in engine.table_names()

    def test_query_convenience(self):
        out = query("SELECT COUNT(*) AS n FROM t", t=Table({"x": [1, 2]}))
        assert out.row(0)["n"] == 2

    def test_explain_mentions_stages(self, engine):
        text = engine.explain(
            "SELECT miner, COUNT(*) n FROM blocks WHERE day = 1 "
            "GROUP BY miner HAVING n > 0 ORDER BY n LIMIT 5"
        )
        for fragment in ("FROM", "WHERE", "AGGREGATE", "HAVING", "ORDER BY", "LIMIT"):
            assert fragment in text
