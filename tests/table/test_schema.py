"""Tests for the table schema."""

import pytest

from repro.errors import SchemaError
from repro.table.schema import Schema


class TestSchema:
    def test_names_and_kinds_in_order(self):
        schema = Schema([("height", "int"), ("miner", "str")])
        assert schema.names == ("height", "miner")
        assert schema.kinds == ("int", "str")

    def test_kind_of(self):
        schema = Schema([("v", "float")])
        assert schema.kind_of("v") == "float"

    def test_kind_of_missing_raises(self):
        with pytest.raises(SchemaError):
            Schema([("v", "float")]).kind_of("w")

    def test_contains(self):
        schema = Schema([("a", "int")])
        assert "a" in schema
        assert "b" not in schema

    def test_duplicate_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema([("a", "int"), ("a", "str")])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema([("", "int")])

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError):
            Schema([("a", "datetime")])

    def test_equality(self):
        assert Schema([("a", "int")]) == Schema([("a", "int")])
        assert Schema([("a", "int")]) != Schema([("a", "float")])

    def test_iter_and_len(self):
        schema = Schema([("a", "int"), ("b", "str")])
        assert len(schema) == 2
        assert list(schema) == [("a", "int"), ("b", "str")]
