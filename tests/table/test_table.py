"""Tests for the Table engine."""

import numpy as np
import pytest

from repro.errors import SchemaError, TableError
from repro.table import Table, col, concat


@pytest.fixture
def blocks() -> Table:
    return Table(
        {
            "height": [1, 2, 3, 4, 5, 6],
            "miner": ["a", "b", "a", "c", "b", "a"],
            "day": [0, 0, 1, 1, 1, 2],
            "reward": [12.5, 12.5, 12.5, 6.25, 6.25, 6.25],
        }
    )


class TestConstruction:
    def test_basic_shape(self, blocks):
        assert blocks.num_rows == 6
        assert blocks.num_columns == 4
        assert blocks.column_names == ("height", "miner", "day", "reward")

    def test_empty_table(self):
        table = Table()
        assert table.num_rows == 0
        assert table.num_columns == 0

    def test_length_mismatch_raises(self):
        with pytest.raises(TableError):
            Table({"a": [1, 2], "b": [1]})

    def test_from_rows(self):
        table = Table.from_rows([{"x": 1, "y": "a"}, {"x": 2, "y": "b"}])
        assert table["x"].tolist() == [1, 2]

    def test_from_rows_missing_column_raises(self):
        with pytest.raises(TableError):
            Table.from_rows([{"x": 1}, {"y": 2}])

    def test_from_rows_empty_with_columns(self):
        table = Table.from_rows([], columns=["a", "b"])
        assert table.num_rows == 0
        assert table.column_names == ("a", "b")

    def test_empty_from_schema(self, blocks):
        empty = Table.empty(blocks.schema)
        assert empty.num_rows == 0
        assert empty.schema == blocks.schema


class TestAccessors:
    def test_getitem_returns_array(self, blocks):
        assert isinstance(blocks["height"], np.ndarray)

    def test_missing_column_raises(self, blocks):
        with pytest.raises(SchemaError):
            blocks.column("nope")

    def test_row(self, blocks):
        assert blocks.row(0) == {"height": 1, "miner": "a", "day": 0, "reward": 12.5}

    def test_row_negative_index(self, blocks):
        assert blocks.row(-1)["height"] == 6

    def test_row_out_of_range(self, blocks):
        with pytest.raises(TableError):
            blocks.row(6)

    def test_to_rows_roundtrip(self, blocks):
        assert Table.from_rows(blocks.to_rows()) == blocks


class TestProjection:
    def test_select_orders_columns(self, blocks):
        projected = blocks.select(["miner", "height"])
        assert projected.column_names == ("miner", "height")

    def test_drop(self, blocks):
        assert blocks.drop(["reward"]).column_names == ("height", "miner", "day")

    def test_drop_missing_raises(self, blocks):
        with pytest.raises(SchemaError):
            blocks.drop(["nope"])

    def test_rename(self, blocks):
        renamed = blocks.rename({"miner": "producer"})
        assert "producer" in renamed
        assert "miner" not in renamed

    def test_rename_missing_raises(self, blocks):
        with pytest.raises(SchemaError):
            blocks.rename({"nope": "x"})

    def test_with_column_adds(self, blocks):
        table = blocks.with_column("double", blocks["height"] * 2)
        assert table["double"].tolist() == [2, 4, 6, 8, 10, 12]

    def test_with_column_replaces(self, blocks):
        table = blocks.with_column("day", [9] * 6)
        assert table["day"].tolist() == [9] * 6

    def test_with_column_length_mismatch_raises(self, blocks):
        with pytest.raises(TableError):
            blocks.with_column("bad", [1])


class TestFilterAndTake:
    def test_filter_mask(self, blocks):
        out = blocks.filter(blocks["day"] == 1)
        assert out["height"].tolist() == [3, 4, 5]

    def test_filter_callable(self, blocks):
        out = blocks.filter(lambda t: t["reward"] > 10)
        assert out.num_rows == 3

    def test_filter_expression(self, blocks):
        out = blocks.filter((col("day") == 1) & (col("miner") == "b"))
        assert out["height"].tolist() == [5]

    def test_filter_wrong_length_raises(self, blocks):
        with pytest.raises(TableError):
            blocks.filter(np.asarray([True]))

    def test_filter_non_bool_raises(self, blocks):
        with pytest.raises(TableError):
            blocks.filter(blocks["height"])

    def test_take_with_duplicates(self, blocks):
        out = blocks.take([0, 0, 5])
        assert out["height"].tolist() == [1, 1, 6]

    def test_slice_and_head(self, blocks):
        assert blocks.slice(2, 4)["height"].tolist() == [3, 4]
        assert blocks.head(2).num_rows == 2


class TestSort:
    def test_single_key(self, blocks):
        out = blocks.sort_by("reward")
        assert out["reward"].tolist() == sorted(blocks["reward"].tolist())

    def test_descending(self, blocks):
        out = blocks.sort_by("height", descending=True)
        assert out["height"].tolist() == [6, 5, 4, 3, 2, 1]

    def test_multi_key_mixed_directions(self, blocks):
        out = blocks.sort_by(["day", "height"], descending=[False, True])
        assert out["height"].tolist() == [2, 1, 5, 4, 3, 6]

    def test_stable_on_ties(self):
        table = Table({"k": [1, 1, 1], "v": ["first", "second", "third"]})
        out = table.sort_by("k")
        assert out["v"].tolist() == ["first", "second", "third"]

    def test_string_key(self, blocks):
        out = blocks.sort_by("miner")
        assert out["miner"].tolist() == ["a", "a", "a", "b", "b", "c"]

    def test_flag_count_mismatch_raises(self, blocks):
        with pytest.raises(TableError):
            blocks.sort_by(["day"], descending=[True, False])

    def test_no_keys_raises(self, blocks):
        with pytest.raises(TableError):
            blocks.sort_by([])


class TestGroupBy:
    def test_count_and_sum(self, blocks):
        out = blocks.group_by("miner").aggregate(
            n=("height", "count"), total=("reward", "sum")
        )
        rows = {r["miner"]: r for r in out.to_rows()}
        assert rows["a"]["n"] == 3
        assert rows["a"]["total"] == pytest.approx(31.25)
        assert rows["c"]["n"] == 1

    def test_groups_ordered_by_first_occurrence(self, blocks):
        out = blocks.group_by("miner").aggregate(n=("miner", "count"))
        assert out["miner"].tolist() == ["a", "b", "c"]

    def test_multi_key(self, blocks):
        out = blocks.group_by(["day", "miner"]).aggregate(n=("height", "count"))
        # Pairs: (0,a) (0,b) (1,a) (1,c) (1,b) (2,a) — all distinct.
        assert out.num_rows == 6

    def test_mean_min_max(self, blocks):
        out = blocks.group_by("day").aggregate(
            mean_r=("reward", "mean"), lo=("height", "min"), hi=("height", "max")
        )
        day1 = out.filter(out["day"] == 1).row(0)
        assert day1["mean_r"] == pytest.approx((12.5 + 6.25 + 6.25) / 3)
        assert day1["lo"] == 3
        assert day1["hi"] == 5

    def test_string_min_max(self, blocks):
        out = blocks.group_by("day").aggregate(first_miner=("miner", "min"))
        assert out.filter(out["day"] == 0).row(0)["first_miner"] == "a"

    def test_apply(self, blocks):
        out = blocks.group_by("day").apply(
            lambda t: int(t["height"].sum()), output="height_sum"
        )
        assert out["height_sum"].tolist() == [3, 12, 6]

    def test_missing_key_raises(self, blocks):
        with pytest.raises(SchemaError):
            blocks.group_by("nope")

    def test_no_spec_raises(self, blocks):
        with pytest.raises(TableError):
            blocks.group_by("miner").aggregate()

    def test_empty_table_groupby(self):
        table = Table({"k": [], "v": []})
        out = table.group_by("k").aggregate(n=("v", "count"))
        assert out.num_rows == 0


class TestDistinctAndValueCounts:
    def test_distinct_single_key(self, blocks):
        assert blocks.distinct("miner").num_rows == 3

    def test_distinct_keeps_first_row(self, blocks):
        out = blocks.distinct("miner")
        assert out["height"].tolist() == [1, 2, 4]

    def test_distinct_all_columns(self):
        table = Table({"a": [1, 1, 2], "b": ["x", "x", "y"]})
        assert table.distinct().num_rows == 2

    def test_value_counts_sorted(self, blocks):
        out = blocks.value_counts("miner")
        assert out.row(0) == {"miner": "a", "count": 3}
        assert out["count"].tolist() == [3, 2, 1]


class TestJoin:
    def test_inner_join(self, blocks):
        pools = Table({"miner": ["a", "b"], "pool": ["P1", "P2"]})
        out = blocks.join(pools, on="miner")
        assert out.num_rows == 5  # 'c' rows dropped
        assert set(out["pool"].tolist()) == {"P1", "P2"}

    def test_left_join_fills_none(self, blocks):
        pools = Table({"miner": ["a"], "pool": ["P1"]})
        out = blocks.join(pools, on="miner", how="left")
        assert out.num_rows == 6
        c_row = out.filter(out["miner"] == "c").row(0)
        assert c_row["pool"] is None

    def test_left_join_widens_ints_to_float(self, blocks):
        extra = Table({"miner": ["a"], "rank": [1]})
        out = blocks.join(extra, on="miner", how="left")
        assert np.isnan(out.filter(out["miner"] == "c")["rank"]).all()

    def test_join_name_clash_gets_suffix(self):
        left = Table({"k": [1], "v": [10]})
        right = Table({"k": [1], "v": [20]})
        out = left.join(right, on="k")
        assert out.row(0) == {"k": 1, "v": 10, "v_right": 20}

    def test_join_duplicate_keys_expand(self):
        left = Table({"k": [1], "v": [10]})
        right = Table({"k": [1, 1], "w": [1, 2]})
        assert left.join(right, on="k").num_rows == 2

    def test_unknown_join_type_raises(self, blocks):
        with pytest.raises(TableError):
            blocks.join(blocks, on="miner", how="outer")


class TestConcat:
    def test_roundtrip(self, blocks):
        assert concat([blocks.head(3), blocks.slice(3, 6)]) == blocks

    def test_schema_mismatch_raises(self, blocks):
        other = Table({"height": [1.0]})
        with pytest.raises(TableError):
            concat([blocks.select(["height"]), other])

    def test_empty_list_raises(self):
        with pytest.raises(TableError):
            concat([])


class TestScalarAggregate:
    def test_sum(self, blocks):
        assert blocks.aggregate_scalar("height", "sum") == 21

    def test_count_distinct(self, blocks):
        assert blocks.aggregate_scalar("miner", "count_distinct") == 3


class TestDescribe:
    def test_one_row_per_column(self, blocks):
        out = blocks.describe()
        assert out.num_rows == 4
        assert out["column"].tolist() == ["height", "miner", "day", "reward"]

    def test_numeric_stats(self, blocks):
        out = blocks.describe()
        height = out.filter(out["column"] == "height").row(0)
        assert height["kind"] == "int"
        assert height["count"] == 6
        assert height["distinct"] == 6
        assert height["min"] == 1.0
        assert height["max"] == 6.0
        assert height["mean"] == pytest.approx(3.5)

    def test_string_stats_are_nan(self, blocks):
        out = blocks.describe()
        miner = out.filter(out["column"] == "miner").row(0)
        assert miner["distinct"] == 3
        assert np.isnan(miner["min"])
