"""Retry policies, backoff with jitter, deadlines and a circuit breaker.

The policy layer sits between callers and flaky dependencies (the
BigQuery-shaped client, :class:`~repro.data.store.ChainStore` reads):
transient failures are retried with exponential backoff + deterministic
jitter, a deadline bounds the total wait, and a :class:`CircuitBreaker`
stops hammering a dependency that keeps failing.

Everything is clock-injectable: tests and the ``repro chaos`` harness use
:class:`ManualClock` so injected timeouts and breaker cool-downs resolve
instantly, while production code uses the real monotonic clock.

Counters land on the existing :mod:`repro.obs` metrics registry
(``resilience.retries_total``, ``resilience.giveups_total``,
``resilience.breaker.*``) so ``/metrics`` scrapes and trace exports see
retry pressure alongside pipeline timings.

With ``policy=None`` and ``breaker=None``, :func:`retry_call` is a direct
call — the disabled path costs one ``is None`` check (budgeted in
``benchmarks/bench_perf_resilience.py``).
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

import numpy as np

from repro import obs
from repro.errors import (
    CircuitOpenError,
    RetryExhaustedError,
    TransientError,
    ValidationError,
)
from repro.util.rng import derive_rng

logger = logging.getLogger(__name__)

T = TypeVar("T")

#: Exception types retried by default: the library's own transient
#: failures plus the OS-level ones a real network data source raises.
DEFAULT_RETRY_ON: tuple[type[BaseException], ...] = (
    TransientError,
    TimeoutError,
    ConnectionError,
    OSError,
)


class Clock:
    """Real monotonic time; swap in :class:`ManualClock` for tests."""

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)


class ManualClock(Clock):
    """A fake clock where sleeping advances time instantly.

    Backoff tests assert on :attr:`sleeps` — the exact delays a policy
    requested — without ever blocking the test process.

    >>> clock = ManualClock()
    >>> clock.sleep(0.25); clock.sleep(0.5)
    >>> clock.monotonic()
    0.75
    >>> clock.sleeps
    [0.25, 0.5]
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self.sleeps: list[float] = []

    def monotonic(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(float(seconds))
        self._now += float(seconds)

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep."""
        self._now += float(seconds)


_REAL_CLOCK = Clock()


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff: ``base_delay * multiplier**k``, capped and jittered.

    ``jitter`` is the +/- fraction applied to each delay (0.5 means the
    delay is drawn uniformly from [0.5d, 1.5d]); the draw comes from a
    named RNG stream so a seeded run backs off identically every time.
    ``deadline`` bounds the total elapsed time across all attempts.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValidationError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValidationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValidationError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValidationError(
                f"deadline must be positive, got {self.deadline}"
            )

    def delay(self, failures: int, rng: np.random.Generator | None = None) -> float:
        """Backoff before the next attempt, after ``failures`` failures (>=1).

        >>> RetryPolicy(base_delay=0.1, multiplier=2.0, jitter=0.0).delay(3)
        0.4
        """
        raw = min(
            self.base_delay * self.multiplier ** (failures - 1), self.max_delay
        )
        if self.jitter and rng is not None:
            raw *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return max(raw, 0.0)


#: Ready-made policy for the chaos harness and tests: full retry coverage
#: with near-zero real sleeping even on a real clock.
FAST_TEST_POLICY = RetryPolicy(
    max_attempts=6, base_delay=0.0001, max_delay=0.001, jitter=0.0
)


class CircuitBreaker:
    """Classic closed -> open -> half-open breaker around one dependency.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, :meth:`allow` returns False until ``reset_timeout`` seconds pass
    on the injected clock, after which exactly one probe call is let
    through (half-open).  A probe success closes the circuit, a probe
    failure re-opens it and restarts the cool-down.

    All state transitions take an internal lock: the breaker was built
    for the single-threaded ingest path but is now shared across
    ``ThreadingHTTPServer`` handler threads (the overload layer in
    :mod:`repro.serve.overload` uses one as its degrade trigger), so
    concurrent ``record_failure``/``record_success``/``allow`` calls must
    neither corrupt the failure run nor admit two half-open probes.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Clock | None = None,
        name: str = "default",
    ) -> None:
        if failure_threshold < 1:
            raise ValidationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout < 0:
            raise ValidationError(
                f"reset_timeout must be >= 0, got {reset_timeout}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.name = name
        self._clock = clock or _REAL_CLOCK
        self._lock = threading.RLock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self._probe_started = 0.0
        self.open_count = 0

    def _resolve_state(self) -> str:
        """Transition an elapsed cool-down to half-open (lock held)."""
        if (
            self._state == self.OPEN
            and self._clock.monotonic() - self._opened_at >= self.reset_timeout
        ):
            self._state = self.HALF_OPEN
            self._probe_in_flight = False
        return self._state

    @property
    def state(self) -> str:
        """Current state, resolving an elapsed cool-down to half-open."""
        with self._lock:
            return self._resolve_state()

    @property
    def failure_count(self) -> int:
        """Consecutive failures recorded since the last success."""
        with self._lock:
            return self._consecutive_failures

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        In half-open, only the first caller is admitted (the probe);
        concurrent callers see ``False`` until the probe resolves via
        :meth:`record_success` or :meth:`record_failure`.
        """
        with self._lock:
            state = self._resolve_state()
            if state == self.OPEN:
                return False
            if state == self.HALF_OPEN:
                stale_probe = (
                    self._clock.monotonic() - self._probe_started
                    >= self.reset_timeout
                )
                if self._probe_in_flight and not stale_probe:
                    return False
                # Claim the probe slot (reclaiming one whose caller never
                # reported back after a full cool-down).
                self._probe_in_flight = True
                self._probe_started = self._clock.monotonic()
            return True

    def record_success(self) -> None:
        """A call succeeded: close the circuit and clear the failure run."""
        with self._lock:
            self._consecutive_failures = 0
            self._state = self.CLOSED
            self._probe_in_flight = False

    def record_failure(self) -> None:
        """A call failed: trip the circuit at the threshold (or on a probe)."""
        with self._lock:
            self._resolve_state()
            self._consecutive_failures += 1
            self._probe_in_flight = False
            if (
                self._state == self.HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold
            ):
                if self._state != self.OPEN:
                    self.open_count += 1
                    obs.get_tracer().metrics.counter(
                        "resilience.breaker.open_total"
                    ).inc()
                    logger.warning(
                        "circuit %r opened after %d consecutive failures",
                        self.name, self._consecutive_failures,
                    )
                self._state = self.OPEN
                self._opened_at = self._clock.monotonic()


def retry_call(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
    retry_on: tuple[type[BaseException], ...] = DEFAULT_RETRY_ON,
    name: str = "call",
    clock: Clock | None = None,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    on_retry: Callable[[int, BaseException, float], None] | None = None,
) -> T:
    """Call ``fn`` under ``policy``/``breaker``; the resilient-read primitive.

    With neither a policy nor a breaker this is a direct call — the
    always-on disabled path.  Otherwise transient failures (``retry_on``)
    are retried with backoff until the policy's attempts or deadline run
    out, raising :class:`~repro.errors.RetryExhaustedError`; a breaker
    that is (or trips) open raises :class:`~repro.errors.CircuitOpenError`.

    Jitter determinism: pass ``rng`` or ``seed`` (stream ``retry:<name>``)
    to make the backoff schedule reproducible.
    """
    if policy is None and breaker is None:
        return fn()
    policy = policy or RetryPolicy()
    clock = clock or _REAL_CLOCK
    if rng is None and seed is not None:
        rng = derive_rng(seed, f"retry:{name}")
    registry = obs.get_tracer().metrics
    if breaker is not None and not breaker.allow():
        registry.counter("resilience.breaker.rejected_total").inc()
        raise CircuitOpenError(
            f"circuit {breaker.name!r} is open; refusing {name}"
        )
    start = clock.monotonic()
    failures = 0
    while True:
        registry.counter("resilience.attempts_total").inc()
        try:
            result = fn()
        except retry_on as exc:
            failures += 1
            registry.counter("resilience.failures_total").inc()
            if breaker is not None:
                breaker.record_failure()
                if not breaker.allow():
                    registry.counter("resilience.giveups_total").inc()
                    raise CircuitOpenError(
                        f"circuit {breaker.name!r} opened while retrying "
                        f"{name}: {exc}"
                    ) from exc
            if failures >= policy.max_attempts:
                registry.counter("resilience.giveups_total").inc()
                raise RetryExhaustedError(
                    f"{name} failed after {failures} attempts: {exc}",
                    attempts=failures,
                    last_error=exc,
                ) from exc
            delay = policy.delay(failures, rng)
            if (
                policy.deadline is not None
                and clock.monotonic() + delay - start > policy.deadline
            ):
                registry.counter("resilience.giveups_total").inc()
                raise RetryExhaustedError(
                    f"{name} exceeded its {policy.deadline}s deadline "
                    f"after {failures} attempts: {exc}",
                    attempts=failures,
                    last_error=exc,
                ) from exc
            registry.counter("resilience.retries_total").inc()
            registry.timing("resilience.backoff_seconds").observe(delay)
            logger.debug(
                "retrying %s after failure %d/%d (backoff %.4fs): %s",
                name, failures, policy.max_attempts, delay, exc,
            )
            if on_retry is not None:
                on_retry(failures, exc, delay)
            clock.sleep(delay)
        else:
            if breaker is not None:
                breaker.record_success()
            if failures:
                registry.counter("resilience.recoveries_total").inc()
            return result
