"""Tests for the network-layer substrate (extension)."""

import numpy as np
import pytest

from repro.errors import MetricError, SimulationError
from repro.network import (
    NetworkParams,
    betweenness_concentration,
    degree_gini,
    generate_network,
    network_nakamoto,
    propagation_report,
    relay_dominance,
    stale_rate,
)
from repro.network.topology import REGIONS, region_latency


@pytest.fixture(scope="module")
def network():
    return generate_network(
        NetworkParams(n_nodes=400, pools=("P1", "P2", "P3"), seed=5)
    )


class TestTopology:
    def test_shape(self, network):
        assert network.n_nodes == 400
        assert network.n_edges > 400  # attachment + random edges

    def test_connected(self, network):
        import networkx as nx

        assert nx.is_connected(network.graph)

    def test_deterministic(self):
        a = generate_network(NetworkParams(n_nodes=100, seed=3))
        b = generate_network(NetworkParams(n_nodes=100, seed=3))
        assert sorted(a.graph.edges) == sorted(b.graph.edges)

    def test_heavy_tailed_degrees(self, network):
        degrees = network.degrees()
        assert degrees.max() > 4 * np.median(degrees)

    def test_every_node_has_region(self, network):
        for node in network.graph.nodes:
            assert network.region_of(node) in REGIONS

    def test_edges_have_positive_latency(self, network):
        for a, b in network.graph.edges:
            assert network.graph.edges[a, b]["latency"] > 0

    def test_pool_gateways_on_high_degree_nodes(self, network):
        degrees = network.degrees()
        median = np.median(degrees)
        for node in network.pool_gateways.values():
            assert network.graph.degree[node] > 3 * median

    def test_region_latency_symmetric(self):
        assert region_latency("na", "asia") == region_latency("asia", "na")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_nodes": 5},
            {"n_nodes": 100, "attachment": 0},
            {"n_nodes": 100, "region_weights": (0.5, 0.5, 0.5)},
        ],
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            NetworkParams(**kwargs)


class TestNetworkMetrics:
    def test_degree_gini_in_range(self, network):
        value = degree_gini(network)
        assert 0.1 < value < 0.7  # scale-free but not degenerate

    def test_betweenness_more_concentrated_than_degree(self, network):
        """Relay traffic concentrates harder than connectivity — the [5]
        observation that a small backbone mediates most relay."""
        assert betweenness_concentration(network, sample=80) > degree_gini(network)

    def test_relay_dominance_monotone_in_k(self, network):
        d5 = relay_dominance(network, top_k=5, sample=80)
        d50 = relay_dominance(network, top_k=50, sample=80)
        assert 0 < d5 < d50 <= 1.0

    def test_network_nakamoto_bounds(self, network):
        n = network_nakamoto(network, sample=80)
        assert 1 <= n < network.n_nodes

    def test_nakamoto_monotone_in_threshold(self, network):
        low = network_nakamoto(network, threshold=0.33, sample=80)
        high = network_nakamoto(network, threshold=0.90, sample=80)
        assert low <= high

    def test_invalid_sample_rejected(self, network):
        with pytest.raises(MetricError):
            betweenness_concentration(network, sample=1)

    def test_invalid_topk_rejected(self, network):
        with pytest.raises(MetricError):
            relay_dominance(network, top_k=0)


class TestPropagation:
    def test_report_percentiles_ordered(self, network):
        source = next(iter(network.pool_gateways.values()))
        report = propagation_report(network, source)
        assert 0 < report.p50 <= report.p90 <= report.p99
        assert report.unreachable == 0

    def test_pool_gateways_reached_fast(self, network):
        source = next(iter(network.pool_gateways.values()))
        report = propagation_report(network, source)
        assert report.mean_to_pools < report.p90

    def test_unknown_source_rejected(self, network):
        with pytest.raises(SimulationError):
            propagation_report(network, 10_000)

    def test_stale_rate_decreases_with_interval(self, network):
        fast = stale_rate(network, block_interval_seconds=13.2)
        slow = stale_rate(network, block_interval_seconds=600.0)
        assert 0 < slow < fast < 0.2

    def test_stale_rate_default_source_is_pool(self, network):
        explicit = stale_rate(
            network, 600.0, source=next(iter(network.pool_gateways.values()))
        )
        assert stale_rate(network, 600.0) == pytest.approx(explicit)

    def test_invalid_interval_rejected(self, network):
        with pytest.raises(SimulationError):
            stale_rate(network, 0.0)
