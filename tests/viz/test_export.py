"""Tests for series/figure export."""

import json

import pytest

from repro.analysis.figures import FigureResult
from repro.table.io import read_csv
from repro.viz.export import export_figure, series_to_csv, series_to_json
from tests.core.test_series import make_series


class TestSeriesExport:
    def test_csv_roundtrip(self, tmp_path):
        series = make_series([0.5, 0.6, 0.7])
        path = tmp_path / "series.csv"
        series_to_csv(series, path)
        table = read_csv(path)
        assert table["value"].tolist() == [0.5, 0.6, 0.7]
        assert table["label"].tolist() == ["w0", "w1", "w2"]

    def test_json_payload(self, tmp_path):
        series = make_series([1.0, 2.0])
        path = tmp_path / "series.json"
        series_to_json(series, path)
        payload = json.loads(path.read_text())
        assert payload["chain"] == "testchain"
        assert payload["metric"] == "gini"
        assert payload["summary"]["mean"] == 1.5
        assert len(payload["points"]) == 2


class TestFigureExport:
    def test_writes_csvs_and_manifest(self, tmp_path):
        figure = FigureResult(
            figure_id="figX",
            title="demo",
            series={"day": make_series([1.0]), "N=144": make_series([2.0])},
            notes={"mean_day": 1.0},
        )
        paths = export_figure(figure, tmp_path / "out")
        names = sorted(p.name for p in paths)
        assert "figX.json" in names
        assert "figX_day.csv" in names
        assert "figX_N-144.csv" in names
        manifest = json.loads((tmp_path / "out" / "figX.json").read_text())
        assert manifest["title"] == "demo"
        assert manifest["notes"] == {"mean_day": 1.0}

    def test_empty_figure_writes_only_manifest(self, tmp_path):
        figure = FigureResult(figure_id="figY", title="notes only", notes={"L": 3.0})
        paths = export_figure(figure, tmp_path)
        assert [p.name for p in paths] == ["figY.json"]

    def test_distributions_in_manifest(self, tmp_path):
        from repro.analysis.distribution import DistributionSlice

        figure = FigureResult(
            figure_id="figZ",
            title="pie",
            distributions=(
                DistributionSlice(
                    window_label="2019-12-07",
                    top=(("F2Pool", 0.2), ("Poolin", 0.15)),
                    other_share=0.65,
                    n_producers=25,
                    total_weight=130.0,
                ),
            ),
        )
        export_figure(figure, tmp_path)
        manifest = json.loads((tmp_path / "figZ.json").read_text())
        assert manifest["distributions"][0]["window"] == "2019-12-07"
        assert manifest["distributions"][0]["top"][0] == {
            "producer": "F2Pool",
            "share": 0.2,
        }
        assert manifest["distributions"][0]["n_producers"] == 25
