"""Performance — chain persistence (save / load / partition pruning)."""

from repro.data.store import ChainStore


def test_perf_store_save(benchmark, study, tmp_path_factory):
    chain = study.chain("btc")
    store = ChainStore(tmp_path_factory.mktemp("save"))

    counter = {"n": 0}

    def save():
        counter["n"] += 1
        return store.save(f"btc-{counter['n']}", chain)

    benchmark.pedantic(save, rounds=3, iterations=1)


def test_perf_store_load(benchmark, study, tmp_path_factory):
    chain = study.chain("btc")
    store = ChainStore(tmp_path_factory.mktemp("load"))
    store.save("btc", chain)
    loaded = benchmark(store.load, "btc")
    assert loaded.n_blocks == chain.n_blocks


def test_perf_store_partition_pruned_load(benchmark, study, tmp_path_factory):
    chain = study.chain("btc")
    store = ChainStore(tmp_path_factory.mktemp("prune"))
    store.save("btc", chain)
    december = benchmark(store.load_months, "btc", [11])
    assert 0 < december.n_blocks < chain.n_blocks / 10
