"""Tests for the multi-chain comparison."""

import pytest

from repro.analysis.multichain import MultiChainComparison
from repro.errors import MeasurementError


@pytest.fixture(scope="module")
def comparison(btc_engine, eth_engine):
    return MultiChainComparison({"bitcoin": btc_engine, "ethereum": eth_engine})


class TestTable:
    def test_one_row_per_chain_metric(self, comparison):
        table = comparison.table()
        assert table.num_rows == 6
        assert set(table["chain"].tolist()) == {"bitcoin", "ethereum"}
        assert set(table["metric"].tolist()) == {"gini", "entropy", "nakamoto"}

    def test_columns(self, comparison):
        assert comparison.table().column_names == (
            "chain", "metric", "mean", "std", "cv", "min", "max",
        )


class TestRankings:
    def test_bitcoin_leads_every_metric(self, comparison):
        for ranking in comparison.rankings():
            assert ranking.by_level[0] == "bitcoin", ranking.metric

    def test_ethereum_most_stable_every_metric(self, comparison):
        for ranking in comparison.rankings():
            assert ranking.by_stability[0] == "ethereum", ranking.metric

    def test_consensus_verdict(self, comparison):
        assert comparison.consensus_most_decentralized() == "bitcoin"

    def test_gini_direction_is_lower_wins(self, comparison):
        ranking = comparison.ranking("gini")
        table = comparison.table()
        btc_mean = table.filter(
            (table["chain"] == "bitcoin") & (table["metric"] == "gini")
        ).row(0)["mean"]
        eth_mean = table.filter(
            (table["chain"] == "ethereum") & (table["metric"] == "gini")
        ).row(0)["mean"]
        assert btc_mean < eth_mean
        assert ranking.by_level == ("bitcoin", "ethereum")

    def test_unmeasured_metric_rejected(self, comparison):
        with pytest.raises(MeasurementError):
            comparison.ranking("hhi")


class TestValidation:
    def test_needs_two_chains(self, btc_engine):
        with pytest.raises(MeasurementError):
            MultiChainComparison({"only": btc_engine})

    def test_directionless_metric_rejected(self, btc_engine, eth_engine):
        with pytest.raises(MeasurementError, match="direction"):
            MultiChainComparison(
                {"a": btc_engine, "b": eth_engine}, metrics=("hhi",)
            )
