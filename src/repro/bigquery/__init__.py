"""A local stand-in for the Google BigQuery client the paper used.

The paper (§II-A) collected its datasets from BigQuery's public blockchain
tables.  :class:`BigQueryClient` mirrors that workflow offline: the public
datasets ``crypto_bitcoin`` and ``crypto_ethereum`` exist with ``blocks``
and ``credits`` tables, queries are standard SQL (including BigQuery-style
backtick-quoted, dataset-qualified table names), and results come back as
jobs whose ``result()`` is a table:

>>> from repro.bigquery import BigQueryClient
>>> client = BigQueryClient()                                # doctest: +SKIP
>>> job = client.query(
...     "SELECT COUNT(*) AS n FROM `crypto_bitcoin.blocks`")  # doctest: +SKIP
>>> job.result().row(0)["n"]                                  # doctest: +SKIP
54231
"""

from repro.bigquery.client import BigQueryClient, QueryJob

__all__ = ["BigQueryClient", "QueryJob"]
