"""Tests for sliding windows (paper §III-A, Eq. 5)."""

import pytest

from repro.chain.specs import BITCOIN, ETHEREUM
from repro.errors import WindowError
from repro.windows.sliding import SlidingBlockWindows, sliding_window_count


class TestEquationFive:
    def test_formula(self):
        # L = (S - N) / M + 1
        assert sliding_window_count(n_blocks=1_000, size=100, step=50) == 19

    def test_too_few_blocks_yields_zero(self):
        assert sliding_window_count(n_blocks=99, size=100, step=50) == 0

    def test_exactly_one_window(self):
        assert sliding_window_count(n_blocks=100, size=100, step=50) == 1

    def test_paper_bitcoin_daily_count(self):
        """~700 one-day sliding windows over 2019 Bitcoin (paper §III-B)."""
        count = sliding_window_count(BITCOIN.block_count, 144, 72)
        assert 700 <= count <= 760

    def test_paper_ethereum_daily_count(self):
        count = sliding_window_count(ETHEREUM.block_count, 6_000, 3_000)
        assert 700 <= count <= 740

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WindowError):
            sliding_window_count(100, 0, 10)
        with pytest.raises(WindowError):
            sliding_window_count(100, 10, 0)


class TestSlidingBlockWindows:
    def test_default_step_is_half(self):
        generator = SlidingBlockWindows(144)
        assert generator.step == 72
        assert generator.overlap == 72

    def test_generate_matches_expected_count(self):
        generator = SlidingBlockWindows(100, 50)
        windows = generator.generate(1_000)
        assert len(windows) == generator.expected_count(1_000) == 19

    def test_window_bounds(self):
        windows = SlidingBlockWindows(100, 50).generate(250)
        assert [(w.start_block, w.stop_block) for w in windows] == [
            (0, 100),
            (50, 150),
            (100, 200),
            (150, 250),
        ]

    def test_consecutive_overlap_is_n_minus_m(self):
        generator = SlidingBlockWindows(100, 30)
        windows = generator.generate(400)
        for a, b in zip(windows, windows[1:]):
            assert a.overlap(b) == 70 == generator.overlap

    def test_step_equal_to_size_gives_fixed_partition(self):
        windows = SlidingBlockWindows(100, 100).generate(300)
        for a, b in zip(windows, windows[1:]):
            assert a.overlap(b) == 0

    def test_all_windows_have_full_size(self):
        windows = SlidingBlockWindows(144).generate(1_000)
        assert all(w.size == 144 for w in windows)

    def test_doubles_points_vs_fixed(self):
        """The paper's motivation for M = N/2."""
        n_blocks = 52_560
        sliding = len(SlidingBlockWindows(144).generate(n_blocks))
        fixed = n_blocks // 144
        assert sliding == pytest.approx(2 * fixed, abs=2)

    def test_step_above_size_rejected(self):
        with pytest.raises(WindowError):
            SlidingBlockWindows(100, 101)

    def test_nonpositive_size_rejected(self):
        with pytest.raises(WindowError):
            SlidingBlockWindows(0)

    def test_step_one_maximum_resolution(self):
        windows = SlidingBlockWindows(10, 1).generate(12)
        assert len(windows) == 3

    def test_size_one_minimum_step_is_one(self):
        generator = SlidingBlockWindows(1)
        assert generator.step == 1
