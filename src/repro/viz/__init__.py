"""Series visualization and export (the matplotlib stand-in).

Figures are reproduced as data series; :mod:`repro.viz.ascii` renders them
as terminal line charts for quick inspection and :mod:`repro.viz.export`
writes them to CSV/JSON for external plotting.
"""

from repro.viz.ascii import ascii_chart, ascii_histogram, multi_series_chart
from repro.viz.export import export_figure, series_to_csv, series_to_json
from repro.viz.tables import (
    format_notes,
    format_series_rows,
    render_table,
    sparkline,
)

__all__ = [
    "ascii_chart",
    "ascii_histogram",
    "export_figure",
    "format_notes",
    "format_series_rows",
    "multi_series_chart",
    "render_table",
    "series_to_csv",
    "series_to_json",
    "sparkline",
]
