"""Measurement result series.

A :class:`MeasurementSeries` is the unit every figure in the paper plots:
one metric, one chain, one window family, one value per window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.errors import MeasurementError
from repro.table import Table


@dataclass(frozen=True)
class MeasurementSeries:
    """An ordered sequence of per-window metric values."""

    chain_name: str
    metric_name: str
    #: Human-readable window family, e.g. ``"fixed-day"`` or ``"sliding-144/72"``.
    window_desc: str
    #: Window indices within their family (may be non-contiguous if windows
    #: were skipped for holding no blocks).
    indices: np.ndarray
    labels: tuple[str, ...]
    values: np.ndarray
    #: Number of windows dropped because they contained no blocks.
    skipped: int = field(default=0)
    #: Ingest data-quality report (``DataQualityReport.as_dict()``) when
    #: the chain was fetched through the resilience layer; ``None`` for a
    #: clean/direct ingest.  Provenance only — never affects values, so
    #: it is excluded from equality.
    quality: dict | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        indices = np.asarray(self.indices, dtype=np.int64)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "indices", indices)
        if values.shape[0] != indices.shape[0] or values.shape[0] != len(self.labels):
            raise MeasurementError(
                "indices, labels and values must have equal length "
                f"({indices.shape[0]}, {len(self.labels)}, {values.shape[0]})"
            )

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(zip(self.labels, self.values.tolist()))

    def __repr__(self) -> str:
        return (
            f"MeasurementSeries({self.chain_name}/{self.metric_name}/"
            f"{self.window_desc}, n={len(self)})"
        )

    # -- statistics ----------------------------------------------------------

    def mean(self) -> float:
        """Arithmetic mean of the series."""
        self._require_nonempty()
        return float(self.values.mean())

    def std(self) -> float:
        """Population standard deviation."""
        self._require_nonempty()
        return float(self.values.std(ddof=0))

    def min(self) -> float:
        """Smallest value in the series."""
        self._require_nonempty()
        return float(self.values.min())

    def max(self) -> float:
        """Largest value in the series."""
        self._require_nonempty()
        return float(self.values.max())

    def median(self) -> float:
        """Median of the series."""
        self._require_nonempty()
        return float(np.median(self.values))

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0 <= q <= 1) of the values."""
        self._require_nonempty()
        if not 0.0 <= q <= 1.0:
            raise MeasurementError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self.values, q))

    def coefficient_of_variation(self) -> float:
        """std / mean — the scale-free stability measure used to compare
        Bitcoin's volatility against Ethereum's."""
        mean = self.mean()
        if mean == 0:
            raise MeasurementError("coefficient of variation undefined for zero mean")
        return self.std() / abs(mean)

    def fraction_in_range(self, low: float, high: float) -> float:
        """Fraction of values inside the closed interval ``[low, high]``.

        The paper phrases many findings this way ("most of the daily Gini
        coefficients are within the range of 0.45 to 0.60").
        """
        self._require_nonempty()
        inside = np.logical_and(self.values >= low, self.values <= high)
        return float(inside.mean())

    def count_extremes(self, low: float | None = None, high: float | None = None) -> int:
        """Number of values below ``low`` and/or above ``high``."""
        self._require_nonempty()
        count = 0
        if low is not None:
            count += int((self.values < low).sum())
        if high is not None:
            count += int((self.values > high).sum())
        return count

    # -- transformation --------------------------------------------------------

    def head_fraction(self, fraction: float) -> "MeasurementSeries":
        """The leading ``fraction`` of the series (e.g. the first 50 days)."""
        if not 0.0 < fraction <= 1.0:
            raise MeasurementError(f"fraction must be in (0, 1], got {fraction}")
        n = max(int(round(len(self) * fraction)), 1)
        return self.slice(0, n)

    def slice(self, start: int, stop: int | None = None) -> "MeasurementSeries":
        """Sub-series of positions ``[start, stop)``."""
        sl = slice(start, stop)
        return MeasurementSeries(
            chain_name=self.chain_name,
            metric_name=self.metric_name,
            window_desc=self.window_desc,
            indices=self.indices[sl],
            labels=self.labels[sl],
            values=self.values[sl],
            skipped=self.skipped,
            quality=self.quality,
        )

    def select_by_index(self, window_indices: Sequence[int]) -> "MeasurementSeries":
        """Sub-series of windows whose family index is in ``window_indices``."""
        wanted = set(int(i) for i in window_indices)
        mask = np.asarray([int(i) in wanted for i in self.indices], dtype=bool)
        positions = np.flatnonzero(mask)
        return MeasurementSeries(
            chain_name=self.chain_name,
            metric_name=self.metric_name,
            window_desc=self.window_desc,
            indices=self.indices[positions],
            labels=tuple(self.labels[int(p)] for p in positions),
            values=self.values[positions],
            skipped=self.skipped,
            quality=self.quality,
        )

    def to_table(self) -> Table:
        """Export as a table with ``index``, ``label`` and ``value`` columns."""
        return Table(
            {
                "index": self.indices,
                "label": list(self.labels),
                "value": self.values,
            }
        )

    def _require_nonempty(self) -> None:
        if len(self) == 0:
            raise MeasurementError("series is empty")
