"""Cost model for the SQL optimizer.

Three concerns live here:

- :class:`PlannerOptions` — per-strategy toggles in the style of the
  DevilsDatabase planner (``index_join`` / ``sort_merge_join`` /
  ``hash_join``), plus pushdown switches.  Disabling every join strategy
  falls back to hash join, which is always executable.
- :func:`selectivity` — estimated fraction of rows a predicate keeps,
  backed by :class:`~repro.table.stats.ColumnStatistics` when available
  and System-R-style default fractions otherwise.
- Join costing — :func:`choose_join_strategy` prices hash, sort-merge and
  index nested-loop joins in abstract per-row units and picks the
  cheapest enabled strategy (ties broken deterministically in the order
  hash, index, sort-merge).

Costs are relative, not wall-clock predictions: what matters is the
ordering between strategies, e.g. an index nested-loop join wins when the
probe side is much smaller than the indexed side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Callable, Iterable

from repro.sql.astnodes import (
    Between,
    Binary,
    ColumnRef,
    Expr,
    InList,
    IsNull,
    Literal,
    Unary,
)
from repro.table.stats import (
    DEFAULT_BETWEEN_SELECTIVITY,
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_ISNULL_SELECTIVITY,
    DEFAULT_LIKE_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    DEFAULT_SELECTIVITY,
    ColumnStatistics,
)

#: CLI-facing toggle names mapped to :class:`PlannerOptions` fields.
TOGGLE_NAMES = {
    "index-scan": "index_scan",
    "index-join": "index_join",
    "hash-join": "hash_join",
    "sort-merge-join": "sort_merge_join",
    "predicate-pushdown": "predicate_pushdown",
    "projection-pushdown": "projection_pushdown",
}

_RANGE_OPS = ("<", "<=", ">", ">=")
_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


@dataclass(frozen=True)
class PlannerOptions:
    """Optimizer feature toggles; everything is on by default."""

    index_scan: bool = True
    index_join: bool = True
    hash_join: bool = True
    sort_merge_join: bool = True
    predicate_pushdown: bool = True
    projection_pushdown: bool = True

    @classmethod
    def with_disabled(cls, names: Iterable[str]) -> "PlannerOptions":
        """Build options with the named toggles off.

        Accepts CLI spellings (``"index-scan"``) and field names
        (``"index_scan"``); unknown names raise :class:`ValueError`.
        """
        valid = {f.name for f in fields(cls)}
        off: dict[str, bool] = {}
        for name in names:
            key = TOGGLE_NAMES.get(name, name)
            if key not in valid:
                known = ", ".join(sorted(TOGGLE_NAMES))
                raise ValueError(f"unknown planner toggle {name!r}; known: {known}")
            off[key] = False
        return cls(**off)


StatsLookup = Callable[[ColumnRef], "ColumnStatistics | None"]


def selectivity(expr: Expr, stats_for: StatsLookup) -> float:
    """Estimated fraction of rows for which ``expr`` is true.

    ``stats_for`` maps a column reference to its statistics (or None when
    the table was never analyzed); conjunctions multiply, disjunctions
    use inclusion-exclusion, and everything is clamped to [0, 1].
    """
    if isinstance(expr, Binary):
        if expr.op == "AND":
            return _clamp(selectivity(expr.left, stats_for) * selectivity(expr.right, stats_for))
        if expr.op == "OR":
            s1 = selectivity(expr.left, stats_for)
            s2 = selectivity(expr.right, stats_for)
            return _clamp(s1 + s2 - s1 * s2)
        pair = _column_literal(expr.left, expr.right)
        if expr.op == "=":
            if pair is None:
                return DEFAULT_EQ_SELECTIVITY
            ref, value, _ = pair
            stats = stats_for(ref)
            return stats.eq_selectivity(value) if stats else DEFAULT_EQ_SELECTIVITY
        if expr.op == "!=":
            inverse = selectivity(Binary("=", expr.left, expr.right), stats_for)
            return _clamp(1.0 - inverse)
        if expr.op in _RANGE_OPS:
            if pair is None:
                return DEFAULT_RANGE_SELECTIVITY
            ref, value, flipped = pair
            op = _FLIPPED[expr.op] if flipped else expr.op
            stats = stats_for(ref)
            return stats.range_selectivity(op, value) if stats else DEFAULT_RANGE_SELECTIVITY
        if expr.op == "LIKE":
            return DEFAULT_LIKE_SELECTIVITY
        return DEFAULT_SELECTIVITY
    if isinstance(expr, Unary) and expr.op == "NOT":
        return _clamp(1.0 - selectivity(expr.operand, stats_for))
    if isinstance(expr, Between):
        estimate = _between_selectivity(expr, stats_for)
        return _clamp(1.0 - estimate) if expr.negated else estimate
    if isinstance(expr, InList):
        estimate = _in_list_selectivity(expr, stats_for)
        return _clamp(1.0 - estimate) if expr.negated else estimate
    if isinstance(expr, IsNull):
        estimate = _is_null_selectivity(expr, stats_for)
        return _clamp(1.0 - estimate) if expr.negated else estimate
    if isinstance(expr, Literal):
        if expr.value is True:
            return 1.0
        if expr.value is False:
            return 0.0
    return DEFAULT_SELECTIVITY


def _between_selectivity(expr: Between, stats_for: StatsLookup) -> float:
    if (
        isinstance(expr.operand, ColumnRef)
        and isinstance(expr.low, Literal)
        and isinstance(expr.high, Literal)
    ):
        stats = stats_for(expr.operand)
        if stats is not None:
            below_high = stats.range_selectivity("<=", expr.high.value)
            below_low = stats.range_selectivity("<", expr.low.value)
            return _clamp(below_high - below_low)
    return DEFAULT_BETWEEN_SELECTIVITY


def _in_list_selectivity(expr: InList, stats_for: StatsLookup) -> float:
    if isinstance(expr.operand, ColumnRef) and all(
        isinstance(item, Literal) for item in expr.items
    ):
        stats = stats_for(expr.operand)
        if stats is not None:
            return _clamp(
                sum(stats.eq_selectivity(item.value) for item in expr.items)  # type: ignore[union-attr]
            )
    return _clamp(DEFAULT_EQ_SELECTIVITY * len(expr.items))


def _is_null_selectivity(expr: IsNull, stats_for: StatsLookup) -> float:
    if isinstance(expr.operand, ColumnRef):
        stats = stats_for(expr.operand)
        if stats is not None:
            return _clamp(stats.null_fraction)
    return DEFAULT_ISNULL_SELECTIVITY


def _column_literal(left: Expr, right: Expr) -> tuple[ColumnRef, object, bool] | None:
    """Match ``col <op> literal`` or ``literal <op> col`` (flipped=True)."""
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        return left, right.value, False
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        return right, left.value, True
    return None


def _clamp(value: float) -> float:
    return min(max(float(value), 0.0), 1.0)


# -- join costing -------------------------------------------------------------


def cost_hash_join(left_rows: int, right_rows: int) -> float:
    """Build a dict over the right side, probe with a loop over the left."""
    return 1.2 * right_rows + 1.0 * left_rows


def cost_sort_merge_join(left_rows: int, right_rows: int) -> float:
    """Sort both inputs, then a linear merge."""
    return (
        1.5 * (left_rows + right_rows)
        + 0.1 * (left_rows * math.log2(left_rows + 2) + right_rows * math.log2(right_rows + 2))
    )


def cost_index_join(left_rows: int, right_rows: int, index_kind: str) -> float:
    """Probe an existing right-side index once per left row."""
    per_lookup = 3.0 if index_kind == "hash" else 2.0 + 0.2 * math.log2(right_rows + 2)
    return per_lookup * left_rows


def choose_join_strategy(
    options: PlannerOptions,
    left_rows: int,
    right_rows: int,
    index_kind: str | None = None,
) -> tuple[str, float]:
    """Pick the cheapest enabled join strategy.

    ``index_kind`` is the kind of an index on the right join key (or None
    when index nested-loop is not executable).  Returns ``(strategy,
    cost)`` with strategy one of ``"hash"``, ``"index"``,
    ``"sort_merge"``; when every strategy is toggled off, hash join is
    the universal fallback.
    """
    candidates: list[tuple[float, int, str]] = []
    if options.hash_join:
        candidates.append((cost_hash_join(left_rows, right_rows), 0, "hash"))
    if options.index_join and index_kind is not None:
        candidates.append((cost_index_join(left_rows, right_rows, index_kind), 1, "index"))
    if options.sort_merge_join:
        candidates.append((cost_sort_merge_join(left_rows, right_rows), 2, "sort_merge"))
    if not candidates:
        return "hash", cost_hash_join(left_rows, right_rows)
    cost, _, strategy = min(candidates)
    return strategy, cost


def estimate_join_rows(
    left_rows: int,
    right_rows: int,
    kind: str,
    left_distinct: int | None = None,
    right_distinct: int | None = None,
) -> int:
    """|L ⋈ R| ≈ |L|·|R| / max(d_left, d_right); LEFT JOIN keeps all of L."""
    if left_rows == 0 or (right_rows == 0 and kind != "left"):
        return left_rows if kind == "left" else 0
    distincts = [d for d in (left_distinct, right_distinct) if d]
    denominator = max(distincts) if distincts else max(left_rows, right_rows, 1)
    estimate = left_rows * right_rows / denominator
    if kind == "left":
        estimate = max(estimate, left_rows)
    return max(int(round(estimate)), 0)
