"""Sliding-window generator (paper §III-A).

Windows of ``N`` blocks advanced by a step of ``M`` blocks.  Consecutive
windows share ``N - M`` blocks, which is what lets the measurement capture
cross-interval changes that fixed windows split across two intervals.  The
number of windows over ``S`` blocks is the paper's Eq. 5:

.. math::

    L = \\frac{S - N}{M} + 1

(integer division; a trailing partial window is not emitted).
"""

from __future__ import annotations

from repro.errors import WindowError
from repro.windows.base import BlockWindow


def sliding_window_count(n_blocks: int, size: int, step: int) -> int:
    """The paper's Eq. 5: number of sliding windows over ``n_blocks``.

    >>> sliding_window_count(n_blocks=52_560, size=144, step=72)
    729
    """
    if size <= 0 or step <= 0:
        raise WindowError("size and step must be positive")
    if n_blocks < size:
        return 0
    return (n_blocks - size) // step + 1


class SlidingBlockWindows:
    """Count-based sliding windows of ``size`` blocks stepping by ``step``.

    ``step`` defaults to ``size // 2``, the paper's choice (M = N/2), which
    doubles the number of measurement points relative to fixed windows.
    """

    def __init__(self, size: int, step: int | None = None) -> None:
        if size <= 0:
            raise WindowError(f"window size must be positive, got {size}")
        if step is None:
            step = max(size // 2, 1)
        if step <= 0:
            raise WindowError(f"step must be positive, got {step}")
        if step > size:
            raise WindowError(
                f"step ({step}) larger than window size ({size}) would skip blocks"
            )
        self.size = size
        self.step = step

    @property
    def overlap(self) -> int:
        """Blocks shared by consecutive windows (``N - M``)."""
        return self.size - self.step

    def expected_count(self, n_blocks: int) -> int:
        """Eq. 5 for this generator's parameters."""
        return sliding_window_count(n_blocks, self.size, self.step)

    def generate(self, n_blocks: int) -> list[BlockWindow]:
        """All windows over a chain of ``n_blocks`` blocks, in order."""
        if n_blocks < 0:
            raise WindowError(f"n_blocks must be >= 0, got {n_blocks}")
        count = self.expected_count(n_blocks)
        windows = []
        for i in range(count):
            start = i * self.step
            windows.append(
                BlockWindow(
                    index=i,
                    label=f"blocks[{start}:{start + self.size}]",
                    start_block=start,
                    stop_block=start + self.size,
                )
            )
        return windows

    def __repr__(self) -> str:
        return f"SlidingBlockWindows(size={self.size}, step={self.step})"
