"""Property-based tests for attribution-policy invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.attribution import attribute
from repro.chain.pools import PoolInfo, PoolRegistry
from tests.conftest import make_tiny_chain

producer_lists = st.lists(
    st.lists(
        st.sampled_from(["a", "b", "c", "d", "x", "y", "z"]),
        min_size=1,
        max_size=5,
        unique=True,
    ),
    min_size=1,
    max_size=60,
)

REGISTRY = PoolRegistry(
    [PoolInfo("PoolA", "a", 0.5, 0.5), PoolInfo("PoolB", "b", 0.3, 0.3)]
)


class TestWeightConservation:
    @given(producer_lists)
    @settings(max_examples=60, deadline=None)
    def test_fractional_total_equals_block_count(self, producers):
        chain = make_tiny_chain(producers)
        credits = attribute(chain, "fractional")
        assert credits.total_weight == np.float64(len(producers)) or abs(
            credits.total_weight - len(producers)
        ) < 1e-9

    @given(producer_lists)
    @settings(max_examples=60, deadline=None)
    def test_per_address_total_equals_credit_count(self, producers):
        chain = make_tiny_chain(producers)
        credits = attribute(chain, "per-address")
        assert credits.total_weight == sum(len(block) for block in producers)

    @given(producer_lists)
    @settings(max_examples=60, deadline=None)
    def test_first_address_and_pool_conserve_blocks(self, producers):
        chain = make_tiny_chain(producers)
        for policy, registry in (("first-address", None), ("pool", REGISTRY)):
            credits = attribute(chain, policy, registry=registry)
            assert credits.total_weight == len(producers)
            assert credits.n_credits == len(producers)


class TestStructuralInvariants:
    @given(producer_lists)
    @settings(max_examples=60, deadline=None)
    def test_csr_offsets_consistent(self, producers):
        chain = make_tiny_chain(producers)
        for policy in ("per-address", "fractional", "first-address"):
            credits = attribute(chain, policy)
            assert credits.block_offsets[0] == 0
            assert credits.block_offsets[-1] == credits.n_credits
            assert np.all(np.diff(credits.block_offsets) >= 1)
            assert np.all(np.diff(credits.block_positions) >= 0)

    @given(producer_lists)
    @settings(max_examples=60, deadline=None)
    def test_distribution_of_whole_chain_is_complete(self, producers):
        chain = make_tiny_chain(producers)
        credits = attribute(chain, "per-address")
        distribution = credits.distribution(0, credits.n_credits)
        assert distribution.sum() == credits.total_weight
        flat = {p for block in producers for p in block}
        assert distribution.shape[0] == len(flat)

    @given(producer_lists)
    @settings(max_examples=60, deadline=None)
    def test_pool_policy_never_increases_entities(self, producers):
        chain = make_tiny_chain(producers)
        per_address = attribute(chain, "first-address")
        pooled = attribute(chain, "pool", registry=REGISTRY)
        ids_pa, _ = per_address.distribution_with_entities(0, per_address.n_credits)
        ids_pool, _ = pooled.distribution_with_entities(0, pooled.n_credits)
        assert ids_pool.shape[0] <= ids_pa.shape[0]

    @given(producer_lists, st.integers(min_value=0, max_value=59))
    @settings(max_examples=60, deadline=None)
    def test_window_distribution_subadditive(self, producers, split):
        """Entities in [0, n) = union of entities in [0, k) and [k, n)."""
        chain = make_tiny_chain(producers)
        credits = attribute(chain, "per-address")
        split = min(split, chain.n_blocks)
        lo1, hi1 = credits.credit_range_for_blocks(0, split)
        lo2, hi2 = credits.credit_range_for_blocks(split, chain.n_blocks)
        first = credits.distribution(lo1, hi1)
        second = credits.distribution(lo2, hi2)
        whole = credits.distribution(0, credits.n_credits)
        assert first.sum() + second.sum() == whole.sum()
