"""Fig. 3 — Nakamoto coefficient measured in Bitcoin using fixed windows.

Paper claims: relatively stable at 4 from day 100 to day 260 for all three
granularities; oscillates between 4 and 5 outside that range; the highest
daily values in the first 50 days exceed 35.
"""

import numpy as np

from _bench_util import report_series
from repro.analysis.figures import figure_3


def test_fig03_btc_nakamoto_fixed(benchmark, btc):
    figure = benchmark(figure_3, btc)
    report_series(figure.title, figure.series)

    day = figure.series["day"]
    mid = day.slice(100, 260)
    values, counts = np.unique(mid.values, return_counts=True)
    assert values[counts.argmax()] == 4.0  # mid-year mode is 4
    assert day.fraction_in_range(4, 5) > 0.8
    assert day.slice(0, 50).max() > 35
    assert day.slice(50, 365).max() < 35
