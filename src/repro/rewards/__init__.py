"""Reward and wealth decentralization (extension; related work [9]).

The paper measures who *produces blocks*; Kwon et al. ([9], AFT'19) argue
the deeper question is who *accumulates the rewards*.  This package prices
every block (subsidy + fee model), attributes the income, and measures
the decentralization of cumulative wealth with the same metrics — so the
production and wealth layers can be compared on identical data.
"""

from repro.rewards.schedule import (
    BITCOIN_REWARDS_2019,
    ETHEREUM_REWARDS_2019,
    RewardSchedule,
)
from repro.rewards.uncles import (
    ETHEREUM_UNCLES_2019,
    UncleModel,
    income_with_uncles,
    uncle_credits,
)
from repro.rewards.wealth import (
    cumulative_wealth_series,
    reward_credits,
    total_rewards_by_entity,
)

__all__ = [
    "BITCOIN_REWARDS_2019",
    "ETHEREUM_REWARDS_2019",
    "ETHEREUM_UNCLES_2019",
    "RewardSchedule",
    "UncleModel",
    "cumulative_wealth_series",
    "income_with_uncles",
    "reward_credits",
    "total_rewards_by_entity",
    "uncle_credits",
]
