"""Metric instruments: counters, gauges and timing histograms.

Instruments are created lazily through a :class:`MetricsRegistry` (the
process-wide one lives on the tracer; see :mod:`repro.obs.tracer`) and
aggregate in memory until exported.  A counter accumulates increments, a
gauge keeps the last value, and a timing histogram records observations in
seconds with exact count/total/min/max plus percentile estimates from a
bounded sample.
"""

from __future__ import annotations

import bisect
import threading

import numpy as np

#: Timing histograms keep at most this many raw observations for
#: percentile estimates; count/total/min/max stay exact past the cap.
_HISTOGRAM_SAMPLE_CAP = 4096

#: Upper bounds (seconds) of the exposition buckets every timing histogram
#: maintains exactly — counts are bumped on :meth:`TimingHistogram.observe`
#: rather than reconstructed from the bounded sample, so bucket totals stay
#: correct past the sample cap.  The implicit ``+Inf`` bucket rides along.
DEFAULT_BUCKET_BOUNDS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing total.

    ``help`` is the human description served on ``/metrics`` ``# HELP``
    lines; ``history`` is the per-instrument time-series hook installed by
    :meth:`MetricsRegistry.set_history` — ``None`` (the default) keeps the
    hot path at a single attribute check.
    """

    __slots__ = ("name", "value", "help", "history")

    def __init__(self, name: str, help: str | None = None) -> None:
        self.name = name
        self.value = 0.0
        self.help = help
        self.history = None

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (default 1) to the counter."""
        self.value += n
        history = self.history
        if history is not None:
            history(self.value)


class Gauge:
    """A point-in-time value; each ``set`` overwrites the last."""

    __slots__ = ("name", "value", "help", "history")

    def __init__(self, name: str, help: str | None = None) -> None:
        self.name = name
        self.value = 0.0
        self.help = help
        self.history = None

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)
        history = self.history
        if history is not None:
            history(self.value)


class TimingHistogram:
    """Distribution of durations (seconds).

    >>> h = TimingHistogram("build")
    >>> for t in (0.1, 0.2, 0.3):
    ...     h.observe(t)
    >>> h.count, round(h.total, 3), round(h.mean, 3)
    (3, 0.6, 0.2)
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum",
                 "bucket_bounds", "_bucket_counts", "_samples", "help", "history")

    def __init__(
        self, name: str, bucket_bounds: tuple[float, ...] = DEFAULT_BUCKET_BOUNDS,
        help: str | None = None,
    ) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.bucket_bounds = tuple(sorted(bucket_bounds))
        #: Per-bucket (non-cumulative) counts; the last slot is +Inf.
        self._bucket_counts = [0] * (len(self.bucket_bounds) + 1)
        self._samples: list[float] = []
        self.help = help
        self.history = None

    def observe(self, seconds: float) -> None:
        """Record one duration."""
        seconds = float(seconds)
        self.count += 1
        self.total += seconds
        if seconds < self.minimum:
            self.minimum = seconds
        if seconds > self.maximum:
            self.maximum = seconds
        self._bucket_counts[bisect.bisect_left(self.bucket_bounds, seconds)] += 1
        if len(self._samples) < _HISTOGRAM_SAMPLE_CAP:
            self._samples.append(seconds)
        history = self.history
        if history is not None:
            history(seconds)

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(le, cumulative_count)`` pairs ending at +Inf.

        >>> h = TimingHistogram("t", bucket_bounds=(0.1, 1.0))
        >>> for t in (0.05, 0.5, 2.0):
        ...     h.observe(t)
        >>> h.cumulative_buckets()
        [(0.1, 1), (1.0, 2), (inf, 3)]
        """
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(
            (*self.bucket_bounds, float("inf")), self._bucket_counts
        ):
            running += count
            out.append((bound, running))
        return out

    @property
    def mean(self) -> float:
        """Average observed duration (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the retained sample."""
        if not self._samples:
            return 0.0
        return float(np.percentile(np.asarray(self._samples), q))

    def as_dict(self) -> dict:
        """Exportable summary of this histogram."""
        if not self.count:
            return {"count": 0, "total": 0.0, "mean": 0.0,
                    "min": 0.0, "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def dump_state(self) -> dict:
        """Full mergeable state (exact totals, buckets, bounded sample)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "bounds": list(self.bucket_bounds),
            "buckets": list(self._bucket_counts),
            "samples": list(self._samples),
        }

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's :meth:`dump_state` into this one.

        Exact statistics (count/total/min/max) always merge exactly;
        bucket counts merge exactly when the bounds agree (they do for
        every histogram this package creates) and are otherwise
        reconstructed from the bounded sample.  Percentiles stay
        estimates over the combined bounded sample, as for a single
        process.
        """
        count = int(state.get("count", 0))
        if not count:
            return
        self.count += count
        self.total += float(state.get("total", 0.0))
        self.minimum = min(self.minimum, float(state.get("min", self.minimum)))
        self.maximum = max(self.maximum, float(state.get("max", self.maximum)))
        samples = state.get("samples", [])
        if tuple(state.get("bounds", ())) == self.bucket_bounds:
            for i, n in enumerate(state.get("buckets", [])):
                self._bucket_counts[i] += int(n)
        else:  # pragma: no cover - foreign bounds only via hand-built states
            for seconds in samples:
                self._bucket_counts[
                    bisect.bisect_left(self.bucket_bounds, seconds)
                ] += 1
        room = _HISTOGRAM_SAMPLE_CAP - len(self._samples)
        if room > 0:
            self._samples.extend(samples[:room])


class MetricsRegistry:
    """Lazily-created named instruments, one namespace per kind.

    Instrument creation and whole-registry reads take an internal lock so a
    serving thread (the ``/metrics`` endpoint scraping mid-run) never
    iterates a dict that an ingest thread is growing.  Updates on an
    already-created instrument are plain attribute writes — each scrape
    sees a consistent instrument list and at-least-as-old values.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.timings: dict[str, TimingHistogram] = {}
        #: The attached time-series store (see :meth:`set_history`), if any.
        self._history = None

    def counter(self, name: str, help: str | None = None) -> Counter:
        """Get or create the counter ``name`` (``help`` feeds ``# HELP``)."""
        instrument = self.counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self.counters.setdefault(name, Counter(name, help=help))
                if self._history is not None and instrument.history is None:
                    instrument.history = self._history.recorder(name, kind="counter")
        if help is not None and instrument.help is None:
            instrument.help = help
        return instrument

    def gauge(self, name: str, help: str | None = None) -> Gauge:
        """Get or create the gauge ``name`` (``help`` feeds ``# HELP``)."""
        instrument = self.gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self.gauges.setdefault(name, Gauge(name, help=help))
                if self._history is not None and instrument.history is None:
                    instrument.history = self._history.recorder(name, kind="gauge")
        if help is not None and instrument.help is None:
            instrument.help = help
        return instrument

    def timing(self, name: str, help: str | None = None) -> TimingHistogram:
        """Get or create the timing histogram ``name``."""
        instrument = self.timings.get(name)
        if instrument is None:
            with self._lock:
                instrument = self.timings.setdefault(
                    name, TimingHistogram(name, help=help)
                )
                if self._history is not None and instrument.history is None:
                    instrument.history = self._history.recorder(name, kind="timing")
        if help is not None and instrument.help is None:
            instrument.help = help
        return instrument

    def set_history(self, store) -> None:
        """Attach (or with ``None`` detach) a time-series history store.

        While attached, every instrument update also appends to the
        store: counters record their cumulative value, gauges their
        current value, timing histograms each observed duration.
        Existing and future instruments are both wired; detaching resets
        every instrument's hook to the free ``None`` path.
        """
        with self._lock:
            self._history = store
            for kind, instruments in (
                ("counter", self.counters),
                ("gauge", self.gauges),
                ("timing", self.timings),
            ):
                for name, instrument in instruments.items():
                    instrument.history = (
                        None if store is None else store.recorder(name, kind=kind)
                    )

    @property
    def history(self):
        """The attached time-series store, or ``None``."""
        return self._history

    def reset(self) -> None:
        """Drop every instrument (an attached history store stays attached)."""
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.timings.clear()

    def instruments(self) -> tuple[list[Counter], list[Gauge], list[TimingHistogram]]:
        """Name-sorted, point-in-time instrument lists (safe to iterate)."""
        with self._lock:
            return (
                [c for _, c in sorted(self.counters.items())],
                [g for _, g in sorted(self.gauges.items())],
                [t for _, t in sorted(self.timings.items())],
            )

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument, sorted by name."""
        counters, gauges, timings = self.instruments()
        return {
            "counters": {c.name: c.value for c in counters},
            "gauges": {g.name: g.value for g in gauges},
            "timings": {t.name: t.as_dict() for t in timings},
        }

    def dump_state(self) -> dict:
        """Picklable full state for cross-process merging (see tracer.adopt)."""
        counters, gauges, timings = self.instruments()
        return {
            "counters": {c.name: c.value for c in counters},
            "gauges": {g.name: g.value for g in gauges},
            "timings": {t.name: t.dump_state() for t in timings},
        }

    def merge_state(self, state: dict) -> None:
        """Fold a :meth:`dump_state` from another process into this registry.

        Counters add, gauges take the incoming value (last write wins,
        matching single-process semantics), timing histograms merge their
        exact statistics and bounded samples.
        """
        for name, value in state.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, hist_state in state.get("timings", {}).items():
            self.timing(name).merge_state(hist_state)
