"""Semantic analysis for parsed queries.

The planner walks a :class:`~repro.sql.astnodes.Select` and produces a
:class:`QueryPlan` with everything the executor needs decided up front:
whether the query aggregates, which aggregate nodes occur where, the output
column names, and validation errors surfaced as :class:`SqlPlanError`
before any data is touched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import SqlPlanError
from repro.sql.astnodes import (
    Aggregate,
    Between,
    Binary,
    Case,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    Join,
    Literal,
    Select,
    SelectItem,
    Star,
    SubquerySource,
    TableRef,
    Unary,
)


@dataclass
class QueryPlan:
    """A validated query, ready for execution."""

    select: Select
    is_aggregation: bool
    aggregates: tuple[Aggregate, ...]
    output_names: tuple[str, ...]
    table_names: tuple[str, ...] = field(default_factory=tuple)


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every sub-expression, depth-first."""
    yield expr
    if isinstance(expr, Unary):
        yield from walk(expr.operand)
    elif isinstance(expr, Binary):
        yield from walk(expr.left)
        yield from walk(expr.right)
    elif isinstance(expr, Between):
        yield from walk(expr.operand)
        yield from walk(expr.low)
        yield from walk(expr.high)
    elif isinstance(expr, InList):
        yield from walk(expr.operand)
        for item in expr.items:
            yield from walk(item)
    elif isinstance(expr, IsNull):
        yield from walk(expr.operand)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            yield from walk(arg)
    elif isinstance(expr, Aggregate):
        if expr.argument is not None:
            yield from walk(expr.argument)
    elif isinstance(expr, Case):
        for condition, value in expr.whens:
            yield from walk(condition)
            yield from walk(value)
        if expr.default is not None:
            yield from walk(expr.default)


def find_aggregates(expr: Expr) -> list[Aggregate]:
    """Return the aggregate nodes inside ``expr`` (not descending into them)."""
    found: list[Aggregate] = []

    def visit(node: Expr) -> None:
        if isinstance(node, Aggregate):
            found.append(node)
            return
        for child in _direct_children(node):
            visit(child)

    visit(expr)
    return found


def _direct_children(expr: Expr) -> list[Expr]:
    if isinstance(expr, Unary):
        return [expr.operand]
    if isinstance(expr, Binary):
        return [expr.left, expr.right]
    if isinstance(expr, Between):
        return [expr.operand, expr.low, expr.high]
    if isinstance(expr, InList):
        return [expr.operand, *expr.items]
    if isinstance(expr, IsNull):
        return [expr.operand]
    if isinstance(expr, FunctionCall):
        return list(expr.args)
    if isinstance(expr, Case):
        children: list[Expr] = []
        for condition, value in expr.whens:
            children.extend((condition, value))
        if expr.default is not None:
            children.append(expr.default)
        return children
    return []


def source_tables(
    source: TableRef | SubquerySource | Join,
) -> list[TableRef | SubquerySource]:
    """Flatten a FROM clause into its sources, left to right."""
    if isinstance(source, (TableRef, SubquerySource)):
        return [source]
    return source_tables(source.left) + [source.right]


def plan(select: Select) -> QueryPlan:
    """Validate ``select`` and produce a :class:`QueryPlan`."""
    tables = source_tables(select.source)
    bindings = [t.binding for t in tables]
    if len(set(bindings)) != len(bindings):
        raise SqlPlanError(f"duplicate table binding in FROM: {bindings}")
    for table in tables:
        if isinstance(table, SubquerySource):
            plan(table.select)  # validate derived tables eagerly

    if select.where is not None and find_aggregates(select.where):
        raise SqlPlanError("aggregate functions are not allowed in WHERE")
    for expr in select.group_by:
        if find_aggregates(expr):
            raise SqlPlanError("aggregate functions are not allowed in GROUP BY")

    aggregates: list[Aggregate] = []
    if not isinstance(select.items, Star):
        for item in select.items:
            aggregates.extend(find_aggregates(item.expr))
    if select.having is not None:
        aggregates.extend(find_aggregates(select.having))
    for order in select.order_by:
        aggregates.extend(find_aggregates(order.expr))

    is_aggregation = bool(select.group_by) or bool(aggregates)
    if is_aggregation and isinstance(select.items, Star):
        raise SqlPlanError("SELECT * cannot be combined with GROUP BY or aggregates")
    if select.having is not None and not is_aggregation:
        raise SqlPlanError("HAVING requires GROUP BY or aggregate functions")

    for aggregate in aggregates:
        if aggregate.distinct and aggregate.func != "COUNT":
            raise SqlPlanError(
                f"DISTINCT is only supported inside COUNT, not {aggregate.func}"
            )
        if aggregate.argument is not None and find_aggregates(aggregate.argument):
            raise SqlPlanError("nested aggregate functions are not allowed")

    output_names = _output_names(select)
    deduped: list[Aggregate] = []
    for aggregate in aggregates:
        if aggregate not in deduped:
            deduped.append(aggregate)
    return QueryPlan(
        select=select,
        is_aggregation=is_aggregation,
        aggregates=tuple(deduped),
        output_names=output_names,
        table_names=tuple(
            t.name for t in tables if isinstance(t, TableRef)
        ),
    )


def _output_names(select: Select) -> tuple[str, ...]:
    if isinstance(select.items, Star):
        return ()
    names: list[str] = []
    for i, item in enumerate(select.items):
        names.append(item.alias or _default_name(item, i))
    seen: dict[str, int] = {}
    unique: list[str] = []
    for name in names:
        if name in seen:
            seen[name] += 1
            unique.append(f"{name}_{seen[name]}")
        else:
            seen[name] = 0
            unique.append(name)
    return tuple(unique)


def _default_name(item: SelectItem, index: int) -> str:
    expr = item.expr
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, Aggregate):
        if expr.argument is None:
            return "count"
        if isinstance(expr.argument, ColumnRef):
            return f"{expr.func.lower()}_{expr.argument.name}"
        return expr.func.lower()
    if isinstance(expr, FunctionCall):
        return expr.name.lower()
    if isinstance(expr, Literal):
        return f"literal_{index}"
    return f"col_{index}"
