"""Span-tree summaries: aggregate a trace into self/total times.

Spans sharing a (parent-path, name) are merged into one
:class:`SpanTreeNode` carrying call count, total wall time and *self*
time (total minus the time spent in child spans), then rendered as an
indented tree — the output of the ``repro trace`` subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.obs.export import load_trace_file
from repro.obs.tracer import SpanRecord, Tracer


@dataclass
class SpanTreeNode:
    """Aggregated statistics for one span name at one tree position."""

    name: str
    count: int = 0
    total: float = 0.0
    child_time: float = 0.0
    children: dict = field(default_factory=dict)

    @property
    def self_time(self) -> float:
        """Wall time spent in this span outside any child span."""
        return max(self.total - self.child_time, 0.0)


def aggregate_spans(spans: Sequence[SpanRecord]) -> SpanTreeNode:
    """Merge span records into a tree rooted at a synthetic ``<trace>``."""
    root = SpanTreeNode("<trace>")
    by_id = {span.span_id: span for span in spans}
    node_of: dict[int | None, SpanTreeNode] = {}

    def node_for(span: SpanRecord) -> SpanTreeNode:
        cached = node_of.get(span.span_id)
        if cached is not None:
            return cached
        parent_span = by_id.get(span.parent_id) if span.parent_id is not None else None
        parent_node = node_for(parent_span) if parent_span is not None else root
        node = parent_node.children.get(span.name)
        if node is None:
            node = parent_node.children[span.name] = SpanTreeNode(span.name)
        node_of[span.span_id] = node
        return node

    for span in sorted(spans, key=lambda s: s.start):
        node = node_for(span)
        node.count += 1
        node.total += span.duration
        if span.parent_id in by_id:
            node_of[span.parent_id].child_time += span.duration
        else:
            root.total += span.duration
            root.count = max(root.count, 1)
    return root


def format_duration(seconds: float) -> str:
    """Human duration: µs under 1 ms, ms under 1 s, seconds above."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def format_span_tree(root: SpanTreeNode) -> str:
    """Render an aggregated tree with count, total and self columns."""
    lines = [f"{'span':<52s} {'count':>6s} {'total':>10s} {'self':>10s}"]

    def visit(node: SpanTreeNode, prefix: str, is_last: bool, depth: int) -> None:
        if depth == 0:
            label = node.name
            child_prefix = ""
        else:
            connector = "└─ " if is_last else "├─ "
            label = prefix + connector + node.name
            child_prefix = prefix + ("   " if is_last else "│  ")
        lines.append(
            f"{label:<52s} {node.count:>6d} "
            f"{format_duration(node.total):>10s} {format_duration(node.self_time):>10s}"
        )
        ordered = sorted(node.children.values(), key=lambda n: -n.total)
        for i, child in enumerate(ordered):
            visit(child, child_prefix, i == len(ordered) - 1, depth + 1)

    top_level = sorted(root.children.values(), key=lambda n: -n.total)
    for i, node in enumerate(top_level):
        visit(node, "", i == len(top_level) - 1, 0)
    if len(lines) == 1:
        lines.append("(no spans recorded)")
    return "\n".join(lines)


def format_metrics(metrics: dict) -> str:
    """Render a metrics snapshot (counters, gauges, timing histograms)."""
    lines: list[str] = []
    if metrics.get("counters"):
        lines.append("counters:")
        for name, value in sorted(metrics["counters"].items()):
            lines.append(f"  {name:<48s} {value:>12g}")
    if metrics.get("gauges"):
        lines.append("gauges:")
        for name, value in sorted(metrics["gauges"].items()):
            lines.append(f"  {name:<48s} {value:>12g}")
    if metrics.get("timings"):
        lines.append("timings:")
        for name, stats in sorted(metrics["timings"].items()):
            lines.append(
                f"  {name:<48s} count={stats.get('count', 0):<6g} "
                f"total={format_duration(stats.get('total', 0.0))} "
                f"mean={format_duration(stats.get('mean', 0.0))} "
                f"p95={format_duration(stats.get('p95', 0.0))}"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"


def summarize_tracer(tracer: Tracer) -> str:
    """Span tree + metrics summary of a live tracer."""
    tree = format_span_tree(aggregate_spans(tracer.spans))
    return f"{tree}\n\n{format_metrics(tracer.metrics.snapshot())}"


def summarize_trace_file(path: str | Path) -> str:
    """Span tree + metrics summary of a trace file in either format."""
    spans, metrics = load_trace_file(path)
    tree = format_span_tree(aggregate_spans(spans))
    return f"{tree}\n\n{format_metrics(metrics)}"
