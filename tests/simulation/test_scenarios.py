"""Tests for the calibrated 2019 scenarios (dataset-shape checks)."""

import numpy as np
import pytest

from repro.chain.specs import BITCOIN, ETHEREUM
from repro.simulation.scenarios import (
    DAY14_EVENTS,
    bitcoin_2019_params,
    ethereum_2019_params,
)
from repro.util.timeutils import YEAR_2019_END, YEAR_2019_START, day_index


class TestBitcoinDataset:
    def test_exact_paper_block_count(self, btc_chain):
        assert btc_chain.n_blocks == 54_231
        assert btc_chain.start_height == 556_459

    def test_timestamps_cover_2019(self, btc_chain):
        assert day_index(int(btc_chain.timestamps[0])) == 0
        assert day_index(int(btc_chain.timestamps[-1])) == 364

    def test_day14_anomalous_blocks_present(self, btc_chain):
        """The paper's blocks 558,473/558,545 with >80/>90 producers."""
        anomalous = btc_chain.anomalous_blocks(threshold=80)
        day14 = [b for b in anomalous if day_index(b.timestamp) == 13]
        assert len(day14) == 2
        counts = sorted(b.producer_count for b in day14)
        assert counts[0] > 80
        assert counts[1] > 90

    def test_early_year_has_more_unique_producers_per_day(self, btc_chain):
        """The fragmented early-2019 regime (paper: first 50 days)."""
        early = btc_chain.slice_by_time(
            YEAR_2019_START, YEAR_2019_START + 40 * 86_400
        )
        late = btc_chain.slice_by_time(
            YEAR_2019_START + 200 * 86_400, YEAR_2019_START + 240 * 86_400
        )
        early_unique = len(set(early.producer_ids.tolist()))
        late_unique = len(set(late.producer_ids.tolist()))
        assert early_unique > 1.5 * late_unique

    def test_average_daily_rate_near_144(self, btc_chain):
        assert btc_chain.n_blocks / 365 == pytest.approx(148.6, abs=1.0)

    def test_anomalies_can_be_disabled(self):
        params = bitcoin_2019_params(include_anomalies=False)
        assert params.multi_coinbase_events == ()
        assert params.share_spikes == ()


class TestEthereumDataset:
    def test_exact_paper_block_count(self, eth_chain):
        assert eth_chain.n_blocks == 2_204_650
        assert eth_chain.start_height == 6_988_615

    def test_single_producer_blocks(self, eth_chain):
        assert eth_chain.n_credits == eth_chain.n_blocks

    def test_difficulty_bomb_dip_in_daily_counts(self, eth_chain):
        days = np.asarray(day_index(eth_chain.timestamps))
        counts = np.bincount(days, minlength=365)
        assert counts[40:58].mean() < 0.8 * counts[90:150].mean()

    def test_no_multi_coinbase_anomalies(self):
        assert ethereum_2019_params().multi_coinbase_events == ()


class TestScenarioParams:
    def test_day14_events_match_paper(self):
        assert [e.n_addresses for e in DAY14_EVENTS] == [84, 95]
        assert all(e.day == 13 for e in DAY14_EVENTS)

    def test_specs_used(self):
        assert bitcoin_2019_params().spec is BITCOIN
        assert ethereum_2019_params().spec is ETHEREUM

    def test_seeds_flow_through(self):
        assert bitcoin_2019_params(seed=7).seed == 7
