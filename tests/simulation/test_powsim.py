"""Tests for the end-to-end chain simulator."""

import numpy as np
import pytest

from repro.chain.pools import PoolInfo, PoolRegistry
from repro.chain.specs import ChainSpec
from repro.errors import SimulationError
from repro.simulation.anomalies import MultiCoinbaseEvent, ShareSpike
from repro.simulation.miners import TailConfig
from repro.simulation.params import SimulationParams
from repro.simulation.powsim import ChainSimulator
from repro.util.timeutils import YEAR_2019_END, YEAR_2019_START

SMALL_SPEC = ChainSpec(
    name="smallchain",
    start_height=100_000,
    block_count=3_650,  # ~10 blocks/day
    target_interval=8_640.0,
    blocks_per_day=10,
    window_day=10,
    window_week=70,
    window_month=300,
)


def make_params(**overrides) -> SimulationParams:
    registry = PoolRegistry(
        [
            PoolInfo("A", "addr-a", 0.40, 0.40),
            PoolInfo("B", "addr-b", 0.30, 0.30),
            PoolInfo("C", "addr-c", 0.20, 0.20),
        ]
    )
    config = dict(
        spec=SMALL_SPEC,
        registry=registry,
        tail=TailConfig(2, 0.05, 1.0, 1.0, early_period_end=0),
        seed=11,
    )
    config.update(overrides)
    return SimulationParams(**config)


class TestBasicSimulation:
    def test_exact_block_count_and_heights(self):
        chain = ChainSimulator(make_params()).run()
        assert chain.n_blocks == 3_650
        assert chain.start_height == 100_000
        assert chain.end_height == 100_000 + 3_650 - 1

    def test_timestamps_within_2019_and_sorted(self):
        chain = ChainSimulator(make_params()).run()
        assert chain.timestamps[0] >= YEAR_2019_START
        assert chain.timestamps[-1] < YEAR_2019_END
        assert np.all(np.diff(chain.timestamps) >= 0)

    def test_deterministic_per_seed(self):
        a = ChainSimulator(make_params(seed=3)).run()
        b = ChainSimulator(make_params(seed=3)).run()
        assert np.array_equal(a.producer_ids, b.producer_ids)
        assert np.array_equal(a.timestamps, b.timestamps)

    def test_different_seeds_differ(self):
        a = ChainSimulator(make_params(seed=3)).run()
        b = ChainSimulator(make_params(seed=4)).run()
        assert not np.array_equal(a.producer_ids, b.producer_ids)

    def test_pool_shares_approximately_reproduced(self):
        chain = ChainSimulator(make_params()).run()
        first = chain.producer_ids[chain.offsets[:-1]]
        share_a = (first == 0).mean()
        assert share_a == pytest.approx(0.40 / 0.95, abs=0.04)

    def test_generic_chain_daily_rates(self):
        rates = ChainSimulator(make_params()).daily_rates()
        assert rates.shape == (365,)
        assert rates.mean() == pytest.approx(10.0, rel=0.05)


class TestMultiCoinbaseInjection:
    def test_event_creates_multi_producer_block(self):
        params = make_params(
            multi_coinbase_events=(
                MultiCoinbaseEvent(day=50, position=0.5, n_addresses=30),
            )
        )
        chain = ChainSimulator(params).run()
        anomalous = chain.anomalous_blocks(threshold=10)
        assert len(anomalous) == 1
        assert anomalous[0].producer_count == 31

    def test_extra_addresses_are_fresh(self):
        params = make_params(
            multi_coinbase_events=(
                MultiCoinbaseEvent(day=50, position=0.5, n_addresses=5),
            )
        )
        chain = ChainSimulator(params).run()
        block = chain.anomalous_blocks(threshold=5)[0]
        assert len(set(block.producers)) == block.producer_count
        assert sum("cbout" in p for p in block.producers) == 5

    def test_two_events_same_day(self):
        params = make_params(
            multi_coinbase_events=(
                MultiCoinbaseEvent(day=13, position=0.3, n_addresses=10),
                MultiCoinbaseEvent(day=13, position=0.8, n_addresses=20),
            )
        )
        chain = ChainSimulator(params).run()
        assert len(chain.anomalous_blocks(threshold=10)) == 2

    def test_credit_count_includes_extras(self):
        params = make_params(
            multi_coinbase_events=(
                MultiCoinbaseEvent(day=10, position=0.0, n_addresses=7),
            )
        )
        chain = ChainSimulator(params).run()
        assert chain.n_credits == chain.n_blocks + 7


class TestShareSpikes:
    def test_spike_shifts_distribution_in_window(self):
        params = make_params(
            spec=ChainSpec("smallchain", 0, 36_500, 864.0, 100, 100, 700, 3_000),
            share_spikes=(ShareSpike("C", start_day=100.0, n_days=10.0, factor=8.0),),
        )
        chain = ChainSimulator(params).run()
        spiked = chain.slice_by_time(
            YEAR_2019_START + 100 * 86_400, YEAR_2019_START + 110 * 86_400
        )
        normal = chain.slice_by_time(
            YEAR_2019_START + 150 * 86_400, YEAR_2019_START + 160 * 86_400
        )
        share_spiked = (spiked.producer_ids[spiked.offsets[:-1]] == 2).mean()
        share_normal = (normal.producer_ids[normal.offsets[:-1]] == 2).mean()
        assert share_spiked > 2.5 * share_normal

    def test_sub_day_spike_only_hits_matching_timestamps(self):
        params = make_params(
            spec=ChainSpec("smallchain", 0, 36_500, 864.0, 100, 100, 700, 3_000),
            share_spikes=(ShareSpike("C", start_day=100.5, n_days=0.5, factor=20.0),),
        )
        chain = ChainSimulator(params).run()
        first_half = chain.slice_by_time(
            YEAR_2019_START + 100 * 86_400, YEAR_2019_START + 100 * 86_400 + 43_200
        )
        second_half = chain.slice_by_time(
            YEAR_2019_START + 100 * 86_400 + 43_200, YEAR_2019_START + 101 * 86_400
        )
        share_first = (first_half.producer_ids[first_half.offsets[:-1]] == 2).mean()
        share_second = (second_half.producer_ids[second_half.offsets[:-1]] == 2).mean()
        assert share_second > 2 * share_first

    def test_unknown_spike_pool_rejected(self):
        with pytest.raises(SimulationError):
            make_params(share_spikes=(ShareSpike("Nope", 1.0, 1.0, 2.0),))


class TestParamsValidation:
    def test_empty_registry_rejected(self):
        with pytest.raises(SimulationError):
            make_params(registry=PoolRegistry())

    def test_pool_index_lookup(self):
        params = make_params()
        assert params.pool_index("B") == 1
        with pytest.raises(SimulationError):
            params.pool_index("Nope")
