"""Deterministic, seeded fault injection for the data layer.

A :class:`FaultInjector` is the adversary the resilience layer is tested
against: wrapped around page reads, cache files and block feeds, it
injects

``read_error``
    a transient exception on a data-layer read,
``timeout``
    a simulated deadline overrun (also transient),
``truncate_page``
    a block page that arrives with its tail missing,
``duplicate_page``
    rows of a page delivered twice,
``reorder_page``
    a page whose rows arrive out of order,
``corrupt_cache``
    flipped bytes in an on-disk cache file,
``malformed_block``
    a block with a corrupted height, a regressed timestamp, or an empty
    coinbase address list,

on a schedule driven entirely by a named RNG stream — the same
``(plan, seed)`` pair always fires the same faults at the same
opportunities, which is what lets ``repro chaos`` assert byte-identical
recovery.  Fired faults are counted per kind on the :mod:`repro.obs`
metrics registry (``resilience.fault.<kind>``).

Spec strings configure a plan from the CLI (``--inject-faults``)::

    read_error:rate=0.3,max=5;truncate_page:rate=0.2;malformed_block:rate=0.1

Clauses are ``kind[:key=value,...]`` joined by ``;`` with keys ``rate``
(probability per opportunity, default 0.25) and ``max`` (cap on fires,
default unlimited).  Bad specs raise :class:`~repro.errors.FaultSpecError`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import DeadlineExceededError, FaultSpecError, InjectedFaultError
from repro.resilience.integrity import RawBlock
from repro.util.rng import derive_rng

#: Every fault kind the injector understands.
FAULT_KINDS: tuple[str, ...] = (
    "read_error",
    "timeout",
    "truncate_page",
    "duplicate_page",
    "reorder_page",
    "corrupt_cache",
    "malformed_block",
)

#: The ways a ``malformed_block`` fault can mangle one block.
MALFORMED_VARIANTS: tuple[str, ...] = (
    "empty_producers",
    "timestamp_regression",
    "height_corruption",
)

_DEFAULT_RATE = 0.25


@dataclass(frozen=True)
class FaultRule:
    """One fault kind's schedule: fire with ``rate`` up to ``max_count`` times."""

    kind: str
    rate: float = _DEFAULT_RATE
    max_count: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise FaultSpecError(
                f"fault rate must be in [0, 1], got {self.rate} for {self.kind!r}"
            )
        if self.max_count is not None and self.max_count < 0:
            raise FaultSpecError(
                f"fault max must be >= 0, got {self.max_count} for {self.kind!r}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A set of fault rules, at most one per kind."""

    rules: tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        kinds = [rule.kind for rule in self.rules]
        if len(kinds) != len(set(kinds)):
            raise FaultSpecError(f"duplicate fault kinds in plan: {kinds}")

    @property
    def kinds(self) -> tuple[str, ...]:
        """The fault kinds this plan schedules."""
        return tuple(rule.kind for rule in self.rules)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``kind:rate=...,max=...;kind...`` spec string."""
        return parse_fault_spec(spec)

    @classmethod
    def default(cls, rate: float = 0.2) -> "FaultPlan":
        """The chaos harness's default: every fault class, moderate rates."""
        return cls(
            (
                FaultRule("read_error", rate=rate),
                FaultRule("timeout", rate=rate / 2),
                FaultRule("truncate_page", rate=rate),
                FaultRule("duplicate_page", rate=rate),
                FaultRule("reorder_page", rate=rate),
                FaultRule("corrupt_cache", rate=1.0, max_count=1),
                FaultRule("malformed_block", rate=rate),
            )
        )


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse the CLI's ``--inject-faults`` spec into a :class:`FaultPlan`.

    >>> parse_fault_spec("read_error:rate=0.5,max=3").rules
    (FaultRule(kind='read_error', rate=0.5, max_count=3),)
    """
    if not isinstance(spec, str) or not spec.strip():
        raise FaultSpecError("fault spec must be a non-empty string")
    rules: list[FaultRule] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, _, options = clause.partition(":")
        kind = kind.strip()
        kwargs: dict[str, float | int] = {}
        if options.strip():
            for option in options.split(","):
                key, sep, value_text = option.partition("=")
                key = key.strip()
                if not sep or key not in ("rate", "max"):
                    raise FaultSpecError(
                        f"bad fault option {option!r} in clause {clause!r} "
                        "(expected rate=FLOAT or max=INT)"
                    )
                try:
                    if key == "rate":
                        kwargs["rate"] = float(value_text)
                    else:
                        kwargs["max_count"] = int(value_text)
                except ValueError as exc:
                    raise FaultSpecError(
                        f"bad fault option value {option!r} in {clause!r}"
                    ) from exc
        rules.append(FaultRule(kind, **kwargs))
    if not rules:
        raise FaultSpecError(f"fault spec {spec!r} contains no clauses")
    return FaultPlan(tuple(rules))


class FaultInjector:
    """Fires the plan's faults on a deterministic seeded schedule.

    Each injection point is an *opportunity*; the injector draws one
    uniform variate per (opportunity, rule) from the ``fault-injector``
    stream of ``seed``, so runs with the same plan and seed are
    bit-identical.  :attr:`fired` counts injections per kind.
    """

    def __init__(self, plan: FaultPlan, seed: int = 7) -> None:
        self.plan = plan
        self.seed = seed
        self._rules = {rule.kind: rule for rule in plan.rules}
        self._rng = derive_rng(seed, "fault-injector")
        self.fired: dict[str, int] = {kind: 0 for kind in self._rules}
        self.opportunities: dict[str, int] = {kind: 0 for kind in self._rules}

    def _fire(self, kind: str) -> bool:
        rule = self._rules.get(kind)
        if rule is None:
            return False
        self.opportunities[kind] += 1
        # Draw before checking the cap so capping a kind never perturbs
        # the schedule of the others.
        draw = float(self._rng.random())
        if rule.max_count is not None and self.fired[kind] >= rule.max_count:
            return False
        if draw >= rule.rate:
            return False
        self.fired[kind] += 1
        obs.get_tracer().metrics.counter(f"resilience.fault.{kind}").inc()
        return True

    # -- transient read faults ------------------------------------------------

    def on_read(self, name: str) -> None:
        """Raise an injected transient failure for the read ``name``, maybe."""
        if self._fire("read_error"):
            raise InjectedFaultError(f"injected transient read error on {name}")
        if self._fire("timeout"):
            raise DeadlineExceededError(f"injected timeout on {name}")

    # -- page mangling --------------------------------------------------------

    def mangle_page(self, page: list[RawBlock], page_index: int = 1) -> list[RawBlock]:
        """Return ``page`` with any scheduled transport faults applied.

        Mangling happens *after* a successful read: retries fix transient
        errors, the integrity layer fixes mangled content.  Pass
        ``page_index=0`` for the extract's first page — a timestamp
        regression on the very first block is indistinguishable from a
        legitimately early timestamp, so the fault model spares that row.
        """
        if not page:
            return page
        mangled = list(page)
        if self._fire("truncate_page") and len(mangled) > 1:
            mangled = mangled[: max(1, len(mangled) // 2)]
        if self._fire("duplicate_page"):
            dup_count = max(1, len(mangled) // 4)
            mangled = mangled + mangled[:dup_count]
        if self._fire("reorder_page") and len(mangled) > 1:
            order = self._rng.permutation(len(mangled))
            mangled = [mangled[int(i)] for i in order]
        if self._fire("malformed_block"):
            index = int(self._rng.integers(len(mangled)))
            timestamp_ok = page_index > 0 or index > 0
            mangled[index] = self._malform(mangled[index], timestamp_ok)
        return mangled

    def _malform(self, block: RawBlock, timestamp_ok: bool = True) -> RawBlock:
        variant = MALFORMED_VARIANTS[
            int(self._rng.integers(len(MALFORMED_VARIANTS)))
        ]
        if variant == "timestamp_regression" and not timestamp_ok:
            variant = "height_corruption"
        if variant == "empty_producers":
            return RawBlock(block.height, block.timestamp, ())
        if variant == "timestamp_regression":
            return RawBlock(block.height, block.timestamp - 86_400_000, block.producers)
        return RawBlock(-block.height, block.timestamp, block.producers)

    def mangle_feed(self, feed, crash_on_malformed: bool = False):
        """Per-block generator form of :meth:`mangle_page` for monitors.

        Yields each block's producer list, occasionally dropped
        (``truncate_page``), repeated (``duplicate_page``) or emptied
        (``malformed_block``) — an emptied list is what crashes an
        unsupervised monitor thread.
        """
        for producers in feed:
            if self._fire("truncate_page"):
                continue
            if self._fire("malformed_block"):
                yield []
                continue
            yield producers
            if self._fire("duplicate_page"):
                yield producers

    # -- cache corruption -----------------------------------------------------

    def corrupt_file(self, path) -> bool:
        """Flip one byte near the middle of ``path`` if scheduled.

        Returns True when the file was actually corrupted.
        """
        if not self._fire("corrupt_cache"):
            return False
        corrupt_file_bytes(path, rng=self._rng)
        return True


def corrupt_file_bytes(path, rng: np.random.Generator | None = None) -> int:
    """Unconditionally flip one byte of ``path``; returns the offset flipped.

    Exposed separately so integrity tests can corrupt a cache file
    without building a whole injector.
    """
    rng = rng if rng is not None else derive_rng(0, "corrupt-file")
    data = bytearray(path.read_bytes() if hasattr(path, "read_bytes")
                     else open(path, "rb").read())
    if not data:
        return -1
    offset = int(rng.integers(len(data) // 4, max(len(data) * 3 // 4, 1)))
    data[offset] ^= 0xFF
    if hasattr(path, "write_bytes"):
        path.write_bytes(bytes(data))
    else:
        with open(path, "wb") as fh:
            fh.write(bytes(data))
    return offset
