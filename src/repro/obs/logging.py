"""Structured logging correlated with the tracer's spans.

Every ``repro.*`` logger can emit either a human line or one JSON object
per line; in both modes a :class:`SpanContextFilter` injects the active
span id and name from the process-wide tracer, so a warning logged inside
``engine.sliding_sweep`` joins against the exported trace by ``span_id``.

Configuration is one call (the CLI wires it to the global
``--log-json`` / ``--log-level`` flags)::

    from repro.obs.logging import configure_logging
    configure_logging(json_lines=True, level="DEBUG")

Library modules log through plain :func:`logging.getLogger` under the
``repro.`` hierarchy and never configure handlers themselves, so embedding
applications keep full control of routing.
"""

from __future__ import annotations

import datetime
import io
import json
import logging
from typing import Any

from repro.obs import tracer as _tracer_module

#: The root of the library's logger hierarchy.
ROOT_LOGGER_NAME = "repro"

#: Fields of a LogRecord that are not user-supplied ``extra`` context.
_RESERVED_RECORD_FIELDS = frozenset(
    vars(logging.makeLogRecord({}))
) | {"message", "asctime", "span_id", "span_name"}


class SpanContextFilter(logging.Filter):
    """Stamp each record with the tracer's active span (id + name)."""

    def filter(self, record: logging.LogRecord) -> bool:
        current = _tracer_module.get_tracer().current_span()
        record.span_id = current[0] if current else None
        record.span_name = current[1] if current else None
        return True


class TextLogFormatter(logging.Formatter):
    """``HH:MM:SS LEVEL logger [span#id] message`` — span part only when set."""

    def format(self, record: logging.LogRecord) -> str:
        timestamp = self.formatTime(record, "%H:%M:%S")
        span_name = getattr(record, "span_name", None)
        span = f" [{span_name}#{getattr(record, 'span_id', '?')}]" if span_name else ""
        base = (
            f"{timestamp} {record.levelname:<7s} {record.name}{span} "
            f"{record.getMessage()}"
        )
        if record.exc_info:
            base = f"{base}\n{self.formatException(record.exc_info)}"
        return base


class JsonLogFormatter(logging.Formatter):
    """One JSON object per line: ts/level/logger/message + span + extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": datetime.datetime.fromtimestamp(
                record.created, tz=datetime.timezone.utc
            ).isoformat(timespec="milliseconds"),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        if getattr(record, "span_id", None) is not None:
            payload["span_id"] = record.span_id
            payload["span"] = record.span_name
        for key, value in record.__dict__.items():
            if key not in _RESERVED_RECORD_FIELDS and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, sort_keys=False)


def configure_logging(
    json_lines: bool = False,
    level: int | str = logging.INFO,
    stream: io.TextIOBase | None = None,
) -> logging.Logger:
    """(Re)configure the ``repro`` logger hierarchy; returns its root.

    Replaces any handler a previous call installed (idempotent, safe in
    tests), attaches the span filter to the handler so every child logger
    inherits the correlation, and stops propagation so embedding apps
    don't double-log.
    """
    if isinstance(level, str):
        parsed = logging.getLevelName(level.upper())
        if not isinstance(parsed, int):
            raise ValueError(f"unknown log level {level!r}")
        level = parsed
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in [h for h in root.handlers if getattr(h, "_repro_managed", False)]:
        root.removeHandler(handler)
        handler.close()
    handler = logging.StreamHandler(stream)
    handler._repro_managed = True  # type: ignore[attr-defined]
    handler.addFilter(SpanContextFilter())
    handler.setFormatter(JsonLogFormatter() if json_lines else TextLogFormatter())
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    if name == ROOT_LOGGER_NAME or name.startswith(f"{ROOT_LOGGER_NAME}."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")
