"""Extension bench — PoW vs DPoS (related work [11]).

Regenerates the DPoS comparison: a Steem-like 2019 chain measured with the
paper's three metrics, against Bitcoin.  The DPoS signature: near-zero
daily Gini, entropy pinned at log2(21), Nakamoto pinned at 11 — and
election churn visible only at month granularity.
"""

import numpy as np
import pytest

from _bench_util import report_series
from repro.core.engine import MeasurementEngine
from repro.simulation import simulate_dpos_2019


def build_and_measure():
    engine = MeasurementEngine.from_chain(simulate_dpos_2019(seed=2019))
    return {
        metric: engine.measure_calendar(metric, "day")
        for metric in ("gini", "entropy", "nakamoto")
    } | {"gini-month": engine.measure_calendar("gini", "month")}


def test_extension_dpos(benchmark, btc):
    results = benchmark.pedantic(build_and_measure, rounds=1, iterations=1)
    report_series("DPoS (Steem-like) 2019", results)

    assert results["gini"].mean() < 0.02
    assert results["entropy"].mean() == pytest.approx(np.log2(21), abs=0.02)
    assert set(np.unique(results["nakamoto"].values)) == {11.0}
    # Election churn only shows at month scale.
    assert results["gini-month"].mean() > 5 * results["gini"].mean()

    # Against Bitcoin: the per-window metrics rank DPoS as MORE decentralized.
    btc_entropy = btc.measure_calendar("entropy", "day")
    btc_nakamoto = btc.measure_calendar("nakamoto", "day")
    assert results["entropy"].mean() > btc_entropy.mean()
    assert results["nakamoto"].mean() > btc_nakamoto.mean()
