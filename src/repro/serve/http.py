"""The telemetry HTTP server: routing, overload protection, lifecycle.

Endpoint routing lives in :class:`_TelemetryHandler`; the overload layer
(:mod:`repro.serve.overload`) is consulted in a fixed order before any
handler work happens:

1. ``/healthz`` bypasses everything — liveness must answer even when
   the server is drowning.
2. Rate limiting: a client over its token budget gets **429** with the
   draft ``RateLimit-*`` headers and ``Retry-After``.
3. Shed check: while the shed breaker is open (or the monitor is
   degraded), cacheable endpoints (``/status``, ``/api/v1/series*``)
   serve the last cached snapshot byte-identical, marked
   ``X-Repro-Degraded: stale`` — no admission, no handler work.
4. Fresh-cache fast path: a cache entry younger than the TTL is served
   as-is (with its strong ETag; ``If-None-Match`` gets **304**).
5. Admission: at most ``max_inflight`` requests execute concurrently,
   a bounded queue waits briefly for a slot, and everyone else gets
   **503** + ``Retry-After`` — or the stale snapshot if one exists.

Every 4xx/5xx on the API carries a standardized JSON error body
``{"error": {"code": ..., "message": ...}}``; an exception escaping a
handler becomes a 500 with that same shape (and bumps
``serve.http_errors_total``) instead of a torn connection.

:class:`TelemetryServer` owns the socket and the daemon serving thread:
``start()`` twice raises :class:`~repro.errors.ServeError`, ``stop()``
is idempotent, and a stopped server cannot be restarted (the socket is
gone — build a new one).
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable
from urllib.parse import parse_qs, urlparse

from repro import obs
from repro.errors import ServeError
from repro.obs.alerts import AlertManager
from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import render_prometheus
from repro.obs.timeseries import TimeSeriesStore
from repro.serve.overload import OverloadConfig, OverloadGuard

logger = logging.getLogger(__name__)

#: Content type mandated by the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_JSON = "application/json; charset=utf-8"
_TEXT = "text/plain; charset=utf-8"


def error_body(code: str, message: str) -> str:
    """The standardized JSON error body for every API 4xx/5xx.

    >>> error_body("not_found", "unknown path /nope")
    '{"error": {"code": "not_found", "message": "unknown path /nope"}}\\n'
    """
    return json.dumps({"error": {"code": code, "message": message}}) + "\n"


def _is_cacheable(path: str) -> bool:
    """Endpoints whose 200 bodies are snapshot-cached for load shedding."""
    return (
        path == "/status"
        or path == "/api/v1/series"
        or path.startswith("/api/v1/series/")
    )


class _TelemetryHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the telemetry callbacks for handlers."""

    daemon_threads = True

    registry: MetricsRegistry
    status_fn: Callable[[], dict]
    ready_fn: Callable[[], bool]
    store: TimeSeriesStore | None
    alert_manager: AlertManager | None
    overload: OverloadGuard | None


class _TelemetryHandler(BaseHTTPRequestHandler):
    """Routes the telemetry endpoints; logs through ``repro.serve``.

    Every request bumps ``serve.http_requests_total`` and times itself
    into ``serve.scrape_seconds``; 5xx responses additionally bump
    ``serve.http_errors_total`` — the pair of counters the availability
    SLO divides.
    """

    server: _TelemetryHTTPServer
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        registry = self.server.registry
        start = time.perf_counter()
        registry.counter(
            "serve.http_requests_total",
            help="Telemetry HTTP requests served (any status).",
        ).inc()
        self._responded = False
        self._extra_headers: list[tuple[str, str]] = []
        self._cache_key: str | None = None
        try:
            self._handle()
        except Exception as exc:  # handler bug -> structured 500, not a torn socket
            logger.exception("telemetry handler failed for %s", self.path)
            if not self._responded:
                try:
                    self._reply_error(500, "internal", f"internal error: {exc}")
                except OSError:
                    pass  # client already gone; the counter still recorded it
            else:
                registry.counter(
                    "serve.http_errors_total",
                    help="Telemetry HTTP responses with a 5xx status.",
                ).inc()
        finally:
            registry.timing(
                "serve.scrape_seconds",
                help="Telemetry HTTP request handling latency.",
            ).observe(time.perf_counter() - start)

    # -- overload flow ---------------------------------------------------

    def _handle(self) -> None:
        parsed = urlparse(self.path)
        path = parsed.path
        if path == "/healthz":
            # Liveness answers unconditionally: no rate limit, no queue.
            self._reply(200, "ok\n", _TEXT)
            return
        guard = self.server.overload
        if guard is None:
            self._route(parsed)
            return
        if guard.limiter is not None:
            decision = guard.limiter.allow(self._client_key())
            if not decision.allowed:
                self._extra_headers = decision.headers()
                self._reply_error(
                    429, "rate_limited",
                    f"client over {decision.limit:g} requests/second; "
                    f"retry in {decision.retry_after:.3f}s",
                )
                return
            self._extra_headers = decision.headers()
        cacheable = _is_cacheable(path)
        if cacheable:
            self._cache_key = path + (f"?{parsed.query}" if parsed.query else "")
            if guard.shedder.shedding():
                hit = guard.cache.get(self._cache_key)
                if hit is not None:
                    guard.shedder.note_shed()
                    self._reply_cached(hit[0], stale=True)
                    return
                # Nothing cached yet: fall through and compute one.
            else:
                hit = guard.cache.get(self._cache_key, fresh_only=True)
                if hit is not None:
                    self._reply_cached(hit[0], stale=False)
                    return
        if guard.admission is None:
            self._route(parsed)
            return
        if guard.admission.acquire():
            guard.shedder.note_admitted()
            try:
                self._route(parsed)
            finally:
                guard.admission.release()
            return
        guard.shedder.note_saturated()
        guard.shedder.note_shed()
        if cacheable and self._cache_key is not None:
            hit = guard.cache.get(self._cache_key)
            if hit is not None:
                self._reply_cached(hit[0], stale=True)
                return
        self._extra_headers.append(
            ("Retry-After", str(max(1, round(guard.config.retry_after))))
        )
        self._reply_error(
            503, "overloaded",
            "server is at capacity; retry shortly",
        )

    def _client_key(self) -> str:
        """Rate-limit key: explicit client id, else the socket peer."""
        return self.headers.get("X-Client-Id") or self.client_address[0]

    # -- routing ---------------------------------------------------------

    def _route(self, parsed) -> None:
        path = parsed.path
        if path == "/metrics":
            self._reply(200, render_prometheus(self.server.registry),
                        PROMETHEUS_CONTENT_TYPE)
        elif path == "/readyz":
            if self.server.ready_fn():
                self._reply(200, "ready\n", _TEXT)
            else:
                self._reply_error(503, "not_ready", "monitor not ready")
        elif path == "/status":
            body = json.dumps(self.server.status_fn(), indent=2) + "\n"
            self._reply_cacheable(body)
        elif path == "/api/v1/alerts":
            self._reply_alerts()
        elif path == "/api/v1/series" or path.startswith("/api/v1/series/"):
            self._reply_series(path, parse_qs(parsed.query))
        else:
            self._reply_error(404, "not_found", f"unknown path {path}")

    def _reply_alerts(self) -> None:
        manager = self.server.alert_manager
        if manager is None:
            self._reply_error(404, "not_enabled", "alerting not enabled")
            return
        payload = manager.summary()
        payload["history"] = manager.history()
        self._reply_json(payload)

    def _reply_series(self, path: str, query: dict) -> None:
        store = self.server.store
        if store is None:
            self._reply_error(404, "not_enabled", "timeseries not enabled")
            return
        name = path[len("/api/v1/series/"):] if path != "/api/v1/series" else ""
        if not name:
            self._reply_cacheable(
                json.dumps({"series": store.series_names()}, indent=2) + "\n"
            )
            return
        params = {}
        for key in ("start", "end", "step"):
            raw = query.get(key, [None])[0]
            if raw is None:
                continue
            try:
                params[key] = float(raw)
            except ValueError:
                self._reply_error(
                    400, "bad_request", f"bad {key}={raw!r}: not a number"
                )
                return
        try:
            result = store.query(name, **params)
        except KeyError:
            self._reply_error(404, "not_found", f"unknown series {name!r}")
            return
        self._reply_cacheable(json.dumps(result, indent=2) + "\n")

    # -- response writing ------------------------------------------------

    def _reply_json(self, payload: dict) -> None:
        self._reply(200, json.dumps(payload, indent=2) + "\n", _JSON)

    def _reply_error(self, code: int, error_code: str, message: str) -> None:
        self._reply(code, error_body(error_code, message), _JSON)

    def _reply_cacheable(self, body: str) -> None:
        """Send a fresh 200 JSON body, snapshotting it for load shedding."""
        guard = self.server.overload
        if guard is None or self._cache_key is None:
            self._reply(200, body, _JSON)
            return
        entry = guard.cache.put(self._cache_key, body.encode("utf-8"), _JSON)
        self._extra_headers.append(("ETag", entry.etag))
        if self.headers.get("If-None-Match") == entry.etag:
            self._reply_raw(304, b"", _JSON)
            return
        self._reply_raw(200, entry.body, entry.content_type)

    def _reply_cached(self, entry, stale: bool) -> None:
        """Serve a snapshot byte-identical to when it was cached."""
        self._extra_headers.append(("ETag", entry.etag))
        if stale:
            self._extra_headers.append(("X-Repro-Degraded", "stale"))
        if self.headers.get("If-None-Match") == entry.etag:
            self._reply_raw(304, b"", entry.content_type)
            return
        self._reply_raw(200, entry.body, entry.content_type)

    def _reply(self, code: int, body: str, content_type: str) -> None:
        self._reply_raw(code, body.encode("utf-8"), content_type)

    def _reply_raw(self, code: int, payload: bytes, content_type: str) -> None:
        if code >= 500:
            self.server.registry.counter(
                "serve.http_errors_total",
                help="Telemetry HTTP responses with a 5xx status.",
            ).inc()
        self._responded = True
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in self._extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, fmt: str, *args: object) -> None:
        logger.debug("%s %s", self.address_string(), fmt % args)


class TelemetryServer:
    """The scrape server, running on a daemon thread between start/stop.

    Lifecycle is strict: :meth:`start` while already serving raises
    :class:`~repro.errors.ServeError`, :meth:`stop` is idempotent, and a
    stopped server stays stopped (its socket is released; construct a new
    server to serve again).

    >>> registry = MetricsRegistry()
    >>> registry.counter("demo.hits").inc(3)
    >>> server = TelemetryServer(registry, status_fn=dict, ready_fn=lambda: True)
    >>> port = server.start()                                # doctest: +SKIP
    >>> urlopen(f"http://127.0.0.1:{port}/metrics").read()   # doctest: +SKIP
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        status_fn: Callable[[], dict] | None = None,
        ready_fn: Callable[[], bool] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        store: TimeSeriesStore | None = None,
        alert_manager: AlertManager | None = None,
        overload: OverloadGuard | OverloadConfig | None = None,
    ) -> None:
        self._server = _TelemetryHTTPServer((host, port), _TelemetryHandler)
        self._server.registry = (
            registry if registry is not None else obs.get_tracer().metrics
        )
        self._server.status_fn = status_fn or dict
        self._server.ready_fn = ready_fn or (lambda: True)
        self._server.store = store
        self._server.alert_manager = alert_manager
        if isinstance(overload, OverloadConfig):
            overload = OverloadGuard(overload, registry=self._server.registry)
        self._server.overload = overload
        self._thread: threading.Thread | None = None
        self._closed = False

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return self._server.server_address[1]

    @property
    def overload(self) -> OverloadGuard | None:
        """The overload guard this server consults (None = unprotected)."""
        return self._server.overload

    def start(self) -> int:
        """Begin serving on a daemon thread; returns the bound port.

        Raises :class:`~repro.errors.ServeError` if already serving or
        already stopped.
        """
        if self._closed:
            raise ServeError(
                "TelemetryServer was stopped and cannot be restarted; "
                "construct a new server"
            )
        if self._thread is not None:
            raise ServeError(
                f"TelemetryServer already serving on port {self.port}; "
                "start() may only be called once"
            )
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-telemetry",
            daemon=True,
        )
        self._thread.start()
        logger.info("serving telemetry on port %d", self.port)
        return self.port

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._closed:
            return
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()
        self._closed = True

    def __enter__(self) -> "TelemetryServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
