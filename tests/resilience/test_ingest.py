"""Paged fetch under faults: the byte-identical recovery invariant's home."""

import pytest

from repro.errors import RetryExhaustedError
from repro.resilience import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    chains_equal,
    fetch_chain,
    iter_pages,
)
from repro.resilience.retry import FAST_TEST_POLICY, ManualClock
from tests.conftest import make_tiny_chain


def source_chain(n: int = 60):
    producers = [[f"p{i % 7}"] if i % 5 else [f"p{i % 7}", "extra"] for i in range(n)]
    return make_tiny_chain(producers)


class TestIterPages:
    def test_pages_partition_the_chain(self):
        chain = source_chain(25)
        pages = list(iter_pages(chain, page_size=8))
        assert [len(p) for p in pages] == [8, 8, 8, 1]
        heights = [b.height for page in pages for b in page]
        assert heights == list(map(int, chain.heights))


class TestFetchChain:
    def test_clean_fetch_reproduces_the_source(self):
        chain = source_chain()
        result = fetch_chain(chain, page_size=16)
        assert result.clean
        assert result.pages == 4
        assert chains_equal(result.chain, chain)

    def test_faulted_fetch_recovers_byte_identically(self):
        chain = source_chain(120)
        clean = fetch_chain(chain, page_size=16)
        for seed in range(6):
            injector = FaultInjector(FaultPlan.default(), seed=seed)
            faulted = fetch_chain(
                chain,
                page_size=16,
                injector=injector,
                retry_policy=FAST_TEST_POLICY,
                clock=ManualClock(),
                seed=seed,
            )
            assert chains_equal(faulted.chain, clean.chain), f"seed {seed} diverged"

    def test_report_records_what_was_repaired(self):
        chain = source_chain(120)
        injector = FaultInjector(
            FaultPlan((FaultRule("truncate_page", 0.5),)), seed=2
        )
        result = fetch_chain(
            chain, page_size=16, injector=injector,
            retry_policy=FAST_TEST_POLICY, clock=ManualClock(),
        )
        assert injector.fired["truncate_page"] > 0
        assert result.report.refetched > 0
        assert not result.clean
        assert chains_equal(result.chain, chain)

    def test_drop_policy_yields_a_shorter_chain(self):
        chain = source_chain(120)
        injector = FaultInjector(
            FaultPlan((FaultRule("truncate_page", 0.5),)), seed=2
        )
        result = fetch_chain(
            chain, page_size=16, injector=injector,
            retry_policy=FAST_TEST_POLICY, clock=ManualClock(),
            repair_policy="drop",
        )
        assert result.chain.n_blocks < chain.n_blocks
        assert result.report.dropped > 0

    def test_interpolate_policy_fills_gaps_from_neighbours(self):
        chain = source_chain(120)
        injector = FaultInjector(
            FaultPlan((FaultRule("truncate_page", 0.5),)), seed=2
        )
        result = fetch_chain(
            chain, page_size=16, injector=injector,
            retry_policy=FAST_TEST_POLICY, clock=ManualClock(),
            repair_policy="interpolate",
        )
        assert result.chain.n_blocks == chain.n_blocks
        assert result.report.interpolated > 0

    def test_relentless_faults_exhaust_retries(self):
        chain = source_chain(40)
        injector = FaultInjector(FaultPlan((FaultRule("read_error", 1.0),)), seed=0)
        with pytest.raises(RetryExhaustedError):
            fetch_chain(
                chain, page_size=16, injector=injector,
                retry_policy=FAST_TEST_POLICY, clock=ManualClock(),
            )
