"""Stability analysis — the paper's "Ethereum is more stable" claim.

For each metric we compare the coefficient of variation of the Bitcoin and
Ethereum daily series; the chain with the lower CV is the more stable one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.comparison import StabilityComparison, compare_stability
from repro.core.engine import MeasurementEngine


@dataclass(frozen=True)
class StabilityReport:
    """Per-metric stability comparisons plus the overall verdict."""

    comparisons: tuple[StabilityComparison, ...]

    @property
    def overall_winner(self) -> str:
        """The chain winning the majority of per-metric comparisons."""
        wins: dict[str, int] = {}
        for comparison in self.comparisons:
            wins[comparison.winner] = wins.get(comparison.winner, 0) + 1
        return max(wins, key=lambda chain: wins[chain])

    def winner_for(self, metric_name: str) -> str:
        """The more-stable chain under ``metric_name``."""
        for comparison in self.comparisons:
            if comparison.metric_name == metric_name:
                return comparison.winner
        raise KeyError(f"no stability comparison for metric {metric_name!r}")


def stability_report(
    btc: MeasurementEngine,
    eth: MeasurementEngine,
    metrics: tuple[str, ...] = ("gini", "entropy", "nakamoto"),
    granularity: str = "day",
) -> StabilityReport:
    """Compare per-metric stability of the two chains at ``granularity``."""
    sweep_btc = btc.measure_calendar_many(metrics, granularity)
    sweep_eth = eth.measure_calendar_many(metrics, granularity)
    comparisons = [
        compare_stability(sweep_btc[metric], sweep_eth[metric]) for metric in metrics
    ]
    return StabilityReport(comparisons=tuple(comparisons))
