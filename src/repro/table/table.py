"""The :class:`Table` — an immutable columnar relation.

Tables are dictionaries of equal-length :class:`~repro.table.column.Column`
objects.  All operations return new tables; the underlying numpy arrays are
shared where possible, so ``select``/``rename`` are O(1) and ``filter``/
``sort_by`` are O(n).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import SchemaError, TableError
from repro.table.aggregates import aggregate_array, grouped_aggregate
from repro.table.column import Column
from repro.table.schema import Schema


class Table:
    """An immutable, ordered collection of equal-length named columns."""

    __slots__ = ("_columns", "_names", "_stats")

    def __init__(self, columns: Mapping[str, Any] | None = None) -> None:
        self._columns: dict[str, Column] = {}
        self._names: tuple[str, ...] = ()
        self._stats: Any = None
        if not columns:
            return
        names: list[str] = []
        length: int | None = None
        for name, values in columns.items():
            column = values if isinstance(values, Column) else Column(values)
            if length is None:
                length = len(column)
            elif len(column) != length:
                raise TableError(
                    f"column {name!r} has length {len(column)}, expected {length}"
                )
            if name in self._columns:
                raise SchemaError(f"duplicate column name: {name!r}")
            self._columns[name] = column
            names.append(name)
        self._names = tuple(names)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_rows(
        cls, rows: Iterable[Mapping[str, Any]], columns: Sequence[str] | None = None
    ) -> "Table":
        """Build a table from an iterable of row dicts.

        Column order is taken from ``columns`` if given, else from the first
        row.  Every row must supply every column.
        """
        rows = list(rows)
        if not rows:
            return cls({name: [] for name in columns} if columns else None)
        names = list(columns) if columns is not None else list(rows[0].keys())
        data: dict[str, list[Any]] = {name: [] for name in names}
        for i, row in enumerate(rows):
            for name in names:
                if name not in row:
                    raise TableError(f"row {i} is missing column {name!r}")
                data[name].append(row[name])
        return cls(data)

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        """Return a zero-row table with the given schema."""
        return cls({name: Column([], kind) for name, kind in schema})

    # -- basic accessors ----------------------------------------------------

    @property
    def num_rows(self) -> int:
        """Number of rows (0 for a column-less table)."""
        if not self._names:
            return 0
        return len(self._columns[self._names[0]])

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self._names)

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in table order."""
        return self._names

    @property
    def schema(self) -> Schema:
        """The table's :class:`Schema`."""
        return Schema((name, self._columns[name].kind) for name in self._names)

    def column(self, name: str) -> Column:
        """Return the named column; raise :class:`SchemaError` if absent."""
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(f"no such column: {name!r}") from None

    def __getitem__(self, name: str) -> np.ndarray:
        """Return the named column's underlying array (shared, do not mutate)."""
        return self.column(name).values

    def __contains__(self, name: object) -> bool:
        return name in self._columns

    def __len__(self) -> int:
        return self.num_rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self._names != other._names:
            return False
        return all(self._columns[n] == other._columns[n] for n in self._names)

    def __repr__(self) -> str:
        return f"Table(rows={self.num_rows}, columns={list(self._names)})"

    def to_rows(self) -> list[dict[str, Any]]:
        """Materialize the table as a list of row dicts (small tables only)."""
        lists = {name: self._columns[name].to_list() for name in self._names}
        return [
            {name: lists[name][i] for name in self._names} for i in range(self.num_rows)
        ]

    def row(self, index: int) -> dict[str, Any]:
        """Return row ``index`` as a dict."""
        if not -self.num_rows <= index < self.num_rows:
            raise TableError(f"row index {index} out of range for {self.num_rows} rows")
        return {name: self._columns[name].to_list()[index] for name in self._names}

    # -- projection ---------------------------------------------------------

    def select(self, names: Sequence[str]) -> "Table":
        """Return a table with only ``names``, in the given order."""
        return Table({name: self.column(name) for name in names})

    def drop(self, names: Sequence[str]) -> "Table":
        """Return a table without the given columns."""
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise SchemaError(f"no such column(s): {missing}")
        keep = [n for n in self._names if n not in set(names)]
        return self.select(keep)

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Return a table with columns renamed per ``mapping``."""
        for old in mapping:
            if old not in self._columns:
                raise SchemaError(f"no such column: {old!r}")
        return Table(
            {mapping.get(name, name): self._columns[name] for name in self._names}
        )

    def with_column(self, name: str, values: Any) -> "Table":
        """Return a table with column ``name`` added or replaced."""
        column = values if isinstance(values, Column) else Column(values)
        if self._names and len(column) != self.num_rows:
            raise TableError(
                f"new column {name!r} has length {len(column)}, expected {self.num_rows}"
            )
        data = {n: self._columns[n] for n in self._names}
        data[name] = column
        return Table(data)

    # -- row selection ------------------------------------------------------

    def filter(self, mask: Any) -> "Table":
        """Return rows where boolean ``mask`` is true.

        ``mask`` may be a boolean array or a callable mapping this table to
        one (e.g. ``lambda t: t["height"] > 100``).
        """
        if callable(mask):
            mask = mask(self)
        mask = np.asarray(mask)
        if mask.dtype != np.bool_:
            raise TableError(f"filter mask must be boolean, got dtype {mask.dtype}")
        if mask.shape != (self.num_rows,):
            raise TableError(
                f"filter mask has shape {mask.shape}, expected ({self.num_rows},)"
            )
        return self.take(np.flatnonzero(mask))

    def take(self, indices: Any) -> "Table":
        """Return rows picked by integer ``indices`` (duplicates allowed)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Table({name: self._columns[name].take(indices) for name in self._names})

    def slice(self, start: int, stop: int | None = None) -> "Table":
        """Return rows ``[start, stop)`` (numpy slicing semantics)."""
        sl = slice(start, stop)
        return Table(
            {
                name: Column(self._columns[name].values[sl], self._columns[name].kind)
                for name in self._names
            }
        )

    def head(self, n: int = 10) -> "Table":
        """Return the first ``n`` rows."""
        return self.slice(0, max(n, 0))

    # -- ordering -----------------------------------------------------------

    def sort_by(
        self,
        keys: str | Sequence[str],
        descending: bool | Sequence[bool] = False,
    ) -> "Table":
        """Return rows sorted by one or more key columns (stable).

        ``descending`` may be a single flag or one flag per key.
        """
        key_names = [keys] if isinstance(keys, str) else list(keys)
        if not key_names:
            raise TableError("sort_by requires at least one key")
        if isinstance(descending, bool):
            flags = [descending] * len(key_names)
        else:
            flags = list(descending)
            if len(flags) != len(key_names):
                raise TableError("descending flags must match the number of keys")
        codes = []
        for name, desc in zip(key_names, flags):
            code = _dense_codes(self.column(name).values)
            codes.append(-code if desc else code)
        # np.lexsort is stable and treats the LAST key as primary.
        order = np.lexsort(list(reversed(codes)))
        return self.take(order)

    # -- grouping -----------------------------------------------------------

    def group_by(self, keys: str | Sequence[str]) -> "GroupBy":
        """Start a grouped aggregation over one or more key columns."""
        key_names = [keys] if isinstance(keys, str) else list(keys)
        if not key_names:
            raise TableError("group_by requires at least one key")
        for name in key_names:
            self.column(name)
        return GroupBy(self, key_names)

    def distinct(self, keys: str | Sequence[str] | None = None) -> "Table":
        """Return the first row of each distinct key combination."""
        key_names = list(self._names) if keys is None else (
            [keys] if isinstance(keys, str) else list(keys)
        )
        ids, n_groups = _group_ids(self, key_names)
        first = np.full(n_groups, -1, dtype=np.int64)
        for i, gid in enumerate(ids):
            if first[gid] < 0:
                first[gid] = i
        return self.take(np.sort(first))

    def value_counts(self, key: str) -> "Table":
        """Return ``key`` values with their row counts, most frequent first."""
        return (
            self.group_by(key)
            .aggregate(count=(key, "count"))
            .sort_by(["count", key], descending=[True, False])
        )

    # -- combination --------------------------------------------------------

    def join(
        self,
        other: "Table",
        on: str | Sequence[str],
        how: str = "inner",
        suffix: str = "_right",
    ) -> "Table":
        """Hash-join ``self`` with ``other`` on key column(s) ``on``.

        ``how`` is ``"inner"`` or ``"left"``.  Non-key columns of ``other``
        that clash with columns of ``self`` get ``suffix`` appended.  For
        left joins, unmatched rows get NaN (numeric) / None (str) on the
        right side; integer right columns are widened to float.
        """
        if how not in ("inner", "left"):
            raise TableError(f"unsupported join type: {how!r}")
        key_names = [on] if isinstance(on, str) else list(on)
        build: dict[tuple, list[int]] = {}
        right_keys = [other.column(k).to_list() for k in key_names]
        for j in range(other.num_rows):
            key = tuple(col[j] for col in right_keys)
            build.setdefault(key, []).append(j)
        left_keys = [self.column(k).to_list() for k in key_names]
        left_indices: list[int] = []
        right_indices: list[int] = []
        for i in range(self.num_rows):
            key = tuple(col[i] for col in left_keys)
            matches = build.get(key)
            if matches:
                left_indices.extend([i] * len(matches))
                right_indices.extend(matches)
            elif how == "left":
                left_indices.append(i)
                right_indices.append(-1)
        left_part = self.take(np.asarray(left_indices, dtype=np.int64))
        data = {name: left_part.column(name) for name in left_part.column_names}
        right_idx = np.asarray(right_indices, dtype=np.int64)
        missing = right_idx < 0
        safe_idx = np.where(missing, 0, right_idx)
        for name in other.column_names:
            if name in key_names:
                continue
            out_name = name if name not in data else f"{name}{suffix}"
            column = other.column(name)
            if other.num_rows == 0:
                values = np.full(len(right_idx), np.nan)
                data[out_name] = Column(values, "float")
                continue
            taken = column.values[safe_idx]
            if missing.any():
                if column.kind == "str":
                    taken = taken.copy()
                    taken[missing] = None
                    data[out_name] = Column(taken, "str")
                elif column.kind == "bool":
                    raise TableError(
                        f"left join cannot null boolean column {name!r}; drop it first"
                    )
                else:
                    values = taken.astype(np.float64)
                    values[missing] = np.nan
                    data[out_name] = Column(values, "float")
            else:
                data[out_name] = Column(taken, column.kind)
        return Table(data)

    # -- scalar aggregation ---------------------------------------------------

    def aggregate_scalar(self, column: str, func: str) -> Any:
        """Reduce one column to a scalar (e.g. ``t.aggregate_scalar("n", "sum")``)."""
        return aggregate_array(self.column(column).values, func)

    def statistics(self, refresh: bool = False) -> Any:
        """Return cached :class:`~repro.table.stats.TableStatistics` for this table.

        The first call scans every column; tables are immutable, so the
        snapshot is cached on the instance.  ``refresh=True`` forces a
        re-collection (e.g. after tuning the most-common-value budget).
        """
        if self._stats is None or refresh:
            from repro.table.stats import collect_statistics

            self._stats = collect_statistics(self)
        return self._stats

    def describe(self) -> "Table":
        """Per-column summary: kind, count, distinct, and numeric stats.

        Numeric columns report min/mean/max; string and boolean columns
        leave those cells NaN.
        """
        rows = []
        for name in self._names:
            column = self._columns[name]
            values = column.values
            record: dict[str, Any] = {
                "column": name,
                "kind": column.kind,
                "count": len(column),
                "distinct": aggregate_array(values, "count_distinct"),
            }
            if column.kind in ("int", "float") and len(column):
                record["min"] = float(values.min())
                record["mean"] = float(values.mean())
                record["max"] = float(values.max())
            else:
                record["min"] = float("nan")
                record["mean"] = float("nan")
                record["max"] = float("nan")
            rows.append(record)
        return Table.from_rows(
            rows, columns=["column", "kind", "count", "distinct", "min", "mean", "max"]
        )


def concat(tables: Sequence[Table]) -> Table:
    """Concatenate tables with identical schemas row-wise."""
    tables = [t for t in tables]
    if not tables:
        raise TableError("concat requires at least one table")
    schema = tables[0].schema
    for t in tables[1:]:
        if t.schema != schema:
            raise TableError(f"schema mismatch in concat: {t.schema} vs {schema}")
    data: dict[str, Column] = {}
    for name, kind in schema:
        arrays = [t.column(name).values for t in tables]
        data[name] = Column(np.concatenate(arrays), kind)
    return Table(data)


class GroupBy:
    """Deferred grouped aggregation returned by :meth:`Table.group_by`."""

    def __init__(self, table: Table, keys: list[str]) -> None:
        self._table = table
        self._keys = keys

    def aggregate(self, **specs: tuple[str, str]) -> Table:
        """Aggregate each group.

        Each keyword is an output column mapped to ``(input_column, func)``:

        >>> t.group_by("miner").aggregate(blocks=("height", "count"))  # doctest: +SKIP
        """
        if not specs:
            raise TableError("aggregate requires at least one output column")
        table = self._table
        ids, n_groups = _group_ids(table, self._keys)
        first_rows = _first_occurrences(ids, n_groups)
        data: dict[str, Column] = {}
        for key in self._keys:
            column = table.column(key)
            data[key] = Column(column.values[first_rows], column.kind)
        for out_name, (in_name, func) in specs.items():
            values = table.column(in_name).values
            result = grouped_aggregate(values, ids, n_groups, func)
            data[out_name] = Column(result)
        return Table(data)

    def apply(self, func: Callable[[Table], Any], output: str = "value") -> Table:
        """Apply ``func`` to each group's sub-table; collect scalars.

        Slower than :meth:`aggregate` (Python loop over groups) but fully
        general — used for metric computations over grouped block data.
        """
        table = self._table
        ids, n_groups = _group_ids(table, self._keys)
        first_rows = _first_occurrences(ids, n_groups)
        order = np.argsort(ids, kind="stable")
        sorted_ids = ids[order]
        boundaries = np.searchsorted(sorted_ids, np.arange(n_groups + 1))
        data: dict[str, Column] = {}
        for key in self._keys:
            column = table.column(key)
            data[key] = Column(column.values[first_rows], column.kind)
        results = []
        for gid in range(n_groups):
            rows = order[boundaries[gid] : boundaries[gid + 1]]
            results.append(func(table.take(rows)))
        data[output] = Column(results)
        return Table(data)


def _dense_codes(values: np.ndarray) -> np.ndarray:
    """Map values to dense int codes that preserve ``<`` ordering.

    Equal values receive equal codes, so a lexsort over the codes is stable
    across tie groups.
    """
    if values.dtype == object:
        distinct = sorted(set(values.tolist()))
        mapping = {value: code for code, value in enumerate(distinct)}
        return np.asarray([mapping[v] for v in values], dtype=np.int64)
    _, inverse = np.unique(values, return_inverse=True)
    return inverse.astype(np.int64)


def _group_ids(table: Table, keys: list[str]) -> tuple[np.ndarray, int]:
    """Map each row to a dense group id; groups are numbered by first occurrence."""
    if table.num_rows == 0:
        return np.empty(0, dtype=np.int64), 0
    if len(keys) == 1:
        values = table.column(keys[0]).values
        if values.dtype == object:
            return _factorize_by_first(values.tolist())
        _, inverse = np.unique(values, return_inverse=True)
        return _renumber_by_first(inverse.astype(np.int64))
    columns = [table.column(k).to_list() for k in keys]
    combos = list(zip(*columns))
    return _factorize_by_first(combos)


def _factorize_by_first(items: Sequence[Any]) -> tuple[np.ndarray, int]:
    mapping: dict[Any, int] = {}
    ids = np.empty(len(items), dtype=np.int64)
    for i, item in enumerate(items):
        gid = mapping.get(item)
        if gid is None:
            gid = len(mapping)
            mapping[item] = gid
        ids[i] = gid
    return ids, len(mapping)


def _renumber_by_first(ids: np.ndarray) -> tuple[np.ndarray, int]:
    """Renumber dense ids so that group numbers follow first appearance."""
    n_groups = int(ids.max()) + 1 if ids.size else 0
    first = np.full(n_groups, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(first, ids, np.arange(ids.shape[0], dtype=np.int64))
    order = np.argsort(first, kind="stable")
    remap = np.empty(n_groups, dtype=np.int64)
    remap[order] = np.arange(n_groups, dtype=np.int64)
    return remap[ids], n_groups


def _first_occurrences(ids: np.ndarray, n_groups: int) -> np.ndarray:
    first = np.full(n_groups, -1, dtype=np.int64)
    for i in range(ids.shape[0] - 1, -1, -1):
        first[ids[i]] = i
    return first
