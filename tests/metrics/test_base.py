"""Tests for the metric registry and distribution validation."""

import numpy as np
import pytest

from repro.errors import MetricError
from repro.metrics import (
    FunctionMetric,
    PAPER_METRICS,
    available_metrics,
    get_metric,
    register_metric,
)
from repro.metrics.base import validate_distribution


class TestRegistry:
    def test_paper_metrics_registered(self):
        names = available_metrics()
        for metric in PAPER_METRICS:
            assert metric in names

    def test_extension_metrics_registered(self):
        names = available_metrics()
        for metric in ("hhi", "theil", "top4-share", "nakamoto-33",
                       "normalized-entropy", "effective-producers"):
            assert metric in names

    def test_get_metric_computes(self):
        metric = get_metric("gini")
        assert metric.compute(np.asarray([1.0, 1.0])) == pytest.approx(0.0)

    def test_nakamoto33_uses_lower_threshold(self):
        values = np.asarray([40.0, 30.0, 20.0, 10.0])
        assert get_metric("nakamoto").compute(values) == 2
        assert get_metric("nakamoto-33").compute(values) == 1

    def test_unknown_metric_raises_with_suggestions(self):
        with pytest.raises(MetricError, match="available"):
            get_metric("fairness")

    def test_register_custom_metric(self):
        metric = FunctionMetric("test-custom-xyz", lambda values: 1.23)
        register_metric(metric)
        try:
            assert get_metric("test-custom-xyz").compute(np.asarray([1.0])) == 1.23
        finally:
            # Re-register with overwrite to keep the test idempotent.
            register_metric(metric, overwrite=True)

    def test_duplicate_registration_rejected(self):
        metric = FunctionMetric("gini", lambda values: 0.0)
        with pytest.raises(MetricError):
            register_metric(metric)

    def test_empty_name_rejected(self):
        with pytest.raises(MetricError):
            register_metric(FunctionMetric("", lambda values: 0.0))


class TestValidateDistribution:
    def test_drops_zeros(self):
        out = validate_distribution([0.0, 1.0, 0.0, 2.0])
        assert out.tolist() == [1.0, 2.0]

    def test_coerces_lists(self):
        out = validate_distribution([1, 2])
        assert out.dtype == np.float64

    @pytest.mark.parametrize("bad", [[], [0.0], [-1.0, 1.0], [np.inf, 1.0]])
    def test_rejects_invalid(self, bad):
        with pytest.raises(MetricError):
            validate_distribution(bad)
