"""Series summaries — the statistics the paper quotes per figure."""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.core.series import MeasurementSeries


@dataclass(frozen=True)
class SeriesSummary:
    """The descriptive statistics reported alongside each figure."""

    chain_name: str
    metric_name: str
    window_desc: str
    n_windows: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    q05: float
    q95: float
    coefficient_of_variation: float

    def as_dict(self) -> dict:
        """Plain-dict form for JSON export / table rows."""
        return asdict(self)

    def __str__(self) -> str:
        return (
            f"{self.chain_name}/{self.metric_name}/{self.window_desc}: "
            f"n={self.n_windows} mean={self.mean:.4f} std={self.std:.4f} "
            f"range=[{self.minimum:.4f}, {self.maximum:.4f}]"
        )


def summarize(series: MeasurementSeries) -> SeriesSummary:
    """Compute a :class:`SeriesSummary` for ``series``."""
    return SeriesSummary(
        chain_name=series.chain_name,
        metric_name=series.metric_name,
        window_desc=series.window_desc,
        n_windows=len(series),
        mean=series.mean(),
        std=series.std(),
        minimum=series.min(),
        maximum=series.max(),
        median=series.median(),
        q05=series.quantile(0.05),
        q95=series.quantile(0.95),
        coefficient_of_variation=series.coefficient_of_variation(),
    )
