"""Tests for the measurement engine on small chains."""

import numpy as np
import pytest

from repro.chain.attribution import attribute
from repro.core.engine import MeasurementEngine
from repro.errors import MeasurementError, MetricError
from repro.metrics import FunctionMetric
from repro.util.timeutils import YEAR_2019_START
from repro.windows.base import BlockWindow, TimeWindow
from repro.windows.fixed import FixedCalendarWindows
from tests.conftest import make_tiny_chain


@pytest.fixture
def engine():
    # 12 blocks spread across the first three days of 2019, 4 per day.
    blocks = []
    producers = [
        ["a"], ["a"], ["b"], ["a"],          # day 0: a=3, b=1
        ["a"], ["b"], ["b"], ["c"],          # day 1: a=1, b=2, c=1
        ["a"], ["a"], ["a"], ["a"],          # day 2: a=4
    ]
    chain = make_tiny_chain(
        producers,
        start_ts=YEAR_2019_START,
        spacing=21_600,  # 4 blocks/day
    )
    return MeasurementEngine.from_chain(chain)


class TestMeasureWithBlockWindows:
    def test_values_per_window(self, engine):
        windows = [
            BlockWindow(index=0, label="first", start_block=0, stop_block=4),
            BlockWindow(index=1, label="second", start_block=4, stop_block=8),
        ]
        series = engine.measure("nakamoto", windows)
        assert series.values.tolist() == [1.0, 2.0]
        assert series.labels == ("first", "second")

    def test_window_clamped_to_chain(self, engine):
        windows = [BlockWindow(index=0, label="w", start_block=8, stop_block=99)]
        series = engine.measure("entropy", windows)
        assert len(series) == 1
        assert series.values[0] == pytest.approx(0.0)  # day 2 is all 'a'

    def test_fully_out_of_range_window_skipped(self, engine):
        windows = [BlockWindow(index=0, label="w", start_block=50, stop_block=60)]
        series = engine.measure("gini", windows)
        assert len(series) == 0
        assert series.skipped == 1


class TestMeasureWithTimeWindows:
    def test_day_windows(self, engine):
        day0 = TimeWindow(
            index=0, label="d0",
            start_ts=YEAR_2019_START, end_ts=YEAR_2019_START + 86_400,
        )
        series = engine.measure("gini", [day0])
        # day 0 distribution (3, 1): gini = 0.25.
        assert series.values[0] == pytest.approx(0.25)

    def test_empty_time_window_skipped(self, engine):
        later = TimeWindow(
            index=9, label="empty",
            start_ts=YEAR_2019_START + 30 * 86_400,
            end_ts=YEAR_2019_START + 31 * 86_400,
        )
        series = engine.measure("gini", [later])
        assert len(series) == 0
        assert series.skipped == 1

    def test_measure_calendar_day(self, engine):
        series = engine.measure_calendar("nakamoto", "day")
        assert len(series) == 3  # only 3 days hold blocks; 362 skipped
        assert series.skipped == 362
        assert series.window_desc == "fixed-day"


class TestMeasureSliding:
    def test_series_metadata(self, engine):
        series = engine.measure_sliding("entropy", size=4)
        assert series.window_desc == "sliding-4/2"
        assert len(series) == 5  # (12-4)/2+1

    def test_explicit_step(self, engine):
        series = engine.measure_sliding("entropy", size=4, step=4)
        assert len(series) == 3


class TestMetricDispatch:
    def test_metric_object_accepted(self, engine):
        metric = FunctionMetric("always-7", lambda values: 7.0)
        series = engine.measure(metric, [BlockWindow(0, "w", 0, 4)])
        assert series.values.tolist() == [7.0]
        assert series.metric_name == "always-7"

    def test_unknown_metric_name_raises(self, engine):
        with pytest.raises(MetricError):
            engine.measure("nope", [BlockWindow(0, "w", 0, 4)])

    def test_unsupported_window_type_raises(self, engine):
        with pytest.raises(MeasurementError):
            engine.measure("gini", ["not-a-window"])


class TestDistributionAccess:
    def test_distribution_for_window(self, engine):
        window = BlockWindow(index=0, label="w", start_block=0, stop_block=4)
        distribution = np.sort(engine.distribution_for(window))
        assert distribution.tolist() == [1.0, 3.0]

    def test_top_entities_for_window(self, engine):
        window = BlockWindow(index=0, label="w", start_block=0, stop_block=12)
        top = engine.top_entities_for(window, k=2)
        assert top[0] == ("a", 8.0)
        assert top[1] == ("b", 3.0)


class TestAttributionPolicies:
    def test_from_chain_policy_changes_results(self):
        chain = make_tiny_chain([["a"], ["a", "x", "y", "z", "w"], ["b"]])
        per_address = MeasurementEngine.from_chain(chain, policy="per-address")
        fractional = MeasurementEngine.from_chain(chain, policy="fractional")
        window = [BlockWindow(index=0, label="w", start_block=0, stop_block=3)]
        n_pa = per_address.measure("nakamoto", window).values[0]
        n_fr = fractional.measure("nakamoto", window).values[0]
        # Per-address: credits a=2, b/x/y/z/w=1 (total 7) -> N = 3.
        # Fractional: a=1.2, b=1.0, four at 0.2 (total 3) -> N = 2.
        assert n_pa == 3.0
        assert n_fr == 2.0

    def test_engine_wraps_existing_credits(self):
        chain = make_tiny_chain([["a"], ["b"]])
        credits = attribute(chain, "per-address")
        engine = MeasurementEngine(credits)
        assert engine.credits is credits
