"""Property-based tests for the SQL engine against the table engine.

The two implementations of filtering/grouping/sorting are independent, so
agreement between them on random inputs is a strong correctness signal.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import query
from repro.table import Table


@st.composite
def block_tables(draw):
    n = draw(st.integers(min_value=0, max_value=50))
    miners = draw(
        st.lists(st.sampled_from(["a", "b", "c"]), min_size=n, max_size=n)
    )
    rewards = draw(
        st.lists(st.integers(min_value=0, max_value=100), min_size=n, max_size=n)
    )
    return Table({"height": list(range(n)), "miner": miners, "reward": rewards})


class TestSqlAgainstTableEngine:
    @given(block_tables(), st.integers(min_value=0, max_value=100))
    @settings(max_examples=60)
    def test_where_matches_filter(self, table, pivot):
        via_sql = query(f"SELECT height FROM t WHERE reward > {pivot}", t=table)
        if table.num_rows:
            via_table = table.filter(table["reward"] > pivot).select(["height"])
        else:
            via_table = table.select(["height"])
        assert via_sql["height"].tolist() == via_table["height"].tolist()

    @given(block_tables())
    @settings(max_examples=60)
    def test_group_by_matches_table_groupby(self, table):
        via_sql = query(
            "SELECT miner, COUNT(*) AS n, SUM(reward) AS s FROM t "
            "GROUP BY miner ORDER BY miner",
            t=table,
        )
        if table.num_rows == 0:
            assert via_sql.num_rows == 0
            return
        via_table = (
            table.group_by("miner")
            .aggregate(n=("reward", "count"), s=("reward", "sum"))
            .sort_by("miner")
        )
        assert via_sql.to_rows() == via_table.to_rows()

    @given(block_tables())
    @settings(max_examples=60)
    def test_order_by_matches_sort(self, table):
        via_sql = query("SELECT height FROM t ORDER BY reward DESC, height", t=table)
        via_table = table.sort_by(["reward", "height"], descending=[True, False])
        assert via_sql["height"].tolist() == via_table["height"].tolist()

    @given(block_tables())
    @settings(max_examples=60)
    def test_count_star_matches_num_rows(self, table):
        out = query("SELECT COUNT(*) AS n FROM t", t=table)
        assert out.row(0)["n"] == table.num_rows

    @given(block_tables(), st.integers(min_value=0, max_value=10),
           st.integers(min_value=0, max_value=10))
    @settings(max_examples=60)
    def test_limit_offset_slices(self, table, limit, offset):
        out = query(
            f"SELECT height FROM t ORDER BY height LIMIT {limit} OFFSET {offset}",
            t=table,
        )
        expected = list(range(table.num_rows))[offset : offset + limit]
        assert out["height"].tolist() == expected

    @given(block_tables())
    @settings(max_examples=60)
    def test_distinct_matches_set(self, table):
        out = query("SELECT DISTINCT miner FROM t", t=table)
        assert sorted(out["miner"].tolist()) == sorted(set(table["miner"].tolist()))
