"""Ablation — sliding-window step size M.

The paper fixes M = N/2.  This ablation sweeps M over N, N/2, N/4 and N/8
on the Bitcoin one-day windows: the measured series mean is insensitive to
M (it is a resampling of the same process), while the number of points —
and the number of anomaly windows detected — grows as M shrinks, at
linearly growing cost.
"""

import pytest

from repro.core.anomaly import iqr_anomalies
from repro.windows.sliding import sliding_window_count


def sweep_steps(btc):
    size = 144
    results = {}
    for divisor in (1, 2, 4, 8):
        step = size // divisor
        series = btc.measure_sliding("entropy", size, step)
        results[step] = series
    return results


def test_ablation_step_size(benchmark, btc):
    results = benchmark.pedantic(sweep_steps, args=(btc,), rounds=1, iterations=1)

    print("\n=== step-size ablation (BTC entropy, N=144) ===")
    n_blocks = btc.credits.n_blocks
    for step, series in results.items():
        anomalies = iqr_anomalies(series).count
        print(
            f"  M={step:<4d} points={len(series):<5d} mean={series.mean():.4f} "
            f"anomalous_windows={anomalies}"
        )
        assert len(series) == sliding_window_count(n_blocks, 144, step)

    means = [series.mean() for series in results.values()]
    assert max(means) - min(means) < 0.05  # mean insensitive to M

    counts = [len(series) for series in results.values()]
    assert counts == sorted(counts)  # smaller M -> more points
    assert counts[-1] > 7 * counts[0] - 16  # M=N/8 -> ~8x the points

    anomaly_counts = [iqr_anomalies(s).count for s in results.values()]
    assert anomaly_counts[-1] >= anomaly_counts[0]


def test_ablation_m_equals_n_matches_count_partition(benchmark, btc):
    """M = N degenerates to non-overlapping count windows."""
    series = benchmark(btc.measure_sliding, "gini", 144, 144)
    assert len(series) == btc.credits.n_blocks // 144
    fixed_daily = btc.measure_calendar("gini", "day")
    assert series.mean() == pytest.approx(fixed_daily.mean(), abs=0.05)
