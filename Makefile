.PHONY: install test bench bench-perf bench-parallel bench-diff chaos examples report lint lint-docs all

install:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-perf:
	pytest benchmarks/bench_perf_pipeline.py benchmarks/bench_perf_parallel.py \
		benchmarks/bench_perf_sql.py benchmarks/bench_perf_profile.py \
		benchmarks/bench_perf_timeseries.py benchmarks/bench_perf_serve.py \
		--benchmark-only --benchmark-json=BENCH_pipeline.json

bench-parallel:
	pytest benchmarks/bench_perf_parallel.py --benchmark-only

bench-diff: BENCH_pipeline.json
	python -m repro.cli bench-diff \
		benchmarks/baselines/BENCH_pipeline_baseline.json \
		BENCH_pipeline.json --fail-over 1.25 --min-seconds 0.005

chaos:
	python -m repro.cli chaos --seed 7

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done

report:
	python -m repro.cli report --out STUDY_REPORT.md

lint:
	ruff check src/repro/sql src/repro/table
	mypy src/repro/sql src/repro/table

all: test bench examples report
