"""Shared monitor state between the ingest loop and HTTP handlers.

:class:`MonitorState` is the single thread-safe snapshot both sides
touch: the ingest loop records pushes, evaluations, crashes and
restarts; the HTTP handlers read readiness for ``/readyz`` and render
the full snapshot for ``/status``.  Optional section providers
(``alerts_fn``, ``slo_fn``, ``overload_fn``, ``ingest_fn``, ...) are
wired by :func:`repro.serve.monitor.run_monitor` when the matching
subsystem is enabled; each feeds one ``/status`` key.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import build_info
from repro.parallel import pool_status


class MonitorState:
    """Thread-safe status snapshot shared by ingest loop and HTTP handlers."""

    def __init__(
        self,
        chain: str,
        window_size: int,
        stride: int,
        total_blocks: int | None = None,
    ) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self.chain = chain
        self.window_size = window_size
        self.stride = stride
        self.total_blocks = total_blocks
        self.blocks_ingested = 0
        self.evaluations = 0
        self.alerts = 0
        self.latest: dict[str, float] = {}
        self.ready = False
        self.finished = False
        self.degraded = False
        self.restarts = 0
        self.crashes = 0
        self.max_restarts: int | None = None
        self.last_error: str | None = None
        self.quality: dict | None = None
        self.faults_fn: Callable[[], dict] | None = None
        #: Optional section providers (wired by :func:`run_monitor` when
        #: history/alerting are enabled); each feeds one ``/status`` key.
        self.alerts_fn: Callable[[], dict] | None = None
        self.slo_fn: Callable[[], dict] | None = None
        self.timeseries_fn: Callable[[], dict] | None = None
        self.sparklines_fn: Callable[[], dict] | None = None
        #: Overload-layer and ingest-queue snapshots (wired when the
        #: monitor runs with an :class:`~repro.serve.overload.OverloadGuard`
        #: or an :class:`~repro.serve.ingest.IngestQueue`).
        self.overload_fn: Callable[[], dict] | None = None
        self.ingest_fn: Callable[[], dict] | None = None

    def record_push(self, blocks_ingested: int) -> None:
        """Note one ingested block."""
        with self._lock:
            self.blocks_ingested = blocks_ingested

    def record_evaluation(self, latest: dict[str, float], n_alerts: int) -> None:
        """Note one completed window evaluation; flips readiness.

        A completed evaluation after a crash also proves the restarted
        ingest loop is healthy again, so degradation clears here.
        """
        with self._lock:
            self.evaluations += 1
            self.alerts += n_alerts
            self.latest = dict(latest)
            self.ready = True
            self.degraded = False

    def record_crash(self, error: BaseException) -> None:
        """The ingest loop died; readiness drops until it proves recovery."""
        with self._lock:
            self.crashes += 1
            self.degraded = True
            self.last_error = repr(error)

    def record_restart(self) -> None:
        """The supervisor brought the ingest loop back up."""
        with self._lock:
            self.restarts += 1

    def set_quality(self, quality: dict | None) -> None:
        """Attach an ingest data-quality report for ``/status``."""
        with self._lock:
            self.quality = dict(quality) if quality is not None else None

    def mark_finished(self) -> None:
        """The feed is exhausted (the server may linger for scrapes)."""
        with self._lock:
            self.finished = True

    def is_ready(self) -> bool:
        """Readiness: a full window evaluated, and not currently degraded."""
        with self._lock:
            return self.ready and not self.degraded

    def is_degraded(self) -> bool:
        """Whether the ingest loop crashed and has not yet proven recovery.

        The overload layer's :class:`~repro.serve.overload.LoadShedder`
        uses this as its degrade trigger: a crashed monitor serves stale
        snapshots rather than half-updated fresh ones.
        """
        with self._lock:
            return self.degraded

    def snapshot(self) -> dict:
        """A JSON-ready view for the ``/status`` endpoint."""
        with self._lock:
            lag = (
                self.total_blocks - self.blocks_ingested
                if self.total_blocks is not None
                else None
            )
            data = {
                "chain": self.chain,
                "window": {
                    "size": self.window_size,
                    "stride": self.stride,
                    "start_block": max(self.blocks_ingested - self.window_size, 0),
                    "end_block": self.blocks_ingested,
                },
                "blocks_ingested": self.blocks_ingested,
                "total_blocks": self.total_blocks,
                "lag_blocks": lag,
                "evaluations": self.evaluations,
                "alerts": self.alerts,
                "latest": dict(self.latest),
                "ready": self.ready and not self.degraded,
                "finished": self.finished,
                "uptime_seconds": round(time.monotonic() - self._started, 3),
                "resilience": {
                    "degraded": self.degraded,
                    "crashes": self.crashes,
                    "restarts": self.restarts,
                    "max_restarts": self.max_restarts,
                    "last_error": self.last_error,
                    "faults": None,
                },
                "quality": self.quality,
            }
        # Section providers run outside the lock: the overload section's
        # shedder re-enters is_degraded(), which needs the lock back.
        data["resilience"]["faults"] = self.faults_fn() if self.faults_fn else None
        data.update({
            "workers": pool_status(),
            "build": build_info(),
            "timings": _timing_summaries(obs.get_tracer().metrics),
            "alerting": self.alerts_fn() if self.alerts_fn else None,
            "slo": self.slo_fn() if self.slo_fn else None,
            "timeseries": self.timeseries_fn() if self.timeseries_fn else None,
            "sparklines": self.sparklines_fn() if self.sparklines_fn else None,
            "overload": self.overload_fn() if self.overload_fn else None,
            "ingest": self.ingest_fn() if self.ingest_fn else None,
        })
        return data


def _timing_summaries(registry: MetricsRegistry) -> dict:
    """Per-histogram latency summaries for ``/status`` (count/mean/p50/p99)."""
    _, _, timings = registry.instruments()
    return {
        t.name: {
            "count": t.count,
            "mean": round(t.mean, 9),
            "p50": round(t.percentile(50), 9),
            "p99": round(t.percentile(99), 9),
        }
        for t in timings
    }
