"""A small numpy-backed columnar table engine.

This package is the relational substrate of the reproduction: the pandas
stand-in that the chain datasets, the SQL engine and the measurement
pipeline all run on.  It supports the operations the study needs —
filter, select, sort, group-by with aggregation, join, concatenation and
CSV/JSONL round-trips — over four column kinds (int64, float64, bool,
str).

Example
-------
>>> from repro.table import Table
>>> t = Table({"miner": ["a", "b", "a"], "blocks": [3, 1, 2]})
>>> t.group_by("miner").aggregate(total=("blocks", "sum")).sort_by("miner").to_rows()
[{'miner': 'a', 'total': 5}, {'miner': 'b', 'total': 1}]
"""

from repro.table.aggregates import AGGREGATE_NAMES, aggregate_array
from repro.table.column import Column, infer_kind
from repro.table.expressions import col, lit
from repro.table.index import HashIndex, SortedIndex, build_index
from repro.table.io import (
    read_csv,
    read_jsonl,
    write_csv,
    write_jsonl,
)
from repro.table.schema import Schema
from repro.table.stats import ColumnStatistics, TableStatistics, collect_statistics
from repro.table.table import GroupBy, Table, concat

__all__ = [
    "AGGREGATE_NAMES",
    "Column",
    "ColumnStatistics",
    "GroupBy",
    "HashIndex",
    "Schema",
    "SortedIndex",
    "Table",
    "TableStatistics",
    "aggregate_array",
    "build_index",
    "col",
    "collect_statistics",
    "concat",
    "infer_kind",
    "lit",
    "read_csv",
    "read_jsonl",
    "write_csv",
    "write_jsonl",
]
