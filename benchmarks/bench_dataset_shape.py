"""§II-A — dataset shapes.

Paper: 54,231 Bitcoin blocks from height 556,459 and 2,204,650 Ethereum
blocks from height 6,988,615, all produced in 2019.  This bench times the
full dataset generation (simulation + attribution) and asserts the exact
counts.
"""

from repro.core.engine import MeasurementEngine
from repro.simulation.scenarios import simulate_bitcoin_2019
from repro.util.timeutils import day_index


def build_bitcoin_dataset():
    chain = simulate_bitcoin_2019(seed=2019)
    return chain, MeasurementEngine.from_chain(chain)


def test_dataset_shape_bitcoin(benchmark):
    chain, _engine = benchmark.pedantic(build_bitcoin_dataset, rounds=1, iterations=1)
    print(f"\n=== Bitcoin dataset === {chain!r}")
    assert chain.n_blocks == 54_231
    assert chain.start_height == 556_459
    assert day_index(int(chain.timestamps[0])) == 0
    assert day_index(int(chain.timestamps[-1])) == 364


def test_dataset_shape_ethereum(benchmark, study):
    chain = study.chain("eth")
    # Time the attribution pass over the 2.2M-block chain.
    benchmark.pedantic(
        MeasurementEngine.from_chain, args=(chain,), rounds=1, iterations=1
    )
    print(f"\n=== Ethereum dataset === {chain!r}")
    assert chain.n_blocks == 2_204_650
    assert chain.start_height == 6_988_615
    assert chain.n_credits == chain.n_blocks  # one miner per ETH block
    assert day_index(int(chain.timestamps[0])) == 0
    assert day_index(int(chain.timestamps[-1])) == 364
