"""Tests for the bounded backpressure ingest queue.

The acceptance property from the issue: **queue depth never exceeds the
configured bound**, for all three ``--ingest-policy`` modes, over random
burst schedules — plus item conservation (every offered block is
consumed, still buffered, or counted dropped; nothing vanishes and
nothing is duplicated).
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.serve.ingest import INGEST_POLICIES, IngestQueue

#: A burst schedule: rounds of (puts, gets) arrivals — gets are clamped
#: to what is actually buffered, so schedules never deadlock.
burst_schedules = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)),
    min_size=1,
    max_size=20,
)


class TestValidation:
    def test_rejects_non_positive_maxsize(self):
        with pytest.raises(ValidationError):
            IngestQueue(0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValidationError, match="unknown ingest policy"):
            IngestQueue(4, policy="explode")


class TestShedPolicy:
    def test_full_queue_refuses_new_items(self):
        queue = IngestQueue(2, policy="shed")
        assert queue.put("a")
        assert queue.put("b")
        assert not queue.put("c")  # full: the incoming block is shed
        assert queue.depth() == 2
        assert queue.dropped_total == 1
        assert queue.get() == "a"  # FIFO order, oldest survives

    def test_space_freed_by_get_admits_again(self):
        queue = IngestQueue(1, policy="shed")
        queue.put("a")
        assert not queue.put("b")
        queue.get()
        assert queue.put("c")
        assert queue.get() == "c"


class TestDropOldestPolicy:
    def test_full_queue_evicts_the_head(self):
        queue = IngestQueue(2, policy="drop-oldest")
        assert queue.put("a")
        assert queue.put("b")
        assert queue.put("c")  # evicts a
        assert queue.depth() == 2
        assert queue.dropped_total == 1
        assert queue.get() == "b"
        assert queue.get() == "c"


class TestBlockPolicy:
    def test_producer_waits_for_consumer(self):
        queue = IngestQueue(1, policy="block")
        queue.put("a")
        produced = threading.Event()

        def producer():
            queue.put("b")  # blocks until the consumer drains "a"
            produced.set()

        thread = threading.Thread(target=producer)
        thread.start()
        assert not produced.wait(0.05)  # still parked: queue is full
        assert queue.get() == "a"
        assert produced.wait(5.0)
        thread.join(timeout=5.0)
        assert queue.get() == "b"
        assert queue.dropped_total == 0

    def test_abort_hook_unwedges_a_blocked_producer(self):
        stop = threading.Event()
        queue = IngestQueue(1, policy="block", should_abort=stop.is_set)
        queue.put("a")
        outcomes = []
        thread = threading.Thread(
            target=lambda: outcomes.append(queue.put("b", poll=0.01))
        )
        thread.start()
        stop.set()
        thread.join(timeout=5.0)
        assert outcomes == [False]


class TestCloseAndIteration:
    def test_iteration_drains_then_stops(self):
        queue = IngestQueue(8)
        for item in ("a", "b", "c"):
            queue.put(item)
        queue.close()
        assert list(queue) == ["a", "b", "c"]
        assert queue.closed

    def test_put_after_close_is_refused(self):
        queue = IngestQueue(4)
        queue.close()
        assert not queue.put("late")
        assert queue.depth() == 0

    def test_close_wakes_a_blocked_consumer(self):
        queue = IngestQueue(4)
        done = threading.Event()

        def consumer():
            for _ in queue:
                pass
            done.set()

        thread = threading.Thread(target=consumer)
        thread.start()
        queue.close()
        assert done.wait(5.0)
        thread.join(timeout=5.0)


class TestMetrics:
    def test_depth_and_totals_reach_the_registry(self):
        registry = MetricsRegistry()
        queue = IngestQueue(2, policy="drop-oldest", registry=registry)
        queue.put("a")
        queue.put("b")
        queue.put("c")
        snap = registry.snapshot()
        assert snap["gauges"]["monitor.ingest.queue_depth"] == 2.0
        assert snap["counters"]["monitor.ingest.enqueued_total"] == 3
        assert snap["counters"]["monitor.ingest.dropped_total"] == 1
        queue.get()
        snap = registry.snapshot()
        assert snap["gauges"]["monitor.ingest.queue_depth"] == 1.0


class TestBurstScheduleProperties:
    """The acceptance property: depth <= bound, items conserved."""

    @given(
        maxsize=st.integers(1, 6),
        policy=st.sampled_from(INGEST_POLICIES),
        schedule=burst_schedules,
    )
    @settings(max_examples=80, deadline=None)
    def test_depth_never_exceeds_bound_and_items_are_conserved(
        self, maxsize, policy, schedule
    ):
        # Under "block" a put on a full queue would wait for a consumer;
        # this single-threaded harness sheds instead of waiting, which
        # exercises the same bound (the threaded test below covers real
        # blocking).  Offered counts stay exact either way.
        queue = IngestQueue(maxsize, policy=policy)
        offered = 0
        consumed = []
        next_item = 0
        for puts, gets in schedule:
            for _ in range(puts):
                if policy == "block" and queue.depth() >= maxsize:
                    continue  # a real producer would park here
                queue.put(next_item)
                offered += 1
                next_item += 1
                assert queue.depth() <= maxsize
                assert queue.peak_depth <= maxsize
            for _ in range(gets):
                if queue.depth() == 0:
                    break
                consumed.append(queue.get())
                assert queue.depth() <= maxsize
        # Conservation: every offered item was consumed, is still
        # buffered, or was counted dropped — no loss, no duplication.
        assert queue.enqueued_total + (
            queue.dropped_total if policy == "shed" else 0
        ) == offered
        assert queue.consumed_total == len(consumed)
        assert (
            queue.enqueued_total
            == queue.consumed_total + queue.depth() + (
                queue.dropped_total if policy == "drop-oldest" else 0
            )
        )
        assert len(consumed) == len(set(consumed))  # nothing duplicated
        assert consumed == sorted(consumed)  # FIFO order preserved
        if policy == "block":
            assert queue.dropped_total == 0

    @given(
        maxsize=st.integers(1, 4),
        policy=st.sampled_from(INGEST_POLICIES),
        n_items=st.integers(1, 60),
    )
    @settings(max_examples=25, deadline=None)
    def test_threaded_producer_consumer_respects_the_bound(
        self, maxsize, policy, n_items
    ):
        queue = IngestQueue(maxsize, policy=policy)
        consumed = []

        def consumer():
            for item in queue:
                consumed.append(item)

        thread = threading.Thread(target=consumer)
        thread.start()
        accepted = 0
        for i in range(n_items):
            if queue.put(i, poll=0.001):
                accepted += 1
        queue.close()
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert queue.peak_depth <= maxsize
        if policy == "block":
            # Backpressure never drops: everything offered arrives, in order.
            assert accepted == n_items
            assert consumed == list(range(n_items))
        else:
            # Whatever survived arrives exactly once, in order.
            assert len(consumed) == len(set(consumed))
            assert consumed == sorted(consumed)
            assert accepted + queue.dropped_total >= n_items
