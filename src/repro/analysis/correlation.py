"""Cross-granularity and cross-method consistency analysis (extension).

The paper observes that "the overall patterns of the daily, weekly and
monthly Shannon entropy are quite close" (§II-C) and that sliding- and
fixed-window averages agree (§III-B).  This module quantifies both:

* :func:`granularity_consistency` — correlation between a fine series
  aggregated to a coarse granularity and the coarse series itself.
* :func:`fixed_vs_sliding_agreement` — with M = N/2, every even-indexed
  sliding window *is* a fixed count window, so the two series must agree
  exactly there; the function verifies it and correlates the rest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import MeasurementEngine
from repro.core.series import MeasurementSeries
from repro.errors import MeasurementError
from repro.windows.fixed import FixedBlockWindows


def pearson_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson's r between two equal-length vectors."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise MeasurementError("correlation requires two equal-length 1-D vectors")
    if a.shape[0] < 2:
        raise MeasurementError("correlation requires at least two points")
    if a.std() == 0 or b.std() == 0:
        raise MeasurementError("correlation undefined for constant vectors")
    return float(np.corrcoef(a, b)[0, 1])


def spearman_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman's rho (Pearson over average-tied ranks)."""
    return pearson_correlation(_rank_with_ties(a), _rank_with_ties(b))


def _rank_with_ties(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.shape[0], dtype=np.float64)
    i = 0
    while i < values.shape[0]:
        j = i
        while j + 1 < values.shape[0] and values[order[j + 1]] == values[order[i]]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0
        i = j + 1
    return ranks


def aggregate_series(series: MeasurementSeries, factor: int) -> np.ndarray:
    """Mean of consecutive groups of ``factor`` values (trailing remainder
    dropped) — aligns a fine-granularity series to a coarser one."""
    if factor <= 0:
        raise MeasurementError(f"factor must be positive, got {factor}")
    values = series.values
    n_groups = values.shape[0] // factor
    if n_groups == 0:
        raise MeasurementError("series shorter than one aggregation group")
    return values[: n_groups * factor].reshape(n_groups, factor).mean(axis=1)


@dataclass(frozen=True)
class ConsistencyReport:
    """Correlation of a fine series (aggregated) with a coarse series."""

    fine_desc: str
    coarse_desc: str
    pearson: float
    spearman: float
    n_points: int


def granularity_consistency(
    fine: MeasurementSeries, coarse: MeasurementSeries, factor: int
) -> ConsistencyReport:
    """Correlate ``fine`` aggregated by ``factor`` against ``coarse``.

    E.g. daily vs weekly: ``factor=7``; the aggregated daily means are
    matched positionally with the weekly values.
    """
    aggregated = aggregate_series(fine, factor)
    coarse_values = coarse.values[: aggregated.shape[0]]
    aggregated = aggregated[: coarse_values.shape[0]]
    return ConsistencyReport(
        fine_desc=fine.window_desc,
        coarse_desc=coarse.window_desc,
        pearson=pearson_correlation(aggregated, coarse_values),
        spearman=spearman_correlation(aggregated, coarse_values),
        n_points=int(aggregated.shape[0]),
    )


@dataclass(frozen=True)
class SlidingAgreement:
    """How the sliding series relates to the fixed count partition."""

    #: Max |difference| between even-indexed sliding values and the fixed
    #: count-window values (0 up to float noise — they are the same windows).
    max_even_window_gap: float
    #: Pearson correlation between interpolated fixed values and the full
    #: sliding series.
    pearson: float
    mean_fixed: float
    mean_sliding: float


def fixed_vs_sliding_agreement(
    engine: MeasurementEngine, metric: str, size: int
) -> SlidingAgreement:
    """Verify the even-window identity and correlate the full series."""
    sliding = engine.measure_sliding(metric, size)  # M = N/2
    fixed_windows = FixedBlockWindows(size).generate(engine.credits.n_blocks)
    fixed = engine.measure(metric, fixed_windows, window_desc=f"fixed-count-{size}")
    even = sliding.values[::2][: len(fixed)]
    gap = float(np.abs(even - fixed.values[: even.shape[0]]).max())
    # Interpolate fixed onto the sliding index grid for a full-series r.
    positions = np.arange(sliding.values.shape[0], dtype=np.float64) / 2.0
    interpolated = np.interp(
        positions, np.arange(fixed.values.shape[0], dtype=np.float64), fixed.values
    )
    return SlidingAgreement(
        max_even_window_gap=gap,
        pearson=pearson_correlation(interpolated, sliding.values),
        mean_fixed=fixed.mean(),
        mean_sliding=sliding.mean(),
    )
