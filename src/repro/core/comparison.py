"""Comparative analyses: the paper's claims as functions.

* :func:`compare_level` — which chain is *more decentralized* (Bitcoin, per
  the paper) for a metric where higher (entropy, Nakamoto) or lower (Gini)
  means more decentralized.
* :func:`compare_stability` — which chain is *more stable* (Ethereum, per
  the paper), judged by the coefficient of variation.
* :func:`granularity_ordering` — whether series means are ordered by
  granularity (the paper's Gini finding: month > week > day).
* :func:`fixed_vs_sliding_gain` — how much cross-interval information the
  sliding series adds over the fixed one (extra measurement points and
  extra detected anomalies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.anomaly import AnomalyReport
from repro.core.series import MeasurementSeries
from repro.errors import MeasurementError


@dataclass(frozen=True)
class LevelComparison:
    """Outcome of a decentralization-level comparison."""

    metric_name: str
    higher_is_more_decentralized: bool
    mean_a: float
    mean_b: float
    chain_a: str
    chain_b: str
    #: The chain judged more decentralized.
    winner: str


@dataclass(frozen=True)
class StabilityComparison:
    """Outcome of a stability comparison (lower CV = more stable)."""

    metric_name: str
    cv_a: float
    cv_b: float
    chain_a: str
    chain_b: str
    #: The chain judged more stable.
    winner: str


@dataclass(frozen=True)
class SlidingGain:
    """What sliding windows added over fixed windows."""

    n_fixed: int
    n_sliding: int
    anomalies_fixed: int
    anomalies_sliding: int

    @property
    def point_ratio(self) -> float:
        """Sliding points per fixed point (the paper's ~2x with M = N/2)."""
        if self.n_fixed == 0:
            raise MeasurementError("fixed series is empty")
        return self.n_sliding / self.n_fixed


def compare_level(
    series_a: MeasurementSeries,
    series_b: MeasurementSeries,
    higher_is_more_decentralized: bool,
) -> LevelComparison:
    """Compare mean decentralization level between two chains' series."""
    _check_same_metric(series_a, series_b)
    mean_a, mean_b = series_a.mean(), series_b.mean()
    if higher_is_more_decentralized:
        winner = series_a.chain_name if mean_a >= mean_b else series_b.chain_name
    else:
        winner = series_a.chain_name if mean_a <= mean_b else series_b.chain_name
    return LevelComparison(
        metric_name=series_a.metric_name,
        higher_is_more_decentralized=higher_is_more_decentralized,
        mean_a=mean_a,
        mean_b=mean_b,
        chain_a=series_a.chain_name,
        chain_b=series_b.chain_name,
        winner=winner,
    )


def compare_stability(
    series_a: MeasurementSeries, series_b: MeasurementSeries
) -> StabilityComparison:
    """Compare stability (coefficient of variation) between two series."""
    _check_same_metric(series_a, series_b)
    cv_a = series_a.coefficient_of_variation()
    cv_b = series_b.coefficient_of_variation()
    winner = series_a.chain_name if cv_a <= cv_b else series_b.chain_name
    return StabilityComparison(
        metric_name=series_a.metric_name,
        cv_a=cv_a,
        cv_b=cv_b,
        chain_a=series_a.chain_name,
        chain_b=series_b.chain_name,
        winner=winner,
    )


def granularity_ordering(series_by_granularity: Sequence[MeasurementSeries]) -> bool:
    """True if series means are non-decreasing in the given order.

    Pass (day, week, month) series to test the paper's Gini finding that
    coarser granularities yield systematically higher values.
    """
    if len(series_by_granularity) < 2:
        raise MeasurementError("need at least two series to order")
    means = [series.mean() for series in series_by_granularity]
    return all(a <= b for a, b in zip(means, means[1:]))


def fixed_vs_sliding_gain(
    fixed: MeasurementSeries,
    sliding: MeasurementSeries,
    detector: Callable[[MeasurementSeries], AnomalyReport],
) -> SlidingGain:
    """Quantify the sliding-window information gain with ``detector``."""
    return SlidingGain(
        n_fixed=len(fixed),
        n_sliding=len(sliding),
        anomalies_fixed=detector(fixed).count,
        anomalies_sliding=detector(sliding).count,
    )


def _check_same_metric(a: MeasurementSeries, b: MeasurementSeries) -> None:
    if a.metric_name != b.metric_name:
        raise MeasurementError(
            f"cannot compare different metrics: {a.metric_name} vs {b.metric_name}"
        )
