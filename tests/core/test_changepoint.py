"""Tests for the CUSUM change-point detector."""

import numpy as np
import pytest

from repro.core.changepoint import cusum_changepoints
from repro.errors import MeasurementError
from tests.core.test_series import make_series


class TestCusum:
    def test_level_shift_detected_once(self):
        values = [0.0] * 50 + [2.0] * 50
        rng = np.random.default_rng(0)
        noisy = (np.asarray(values) + rng.normal(0, 0.1, 100)).tolist()
        report = cusum_changepoints(make_series(noisy), threshold=5.0, drift=0.5)
        assert report.count == 1
        assert report.points[0].direction == 1
        # Flagged shortly after the true change at position 50.
        assert 50 <= report.points[0].position <= 60

    def test_downward_shift_direction(self):
        values = [5.0] * 40 + [1.0] * 40
        report = cusum_changepoints(make_series(values), threshold=4.0)
        assert report.count >= 1
        assert report.points[0].direction == -1

    def test_flat_series_clean(self):
        report = cusum_changepoints(make_series([3.0] * 100))
        assert not report

    def test_white_noise_mostly_clean(self):
        rng = np.random.default_rng(1)
        report = cusum_changepoints(
            make_series(rng.normal(0, 1, 200).tolist()), threshold=8.0, drift=0.5
        )
        assert report.count == 0

    def test_two_shifts_both_reported(self):
        values = [0.0] * 40 + [3.0] * 40 + [0.0] * 40
        report = cusum_changepoints(make_series(values), threshold=4.0)
        directions = [p.direction for p in report.points]
        assert 1 in directions and -1 in directions

    def test_short_series_no_crash(self):
        assert cusum_changepoints(make_series([1.0, 2.0])).count == 0

    def test_magnitude_positive(self):
        values = [0.0] * 30 + [4.0] * 30
        report = cusum_changepoints(make_series(values), threshold=3.0)
        assert all(p.magnitude > 3.0 for p in report.points)

    def test_labels_carried(self):
        values = [0.0] * 30 + [4.0] * 30
        report = cusum_changepoints(make_series(values), threshold=3.0)
        first = report.points[0]
        assert first.label == f"w{first.position}"

    def test_invalid_threshold(self):
        with pytest.raises(MeasurementError):
            cusum_changepoints(make_series([1.0] * 10), threshold=0.0)

    def test_invalid_drift(self):
        with pytest.raises(MeasurementError):
            cusum_changepoints(make_series([1.0] * 10), drift=-0.1)


class TestOnCalibratedData:
    def test_btc_weekly_gini_has_changepoints(self, btc_engine):
        """BTC 2019 drifts from the fragmented early regime to the stable
        late one — CUSUM must see at least one shift."""
        weekly = btc_engine.measure_calendar("gini", "week")
        report = cusum_changepoints(weekly, threshold=3.0, drift=0.3)
        assert report.count >= 1

    def test_eth_weekly_gini_quieter_than_btc(self, btc_engine, eth_engine):
        btc_report = cusum_changepoints(
            btc_engine.measure_calendar("gini", "week"), threshold=3.0, drift=0.3
        )
        eth_report = cusum_changepoints(
            eth_engine.measure_calendar("gini", "week"), threshold=3.0, drift=0.3
        )
        assert eth_report.count <= btc_report.count
