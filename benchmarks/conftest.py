"""Shared fixtures for the benchmark harness.

Each ``bench_figNN_*.py`` regenerates the data behind one figure of the
paper, prints the same rows/series the paper reports (means, ranges,
window counts) and asserts the figure's *shape* claims.  Timings come from
pytest-benchmark; run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.analysis.study import DecentralizationStudy
from repro.core.engine import MeasurementEngine


@pytest.fixture(scope="session")
def study() -> DecentralizationStudy:
    return DecentralizationStudy(seed=2019)


@pytest.fixture(scope="session")
def btc(study) -> MeasurementEngine:
    return study.engine("btc")


@pytest.fixture(scope="session")
def eth(study) -> MeasurementEngine:
    return study.engine("eth")
