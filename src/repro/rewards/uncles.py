"""Uncle (ommer) income for Ethereum-style chains.

Ethereum's 2019 uncle rate ran around 7%: for every ~14 main-chain blocks
one stale block was referenced as an uncle and its producer still earned
up to 7/8 of the subsidy (plus the nephew's 1/32 inclusion bonus).  Uncle
income therefore redistributes a material slice of total issuance — and
because uncles come from the *same* hashrate distribution as main blocks,
it thickens every producer's income roughly proportionally.  This module
generates an uncle income stream alongside a chain and merges it with the
main-chain rewards so wealth measurements can include it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chain.attribution import Credits
from repro.chain.chain import Chain
from repro.errors import SimulationError
from repro.rewards.schedule import RewardSchedule
from repro.rewards.wealth import reward_credits
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class UncleModel:
    """Uncle frequency and payout parameters."""

    #: Probability that a main-chain block references one uncle.
    rate: float = 0.068
    #: Average uncle payout as a fraction of the block subsidy ((8-d)/8).
    reward_fraction: float = 0.875
    #: Nephew's inclusion bonus as a fraction of the subsidy (1/32).
    nephew_bonus: float = 1.0 / 32.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise SimulationError(f"rate must be in [0, 1), got {self.rate}")
        if not 0.0 < self.reward_fraction <= 1.0:
            raise SimulationError("reward_fraction must be in (0, 1]")
        if self.nephew_bonus < 0:
            raise SimulationError("nephew_bonus must be >= 0")


ETHEREUM_UNCLES_2019 = UncleModel()


def uncle_credits(
    chain: Chain,
    schedule: RewardSchedule,
    model: UncleModel = ETHEREUM_UNCLES_2019,
    seed: int = 2019,
) -> Credits:
    """Income credits from uncle production and nephew bonuses.

    Each main block hosts an uncle with probability ``model.rate``.  The
    uncle's producer is drawn from a neighboring block's producer (same
    hashrate distribution, local in time); it earns
    ``subsidy * reward_fraction`` and the nephew block's producer earns
    ``subsidy * nephew_bonus``.
    """
    rng = derive_rng(seed, "rewards/uncles")
    n = chain.n_blocks
    host_mask = rng.random(n) < model.rate
    hosts = np.flatnonzero(host_mask)
    # Uncle producers: the producer of a block within +/- 100 positions.
    offsets = rng.integers(-100, 101, size=hosts.shape[0])
    donor_blocks = np.clip(hosts + offsets, 0, n - 1)
    first_credit = chain.offsets[:-1]
    uncle_producers = chain.producer_ids[first_credit[donor_blocks]]
    nephew_producers = chain.producer_ids[first_credit[hosts]]
    positions = np.concatenate([hosts, hosts])
    entities = np.concatenate([uncle_producers, nephew_producers])
    weights = np.concatenate(
        [
            np.full(hosts.shape[0], schedule.subsidy * model.reward_fraction),
            np.full(hosts.shape[0], schedule.subsidy * model.nephew_bonus),
        ]
    )
    order = np.argsort(positions, kind="stable")
    positions = positions[order]
    entities = entities[order]
    weights = weights[order]
    block_offsets = np.searchsorted(positions, np.arange(n + 1))
    return Credits(
        chain_name=chain.spec.name,
        policy=f"uncles-{schedule.name}",
        entity_ids=entities.astype(np.int64),
        weights=weights.astype(np.float64),
        block_positions=positions.astype(np.int64),
        timestamps=chain.timestamps[positions],
        block_offsets=block_offsets.astype(np.int64),
        entity_names=list(chain.producer_names),
    )


def income_with_uncles(
    chain: Chain,
    schedule: RewardSchedule,
    model: UncleModel = ETHEREUM_UNCLES_2019,
    seed: int = 2019,
) -> Credits:
    """Main-chain rewards merged with uncle/nephew income, in block order."""
    main = reward_credits(chain, schedule, seed=seed)
    uncles = uncle_credits(chain, schedule, model=model, seed=seed)
    positions = np.concatenate([main.block_positions, uncles.block_positions])
    entities = np.concatenate([main.entity_ids, uncles.entity_ids])
    weights = np.concatenate([main.weights, uncles.weights])
    timestamps = np.concatenate([main.timestamps, uncles.timestamps])
    order = np.argsort(positions, kind="stable")
    positions = positions[order]
    block_offsets = np.searchsorted(positions, np.arange(chain.n_blocks + 1))
    return Credits(
        chain_name=chain.spec.name,
        policy=f"income+uncles-{schedule.name}",
        entity_ids=entities[order],
        weights=weights[order],
        block_positions=positions,
        timestamps=timestamps[order],
        block_offsets=block_offsets.astype(np.int64),
        entity_names=list(chain.producer_names),
    )
