"""Fig. 1 — Gini coefficient measured in Bitcoin using fixed windows.

Paper claims: monthly > weekly > daily everywhere; monthly values close to
0.90 during the first three months; daily values mostly within 0.45–0.60
with early-year extremes near 0.25–0.35.
"""

from _bench_util import report_series
from repro.analysis.figures import figure_1


def test_fig01_btc_gini_fixed(benchmark, btc):
    figure = benchmark(figure_1, btc)
    report_series(figure.title, figure.series)

    day = figure.series["day"]
    week = figure.series["week"]
    month = figure.series["month"]
    assert day.mean() < week.mean() < month.mean()
    assert month.slice(0, 3).max() > 0.80
    assert day.fraction_in_range(0.45, 0.60) > 0.6
    assert day.slice(0, 90).min() < 0.40
