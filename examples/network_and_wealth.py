"""Extension: decentralization beyond block production.

The paper measures the consensus layer (who produces blocks).  Its related
work measures two more layers, both reproduced here on the same simulated
data:

* the **network layer** ([5]): who relays the blocks — topology metrics
  and propagation/stale-rate analysis; and
* the **wealth layer** ([9]): who accumulates the rewards — cumulative
  income measured with the same Gini/entropy/Nakamoto metrics.

Run with::

    python examples/network_and_wealth.py
"""

from repro import MeasurementEngine, simulate_bitcoin_2019
from repro.chain.pools import bitcoin_pools_2019
from repro.network import (
    NetworkParams,
    betweenness_concentration,
    degree_gini,
    generate_network,
    network_nakamoto,
    propagation_report,
    stale_rate,
)
from repro.rewards import (
    BITCOIN_REWARDS_2019,
    cumulative_wealth_series,
    reward_credits,
    total_rewards_by_entity,
)
from repro.viz import sparkline


def main() -> None:
    chain = simulate_bitcoin_2019(seed=2019)
    registry = bitcoin_pools_2019()

    # --- consensus layer (the paper) ---------------------------------------
    engine = MeasurementEngine.from_chain(chain)
    nakamoto = engine.measure_calendar("nakamoto", "day").mean()
    print(f"consensus layer: daily Nakamoto coefficient ≈ {nakamoto:.1f}")

    # --- network layer ([5]) ------------------------------------------------
    network = generate_network(
        NetworkParams(
            n_nodes=1_200, pools=tuple(p.name for p in registry.pools), seed=2019
        )
    )
    print(
        f"\nnetwork layer: {network.n_nodes} nodes, {network.n_edges} edges\n"
        f"  degree gini          = {degree_gini(network):.3f}\n"
        f"  betweenness gini     = {betweenness_concentration(network, sample=120):.3f}\n"
        f"  network nakamoto     = {network_nakamoto(network, sample=120)} nodes "
        f"(vs {nakamoto:.0f} consensus entities!)"
    )
    gateway = network.pool_gateways["F2Pool"]
    report = propagation_report(network, gateway)
    print(
        f"  block propagation    = p50 {report.p50:.0f} ms, p90 {report.p90:.0f} ms\n"
        f"  stale rate @600s     = {stale_rate(network, 600):.4%}\n"
        f"  stale rate @13.2s    = {stale_rate(network, 13.2):.2%} "
        "(why Ethereum needed uncle rewards)"
    )

    # --- wealth layer ([9]) ---------------------------------------------------
    wealth = reward_credits(chain, BITCOIN_REWARDS_2019, seed=2019)
    gini_series = cumulative_wealth_series(wealth, "gini", checkpoints=12)
    print(
        f"\nwealth layer: {wealth.total_weight:,.0f} BTC paid out in 2019\n"
        f"  cumulative wealth gini by month: {sparkline(gini_series, width=12)} "
        f"({gini_series.values[0]:.3f} -> {gini_series.values[-1]:.3f})"
    )
    top = total_rewards_by_entity(wealth)[:3]
    for name, amount in top:
        print(f"  {registry.pool_of(name):<12s} earned {amount:10,.1f} BTC "
              f"({amount / wealth.total_weight:.1%})")
    print(
        "\nTakeaway: the deeper you look (consensus -> wealth), the more "
        "persistent the concentration; the wider you look (network), the "
        "more parties it takes to control the system."
    )


if __name__ == "__main__":
    main()
