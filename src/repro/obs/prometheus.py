"""Prometheus text exposition (version 0.0.4) for the metrics registry.

:func:`render_prometheus` turns a :class:`~repro.obs.metrics.MetricsRegistry`
into the plain-text format a Prometheus server scrapes: counters become
``<name>_total``, gauges keep their name, and timing histograms expand into
cumulative ``_bucket{le="..."}`` series plus ``_sum``/``_count`` — the
bucket counts are maintained exactly on ``observe`` (see
:attr:`~repro.obs.metrics.DEFAULT_BUCKET_BOUNDS`), not reconstructed from
the bounded percentile sample.

Instrument names in this codebase are dotted (``engine.sliding_cache.hit``);
:func:`sanitize_metric_name` maps them onto the Prometheus grammar
``[a-zA-Z_:][a-zA-Z0-9_:]*`` under a ``repro_`` namespace prefix.

Every payload additionally carries a ``repro_build_info`` gauge — the
standard constant-1 series whose labels identify the build (package
version, python version/implementation, platform), so dashboards can
join measurements against the code that produced them.
"""

from __future__ import annotations

import platform as _platform
import re

from repro.obs.metrics import MetricsRegistry

#: Namespace every exposed metric lives under.
NAMESPACE = "repro"

_INVALID_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_LABEL_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name: str, namespace: str = NAMESPACE) -> str:
    """Map an instrument name onto a legal, namespaced Prometheus name.

    Dots and every other illegal character collapse to ``_``, runs of
    underscores are squeezed, and a leading digit gains a ``_`` guard.

    >>> sanitize_metric_name("engine.sliding_cache.hit")
    'repro_engine_sliding_cache_hit'
    >>> sanitize_metric_name("2phase commit!")
    'repro_2phase_commit_'
    """
    cleaned = _INVALID_METRIC_CHARS.sub("_", name)
    cleaned = re.sub(r"__+", "_", cleaned)
    if namespace:
        cleaned = f"{namespace}_{cleaned}"
    if cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned


def sanitize_label_name(name: str) -> str:
    """Map a label name onto ``[a-zA-Z_][a-zA-Z0-9_]*`` (no colons)."""
    cleaned = _INVALID_LABEL_CHARS.sub("_", name) or "_"
    if cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format (``\\``, ``"``, newline)."""
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def escape_help_text(text: str) -> str:
    """Escape a ``# HELP`` docstring per the exposition format (``\\``, newline)."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def format_value(value: float) -> str:
    """Render a sample value; integers lose the trailing ``.0``."""
    as_float = float(value)
    if as_float != as_float:  # NaN
        return "NaN"
    if as_float in (float("inf"), float("-inf")):
        return "+Inf" if as_float > 0 else "-Inf"
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _histogram_name(raw: str) -> str:
    """Histogram exposition names advertise their unit (seconds)."""
    name = sanitize_metric_name(raw)
    return name if name.endswith("_seconds") else f"{name}_seconds"


def build_info() -> dict:
    """Build/runtime identity labels for the ``repro_build_info`` series.

    Also served verbatim as the ``build`` section of ``/status``.
    """
    from repro import __version__

    return {
        "version": __version__,
        "python": _platform.python_version(),
        "implementation": _platform.python_implementation(),
        "platform": _platform.platform(),
    }


def render_build_info(namespace: str = NAMESPACE) -> str:
    """The constant-1 ``<namespace>_build_info`` gauge section."""
    name = f"{namespace}_build_info"
    labels = ",".join(
        f'{sanitize_label_name(key)}="{escape_label_value(str(value))}"'
        for key, value in sorted(build_info().items())
    )
    return (
        f"# HELP {name} Build and runtime identity (constant 1).\n"
        f"# TYPE {name} gauge\n"
        f"{name}{{{labels}}} 1\n"
    )


def render_prometheus(registry: MetricsRegistry) -> str:
    """The full ``/metrics`` payload for ``registry``.

    Counters are exposed as ``repro_<name>_total``, gauges as
    ``repro_<name>``, timing histograms as ``repro_<name>_seconds`` with
    cumulative ``le`` buckets ending at ``+Inf`` and exact
    ``_sum``/``_count`` series.  The payload always ends with the
    ``repro_build_info`` identity gauge, so even an empty registry scrapes
    as a live, identifiable target.
    """
    counters, gauges, timings = registry.instruments()
    lines: list[str] = []
    for counter in counters:
        name = sanitize_metric_name(counter.name)
        if not name.endswith("_total"):
            name = f"{name}_total"
        help_text = counter.help or f"Counter {counter.name!r}."
        lines.append(f"# HELP {name} {escape_help_text(help_text)}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {format_value(counter.value)}")
    for gauge in gauges:
        name = sanitize_metric_name(gauge.name)
        help_text = gauge.help or f"Gauge {gauge.name!r}."
        lines.append(f"# HELP {name} {escape_help_text(help_text)}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {format_value(gauge.value)}")
    for timing in timings:
        name = _histogram_name(timing.name)
        help_text = timing.help or f"Timing histogram {timing.name!r} (seconds)."
        lines.append(f"# HELP {name} {escape_help_text(help_text)}")
        lines.append(f"# TYPE {name} histogram")
        for bound, cumulative in timing.cumulative_buckets():
            le = "+Inf" if bound == float("inf") else format_value(bound)
            lines.append(f'{name}_bucket{{le="{le}"}} {cumulative}')
        lines.append(f"{name}_sum {format_value(timing.total)}")
        lines.append(f"{name}_count {timing.count}")
    body = "\n".join(lines) + "\n" if lines else ""
    return body + render_build_info()
