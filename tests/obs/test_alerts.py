"""Tests for stateful alerting (:mod:`repro.obs.alerts`).

Lifecycle transitions run on a :class:`~repro.resilience.retry.ManualClock`
so pending dwell, hysteresis holds and resolve delays are exact; sink
tests use a real JSONL file and a throwaway webhook server.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.errors import ValidationError
from repro.obs.alerts import (
    AlertManager,
    AlertRule,
    AnomalyDetector,
    JSONLSink,
    WebhookSink,
    anomaly_rule,
    format_alert_event,
    rules_from_thresholds,
)
from repro.obs.metrics import MetricsRegistry
from repro.resilience.retry import ManualClock, RetryPolicy


def manager_on(clock, *rules, **kwargs):
    manager = AlertManager(clock=clock, registry=MetricsRegistry(), **kwargs)
    for rule in rules:
        manager.add_rule(rule)
    return manager


class TestAlertRule:
    def test_threshold_form_requires_a_bound(self):
        with pytest.raises(ValidationError):
            AlertRule("r", metric="gini")
        with pytest.raises(ValidationError):
            AlertRule("r")

    def test_check_form_excludes_thresholds(self):
        with pytest.raises(ValidationError):
            AlertRule("r", metric="gini", below=0.5, check=lambda v: (False, 0.0))

    def test_negative_durations_rejected(self):
        with pytest.raises(ValidationError):
            AlertRule("r", metric="gini", below=0.5, for_duration=-1.0)

    def test_evaluate_triggered_and_cleared(self):
        rule = AlertRule("r", metric="gini", below=0.5, hysteresis=0.1)
        assert rule.evaluate({"gini": 0.4}) == (True, False, 0.4)
        # In the hysteresis band: not triggered, but not cleared either.
        assert rule.evaluate({"gini": 0.55}) == (False, False, 0.55)
        assert rule.evaluate({"gini": 0.7}) == (False, True, 0.7)
        assert rule.evaluate({}) is None

    def test_describe_names_the_condition(self):
        rule = AlertRule("r", metric="gini", below=0.5)
        assert "gini=0.4000" in rule.describe(0.4)
        assert "below 0.5" in rule.describe(0.4)


class TestLifecycle:
    def test_immediate_fire_and_resolve(self):
        clock = ManualClock()
        manager = manager_on(clock, AlertRule("low", metric="m", below=1.0))
        events = manager.evaluate({"m": 0.5})
        assert [e.state for e in events] == ["firing"]
        assert manager.evaluate({"m": 0.5}) == []  # dedup while active
        events = manager.evaluate({"m": 2.0})
        assert [e.state for e in events] == ["resolved"]
        assert manager.active() == []
        assert manager.fired_total == 1
        assert manager.resolved_total == 1

    def test_for_duration_walks_through_pending(self):
        clock = ManualClock()
        manager = manager_on(
            clock, AlertRule("low", metric="m", below=1.0, for_duration=10.0)
        )
        assert [e.state for e in manager.evaluate({"m": 0.5})] == ["pending"]
        clock.advance(5.0)
        assert manager.evaluate({"m": 0.5}) == []
        clock.advance(5.0)
        assert [e.state for e in manager.evaluate({"m": 0.5})] == ["firing"]

    def test_pending_that_recovers_never_fires(self):
        clock = ManualClock()
        manager = manager_on(
            clock, AlertRule("low", metric="m", below=1.0, for_duration=10.0)
        )
        manager.evaluate({"m": 0.5})
        assert manager.evaluate({"m": 5.0}) == []  # silently dropped
        assert manager.active() == []
        assert manager.fired_total == 0

    def test_hysteresis_holds_alert_open_in_band(self):
        clock = ManualClock()
        manager = manager_on(
            clock, AlertRule("low", metric="m", below=1.0, hysteresis=0.5)
        )
        manager.evaluate({"m": 0.5})
        # Back above the threshold but inside the band: still firing.
        assert manager.evaluate({"m": 1.2}) == []
        assert manager.active()[0]["state"] == "firing"
        assert [e.state for e in manager.evaluate({"m": 2.0})] == ["resolved"]

    def test_keep_for_delays_resolution(self):
        clock = ManualClock()
        manager = manager_on(
            clock, AlertRule("low", metric="m", below=1.0, keep_for=30.0)
        )
        manager.evaluate({"m": 0.5})
        assert manager.evaluate({"m": 5.0}) == []  # resolve timer starts
        clock.advance(15.0)
        assert manager.evaluate({"m": 5.0}) == []
        # Re-trigger resets the timer.
        manager.evaluate({"m": 0.5})
        clock.advance(40.0)
        assert manager.evaluate({"m": 5.0}) == []  # timer restarted at 40
        clock.advance(30.0)
        assert [e.state for e in manager.evaluate({"m": 5.0})] == ["resolved"]
        assert manager.fired_total == 1  # re-trigger while firing is dedup'd

    def test_missing_data_holds_state(self):
        clock = ManualClock()
        manager = manager_on(clock, AlertRule("low", metric="m", below=1.0))
        manager.evaluate({"m": 0.5})
        assert manager.evaluate({}) == []  # no data: no transition
        assert manager.active()[0]["state"] == "firing"

    def test_duplicate_rule_names_rejected(self):
        manager = manager_on(ManualClock())
        manager.add_rule(AlertRule("r", metric="m", below=1.0))
        with pytest.raises(ValidationError):
            manager.add_rule(AlertRule("r", metric="m", above=2.0))

    def test_history_records_transitions_oldest_first(self):
        clock = ManualClock()
        manager = manager_on(clock, AlertRule("low", metric="m", below=1.0))
        manager.evaluate({"m": 0.5})
        clock.advance(1.0)
        manager.evaluate({"m": 2.0})
        states = [e["state"] for e in manager.history()]
        assert states == ["firing", "resolved"]
        assert manager.summary()["firing"] == 0

    def test_registry_counters_track_lifecycle(self):
        registry = MetricsRegistry()
        manager = AlertManager(clock=ManualClock(), registry=registry)
        manager.add_rule(AlertRule("low", metric="m", below=1.0))
        manager.evaluate({"m": 0.5})
        manager.evaluate({"m": 2.0})
        snap = registry.snapshot()
        assert snap["counters"]["alerts.fired_total"] == 1.0
        assert snap["counters"]["alerts.resolved_total"] == 1.0


class TestSinks:
    def test_jsonl_sink_appends_events(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        clock = ManualClock()
        manager = manager_on(
            clock, AlertRule("low", metric="m", below=1.0),
            sinks=[JSONLSink(str(path))],
        )
        manager.evaluate({"m": 0.5})
        manager.evaluate({"m": 2.0})
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [e["state"] for e in lines] == ["firing", "resolved"]
        assert lines[0]["rule"] == "low"
        assert format_alert_event(lines[0])  # renders without crashing

    def test_broken_sink_never_breaks_evaluation(self):
        class Broken:
            def emit(self, event):
                raise RuntimeError("boom")

        manager = manager_on(
            ManualClock(), AlertRule("low", metric="m", below=1.0),
            sinks=[Broken()],
        )
        events = manager.evaluate({"m": 0.5})
        assert [e.state for e in events] == ["firing"]

    def test_webhook_sink_posts_json(self):
        received = []

        class Handler(BaseHTTPRequestHandler):
            def do_POST(self):
                length = int(self.headers["Content-Length"])
                received.append(json.loads(self.rfile.read(length)))
                self.send_response(200)
                self.send_header("Content-Length", "0")
                self.end_headers()

            def log_message(self, *args):
                pass

        server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            url = f"http://127.0.0.1:{server.server_address[1]}/hook"
            sink = WebhookSink(url, retry_policy=RetryPolicy(max_attempts=2),
                               clock=ManualClock())
            manager = manager_on(
                ManualClock(), AlertRule("low", metric="m", below=1.0),
                sinks=[sink],
            )
            manager.evaluate({"m": 0.5})
        finally:
            server.shutdown()
            server.server_close()
        assert len(received) == 1
        assert received[0]["rule"] == "low"
        assert received[0]["state"] == "firing"

    def test_webhook_failure_is_swallowed_and_counted(self):
        sink = WebhookSink(
            "http://127.0.0.1:1/nope",
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0),
            clock=ManualClock(),
        )
        manager = manager_on(
            ManualClock(), AlertRule("low", metric="m", below=1.0),
            sinks=[sink],
        )
        events = manager.evaluate({"m": 0.5})  # must not raise
        assert [e.state for e in events] == ["firing"]


class TestRulesFromThresholds:
    def test_compiles_both_directions(self):
        rules = rules_from_thresholds(
            below=[("gini", 0.5)], above=[("nakamoto", 10.0)], keep_for=5.0
        )
        assert [r.name for r in rules] == ["gini-below-0.5", "nakamoto-above-10"]
        assert rules[0].below == 0.5
        assert rules[1].above == 10.0
        assert all(r.keep_for == 5.0 for r in rules)


class TestAnomalyDetector:
    def test_warmup_returns_none(self):
        detector = AnomalyDetector(warmup=3)
        assert [detector.update(v) for v in (1.0, 1.1, 0.9)] == [None] * 3
        assert detector.update(1.0) is not None

    def test_flags_regime_shift_not_noise(self):
        detector = AnomalyDetector(threshold=4.0, warmup=5)
        values = [10.0, 10.2, 9.9, 10.1, 10.0, 10.05, 9.95, 10.1, 9.9, 10.0]
        flags = [detector.is_anomaly(v) for v in values]
        assert not any(flags)
        assert detector.is_anomaly(4.0)

    def test_anomalies_not_absorbed_by_default(self):
        detector = AnomalyDetector(threshold=4.0, warmup=3)
        for v in (10.0, 10.1, 9.9, 10.0):
            detector.update(v)
        baseline = detector.mean
        assert abs(detector.update(0.0)) > 4.0
        assert detector.mean == baseline  # spike did not drag the mean

    def test_validation(self):
        with pytest.raises(ValidationError):
            AnomalyDetector(alpha=0.0)
        with pytest.raises(ValidationError):
            AnomalyDetector(threshold=0.0)
        with pytest.raises(ValidationError):
            AnomalyDetector(warmup=1)

    def test_anomaly_rule_fires_through_manager(self):
        clock = ManualClock()
        manager = manager_on(
            clock,
            anomaly_rule("anomaly:m", "m", AnomalyDetector(threshold=4.0, warmup=3)),
        )
        for v in (10.0, 10.1, 9.9, 10.0, 10.05):
            assert manager.evaluate({"m": v}) == []
        events = manager.evaluate({"m": 2.0})
        assert [e.state for e in events] == ["firing"]
        assert manager.active()[0]["labels"]["kind"] == "anomaly"
