"""Tests for fixed calendar and count windows."""

import pytest

from repro.errors import WindowError
from repro.util.timeutils import SECONDS_PER_DAY, YEAR_2019_END, YEAR_2019_START
from repro.windows.fixed import FixedBlockWindows, FixedCalendarWindows


class TestCalendarDays:
    def test_365_days(self):
        windows = FixedCalendarWindows("day").generate()
        assert len(windows) == 365

    def test_day_bounds(self):
        windows = FixedCalendarWindows("day").generate()
        assert windows[0].start_ts == YEAR_2019_START
        assert windows[0].end_ts == YEAR_2019_START + SECONDS_PER_DAY
        assert windows[-1].end_ts == YEAR_2019_END

    def test_labels_are_iso_dates(self):
        windows = FixedCalendarWindows("day").generate()
        assert windows[0].label == "2019-01-01"
        assert windows[13].label == "2019-01-14"  # the paper's day 14
        assert windows[-1].label == "2019-12-31"

    def test_no_overlap_no_gap(self):
        windows = FixedCalendarWindows("day").generate()
        for a, b in zip(windows, windows[1:]):
            assert a.end_ts == b.start_ts


class TestCalendarWeeks:
    def test_52_weeks(self):
        windows = FixedCalendarWindows("week").generate()
        assert len(windows) == 52

    def test_last_week_covers_eight_days(self):
        last = FixedCalendarWindows("week").generate()[-1]
        assert last.duration == 8 * SECONDS_PER_DAY
        assert last.end_ts == YEAR_2019_END

    def test_other_weeks_cover_seven_days(self):
        windows = FixedCalendarWindows("week").generate()
        assert all(w.duration == 7 * SECONDS_PER_DAY for w in windows[:-1])


class TestCalendarMonths:
    def test_12_months(self):
        windows = FixedCalendarWindows("month").generate()
        assert len(windows) == 12

    def test_labels(self):
        windows = FixedCalendarWindows("month").generate()
        assert windows[0].label == "2019-01"
        assert windows[11].label == "2019-12"

    def test_contiguous_cover_of_year(self):
        windows = FixedCalendarWindows("month").generate()
        assert windows[0].start_ts == YEAR_2019_START
        assert windows[-1].end_ts == YEAR_2019_END
        for a, b in zip(windows, windows[1:]):
            assert a.end_ts == b.start_ts

    def test_february_has_28_days(self):
        feb = FixedCalendarWindows("month").generate()[1]
        assert feb.duration == 28 * SECONDS_PER_DAY


class TestGranularityValidation:
    def test_unknown_granularity_rejected(self):
        with pytest.raises(WindowError):
            FixedCalendarWindows("fortnight")


class TestFixedBlockWindows:
    def test_partition(self):
        windows = FixedBlockWindows(100).generate(350)
        assert len(windows) == 3
        assert windows[0].start_block == 0
        assert windows[2].stop_block == 300

    def test_trailing_partial_dropped(self):
        assert len(FixedBlockWindows(100).generate(99)) == 0

    def test_no_overlap(self):
        windows = FixedBlockWindows(50).generate(200)
        for a, b in zip(windows, windows[1:]):
            assert a.overlap(b) == 0

    def test_invalid_size_rejected(self):
        with pytest.raises(WindowError):
            FixedBlockWindows(0)

    def test_negative_n_blocks_rejected(self):
        with pytest.raises(WindowError):
            FixedBlockWindows(10).generate(-1)
