"""Tests for the partitioned chain store and cache."""

import json

import numpy as np
import pytest

from repro.data.cache import cached_chain
from repro.data.store import ChainStore, ChainStoreError
from repro.util.timeutils import YEAR_2019_START, month_index
from tests.conftest import make_tiny_chain


@pytest.fixture
def chain():
    # Blocks spanning January and February 2019 (two partitions), with
    # one multi-producer block.
    producers = [["a"], ["b"], ["a", "x", "y"], ["c"], ["a"], ["b"]]
    return make_tiny_chain(
        producers,
        start_ts=YEAR_2019_START + 20 * 86_400,  # Jan 21
        spacing=4 * 86_400,  # every 4 days -> crosses into February
    )


@pytest.fixture
def store(tmp_path):
    return ChainStore(tmp_path / "datasets")


class TestSaveLoadRoundtrip:
    def test_roundtrip_preserves_everything(self, store, chain):
        store.save("tiny", chain)
        loaded = store.load("tiny")
        assert loaded.n_blocks == chain.n_blocks
        assert loaded.n_credits == chain.n_credits
        assert np.array_equal(loaded.heights, chain.heights)
        assert np.array_equal(loaded.timestamps, chain.timestamps)
        assert np.array_equal(loaded.offsets, chain.offsets)
        assert np.array_equal(loaded.producer_ids, chain.producer_ids)
        assert loaded.producer_names == chain.producer_names
        assert loaded.spec == chain.spec

    def test_partitioned_by_month(self, store, chain):
        directory = store.save("tiny", chain)
        partitions = sorted(p.name for p in directory.glob("part-*.npz"))
        months = sorted(set(np.asarray(month_index(chain.timestamps)).tolist()))
        assert len(partitions) == len(months) == 2
        assert partitions[0] == "part-2019-01.npz"
        assert partitions[1] == "part-2019-02.npz"

    def test_multi_producer_block_survives(self, store, chain):
        store.save("tiny", chain)
        loaded = store.load("tiny")
        assert loaded.block(2).producers == ("a", "x", "y")


class TestCatalog:
    def test_names_and_exists(self, store, chain):
        assert store.names() == []
        store.save("one", chain)
        store.save("two", chain)
        assert store.names() == ["one", "two"]
        assert store.exists("one")
        assert not store.exists("three")

    def test_delete(self, store, chain):
        store.save("gone", chain)
        store.delete("gone")
        assert not store.exists("gone")
        store.delete("gone")  # idempotent

    def test_overwrite_flag(self, store, chain):
        store.save("dup", chain)
        with pytest.raises(ChainStoreError, match="already exists"):
            store.save("dup", chain)
        store.save("dup", chain, overwrite=True)

    def test_invalid_name_rejected(self, store, chain):
        with pytest.raises(ChainStoreError):
            store.save("a/b", chain)


class TestCorruptionDetection:
    def test_missing_chain(self, store):
        with pytest.raises(ChainStoreError, match="no stored chain"):
            store.load("nope")

    def test_corrupt_manifest(self, store, chain):
        directory = store.save("bad", chain)
        (directory / "manifest.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(ChainStoreError, match="corrupt manifest"):
            store.load("bad")

    def test_missing_partition(self, store, chain):
        directory = store.save("bad", chain)
        (directory / "part-2019-02.npz").unlink()
        with pytest.raises(ChainStoreError, match="missing partition"):
            store.load("bad")

    def test_block_count_mismatch(self, store, chain):
        directory = store.save("bad", chain)
        manifest = json.loads((directory / "manifest.json").read_text())
        manifest["n_blocks"] += 1
        (directory / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ChainStoreError, match="blocks"):
            store.load("bad")

    def test_unsupported_version(self, store, chain):
        directory = store.save("bad", chain)
        manifest = json.loads((directory / "manifest.json").read_text())
        manifest["version"] = 99
        (directory / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ChainStoreError, match="version"):
            store.load("bad")


class TestPartitionPruning:
    def test_load_single_month(self, store, chain):
        store.save("tiny", chain)
        january = store.load_months("tiny", [0])
        months = np.asarray(month_index(chain.timestamps))
        assert january.n_blocks == int((months == 0).sum())
        assert np.asarray(month_index(january.timestamps)).max() == 0

    def test_load_missing_month_rejected(self, store, chain):
        store.save("tiny", chain)
        with pytest.raises(ChainStoreError, match="not present"):
            store.load_months("tiny", [5])


class TestCachedChain:
    def test_builds_once(self, store, chain):
        calls = []

        def build():
            calls.append(1)
            return chain

        first = cached_chain(store, "cached", build)
        second = cached_chain(store, "cached", build)
        assert len(calls) == 1
        assert np.array_equal(first.heights, second.heights)

    def test_refresh_rebuilds(self, store, chain):
        calls = []

        def build():
            calls.append(1)
            return chain

        cached_chain(store, "cached", build)
        cached_chain(store, "cached", build, refresh=True)
        assert len(calls) == 2
