"""Registration of the standard metric set.

Importing :mod:`repro.metrics` installs these metrics in the global
registry.  Names used by the measurement engine, the figures and the CLI:

* ``gini`` — paper metric 1
* ``entropy`` — paper metric 2 (Shannon entropy, bits)
* ``nakamoto`` — paper metric 3 (threshold 0.51)
* ``nakamoto-33`` — selfish-mining threshold 0.33 (paper §I)
* ``hhi``, ``theil``, ``top4-share``, ``normalized-entropy``,
  ``effective-producers`` — extension metrics
"""

from __future__ import annotations

from functools import partial

from repro.metrics.base import (
    FunctionMetric,
    available_metrics,
    has_batch_kernel,
    register_batch_kernel,
    register_metric,
)
from repro.metrics.batch import (
    batch_effective_producers,
    batch_entropy,
    batch_gini,
    batch_hhi,
    batch_nakamoto,
    batch_normalized_entropy,
    batch_theil,
    batch_top_k_share,
)
from repro.metrics.entropy import (
    effective_producers_entropy,
    normalized_entropy,
    shannon_entropy,
)
from repro.metrics.gini import gini_coefficient
from repro.metrics.hhi import herfindahl_hirschman_index
from repro.metrics.nakamoto import nakamoto_coefficient
from repro.metrics.theil import theil_index
from repro.metrics.topk import top_k_share

#: Metric names measured by the paper itself.
PAPER_METRICS = ("gini", "entropy", "nakamoto")


def _register_defaults() -> None:
    defaults = [
        FunctionMetric("gini", gini_coefficient),
        FunctionMetric("entropy", shannon_entropy),
        FunctionMetric("nakamoto", nakamoto_coefficient),
        FunctionMetric("nakamoto-33", partial(nakamoto_coefficient, threshold=0.33)),
        FunctionMetric("hhi", herfindahl_hirschman_index),
        FunctionMetric("theil", theil_index),
        FunctionMetric("top4-share", partial(top_k_share, k=4)),
        FunctionMetric("normalized-entropy", normalized_entropy),
        FunctionMetric("effective-producers", effective_producers_entropy),
    ]
    existing = set(available_metrics())
    for metric in defaults:
        if metric.name not in existing:
            register_metric(metric)
    kernels = {
        "gini": batch_gini,
        "entropy": batch_entropy,
        "nakamoto": batch_nakamoto,
        "nakamoto-33": partial(batch_nakamoto, threshold=0.33),
        "hhi": batch_hhi,
        "theil": batch_theil,
        "top4-share": partial(batch_top_k_share, k=4),
        "normalized-entropy": batch_normalized_entropy,
        "effective-producers": batch_effective_producers,
    }
    for name, kernel in kernels.items():
        if not has_batch_kernel(name):
            register_batch_kernel(name, kernel)


_register_defaults()
