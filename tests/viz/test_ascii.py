"""Tests for ASCII charts."""

import pytest

from repro.errors import ValidationError
from repro.viz.ascii import ascii_chart, ascii_histogram, multi_series_chart
from tests.core.test_series import make_series


class TestAsciiChart:
    def test_renders_series(self):
        text = ascii_chart(make_series([1.0, 2.0, 3.0, 2.0, 1.0]))
        assert "testchain/gini/fixed-day" in text
        assert "*" in text

    def test_renders_plain_list(self):
        text = ascii_chart([1, 5, 3], title="demo")
        assert "demo" in text

    def test_axis_labels_show_range(self):
        text = ascii_chart([0.25, 0.75])
        assert "0.75" in text
        assert "0.25" in text

    def test_respects_dimensions(self):
        text = ascii_chart(list(range(200)), width=40, height=8)
        lines = text.splitlines()
        # height rows + axis line + legend line
        assert len(lines) == 10
        assert all(len(line) <= 40 + 12 for line in lines)

    def test_constant_series_no_crash(self):
        assert ascii_chart([5.0, 5.0, 5.0])

    def test_too_small_rejected(self):
        with pytest.raises(ValidationError):
            ascii_chart([1, 2], width=4, height=2)


class TestMultiSeries:
    def test_distinct_glyphs(self):
        text = multi_series_chart({"a": [1, 2, 3], "b": [3, 2, 1]})
        assert "*=a" in text
        assert "+=b" in text

    def test_empty_map_rejected(self):
        with pytest.raises(ValidationError):
            multi_series_chart({})

    def test_downsamples_long_series(self):
        text = multi_series_chart({"long": list(range(10_000))}, width=30)
        assert text  # just must not blow up


class TestHistogram:
    def test_bin_count(self):
        text = ascii_histogram([1, 2, 2, 3, 3, 3], bins=3)
        assert len(text.splitlines()) == 3
        assert text.splitlines()[-1].endswith("3")

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            ascii_histogram([])

    def test_invalid_bins_rejected(self):
        with pytest.raises(ValidationError):
            ascii_histogram([1.0], bins=0)
