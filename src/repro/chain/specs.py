"""Per-chain constants used throughout the study.

The paper's §II-A fixes the exact 2019 datasets:

* Bitcoin — 54,231 blocks starting at height 556,459.
* Ethereum — 2,204,650 blocks starting at height 6,988,615.

(The paper states the ranges as "from block 556,459 to block 610,690" and
"from 6,988,615 to 9,193,265", which are each one off from the stated
counts; we honor the *counts* and the start heights, see EXPERIMENTS.md.)

Sliding-window sizes come from §III-A: Bitcoin 144 / 1,008 / 4,320 blocks
(day / week / month at ~10 minutes per block), Ethereum 6,000 / 42,000 /
180,000 blocks (~6,000 blocks per day).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError


@dataclass(frozen=True)
class ChainSpec:
    """Static parameters of a measured blockchain."""

    name: str
    #: First 2019 block height.
    start_height: int
    #: Number of blocks produced in 2019.
    block_count: int
    #: Target seconds between blocks.
    target_interval: float
    #: Approximate blocks per day (used to size sliding windows).
    blocks_per_day: int
    #: Sliding-window sizes (day, week, month) in blocks, from the paper.
    window_day: int
    window_week: int
    window_month: int

    def __post_init__(self) -> None:
        if self.block_count <= 0:
            raise ValidationError(f"block_count must be positive, got {self.block_count}")
        if self.target_interval <= 0:
            raise ValidationError("target_interval must be positive")
        for field_name in ("window_day", "window_week", "window_month"):
            if getattr(self, field_name) <= 0:
                raise ValidationError(f"{field_name} must be positive")

    @property
    def end_height(self) -> int:
        """Last 2019 block height (inclusive)."""
        return self.start_height + self.block_count - 1

    def window_size(self, granularity: str) -> int:
        """Return the sliding-window size in blocks for a named granularity."""
        sizes = {
            "day": self.window_day,
            "week": self.window_week,
            "month": self.window_month,
        }
        try:
            return sizes[granularity]
        except KeyError:
            raise ValidationError(
                f"granularity must be one of {sorted(sizes)}, got {granularity!r}"
            ) from None


#: Bitcoin's 2019 dataset parameters (paper §II-A, §III-A).
BITCOIN = ChainSpec(
    name="bitcoin",
    start_height=556_459,
    block_count=54_231,
    target_interval=600.0,
    blocks_per_day=144,
    window_day=144,
    window_week=1_008,
    window_month=4_320,
)

#: Ethereum's 2019 dataset parameters (paper §II-A, §III-A).
ETHEREUM = ChainSpec(
    name="ethereum",
    start_height=6_988_615,
    block_count=2_204_650,
    target_interval=13.2,
    blocks_per_day=6_000,
    window_day=6_000,
    window_week=42_000,
    window_month=180_000,
)
