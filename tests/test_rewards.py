"""Tests for reward schedules and wealth decentralization (extension)."""

import numpy as np
import pytest

from repro.core.engine import MeasurementEngine
from repro.errors import MeasurementError, SimulationError
from repro.rewards import (
    BITCOIN_REWARDS_2019,
    ETHEREUM_REWARDS_2019,
    RewardSchedule,
    cumulative_wealth_series,
    reward_credits,
    total_rewards_by_entity,
)
from tests.conftest import make_tiny_chain


class TestRewardSchedule:
    def test_draw_is_deterministic(self):
        a = BITCOIN_REWARDS_2019.draw(100, seed=1)
        b = BITCOIN_REWARDS_2019.draw(100, seed=1)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, BITCOIN_REWARDS_2019.draw(100, seed=2))

    def test_rewards_exceed_subsidy(self):
        rewards = BITCOIN_REWARDS_2019.draw(1_000, seed=1)
        assert np.all(rewards > 12.5)

    def test_fee_tail_is_heavy(self):
        fees = BITCOIN_REWARDS_2019.draw(20_000, seed=1) - 12.5
        assert fees.max() > 5 * np.median(fees)

    def test_expected_reward_close_to_empirical(self):
        rewards = BITCOIN_REWARDS_2019.draw(200_000, seed=3)
        assert rewards.mean() == pytest.approx(
            BITCOIN_REWARDS_2019.expected_reward(), rel=0.02
        )

    def test_zero_fee_schedule(self):
        schedule = RewardSchedule("flat", subsidy=2.0, fee_median=0.0, fee_sigma=0.0)
        assert schedule.draw(5, seed=0).tolist() == [2.0] * 5

    def test_ethereum_constants(self):
        assert ETHEREUM_REWARDS_2019.subsidy == 2.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"subsidy": -1.0, "fee_median": 0.1, "fee_sigma": 0.5},
            {"subsidy": 1.0, "fee_median": -0.1, "fee_sigma": 0.5},
            {"subsidy": 1.0, "fee_median": 0.1, "fee_sigma": -0.5},
        ],
    )
    def test_invalid_schedule_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            RewardSchedule("bad", **kwargs)

    def test_negative_block_count_rejected(self):
        with pytest.raises(SimulationError):
            BITCOIN_REWARDS_2019.draw(-1, seed=0)


class TestRewardCredits:
    @pytest.fixture
    def chain(self):
        return make_tiny_chain([["a"], ["b"], ["a", "x"], ["a"]])

    def test_total_income_matches_drawn_rewards(self, chain):
        schedule = RewardSchedule("t", subsidy=10.0, fee_median=1.0, fee_sigma=0.5)
        credits = reward_credits(chain, schedule, seed=1)
        rewards = schedule.draw(chain.n_blocks, seed=1)
        assert credits.total_weight == pytest.approx(rewards.sum())

    def test_multi_coinbase_splits_reward(self, chain):
        schedule = RewardSchedule("flat", subsidy=10.0, fee_median=0.0, fee_sigma=0.0)
        credits = reward_credits(chain, schedule, seed=1)
        lo, hi = credits.credit_range_for_blocks(2, 3)
        assert credits.weights[lo:hi].tolist() == [5.0, 5.0]

    def test_entity_totals(self, chain):
        schedule = RewardSchedule("flat", subsidy=10.0, fee_median=0.0, fee_sigma=0.0)
        credits = reward_credits(chain, schedule, seed=1)
        totals = dict(total_rewards_by_entity(credits))
        assert totals == {"a": 25.0, "b": 10.0, "x": 5.0}

    def test_policy_name_tags_schedule(self, chain):
        credits = reward_credits(chain, BITCOIN_REWARDS_2019)
        assert credits.policy == "reward-bitcoin"

    def test_measurable_by_engine(self, chain):
        credits = reward_credits(chain, BITCOIN_REWARDS_2019)
        engine = MeasurementEngine(credits)
        series = engine.measure_sliding("gini", size=2, step=2)
        assert len(series) == 2


class TestCumulativeWealth:
    @pytest.fixture(scope="class")
    def wealth(self, btc_chain):
        return reward_credits(btc_chain, BITCOIN_REWARDS_2019, seed=2019)

    def test_series_shape(self, wealth):
        series = cumulative_wealth_series(wealth, "gini", checkpoints=12)
        assert len(series) == 12
        assert series.window_desc == "cumulative-wealth[12]"
        assert series.labels[-1] == "first 100% of blocks"

    def test_wealth_gini_grows_with_history(self, wealth):
        """Pools compound their advantage: cumulative wealth Gini rises."""
        series = cumulative_wealth_series(wealth, "gini", checkpoints=12)
        assert series.values[-1] > series.values[0]

    def test_wealth_nakamoto_stable(self, wealth):
        series = cumulative_wealth_series(wealth, "nakamoto", checkpoints=6)
        assert series.min() >= 3
        assert series.max() <= 8

    def test_wealth_more_stable_than_production(self, wealth, btc_engine):
        wealth_series = cumulative_wealth_series(wealth, "entropy", checkpoints=12)
        production = btc_engine.measure_calendar("entropy", "day")
        assert wealth_series.std() < production.std()

    def test_invalid_checkpoints_rejected(self, wealth):
        with pytest.raises(MeasurementError):
            cumulative_wealth_series(wealth, "gini", checkpoints=0)
