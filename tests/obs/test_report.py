"""Tests for span-tree aggregation and trace summaries."""

import pytest

from repro.obs.report import (
    aggregate_spans,
    format_duration,
    format_metrics,
    format_span_tree,
    summarize_trace_file,
    summarize_tracer,
)
from repro.obs.export import write_trace
from repro.obs.tracer import SpanRecord, Tracer


def rec(span_id, parent_id, name, start, duration):
    return SpanRecord(span_id, parent_id, name, start, duration)


class TestAggregate:
    def test_merges_repeated_names_under_same_parent(self):
        spans = [
            rec(1, None, "sweep", 0.0, 1.0),
            rec(2, 1, "window", 0.0, 0.3),
            rec(3, 1, "window", 0.4, 0.2),
        ]
        root = aggregate_spans(spans)
        sweep = root.children["sweep"]
        assert sweep.count == 1
        assert sweep.total == pytest.approx(1.0)
        window = sweep.children["window"]
        assert window.count == 2
        assert window.total == pytest.approx(0.5)

    def test_self_time_subtracts_children(self):
        spans = [
            rec(1, None, "outer", 0.0, 1.0),
            rec(2, 1, "inner", 0.1, 0.6),
        ]
        root = aggregate_spans(spans)
        outer = root.children["outer"]
        assert outer.self_time == pytest.approx(0.4)
        assert outer.children["inner"].self_time == pytest.approx(0.6)

    def test_same_name_under_different_parents_stays_separate(self):
        spans = [
            rec(1, None, "a", 0.0, 1.0),
            rec(2, None, "b", 1.0, 1.0),
            rec(3, 1, "shared", 0.0, 0.2),
            rec(4, 2, "shared", 1.0, 0.5),
        ]
        root = aggregate_spans(spans)
        assert root.children["a"].children["shared"].total == pytest.approx(0.2)
        assert root.children["b"].children["shared"].total == pytest.approx(0.5)

    def test_root_totals_parentless_spans(self):
        spans = [rec(1, None, "a", 0.0, 1.0), rec(2, None, "b", 1.0, 2.0)]
        root = aggregate_spans(spans)
        assert root.total == pytest.approx(3.0)


class TestFormatting:
    def test_format_duration_units(self):
        assert format_duration(5e-6) == "5µs"
        assert format_duration(0.0123).endswith("ms")
        assert format_duration(2.5) == "2.500s"

    def test_tree_renders_header_and_connectors(self):
        spans = [
            rec(1, None, "sweep", 0.0, 1.0),
            rec(2, 1, "fast", 0.0, 0.7),
            rec(3, 1, "slow", 0.7, 0.1),
        ]
        text = format_span_tree(aggregate_spans(spans))
        lines = text.splitlines()
        assert lines[0].split() == ["span", "count", "total", "self"]
        assert "sweep" in lines[1]
        # Children sorted by descending total: fast before slow.
        assert "├─ fast" in lines[2]
        assert "└─ slow" in lines[3]

    def test_empty_tree(self):
        assert "(no spans recorded)" in format_span_tree(aggregate_spans([]))

    def test_format_metrics_sections(self):
        text = format_metrics(
            {
                "counters": {"hits": 3.0},
                "gauges": {"depth": 2.0},
                "timings": {"build": {"count": 2, "total": 1.0, "mean": 0.5, "p95": 0.9}},
            }
        )
        assert "counters:" in text
        assert "hits" in text
        assert "gauges:" in text
        assert "timings:" in text

    def test_format_metrics_empty(self):
        assert format_metrics({}) == "(no metrics recorded)"


class TestSummaries:
    def test_summarize_tracer_and_file_agree(self, tmp_path):
        tracer = Tracer().enable()
        with tracer.span("job"):
            with tracer.span("step"):
                pass
        tracer.counter("n")
        tracer.disable()
        live = summarize_tracer(tracer)
        from_file = summarize_trace_file(write_trace(tracer, tmp_path / "t.jsonl"))
        assert "job" in live and "step" in live and "counters:" in live
        # Same spans and metrics -> identical summary text.
        assert live == from_file
