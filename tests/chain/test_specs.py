"""Tests for the chain specs (paper §II-A / §III-A constants)."""

import pytest

from repro.chain.specs import BITCOIN, ETHEREUM, ChainSpec
from repro.errors import ValidationError


class TestPaperConstants:
    def test_bitcoin_dataset_size(self):
        assert BITCOIN.start_height == 556_459
        assert BITCOIN.block_count == 54_231

    def test_ethereum_dataset_size(self):
        assert ETHEREUM.start_height == 6_988_615
        assert ETHEREUM.block_count == 2_204_650

    def test_bitcoin_window_sizes(self):
        assert BITCOIN.window_day == 144
        assert BITCOIN.window_week == 1_008
        assert BITCOIN.window_month == 4_320

    def test_ethereum_window_sizes(self):
        assert ETHEREUM.window_day == 6_000
        assert ETHEREUM.window_week == 42_000
        assert ETHEREUM.window_month == 180_000

    def test_end_heights(self):
        assert BITCOIN.end_height == 556_459 + 54_231 - 1
        assert ETHEREUM.end_height == 6_988_615 + 2_204_650 - 1


class TestWindowSizeLookup:
    def test_by_granularity(self):
        assert BITCOIN.window_size("day") == 144
        assert BITCOIN.window_size("week") == 1_008
        assert BITCOIN.window_size("month") == 4_320

    def test_unknown_granularity_raises(self):
        with pytest.raises(ValidationError):
            BITCOIN.window_size("year")


class TestValidation:
    def test_nonpositive_block_count_rejected(self):
        with pytest.raises(ValidationError):
            ChainSpec("x", 0, 0, 600.0, 144, 144, 1_008, 4_320)

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(ValidationError):
            ChainSpec("x", 0, 10, 0.0, 144, 144, 1_008, 4_320)

    def test_nonpositive_window_rejected(self):
        with pytest.raises(ValidationError):
            ChainSpec("x", 0, 10, 600.0, 144, 0, 1_008, 4_320)
