"""Scalar and aggregate function registries for the SQL engine.

Scalar functions operate on numpy arrays (vectorized) or object arrays
(element-wise for string functions).  Aggregates map onto the table
engine's aggregate names (:mod:`repro.table.aggregates`).
"""

from __future__ import annotations

import fnmatch
from typing import Any, Callable

import numpy as np

from repro.errors import SqlExecutionError, SqlPlanError

#: SQL aggregate name → ``repro.table`` aggregate name.
AGGREGATE_FUNCTIONS: dict[str, str] = {
    "COUNT": "count",
    "SUM": "sum",
    "AVG": "mean",
    "MIN": "min",
    "MAX": "max",
    "STDDEV": "std",
    "VARIANCE": "var",
    "MEDIAN": "median",
}


def _ensure_arity(name: str, args: tuple, arities: tuple[int, ...]) -> None:
    if len(args) not in arities:
        expected = " or ".join(str(a) for a in arities)
        raise SqlPlanError(f"{name} takes {expected} argument(s), got {len(args)}")


def _as_object_array(values: Any) -> np.ndarray:
    array = np.asarray(values)
    if array.dtype != object:
        array = array.astype(object)
    return array


def _elementwise_str(values: Any, fn: Callable[[str], Any]) -> np.ndarray:
    array = _as_object_array(values)
    out = np.empty(array.shape[0], dtype=object)
    for i, item in enumerate(array):
        out[i] = None if item is None else fn(str(item))
    return out


def _fn_abs(args: tuple) -> Any:
    return np.abs(args[0])


def _fn_round(args: tuple) -> Any:
    digits = 0
    if len(args) == 2:
        digits = int(np.asarray(args[1]).reshape(-1)[0]) if np.ndim(args[1]) else int(args[1])
    return np.round(np.asarray(args[0], dtype=np.float64), digits)


def _fn_floor(args: tuple) -> Any:
    return np.floor(np.asarray(args[0], dtype=np.float64)).astype(np.int64)


def _fn_ceil(args: tuple) -> Any:
    return np.ceil(np.asarray(args[0], dtype=np.float64)).astype(np.int64)


def _fn_sqrt(args: tuple) -> Any:
    values = np.asarray(args[0], dtype=np.float64)
    if np.any(values < 0):
        raise SqlExecutionError("SQRT of a negative value")
    return np.sqrt(values)


def _fn_log2(args: tuple) -> Any:
    values = np.asarray(args[0], dtype=np.float64)
    if np.any(values <= 0):
        raise SqlExecutionError("LOG2 of a non-positive value")
    return np.log2(values)


def _fn_power(args: tuple) -> Any:
    return np.power(np.asarray(args[0], dtype=np.float64), args[1])


def _fn_lower(args: tuple) -> Any:
    return _elementwise_str(args[0], str.lower)


def _fn_upper(args: tuple) -> Any:
    return _elementwise_str(args[0], str.upper)


def _fn_length(args: tuple) -> Any:
    array = _as_object_array(args[0])
    return np.asarray([0 if v is None else len(str(v)) for v in array], dtype=np.int64)


def _fn_substr(args: tuple) -> Any:
    start = int(args[1])
    length = int(args[2]) if len(args) == 3 else None
    if start < 1:
        raise SqlExecutionError("SUBSTR start position is 1-based and must be >= 1")

    def slicer(text: str) -> str:
        begin = start - 1
        return text[begin : begin + length] if length is not None else text[begin:]

    return _elementwise_str(args[0], slicer)


def _fn_concat(args: tuple) -> Any:
    arrays = [_as_object_array(a) if np.ndim(a) else a for a in args]
    length = next((a.shape[0] for a in arrays if isinstance(a, np.ndarray)), 1)
    out = np.empty(length, dtype=object)
    for i in range(length):
        parts = []
        for a in arrays:
            item = a[i] if isinstance(a, np.ndarray) else a
            parts.append("" if item is None else str(item))
        out[i] = "".join(parts)
    return out


def _fn_coalesce(args: tuple) -> Any:
    arrays = [_as_object_array(a) if np.ndim(a) else a for a in args]
    length = next((a.shape[0] for a in arrays if isinstance(a, np.ndarray)), 1)
    out = np.empty(length, dtype=object)
    for i in range(length):
        out[i] = None
        for a in arrays:
            item = a[i] if isinstance(a, np.ndarray) else a
            if item is not None and not (isinstance(item, float) and np.isnan(item)):
                out[i] = item
                break
    return out


_SCALAR_IMPLS: dict[str, tuple[Callable[[tuple], Any], tuple[int, ...]]] = {
    "ABS": (_fn_abs, (1,)),
    "ROUND": (_fn_round, (1, 2)),
    "FLOOR": (_fn_floor, (1,)),
    "CEIL": (_fn_ceil, (1,)),
    "CEILING": (_fn_ceil, (1,)),
    "SQRT": (_fn_sqrt, (1,)),
    "LOG2": (_fn_log2, (1,)),
    "POWER": (_fn_power, (2,)),
    "LOWER": (_fn_lower, (1,)),
    "UPPER": (_fn_upper, (1,)),
    "LENGTH": (_fn_length, (1,)),
    "SUBSTR": (_fn_substr, (2, 3)),
    "SUBSTRING": (_fn_substr, (2, 3)),
    "CONCAT": (_fn_concat, (1, 2, 3, 4, 5, 6, 7, 8)),
    "COALESCE": (_fn_coalesce, (1, 2, 3, 4, 5, 6, 7, 8)),
}

SCALAR_FUNCTION_NAMES = tuple(sorted(_SCALAR_IMPLS))


def call_scalar_function(name: str, args: tuple) -> Any:
    """Invoke scalar function ``name`` on already-evaluated arguments."""
    try:
        impl, arities = _SCALAR_IMPLS[name]
    except KeyError:
        raise SqlPlanError(f"unknown function: {name}") from None
    _ensure_arity(name, args, arities)
    return impl(args)


def like_match(values: Any, pattern: str) -> np.ndarray:
    """Evaluate SQL ``LIKE``: ``%`` = any run, ``_`` = one character."""
    translated = pattern.replace("*", "[*]").replace("?", "[?]")
    translated = translated.replace("%", "*").replace("_", "?")
    array = _as_object_array(values)
    return np.asarray(
        [
            False if v is None else fnmatch.fnmatchcase(str(v), translated)
            for v in array
        ],
        dtype=bool,
    )
