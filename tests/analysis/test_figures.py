"""Tests for the per-figure generators (on the full calibrated datasets)."""

import pytest

from repro.analysis.figures import FIGURE_IDS, figure_7, figure_8
from repro.analysis.study import DecentralizationStudy
from repro.errors import MeasurementError


@pytest.fixture(scope="module")
def study(btc_chain, eth_chain):
    return DecentralizationStudy(bitcoin=btc_chain, ethereum=eth_chain)


class TestFixedFigures:
    def test_fig1_structure(self, study):
        figure = study.figure(1)
        assert set(figure.series) == {"day", "week", "month"}
        assert len(figure.series["day"]) == 365
        assert len(figure.series["week"]) == 52
        assert len(figure.series["month"]) == 12

    def test_fig1_metric_and_chain(self, study):
        figure = study.figure(1)
        assert figure.series["day"].metric_name == "gini"
        assert figure.series["day"].chain_name == "bitcoin"

    def test_fig4_is_ethereum(self, study):
        figure = study.figure(4)
        assert figure.series["day"].chain_name == "ethereum"

    def test_notes_hold_means(self, study):
        figure = study.figure(2)
        assert figure.notes["mean_day"] == pytest.approx(
            figure.series["day"].mean()
        )


class TestSlidingFigures:
    def test_fig9_window_sizes(self, study):
        figure = study.figure(9)
        assert set(figure.series) == {"N=144", "N=1008", "N=4320"}
        assert figure.series["N=144"].window_desc == "sliding-144/72"

    def test_fig10_uses_ethereum_sizes(self, study):
        figure = study.figure(10)
        assert set(figure.series) == {"N=6000", "N=42000", "N=180000"}

    def test_sliding_point_counts_match_eq5(self, study, btc_chain):
        figure = study.figure(9)
        for size in (144, 1008, 4320):
            expected = (btc_chain.n_blocks - size) // (size // 2) + 1
            assert len(figure.series[f"N={size}"]) == expected


class TestFigure7:
    def test_distributions_present(self, study):
        figure = study.figure(7)
        assert len(figure.distributions) == 2
        day, month = figure.distributions
        assert day.window_label == "2019-12-07"
        assert month.window_label == "2019-12"

    def test_paper_observation_top_stays_bottom_grows(self, study):
        """Fig. 7's point: top shares barely move, population grows a lot."""
        figure = study.figure(7)
        day, month = figure.distributions
        assert month.n_producers > 1.5 * day.n_producers
        top_day = sum(share for _, share in day.top)
        top_month = sum(share for _, share in month.top)
        assert abs(top_day - top_month) < 0.10

    def test_labels_are_pool_names(self, study):
        figure = study.figure(7)
        names = [name for name, _ in figure.distributions[0].top]
        assert any(name in ("F2Pool", "BTC.com", "Poolin", "AntPool") for name in names)

    def test_shares_sum_to_one(self, study):
        for distribution in study.figure(7).distributions:
            total = sum(s for _, s in distribution.top) + distribution.other_share
            assert total == pytest.approx(1.0, abs=1e-9)

    def test_top_k_parameter(self, btc_engine):
        figure = figure_7(btc_engine, top_k=3)
        assert len(figure.distributions[0].top) == 3


class TestFigure8:
    def test_eq5_counts_for_all_six_families(self, study, btc_chain, eth_chain):
        figure = study.figure(8)
        assert figure.notes["btc_L_N=144"] == (btc_chain.n_blocks - 144) // 72 + 1
        assert figure.notes["eth_L_N=6000"] == (eth_chain.n_blocks - 6000) // 3000 + 1
        assert figure.notes["btc_overlap_N=4320"] == 2160.0
        assert figure.notes["eth_overlap_N=180000"] == 90000.0


class TestFigureDispatch:
    def test_all_14_figures_registered(self):
        assert set(FIGURE_IDS) == {f"fig{i}" for i in range(1, 15)}

    def test_unknown_figure_rejected(self, study):
        with pytest.raises(MeasurementError):
            study.figure(99)

    def test_series_or_raise(self, study):
        figure = study.figure(1)
        assert figure.series_or_raise("day") is figure.series["day"]
        with pytest.raises(MeasurementError):
            figure.series_or_raise("decade")

    def test_string_figure_id(self, study):
        assert study.figure("fig3").figure_id == "fig3"
