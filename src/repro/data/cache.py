"""Simulate-once chain caching on top of :class:`ChainStore`."""

from __future__ import annotations

import time
from typing import Callable

from repro import obs
from repro.chain.chain import Chain
from repro.data.store import ChainStore


def cached_chain(
    store: ChainStore,
    name: str,
    build: Callable[[], Chain],
    refresh: bool = False,
) -> Chain:
    """Return the stored chain ``name``, building and storing it if absent.

    ``build`` is only invoked on a cache miss (or when ``refresh`` is
    true), so expensive simulations — Ethereum's 2.2M blocks take several
    seconds — run once per store.  Hits and misses are counted on the
    :mod:`repro.obs` tracer (``chain_cache.hit`` / ``chain_cache.miss``),
    and miss build time feeds the ``chain_cache.build_seconds`` histogram.

    >>> store = ChainStore(tmpdir)                              # doctest: +SKIP
    >>> eth = cached_chain(store, "eth-2019", simulate_ethereum_2019)  # doctest: +SKIP
    """
    if refresh or not store.exists(name):
        obs.counter("chain_cache.miss")
        start = time.perf_counter()
        chain = build()
        obs.timing("chain_cache.build_seconds", time.perf_counter() - start)
        store.save(name, chain, overwrite=True)
        return chain
    obs.counter("chain_cache.hit")
    return store.load(name)
