"""Tests for the live telemetry server and the monitor runner.

The HTTP tests bind an ephemeral port on localhost and drive the real
:class:`~repro.serve.TelemetryServer` with ``urllib``; the monitor tests
feed synthetic blocks so they stay fast and deterministic.  One
subprocess test covers the acceptance path the in-process tests cannot:
SIGTERM mid-run must still flush ``--trace`` output.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro import obs
from repro.core.streaming import ThresholdRule
from repro.errors import ResilienceError
from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    PROMETHEUS_CONTENT_TYPE,
    MonitorState,
    TelemetryServer,
    run_monitor,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(autouse=True)
def clean_global_registry():
    """run_monitor writes to the process-wide registry; keep tests isolated."""
    obs.get_tracer().metrics.reset()
    yield
    obs.get_tracer().metrics.reset()


def http_get(port: int, path: str, timeout: float = 5.0):
    """GET localhost:port/path -> (status, content_type, body_text)."""
    url = f"http://127.0.0.1:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return (
                response.status,
                response.headers.get("Content-Type"),
                response.read().decode("utf-8"),
            )
    except urllib.error.HTTPError as err:
        return err.code, err.headers.get("Content-Type"), err.read().decode("utf-8")


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestMonitorState:
    def test_ready_flips_on_first_evaluation(self):
        state = MonitorState("bitcoin", 144, 72, total_blocks=1000)
        assert not state.is_ready()
        state.record_push(144)
        assert not state.is_ready()
        state.record_evaluation({"gini": 0.8}, n_alerts=1)
        assert state.is_ready()

    def test_snapshot_reports_window_and_lag(self):
        state = MonitorState("bitcoin", 144, 72, total_blocks=1000)
        state.record_push(200)
        state.record_evaluation({"gini": 0.8, "nakamoto": 4.0}, n_alerts=0)
        snap = state.snapshot()
        assert snap["window"] == {
            "size": 144, "stride": 72, "start_block": 56, "end_block": 200,
        }
        assert snap["lag_blocks"] == 800
        assert snap["latest"] == {"gini": 0.8, "nakamoto": 4.0}
        assert snap["evaluations"] == 1
        assert not snap["finished"]
        json.dumps(snap)  # the /status payload must be JSON-serializable

    def test_unknown_total_means_no_lag(self):
        snap = MonitorState("x", 10, 5).snapshot()
        assert snap["total_blocks"] is None
        assert snap["lag_blocks"] is None

    def test_crash_degrades_until_next_evaluation(self):
        state = MonitorState("bitcoin", 10, 5)
        state.record_push(10)
        state.record_evaluation({"gini": 0.5}, n_alerts=0)
        assert state.is_ready()
        state.record_crash(RuntimeError("boom"))
        assert not state.is_ready()
        snap = state.snapshot()
        assert snap["ready"] is False
        assert snap["resilience"]["degraded"] is True
        assert snap["resilience"]["crashes"] == 1
        assert "boom" in snap["resilience"]["last_error"]
        state.record_restart()
        assert not state.is_ready()  # degraded until a window evaluates
        state.record_evaluation({"gini": 0.5}, n_alerts=0)
        assert state.is_ready()
        assert state.snapshot()["resilience"]["restarts"] == 1

    def test_quality_and_faults_ride_along_in_status(self):
        state = MonitorState("x", 10, 5)
        state.set_quality({"issues": 3, "refetched": 2})
        state.faults_fn = lambda: {"timeout": 2}
        snap = state.snapshot()
        assert snap["quality"] == {"issues": 3, "refetched": 2}
        assert snap["resilience"]["faults"] == {"timeout": 2}
        json.dumps(snap)  # the /status payload must stay serializable


class TestTelemetryServer:
    def test_endpoints(self):
        registry = MetricsRegistry()
        registry.counter("demo.hits").inc(3)
        ready = threading.Event()
        server = TelemetryServer(
            registry,
            status_fn=lambda: {"chain": "demo"},
            ready_fn=ready.is_set,
        )
        with server:
            port = server.port
            status, ctype, body = http_get(port, "/metrics")
            assert status == 200
            assert ctype == PROMETHEUS_CONTENT_TYPE
            assert "repro_demo_hits_total 3" in body

            status, _, body = http_get(port, "/healthz")
            assert (status, body) == (200, "ok\n")

            status, _, _ = http_get(port, "/readyz")
            assert status == 503
            ready.set()
            status, _, _ = http_get(port, "/readyz")
            assert status == 200

            status, ctype, body = http_get(port, "/status")
            assert status == 200
            assert ctype.startswith("application/json")
            assert json.loads(body) == {"chain": "demo"}

            status, _, _ = http_get(port, "/nope")
            assert status == 404

    def test_query_strings_are_ignored(self):
        with TelemetryServer(MetricsRegistry()) as server:
            status, _, _ = http_get(server.port, "/healthz?verbose=1")
            assert status == 200

    def test_stop_releases_the_port_and_is_idempotent(self):
        server = TelemetryServer(MetricsRegistry())
        port = server.start()
        assert http_get(port, "/healthz")[0] == 200
        server.stop()
        server.stop()
        with pytest.raises(OSError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=0.5
            )


def synthetic_feed(n_blocks: int, n_producers: int = 5):
    """Round-robin producers: perfectly even, low gini, high entropy."""
    for i in range(n_blocks):
        yield [f"pool-{i % n_producers}"]


class TestRunMonitor:
    def test_counts_and_latest_without_server(self):
        lines = []
        result = run_monitor(
            synthetic_feed(100),
            window_size=20,
            stride=10,
            chain="synthetic",
            rules=[ThresholdRule("entropy", above=1.0)],
            total_blocks=100,
            print_fn=lines.append,
        )
        assert result.blocks == 100
        assert result.evaluations == 9  # blocks 20, 30, ..., 100
        assert result.alerts == 9  # even split: entropy log2(5) > 1 every time
        assert set(result.latest) == {"gini", "entropy", "nakamoto"}
        assert result.port is None
        assert sum(line.startswith("ALERT") for line in lines) == 9

    def test_registry_gauges_track_progress(self):
        run_monitor(
            synthetic_feed(40), window_size=10, stride=5, total_blocks=40
        )
        registry = obs.get_tracer().metrics
        snap = registry.snapshot()
        assert snap["gauges"]["monitor.blocks_ingested"] == 40.0
        assert snap["gauges"]["monitor.lag_blocks"] == 0.0
        assert snap["gauges"]["monitor.latest.gini"] >= 0.0
        assert snap["timings"]["monitor.push_seconds"]["count"] == 40

    def test_stop_event_aborts_ingestion(self):
        stop = threading.Event()
        stop.set()
        result = run_monitor(
            synthetic_feed(1000), window_size=10, stride=5, stop_event=stop
        )
        assert result.blocks == 0
        assert result.evaluations == 0


class TestServedMonitor:
    def test_readyz_flips_after_first_window(self, tmp_path):
        """Acceptance: /readyz is 503 until the first window completes."""
        window = 10
        gate = threading.Event()
        stop = threading.Event()
        port_file = tmp_path / "port"
        results = []

        def gated_feed():
            for i in range(window - 1):
                yield ["pool-a"]
            assert gate.wait(timeout=30.0)
            yield ["pool-b"]  # completes the first window

        def run():
            results.append(
                run_monitor(
                    gated_feed(),
                    window_size=window,
                    stride=5,
                    chain="gated",
                    total_blocks=window,
                    serve_port=0,
                    linger=-1.0,
                    port_file=str(port_file),
                    stop_event=stop,
                    print_fn=lambda _line: None,
                )
            )

        thread = threading.Thread(target=run)
        thread.start()
        try:
            assert wait_until(port_file.exists), "port file never appeared"
            port = int(port_file.read_text().strip())
            assert wait_until(
                lambda: json.loads(http_get(port, "/status")[2])[
                    "blocks_ingested"
                ] == window - 1
            )
            # Mid-run scrapes work while the monitor is one block short...
            assert http_get(port, "/healthz")[0] == 200
            assert http_get(port, "/readyz")[0] == 503
            status, _, body = http_get(port, "/metrics")
            assert status == 200
            assert "repro_monitor_blocks_ingested 9" in body
            # ...and readiness flips once the window evaluates.
            gate.set()
            assert wait_until(lambda: http_get(port, "/readyz")[0] == 200)
            snapshot = json.loads(http_get(port, "/status")[2])
            assert snapshot["ready"] and snapshot["finished"]
            assert snapshot["evaluations"] == 1
        finally:
            gate.set()
            stop.set()
            thread.join(timeout=30.0)
        assert not thread.is_alive()
        (result,) = results
        assert result.blocks == window
        assert result.evaluations == 1


class TestSupervisedMonitor:
    def test_readyz_degrades_on_crash_and_recovers_after_restart(self, tmp_path):
        """Acceptance: a mid-run crash flips /readyz to 503; the restarted
        loop (which does not replay the poison block) flips it back to 200
        once a window evaluates."""
        gate = threading.Event()
        stop = threading.Event()
        port_file = tmp_path / "port"
        results = []

        def poisoned_feed():
            for i in range(30):
                yield [f"pool-{i % 3}"]
            yield []  # poison: push() raises, the supervisor catches
            assert gate.wait(timeout=30.0)
            for i in range(40):
                yield [f"pool-{i % 3}"]

        def run():
            results.append(
                run_monitor(
                    poisoned_feed(),
                    window_size=10,
                    stride=5,
                    chain="poisoned",
                    serve_port=0,
                    linger=-1.0,
                    port_file=str(port_file),
                    stop_event=stop,
                    max_restarts=2,
                    restart_backoff=0.01,
                    print_fn=lambda _line: None,
                )
            )

        thread = threading.Thread(target=run)
        thread.start()
        try:
            assert wait_until(port_file.exists), "port file never appeared"
            port = int(port_file.read_text().strip())
            # The poison block degrades readiness; the restarted loop is
            # parked on the gate, so 503 holds until we open it.
            assert wait_until(lambda: http_get(port, "/readyz")[0] == 503)
            snapshot = json.loads(http_get(port, "/status")[2])
            assert snapshot["ready"] is False
            assert snapshot["resilience"]["crashes"] == 1
            assert "producer" in snapshot["resilience"]["last_error"]
            assert http_get(port, "/healthz")[0] == 200  # alive, not ready
            gate.set()
            assert wait_until(lambda: http_get(port, "/readyz")[0] == 200)
            # Let the feed drain fully before stopping, so the run's
            # block count is deterministic.
            assert wait_until(
                lambda: json.loads(http_get(port, "/status")[2])[
                    "blocks_ingested"
                ] == 70
            )
        finally:
            gate.set()
            stop.set()
            thread.join(timeout=30.0)
        assert not thread.is_alive()
        (result,) = results
        assert result.blocks == 70  # the poison block is consumed, not replayed
        assert result.restarts == 1

    def test_exhausted_restart_budget_raises_resilience_error(self):
        def poison_feed():
            yield ["pool-a"]
            while True:
                yield []

        with pytest.raises(ResilienceError, match="restart budget"):
            run_monitor(
                poison_feed(),
                window_size=10,
                stride=5,
                max_restarts=1,
                restart_backoff=0.0,
                print_fn=lambda _line: None,
            )

    def test_unsupervised_crash_propagates(self):
        from repro.errors import MeasurementError

        with pytest.raises(MeasurementError):
            run_monitor(
                iter([["pool-a"], []]),
                window_size=10,
                stride=5,
                print_fn=lambda _line: None,
            )


class TestSigtermFlushesTrace:
    def test_monitor_killed_mid_run_still_writes_trace(self, tmp_path):
        """Regression: --trace output must survive SIGTERM mid-monitor."""
        trace_path = tmp_path / "trace.jsonl"
        port_file = tmp_path / "port"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli",
                "--trace", str(trace_path),
                "monitor", "--chain", "bitcoin", "--blocks", "2000",
                "--serve", "0", "--port-file", str(port_file),
                "--throttle", "0.005", "--linger=-1",
            ],
            cwd=REPO_ROOT,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            assert wait_until(port_file.exists, timeout=60.0), (
                "monitor never served",
                proc.poll(),
            )
            port = int(port_file.read_text().strip())
            assert http_get(port, "/healthz")[0] == 200
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=60.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, (stdout, stderr)
        assert "wrote trace" in stdout
        from repro.obs.export import validate_trace_file

        summary = validate_trace_file(str(trace_path))
        assert summary["format"] == "jsonl"
        assert summary["n_spans"] >= 1


class TestSeriesAndAlertEndpoints:
    def _server(self):
        from repro.obs.alerts import AlertManager, AlertRule
        from repro.obs.timeseries import TimeSeriesStore

        store = TimeSeriesStore(clock=lambda: 1000.0)
        for i in range(10):
            store.record("gini", 0.5 + i * 0.01, ts=900.0 + i * 10)
        manager = AlertManager(clock=lambda: 1000.0, registry=MetricsRegistry())
        manager.add_rule(AlertRule("gini-high", metric="gini", above=0.5))
        manager.evaluate({"gini": 0.9})
        return TelemetryServer(
            MetricsRegistry(), store=store, alert_manager=manager
        )

    def test_series_index_lists_names(self):
        with self._server() as server:
            status, ctype, body = http_get(server.port, "/api/v1/series")
        assert status == 200
        assert ctype.startswith("application/json")
        assert json.loads(body)["series"] == ["gini"]

    def test_series_query_with_window_and_step(self):
        with self._server() as server:
            status, _, body = http_get(
                server.port, "/api/v1/series/gini?start=920&end=950&step=1"
            )
        assert status == 200
        payload = json.loads(body)
        assert payload["name"] == "gini"
        assert [p["ts"] for p in payload["points"]] == [920.0, 930.0, 940.0, 950.0]

    def test_series_rollup_step_selects_level(self):
        with self._server() as server:
            status, _, body = http_get(server.port, "/api/v1/series/gini?step=60")
        assert status == 200
        payload = json.loads(body)
        assert payload["step"] == 60.0
        assert sum(p["count"] for p in payload["points"]) == 10

    def test_unknown_series_is_404(self):
        with self._server() as server:
            status, _, body = http_get(server.port, "/api/v1/series/nope")
        assert status == 404
        assert "unknown series" in body

    def test_bad_query_param_is_400(self):
        with self._server() as server:
            status, _, body = http_get(
                server.port, "/api/v1/series/gini?start=banana"
            )
        assert status == 400
        assert "banana" in body

    def test_alerts_endpoint_reports_active_and_history(self):
        with self._server() as server:
            status, ctype, body = http_get(server.port, "/api/v1/alerts")
        assert status == 200
        assert ctype.startswith("application/json")
        payload = json.loads(body)
        assert payload["firing"] == 1
        assert payload["active"][0]["rule"] == "gini-high"
        assert [e["state"] for e in payload["history"]] == ["firing"]

    def test_endpoints_404_when_not_enabled(self):
        with TelemetryServer(MetricsRegistry()) as server:
            series_status, _, series_body = http_get(
                server.port, "/api/v1/series"
            )
            alerts_status, _, alerts_body = http_get(
                server.port, "/api/v1/alerts"
            )
        assert series_status == 404 and "not enabled" in series_body
        assert alerts_status == 404 and "not enabled" in alerts_body


class TestConcurrentScrapesDuringAlertTransition:
    def test_status_and_metrics_stay_consistent_while_alert_resolves(
        self, tmp_path
    ):
        """Satellite (d): hammer /status and /metrics from several threads
        while a lag alert goes firing -> resolved; every scrape must be a
        well-formed 200 and the final alert history must show exactly one
        firing and one resolved transition."""
        from repro.obs.alerts import AlertRule

        total = 60
        gate = threading.Event()
        stop = threading.Event()
        port_file = tmp_path / "port"
        results = []

        def gated_feed():
            for i in range(30):
                yield [f"pool-{i % 4}"]
            assert gate.wait(timeout=30.0)
            for i in range(30):
                yield [f"pool-{i % 4}"]

        def run():
            results.append(
                run_monitor(
                    gated_feed(),
                    window_size=10,
                    stride=5,
                    chain="transition",
                    total_blocks=total,
                    serve_port=0,
                    linger=-1.0,
                    port_file=str(port_file),
                    stop_event=stop,
                    extra_alert_rules=[
                        AlertRule("lag-high", metric="lag_blocks", above=5.0)
                    ],
                    print_fn=lambda _line: None,
                )
            )

        thread = threading.Thread(target=run)
        thread.start()
        scrape_errors: list[str] = []
        scrapers_stop = threading.Event()

        def scraper(path):
            while not scrapers_stop.is_set():
                status, _, body = http_get(port, path, timeout=5.0)
                if status != 200:
                    scrape_errors.append(f"{path} -> {status}")
                elif path == "/status":
                    try:
                        json.loads(body)
                    except json.JSONDecodeError as exc:
                        scrape_errors.append(f"{path} bad json: {exc}")
                elif "repro_build_info" not in body:
                    scrape_errors.append(f"{path} truncated body")

        scrapers = []
        try:
            assert wait_until(port_file.exists), "port file never appeared"
            port = int(port_file.read_text().strip())
            # The first half of the feed leaves lag at 30 > 5: firing.
            assert wait_until(
                lambda: json.loads(http_get(port, "/api/v1/alerts")[2])[
                    "firing"
                ] == 1
            )
            for path in ("/status", "/metrics", "/status", "/metrics"):
                t = threading.Thread(target=scraper, args=(path,), daemon=True)
                t.start()
                scrapers.append(t)
            gate.set()  # drain the feed; the settled pass resolves the alert
            assert wait_until(
                lambda: json.loads(http_get(port, "/api/v1/alerts")[2])[
                    "resolved_total"
                ] == 1
            )
            payload = json.loads(http_get(port, "/api/v1/alerts")[2])
        finally:
            scrapers_stop.set()
            for t in scrapers:
                t.join(timeout=10.0)
            gate.set()
            stop.set()
            thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert scrape_errors == []
        (result,) = results
        assert result.blocks == total
        assert result.alerts_fired == 1
        assert result.alerts_resolved == 1
        states = [e["state"] for e in payload["history"] if e["rule"] == "lag-high"]
        assert states == ["firing", "resolved"]
        assert payload["active"] == []

    def test_monitor_status_exposes_sparklines_and_slo(self):
        from repro.obs.slo import SLO

        result = run_monitor(
            synthetic_feed(60),
            window_size=10,
            stride=5,
            chain="synthetic",
            total_blocks=60,
            serve_port=0,
            linger=0.0,
            slos=[SLO("drift", "metric", 0.99, series="monitor.latest.nakamoto",
                      op=">=", value=1.0)],
            print_fn=lambda _line: None,
        )
        assert result.blocks == 60

    def test_slos_without_history_rejected(self):
        from repro.obs.slo import SLO

        with pytest.raises(ResilienceError, match="history"):
            run_monitor(
                synthetic_feed(20),
                window_size=10,
                stride=5,
                history=False,
                slos=[SLO("a", "availability", 0.99)],
                print_fn=lambda _line: None,
            )

    def test_history_disabled_leaves_registry_free(self):
        run_monitor(
            synthetic_feed(20),
            window_size=10,
            stride=5,
            history=False,
            print_fn=lambda _line: None,
        )
        assert obs.get_tracer().metrics.history is None
