"""Benchmark regression gate over ``BENCH_pipeline.json``-shaped files.

``make bench-perf`` writes pytest-benchmark JSON whose entries carry a
headline ``stats.median`` plus the per-stage span totals recorded by
``benchmarks/_bench_util.record_stage_timings`` under
``extra_info["stages"]``.  This module loads two such files, compares the
medians (headline and per-stage seconds-per-invocation) as new/old
ratios, and renders a human table — the CLI's ``bench-diff`` subcommand
turns a ratio above ``--fail-over`` into a nonzero exit so the sliding
sweep's 22x win from the incremental fast path cannot silently erode.
"""

from __future__ import annotations

import json
import logging
import math
from dataclasses import dataclass, field

from repro.errors import ObservabilityError

logger = logging.getLogger(__name__)

#: Benchmarks measured over fewer rounds than this are flagged as
#: under-sampled in the comparison table — their medians are too noisy
#: for the ratio gate to be trustworthy (the ETH-attribution benchmark
#: showed ~44% stddev at 2 rounds).
MIN_TRUSTED_ROUNDS = 5


@dataclass(frozen=True)
class BenchEntry:
    """One benchmark: headline median plus per-stage per-call seconds."""

    name: str
    median: float
    #: stage name -> mean seconds per invocation (total_seconds / count).
    stages: dict[str, float]
    #: How many measurement rounds produced the median (0 when unknown).
    rounds: int = 0


@dataclass(frozen=True)
class Delta:
    """One measured quantity in both files."""

    key: str
    old: float
    new: float
    #: Measurement rounds behind each side (0 when unknown).
    old_rounds: int = 0
    new_rounds: int = 0

    @property
    def under_sampled(self) -> bool:
        """True when either side has known rounds below the trusted floor."""
        return any(
            0 < rounds < MIN_TRUSTED_ROUNDS
            for rounds in (self.old_rounds, self.new_rounds)
        )

    @property
    def ratio(self) -> float:
        """``new / old``; 1.0 when both are zero, inf when only old is."""
        if self.old == 0.0:
            return 1.0 if self.new == 0.0 else math.inf
        return self.new / self.old

    def regressed(self, tolerance: float) -> bool:
        """True when the new median exceeds tolerance times the old one."""
        return self.ratio > tolerance


@dataclass(frozen=True)
class ComparisonReport:
    """Every comparable quantity plus coverage drift between two runs."""

    deltas: tuple[Delta, ...]
    #: Benchmark names present only in the old file.
    missing: tuple[str, ...]
    #: Benchmark names present only in the new file.
    added: tuple[str, ...]
    #: ``name::stage`` keys present only in the old file (skipped, not
    #: compared — e.g. a stage the new code no longer runs).
    stage_missing: tuple[str, ...] = ()
    #: ``name::stage`` keys present only in the new file (skipped — e.g.
    #: a freshly added benchmark stage with no baseline yet).
    stage_added: tuple[str, ...] = ()

    def regressions(self, tolerance: float) -> list[Delta]:
        """Deltas whose ratio exceeds ``tolerance``, worst first."""
        found = [d for d in self.deltas if d.regressed(tolerance)]
        return sorted(found, key=lambda d: d.ratio, reverse=True)


def load_benchmark_file(path: str) -> dict[str, BenchEntry]:
    """Parse one pytest-benchmark JSON file into name-keyed entries.

    Raises :class:`OSError` when the file cannot be read and
    :class:`~repro.errors.ObservabilityError` when it is not benchmark
    JSON (malformed, or missing the ``benchmarks`` list / ``stats.median``).
    """
    with open(path, encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or not isinstance(payload.get("benchmarks"), list):
        raise ObservabilityError(f"{path}: missing pytest-benchmark 'benchmarks' list")
    entries: dict[str, BenchEntry] = {}
    for raw in payload["benchmarks"]:
        try:
            name = raw["name"]
            median = float(raw["stats"]["median"])
        except (KeyError, TypeError) as exc:
            raise ObservabilityError(
                f"{path}: benchmark entry without name/stats.median"
            ) from exc
        rounds = int(raw["stats"].get("rounds", 0) or 0)
        stages: dict[str, float] = {}
        for stage, info in (raw.get("extra_info", {}).get("stages", {}) or {}).items():
            count = float(info.get("count", 0) or 0)
            if count > 0:
                stages[stage] = float(info.get("total_seconds", 0.0)) / count
        entries[name] = BenchEntry(
            name=name, median=median, stages=stages, rounds=rounds
        )
    return entries


def compare_benchmarks(
    old: dict[str, BenchEntry],
    new: dict[str, BenchEntry],
    min_seconds: float = 0.0,
) -> ComparisonReport:
    """Pair up every benchmark and stage present in both files.

    Quantities whose *old* value is under ``min_seconds`` are skipped —
    micro-stage noise (a 40µs stage doubling) should not trip a gate meant
    for real regressions.  Stages present in only one of the two files are
    skipped with a logged notice (and reported in the result) rather than
    erroring, so adding a benchmark stage never breaks comparison against
    an older baseline.
    """
    deltas: list[Delta] = []
    stage_missing: list[str] = []
    stage_added: list[str] = []
    for name in sorted(set(old) & set(new)):
        old_entry, new_entry = old[name], new[name]
        if old_entry.median >= min_seconds:
            deltas.append(
                Delta(
                    name,
                    old_entry.median,
                    new_entry.median,
                    old_rounds=old_entry.rounds,
                    new_rounds=new_entry.rounds,
                )
            )
        for stage in sorted(set(old_entry.stages) & set(new_entry.stages)):
            old_stage = old_entry.stages[stage]
            if old_stage >= min_seconds:
                deltas.append(
                    Delta(
                        f"{name}::{stage}",
                        old_stage,
                        new_entry.stages[stage],
                        old_rounds=old_entry.rounds,
                        new_rounds=new_entry.rounds,
                    )
                )
        stage_missing.extend(
            f"{name}::{stage}"
            for stage in sorted(set(old_entry.stages) - set(new_entry.stages))
        )
        stage_added.extend(
            f"{name}::{stage}"
            for stage in sorted(set(new_entry.stages) - set(old_entry.stages))
        )
    for key in stage_missing:
        logger.warning("bench-diff: stage %s only in the old run; skipped", key)
    for key in stage_added:
        logger.warning("bench-diff: stage %s only in the new run; skipped", key)
    return ComparisonReport(
        deltas=tuple(deltas),
        missing=tuple(sorted(set(old) - set(new))),
        added=tuple(sorted(set(new) - set(old))),
        stage_missing=tuple(stage_missing),
        stage_added=tuple(stage_added),
    )


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f}ms"
    return f"{seconds * 1e6:8.1f}µs"


def _format_rounds(delta: Delta) -> str:
    if not delta.old_rounds and not delta.new_rounds:
        return "-"
    return f"{delta.old_rounds or '?'}/{delta.new_rounds or '?'}"


def format_comparison(report: ComparisonReport, tolerance: float | None = None) -> str:
    """A fixed-width table of every delta, flagging regressions.

    With ``tolerance`` the verdict column marks ratios above it with
    ``REGRESSED`` (and improvements below ``1/tolerance`` with ``faster``).
    The rounds column shows ``old/new`` measurement round counts;
    benchmarks sampled with fewer than :data:`MIN_TRUSTED_ROUNDS` rounds
    on either side are marked ``UNDER-SAMPLED`` so noisy medians are
    visible next to their ratios.  Stages present in only one run are
    listed as skipped, never compared.
    """
    width = max((len(d.key) for d in report.deltas), default=20)
    lines = [
        f"{'benchmark / stage':<{width}s}  {'old':>10s}  {'new':>10s}  "
        f"{'ratio':>7s}  {'rounds':>7s}"
    ]
    for delta in report.deltas:
        verdict = ""
        if tolerance is not None:
            if delta.regressed(tolerance):
                verdict = "  REGRESSED"
            elif delta.ratio < 1.0 / tolerance:
                verdict = "  faster"
        if delta.under_sampled:
            verdict += f"  UNDER-SAMPLED(<{MIN_TRUSTED_ROUNDS} rounds)"
        ratio = "inf" if math.isinf(delta.ratio) else f"{delta.ratio:.2f}x"
        lines.append(
            f"{delta.key:<{width}s}  {_format_seconds(delta.old)}  "
            f"{_format_seconds(delta.new)}  {ratio:>7s}  "
            f"{_format_rounds(delta):>7s}{verdict}"
        )
    for name in report.missing:
        lines.append(f"{name:<{width}s}  (only in old run)")
    for name in report.added:
        lines.append(f"{name:<{width}s}  (only in new run)")
    for key in report.stage_missing:
        lines.append(f"{key:<{width}s}  (stage only in old run; skipped)")
    for key in report.stage_added:
        lines.append(f"{key:<{width}s}  (stage only in new run; skipped)")
    if not report.deltas:
        lines.append("(no comparable benchmarks)")
    return "\n".join(lines)
